#!/usr/bin/env bash
# Tier-2 verification: style and lint gates on top of the tier-1
# build+test cycle (ROADMAP.md). Run from the repo root.
#
#   ./tier2.sh
#
# Both gates are hard: formatting must be rustfmt-clean and the whole
# workspace (all targets, vendored stubs included) must be clippy-clean
# with warnings promoted to errors.
set -euo pipefail
cd "$(dirname "$0")"

echo "== tier2: cargo fmt --check =="
cargo fmt --check

echo "== tier2: cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "tier2 OK"
