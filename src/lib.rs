//! `benchkit-repro` — root crate of the reproduction of *Principles for
//! Automated and Reproducible Benchmarking* (Koskela et al., SC-W 2023).
//!
//! Everything lives in the workspace crates; this root package re-exports
//! the umbrella [`benchkit`] crate and hosts the runnable examples
//! (`examples/`) and the cross-crate integration tests (`tests/`).
//!
//! Start with `examples/quickstart.rs`:
//!
//! ```bash
//! cargo run --example quickstart
//! ```

pub use benchkit;
pub use benchkit::prelude;
