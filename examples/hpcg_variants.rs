//! The §3.2 case study: how do implementation and algorithm affect
//! performance on different architectures?
//!
//! Runs the four HPCG variants on the two Table 2 platforms, prints the
//! table, and derives the paper's Eq. 1 efficiency ratios — showing that
//! the algorithmic change (CSR → matrix-free) buys more than the vendor's
//! implementation optimization, and even more on AMD.
//!
//! ```bash
//! cargo run --example hpcg_variants
//! ```

use benchapps::hpcg::HpcgVariant;
use benchkit::prelude::*;

fn main() {
    let platforms = [
        ("isambard-macs:cascadelake", "Intel Cascade Lake", 40u32),
        ("archer2", "AMD Rome", 128u32),
    ];

    println!("HPCG variants, GFLOP/s (single node, MPI only):\n");
    println!(
        "{:<18} {:>20} {:>12}",
        "Variant", platforms[0].1, platforms[1].1
    );

    let mut results: Vec<(HpcgVariant, Option<f64>, Option<f64>)> = Vec::new();
    for variant in HpcgVariant::all() {
        let mut row = Vec::new();
        for (spec, _, ranks) in platforms {
            let mut h = Harness::new(RunOptions::on_system(spec));
            let gf = match h.run_case(&cases::hpcg(*variant, ranks)) {
                Ok(report) => Some(report.record.fom("gflops").expect("gflops").value),
                Err(harness::HarnessError::Unsupported(_)) => None,
                Err(e) => panic!("{e}"),
            };
            row.push(gf);
        }
        let fmt = |v: Option<f64>| v.map(|g| format!("{g:.1}")).unwrap_or_else(|| "N/A".into());
        println!(
            "{:<18} {:>20} {:>12}",
            variant.label(),
            fmt(row[0]),
            fmt(row[1])
        );
        results.push((*variant, row[0], row[1]));
    }

    let get = |v: HpcgVariant, col: usize| -> f64 {
        results
            .iter()
            .find(|(rv, ..)| *rv == v)
            .and_then(|(_, cl, rome)| if col == 0 { *cl } else { *rome })
            .expect("variant ran")
    };
    let e_i = ppmetrics::variant_ratio(get(HpcgVariant::IntelAvx2, 0), get(HpcgVariant::Csr, 0));
    let e_a = ppmetrics::variant_ratio(get(HpcgVariant::MatrixFree, 0), get(HpcgVariant::Csr, 0));
    let e_a_rome =
        ppmetrics::variant_ratio(get(HpcgVariant::MatrixFree, 1), get(HpcgVariant::Csr, 1));

    println!("\nEq. 1 ratios (E = VAR / ORIG):");
    println!("  implementation optimization (Intel binary): E_I = {e_i:.3}");
    println!("  algorithmic change (matrix-free), Intel:     E_A = {e_a:.3}");
    println!("  algorithmic change (matrix-free), AMD:       E_A = {e_a_rome:.3}");
    println!(
        "\nAs in the paper: E_A > E_I — optimizing the algorithm beats optimizing \
         the implementation, and the algorithmic gain is larger on AMD."
    );
}
