//! The §3.3 case study: a supercomputing-provision survey. One benchmark
//! (HPGMG-FV), one fixed configuration (8 tasks, 2 per node, 8 cpus/task),
//! four systems — with the whole build/run/extract pipeline handled by the
//! framework, including each system's concretized dependencies (Table 3)
//! and job scripts (Principle 5 artifacts).
//!
//! ```bash
//! cargo run --example provision_survey
//! ```

use benchkit::prelude::*;

const SYSTEMS: &[&str] = &["archer2", "cosma8", "csd3", "isambard-macs:cascadelake"];

fn main() {
    // Concretized dependencies per system (the paper's Table 3).
    println!("Concretized build dependencies of hpgmg%gcc per system:\n");
    let repo = spackle::Repo::builtin();
    for spec_name in SYSTEMS {
        let (sys, part) = simhpc::catalog::resolve(spec_name).expect("catalog");
        let ctx = spackle::context_for(&sys, sys.partition(&part).expect("partition"));
        let spec = spackle::Spec::parse("hpgmg%gcc").expect("valid");
        let concrete = spackle::concretize(&spec, &repo, &ctx).expect("concretizes");
        println!("# {}", sys.name());
        print!("{concrete}");
        println!();
    }

    // The benchmark sweep itself (the paper's Table 4).
    println!("HPGMG-FV Figures of Merit (10^6 DOF/s), args `7 8`, 8 ranks / 2 per node:\n");
    println!(
        "{:<28} {:>8} {:>8} {:>8} {:>12}",
        "System", "l0", "l1", "l2", "queue wait"
    );
    let mut perflogs: Vec<String> = Vec::new();
    for spec_name in SYSTEMS {
        let mut h = Harness::new(RunOptions::on_system(spec_name));
        let report = h
            .run_case(&cases::hpgmg())
            .expect("Table 4 systems support HPGMG");
        let level = |name: &str| report.record.fom(name).expect("level FOM").value / 1e6;
        println!(
            "{:<28} {:>8.2} {:>8.2} {:>8.2} {:>11.3}s",
            spec_name,
            level("l0"),
            level("l1"),
            level("l2"),
            report.queue_wait_s,
        );
        // Keep each system's perflog, like the real framework's per-system
        // log files.
        for (_, log) in h.perflogs() {
            perflogs.push(log.to_jsonl());
        }
    }

    // Assimilate the isolated perflogs (Principle 6) and plot from YAML.
    let frame = postproc::assimilate(&perflogs).expect("perflogs parse");
    let cfg = postproc::PlotConfig::from_yaml(
        "title: HPGMG-FV finest level\n\
         unit: DOF/s\n\
         x_axis: system\n\
         value: value\n\
         filters: {fom: l0}\n",
    )
    .expect("valid plot config");
    let chart = cfg.bar_chart(&frame).expect("chart builds");
    println!("\n{}", chart.render_text());

    std::fs::create_dir_all("target").expect("create target dir");
    std::fs::write("target/provision_survey.svg", chart.render_svg()).expect("write SVG");
    std::fs::write("target/provision_survey.jsonl", perflogs.join("")).expect("write perflog");
    println!("wrote target/provision_survey.svg and target/provision_survey.jsonl");

    // One sample P5 artifact: the generated job script for ARCHER2.
    let mut h = Harness::new(RunOptions::on_system("archer2"));
    let report = h.run_case(&cases::hpgmg()).expect("runs");
    println!(
        "\nGenerated ARCHER2 job script (Principle 5):\n{}",
        report.job_script
    );
}
