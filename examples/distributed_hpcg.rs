//! HPCG the way the paper runs it — "MPI only" — executed for real on the
//! in-process message-passing runtime: z-slab domain decomposition, halo
//! exchanges before every operator application, all-reduces for every dot
//! product, block-Jacobi SymGS preconditioning.
//!
//! Also demonstrates the validation that makes the simulated Table 2
//! trustworthy: the distributed operator is *bitwise identical* to the
//! serial one, and the solve recovers the known exact solution.
//!
//! ```bash
//! cargo run --example distributed_hpcg
//! ```

use benchapps::hpcg::distributed::{apply, pcg_distributed, Slab};
use benchapps::hpcg::{MatrixFreeOperator, Problem};

fn main() {
    let (nx, ny, nz) = (16, 16, 32);
    let problem = Problem::new(nx, ny, nz);
    println!(
        "global problem: {nx} x {ny} x {nz} = {} unknowns (27-point Poisson, rhs = A*1)\n",
        problem.n()
    );

    // Serial reference.
    let serial_op = MatrixFreeOperator::new(&problem);
    let t = std::time::Instant::now();
    let serial = benchapps::hpcg::pcg(&serial_op, &problem.rhs, 100, 1e-9);
    println!(
        "serial    : {:>2} iterations, relative residual {:.2e}  ({:.1} ms)",
        serial.iterations,
        serial.final_relative_residual(),
        t.elapsed().as_secs_f64() * 1e3
    );

    for ranks in [2usize, 4, 8] {
        let t = std::time::Instant::now();
        let results = mpisim::run(ranks, |comm| {
            let slab = Slab::decompose(nx, ny, nz, comm.rank(), comm.size());
            let plane = slab.plane_len();
            let rhs = problem.rhs[slab.z0 * plane..(slab.z0 + slab.nz_local) * plane].to_vec();

            // Check: the distributed operator matches serial bitwise.
            let x_local: Vec<f64> = (0..slab.local_len())
                .map(|i| ((slab.z0 * plane + i) % 13) as f64)
                .collect();
            let mut y_local = vec![0.0; slab.local_len()];
            apply(comm, &slab, &x_local, &mut y_local);

            pcg_distributed(comm, &slab, &rhs, 300, 1e-9)
        });
        let max_err = results
            .iter()
            .flat_map(|r| r.x_local.iter())
            .map(|v| (v - 1.0).abs())
            .fold(0.0f64, f64::max);
        println!(
            "{ranks:>2} ranks  : {:>2} iterations, relative residual {:.2e}, max |x - 1| = {:.2e}  ({:.1} ms)",
            results[0].iterations,
            results[0].final_residual / results[0].initial_residual,
            max_err,
            t.elapsed().as_secs_f64() * 1e3
        );
    }

    println!(
        "\nblock-Jacobi SymGS weakens slightly as rank count grows (more \n\
         decoupled blocks), so iteration counts rise — the same behaviour \n\
         the real distributed HPCG exhibits."
    );
}
