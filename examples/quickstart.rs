//! Quickstart: define one benchmark, run it on two systems, look at the
//! assimilated results — the paper's Figure 1 workflow in ~30 lines.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use benchkit::prelude::*;

fn main() {
    // 1. Define the benchmark once, system-independently (Principle 2):
    //    BabelStream in its OpenMP-style model, 2^27 elements (large enough
    //    to defeat every L3 in the catalog — see the Milan discussion in
    //    §3.1 of the paper).
    let case = cases::babelstream(parkern::Model::Omp, 1 << 27);

    // 2. Run it on two simulated systems from the catalog. Each run goes
    //    through the full pipeline: spec → concretize → build → submit →
    //    run → sanity → FOM extraction → perflog.
    let study = Study::new("quickstart")
        .with_case(case)
        .on_systems(&["archer2", "csd3"]);
    let results = study.run();
    println!(
        "ran {} combinations ({} skipped, {} failed)\n",
        results.report.n_ran(),
        results.report.n_skipped(),
        results.report.n_failed()
    );

    // 3. The assimilated frame: one row per Figure of Merit per run (P6).
    let frame = results.frame();
    println!("{frame}");

    // 4. Efficiency, not runtime (Principle 1): compare each system's
    //    Triad bandwidth against its theoretical peak from Table 1.
    let peaks = [("archer2", 409_600.0), ("csd3", 282_000.0)];
    for (system, peak) in peaks {
        let triad = results
            .mean_fom("babelstream_omp", system, "Triad")
            .expect("both systems support OpenMP");
        println!(
            "{system:<8} Triad {:>10.0} MB/s = {:.1}% of theoretical peak",
            triad,
            100.0 * triad / peak
        );
    }

    // 5. And the portable summary: the Pennycook PP metric across the set.
    let set = results.efficiency_set("babelstream_omp", "Triad", &peaks);
    println!(
        "\nPerformance portability (harmonic mean of efficiencies): {:.3}",
        set.pp()
    );
}
