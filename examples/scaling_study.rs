//! A strong-scaling study — the "scaling plots" the paper lists as ongoing
//! work in §2.4, built from the same pipeline: sweep the MPI rank count of
//! HPGMG-FV on two systems, extract the finest-level FOM, and render a
//! scaling plot plus parallel efficiencies.
//!
//! ```bash
//! cargo run --example scaling_study
//! ```

use benchapps::hpgmg::HpgmgConfig;
use benchkit::prelude::*;

fn main() {
    let rank_counts = [2u32, 4, 8, 16, 32];
    let systems = ["archer2", "csd3"];

    let mut plot = postproc::SeriesPlot::new(
        "HPGMG-FV strong scaling (finest level)",
        "MPI ranks",
        "MDOF/s",
    );

    for system in systems {
        let mut h = Harness::new(RunOptions::on_system(system));
        let mut points = Vec::new();
        for &ranks in &rank_counts {
            // Fixed global problem, spread over more ranks: the per-rank
            // box count halves as ranks double (strong scaling).
            let boxes_per_rank = (64 / ranks).max(1);
            let cfg = HpgmgConfig {
                log2_box_dim: 6,
                boxes_per_rank,
                ranks,
                tasks_per_node: 2,
                cpus_per_task: 8,
            };
            let mut case = cases::hpgmg();
            case.app = App::Hpgmg(cfg);
            case.num_tasks = ranks;
            match h.run_case(&case) {
                Ok(report) => {
                    let l0 = report.record.fom("l0").expect("l0 FOM").value / 1e6;
                    points.push((ranks as f64, l0));
                }
                Err(e) => println!("  {system} @ {ranks} ranks: {e}"),
            }
        }
        plot.add_series(system, points);
    }

    print!("{}", plot.render_text());

    println!("\nParallel efficiency relative to the smallest run:");
    for system in systems {
        if let Some(eff) = plot.parallel_efficiency(system) {
            let cells: Vec<String> = eff
                .iter()
                .map(|(x, e)| format!("{x:.0}r:{:.0}%", e * 100.0))
                .collect();
            println!("  {system:<8} {}", cells.join("  "));
        }
    }
    println!("\n(sub-linear scaling at high rank counts: halo surface and the");
    println!(" latency-bound coarse-grid chain grow relative to per-rank work)");

    std::fs::create_dir_all("target").expect("target dir");
    std::fs::write("target/scaling_study.svg", plot.render_svg()).expect("write SVG");
    println!("\nwrote target/scaling_study.svg");
}
