//! The §3.1 case study: how performance portable are different programming
//! models across a wide range of CPUs and GPUs?
//!
//! Sweeps all BabelStream programming models over the four Figure 2
//! platforms with the paper's array sizes (2^29 on Milan, 2^25 elsewhere),
//! prints the efficiency heat map, writes the perflogs, and reports the
//! Pennycook PP metric per model — showing why only OpenMP-style models
//! score non-zero across the full platform set.
//!
//! ```bash
//! cargo run --example babelstream_survey
//! ```

use benchkit::prelude::*;

fn main() {
    let (map, cells) = bench_figure2();
    print!("{}", map.render_text());

    // PP per model over the CPU set and over the full set.
    println!("\nPerformance portability (Pennycook metric) per model:");
    let models: Vec<&str> = {
        let mut seen = Vec::new();
        for c in &cells {
            if !seen.contains(&c.model.as_str()) {
                seen.push(c.model.as_str());
            }
        }
        seen
    };
    for model in models {
        let effs: Vec<Option<f64>> = cells
            .iter()
            .filter(|c| c.model == model)
            .map(|c| c.efficiency)
            .collect();
        let pp_all = ppmetrics::performance_portability(&effs);
        let cpu_effs: Vec<Option<f64>> = cells
            .iter()
            .filter(|c| c.model == model && c.platform != "v100")
            .map(|c| c.efficiency)
            .collect();
        let pp_cpu = ppmetrics::performance_portability(&cpu_effs);
        println!("  {model:<12} PP(cpus)={pp_cpu:.3}  PP(cpus+gpu)={pp_all:.3}");
    }
    println!("\n(zero PP = the model does not run on every platform in the set,");
    println!(" exactly the paper's point about the starred boxes of Figure 2)");

    // Persist the artefacts the way the framework would: SVG + CSV.
    std::fs::create_dir_all("target").expect("create target dir");
    std::fs::write("target/babelstream_survey.svg", map.render_svg()).expect("write SVG");
    let mut df = dframe::DataFrame::new(vec!["model", "platform", "triad_mbs", "efficiency"]);
    for c in &cells {
        df.push_row(vec![
            dframe::Cell::from(c.model.as_str()),
            dframe::Cell::from(c.platform.as_str()),
            c.triad_mbs
                .map(dframe::Cell::from)
                .unwrap_or(dframe::Cell::Null),
            c.efficiency
                .map(dframe::Cell::from)
                .unwrap_or(dframe::Cell::Null),
        ])
        .expect("schema");
    }
    std::fs::write("target/babelstream_survey.csv", df.to_csv()).expect("write CSV");
    println!("\nwrote target/babelstream_survey.svg and target/babelstream_survey.csv");
}

/// Re-run the Figure 2 sweep (same code path as `cargo run -p bench --bin
/// figure2`, inlined here so the example is self-contained).
fn bench_figure2() -> (postproc::Heatmap, Vec<Fig2Cell>) {
    const PLATFORMS: &[(&str, &str, u32)] = &[
        ("isambard-macs:cascadelake", "cascadelake", 25),
        ("isambard:xci", "thunderx2", 25),
        ("noctua2:milan", "milan", 29),
        ("isambard-macs:volta", "v100", 25),
    ];
    let models: Vec<parkern::Model> = parkern::Model::all()
        .iter()
        .copied()
        .filter(|m| *m != parkern::Model::Serial)
        .collect();
    let mut map = postproc::Heatmap::new(
        "BabelStream Triad fraction of theoretical peak",
        models.iter().map(|m| m.name().to_string()).collect(),
        PLATFORMS.iter().map(|(_, l, _)| l.to_string()).collect(),
    );
    let mut cells = Vec::new();
    for (spec, label, exp) in PLATFORMS {
        let (sys, part) = simhpc::catalog::resolve(spec).expect("catalog");
        let peak_mbs = sys
            .partition(&part)
            .expect("partition")
            .processor()
            .peak_mem_bw_gbs()
            * 1e3;
        let mut h = Harness::new(RunOptions::on_system(spec));
        for model in &models {
            let case = cases::babelstream(*model, 1usize << *exp);
            let eff = match h.run_case(&case) {
                Ok(report) => {
                    let triad = report.record.fom("Triad").expect("Triad").value;
                    map.set(model.name(), label, triad / peak_mbs);
                    Some((triad, triad / peak_mbs))
                }
                Err(_) => None,
            };
            cells.push(Fig2Cell {
                model: model.name().to_string(),
                platform: label.to_string(),
                triad_mbs: eff.map(|(t, _)| t),
                efficiency: eff.map(|(_, e)| e),
            });
        }
    }
    (map, cells)
}

struct Fig2Cell {
    model: String,
    platform: String,
    triad_mbs: Option<f64>,
    efficiency: Option<f64>,
}
