//! Append-only, fsync'd, crash-recoverable line logs — the write-ahead
//! discipline shared by the checkpoint journal and the results daemon.
//!
//! Three pieces of machinery recur wherever this repo promises "an
//! acknowledged record is never lost":
//!
//! 1. **Durable appends.** A record is one newline-terminated line,
//!    written and fsync'd through a [`spackle::IoShim`] *before* the
//!    caller acknowledges it upstream. The shim seam means the torture
//!    suites (and `BENCHKIT_IOFAULTS`) can tear these writes.
//! 2. **Longest-valid-prefix recovery.** A crash can land mid-append; on
//!    reopen, the file is trusted only up to the last line that is both
//!    newline-terminated and valid per the caller's judgment, and the
//!    file is truncated back to that prefix so new appends continue
//!    cleanly.
//! 3. **Failed-append rollback.** A *live* writer that survives a failed
//!    append (injected ENOSPC, torn write) must not keep appending after
//!    the torn fragment: the file is rolled back to the last durable
//!    length immediately. If even the rollback fails, the log is poisoned
//!    and every later append refuses loudly rather than corrupting the
//!    prefix.
//!
//! [`crate::checkpoint::Journal`] and `servd`'s ingest WAL are both built
//! on [`AppendLog`]; they differ only in what "valid line" means.

use spackle::IoShim;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// An append-only log of newline-terminated lines with durable appends
/// and crash recovery. Shared freely across threads: appends serialize on
/// an internal lock.
#[derive(Debug)]
pub struct AppendLog {
    state: Mutex<LogState>,
    path: PathBuf,
    io: IoShim,
}

#[derive(Debug)]
struct LogState {
    file: File,
    /// Bytes known durable: every append that returned `Ok` ended here.
    durable_len: u64,
    /// Set when a failed append could not be rolled back; the prefix is
    /// still intact on disk but this handle must not append after the
    /// torn fragment.
    poisoned: bool,
}

impl AppendLog {
    /// Create (truncating any previous file) an empty log at `path`.
    pub fn create(path: &Path, io: IoShim) -> io::Result<AppendLog> {
        let file = File::create(path)?;
        Ok(AppendLog {
            state: Mutex::new(LogState {
                file,
                durable_len: 0,
                poisoned: false,
            }),
            path: path.to_path_buf(),
            io,
        })
    }

    /// Open an existing file whose first `durable_len` bytes are already
    /// known valid (the caller did its own recovery parse, e.g. with a
    /// header check that must fail differently from a torn tail). The
    /// file is truncated to that length so appends continue cleanly.
    pub fn open_at(path: &Path, io: IoShim, durable_len: u64) -> io::Result<AppendLog> {
        let mut file = OpenOptions::new().write(true).open(path)?;
        file.set_len(durable_len)?;
        file.seek(SeekFrom::End(0))?;
        Ok(AppendLog {
            state: Mutex::new(LogState {
                file,
                durable_len,
                poisoned: false,
            }),
            path: path.to_path_buf(),
            io,
        })
    }

    /// Recover a log to its longest valid prefix and return that prefix's
    /// lines (without their newlines). `valid` judges each complete line
    /// in order (line body, zero-based index); the first incomplete
    /// (unterminated) or invalid line ends the prefix, and the file is
    /// truncated back to just before it. A missing file recovers to an
    /// empty log.
    pub fn recover(
        path: &Path,
        io: IoShim,
        mut valid: impl FnMut(&str, usize) -> bool,
    ) -> io::Result<(AppendLog, Vec<String>)> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        let mut lines = Vec::new();
        let mut valid_len = 0usize;
        let mut rest = text.as_str();
        while let Some(line_end) = rest.find('\n') {
            let body = &rest[..line_end];
            if !valid(body, lines.len()) {
                break;
            }
            lines.push(body.to_string());
            valid_len += line_end + 1;
            rest = &rest[line_end + 1..];
        }
        let log = if text.is_empty() && !path.exists() {
            AppendLog::create(path, io)?
        } else {
            AppendLog::open_at(path, io, valid_len as u64)?
        };
        Ok((log, lines))
    }

    /// Append one line (the trailing newline is added here) and fsync it.
    /// On success the line is durable — safe to acknowledge upstream. On
    /// failure the file is rolled back to the previous durable length, so
    /// the next append never lands after a torn fragment.
    pub fn append(&self, line: &str) -> io::Result<()> {
        debug_assert!(
            !line.contains('\n'),
            "append-log records are single lines; embedded newlines would \
             forge extra records"
        );
        let mut state = self.state.lock().expect("append log poisoned lock");
        if state.poisoned {
            return Err(io::Error::other(format!(
                "append log {} is poisoned by an earlier unrecoverable \
                 append failure",
                self.path.display()
            )));
        }
        let bytes = format!("{line}\n");
        let LogState {
            ref mut file,
            ref mut durable_len,
            ref mut poisoned,
        } = *state;
        let wrote = self
            .io
            .write_all(file, &self.path, bytes.as_bytes())
            .and_then(|()| self.io.fsync(file, &self.path));
        match wrote {
            Ok(()) => {
                *durable_len += bytes.len() as u64;
                Ok(())
            }
            Err(e) => {
                // Roll back the torn fragment; poison on a failed rollback.
                let rolled = file
                    .set_len(*durable_len)
                    .and_then(|()| file.seek(SeekFrom::End(0)).map(|_| ()));
                if rolled.is_err() {
                    *poisoned = true;
                }
                Err(e)
            }
        }
    }

    /// Bytes acknowledged durable so far.
    pub fn durable_len(&self) -> u64 {
        self.state
            .lock()
            .expect("append log poisoned lock")
            .durable_len
    }

    /// The log's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spackle::FaultSpec;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tmpfile(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "harness-walog-{tag}-{}-{}.jsonl",
            std::process::id(),
            N.fetch_add(1, Ordering::SeqCst)
        ))
    }

    #[test]
    fn append_then_recover_round_trips() {
        let path = tmpfile("roundtrip");
        let log = AppendLog::create(&path, IoShim::Real).unwrap();
        log.append("one").unwrap();
        log.append("two").unwrap();
        drop(log);
        let (log, lines) = AppendLog::recover(&path, IoShim::Real, |_, _| true).unwrap();
        assert_eq!(lines, vec!["one".to_string(), "two".to_string()]);
        log.append("three").unwrap();
        drop(log);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "one\ntwo\nthree\n");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn recovery_truncates_torn_tail_and_invalid_lines() {
        let path = tmpfile("torn");
        std::fs::write(&path, "ok-0\nok-1\nbad\nok-3\ntorn-without-newline").unwrap();
        let (log, lines) =
            AppendLog::recover(&path, IoShim::Real, |line, i| line == format!("ok-{i}")).unwrap();
        assert_eq!(lines, vec!["ok-0".to_string(), "ok-1".to_string()]);
        // The invalid line AND everything after it are gone from disk.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "ok-0\nok-1\n");
        log.append("ok-2").unwrap();
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "ok-0\nok-1\nok-2\n"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_recovers_empty() {
        let path = tmpfile("missing");
        let _ = std::fs::remove_file(&path);
        let (log, lines) = AppendLog::recover(&path, IoShim::Real, |_, _| true).unwrap();
        assert!(lines.is_empty());
        log.append("first").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first\n");
        let _ = std::fs::remove_file(&path);
    }

    /// A failed append must leave the durable prefix byte-identical: the
    /// torn fragment is rolled back immediately, not left for recovery.
    #[test]
    fn failed_append_rolls_back_to_durable_prefix() {
        let path = tmpfile("rollback");
        let mut spec = FaultSpec::quiet(3);
        spec.torn = 1.0;
        let faulty = IoShim::faulty(spec);
        {
            let log = AppendLog::create(&path, IoShim::Real).unwrap();
            log.append("durable").unwrap();
        }
        let log = AppendLog::open_at(&path, faulty, "durable\n".len() as u64).unwrap();
        assert!(log.append("torn-record").is_err());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "durable\n");
        assert_eq!(log.durable_len(), "durable\n".len() as u64);
        let _ = std::fs::remove_file(&path);
    }
}
