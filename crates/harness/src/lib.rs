//! `harness` — the ReFrame-like benchmark runner (§2.3, Principles 2–6).
//!
//! The harness separates *what* a benchmark is from *where* it runs:
//!
//! * a [`TestCase`] describes the benchmark — its Spack spec, application
//!   configuration, task layout, sanity pattern, and the regex-based
//!   Figures of Merit to extract (all system-independent);
//! * the target system is selected by name (`--system` in the paper's
//!   appendix), resolved against the `simhpc` catalog;
//! * [`Harness::run_case`] drives the full pipeline:
//!   **setup → build (spackle) → submit (batchsim) → run (benchapps) →
//!   sanity (rexpr) → performance → perflog**, returning a [`CaseReport`]
//!   with complete provenance.
//!
//! Because every stage is a real subsystem (concretizer, scheduler,
//! benchmark, regex engine), the pipeline honestly exercises the paper's
//! claims: the benchmark is rebuilt every run (P3), the build and run steps
//! are captured (P4/P5), and results land in a machine-readable perflog
//! (P6).
//!
//! With `--engine`, the run stage instead executes an external subprocess
//! speaking the KLV protocol (see the `engine` crate): the harness contains
//! every engine failure mode — crash, hang, garbage output — as a
//! structured per-attempt error feeding the same retry/quarantine
//! machinery as injected faults, so a misbehaving engine can never abort a
//! survey.

pub mod checkpoint;
mod pipeline;
mod suite;
pub mod walog;

pub use engine::{EngineSpec, DEFAULT_TIMEOUT_S};
pub use pipeline::{CaseReport, Harness, HarnessError, PreparedBuild, RunOptions};
pub use suite::{StoreStats, SuiteOutcome, SuiteProgress, SuiteReport, SuiteRunner};

use benchapps::babelstream::BabelStreamConfig;
use benchapps::hpcg::HpcgConfig;
use benchapps::hpgmg::HpgmgConfig;
use benchapps::stream::StreamConfig;
use benchapps::{BenchError, ExecutionMode, RunOutput};

/// Which application a test case runs, with its configuration.
#[derive(Debug, Clone)]
pub enum App {
    BabelStream(BabelStreamConfig),
    Hpcg(HpcgConfig),
    Hpgmg(HpgmgConfig),
    Stream(StreamConfig),
}

impl App {
    /// Execute the application.
    pub fn run(&self, mode: &ExecutionMode) -> Result<RunOutput, BenchError> {
        self.run_with(mode, &mut benchapps::scratch::Arena::new())
    }

    /// Execute the application, drawing working vectors from a caller-owned
    /// arena so repeated runs (repetitions, retries, survey cells) are
    /// allocation-free in steady state. Results are byte-identical to
    /// [`App::run`].
    pub fn run_with(
        &self,
        mode: &ExecutionMode,
        arena: &mut benchapps::scratch::Arena,
    ) -> Result<RunOutput, BenchError> {
        match self {
            App::BabelStream(cfg) => benchapps::babelstream::run_with(cfg, mode, arena),
            App::Hpcg(cfg) => benchapps::hpcg::run_with(cfg, mode, arena),
            App::Hpgmg(cfg) => benchapps::hpgmg::run(cfg, mode),
            App::Stream(cfg) => benchapps::stream::run_with(cfg, mode, arena),
        }
    }

    /// Estimated interconnect traffic for one run, bytes. Used by the
    /// telemetry capture (the paper's §4 network-usage extension); zero
    /// for single-node benchmarks.
    pub fn network_bytes(&self) -> u64 {
        match self {
            App::Hpgmg(cfg) => {
                // Ghost-zone surface traffic summed over the three
                // reported solves (matches the simulator's halo model).
                (0..3u32)
                    .map(|l| (cfg.dof_at_level(l) as f64).powf(2.0 / 3.0) as u64 * 11_696)
                    .sum()
            }
            App::Hpcg(cfg) if cfg.ranks > 1 => {
                // Per-iteration halo faces between ranks.
                (cfg.local_dim as u64).pow(2) * 8 * 6 * cfg.ranks as u64 * cfg.iterations as u64
            }
            _ => 0,
        }
    }

    /// Benchmark family name (used in perflog paths).
    pub fn name(&self) -> &'static str {
        match self {
            App::BabelStream(_) => "babelstream",
            App::Hpcg(_) => "hpcg",
            App::Hpgmg(_) => "hpgmg",
            App::Stream(_) => "stream",
        }
    }
}

/// A performance variable: a named regex with one capture group whose match
/// becomes a Figure of Merit (exactly ReFrame's `perf_patterns`).
#[derive(Debug, Clone)]
pub struct PerfVar {
    pub name: String,
    pub pattern: String,
    pub unit: String,
}

impl PerfVar {
    pub fn new(name: &str, pattern: &str, unit: &str) -> PerfVar {
        PerfVar {
            name: name.to_string(),
            pattern: pattern.to_string(),
            unit: unit.to_string(),
        }
    }
}

/// A reference value with relative tolerances (ReFrame's `reference`):
/// the FOM must land within `[value*(1+lower), value*(1+upper)]`.
#[derive(Debug, Clone, Copy)]
pub struct Reference {
    pub value: f64,
    pub lower_frac: f64,
    pub upper_frac: f64,
}

impl Reference {
    pub fn within(value: f64, frac: f64) -> Reference {
        Reference {
            value,
            lower_frac: -frac,
            upper_frac: frac,
        }
    }

    pub fn check(&self, measured: f64) -> bool {
        let lo = self.value * (1.0 + self.lower_frac);
        let hi = self.value * (1.0 + self.upper_frac);
        measured >= lo && measured <= hi
    }
}

/// A system-independent benchmark definition.
#[derive(Debug, Clone)]
pub struct TestCase {
    /// Unique test name, e.g. `babelstream_omp`.
    pub name: String,
    /// Abstract Spack spec built before every run (P2/P3).
    pub spack_spec: String,
    pub app: App,
    pub num_tasks: u32,
    pub num_tasks_per_node: u32,
    pub num_cpus_per_task: u32,
    /// The run is only valid if this pattern matches the output.
    pub sanity_pattern: String,
    /// Figures of Merit to extract.
    pub perf_vars: Vec<PerfVar>,
    /// Optional per-FOM references: (fom name, reference).
    pub references: Vec<(String, Reference)>,
    /// Extra key/value context recorded in the perflog.
    pub extras: Vec<(String, String)>,
}

impl TestCase {
    /// Minimal constructor; builder methods fill in the rest.
    pub fn new(name: &str, spack_spec: &str, app: App) -> TestCase {
        TestCase {
            name: name.to_string(),
            spack_spec: spack_spec.to_string(),
            app,
            num_tasks: 1,
            num_tasks_per_node: 1,
            num_cpus_per_task: 1,
            sanity_pattern: ".".to_string(),
            perf_vars: Vec::new(),
            references: Vec::new(),
            extras: Vec::new(),
        }
    }

    pub fn with_layout(mut self, tasks: u32, per_node: u32, cpus: u32) -> TestCase {
        self.num_tasks = tasks;
        self.num_tasks_per_node = per_node;
        self.num_cpus_per_task = cpus;
        self
    }

    pub fn with_sanity(mut self, pattern: &str) -> TestCase {
        self.sanity_pattern = pattern.to_string();
        self
    }

    pub fn with_perf_var(mut self, var: PerfVar) -> TestCase {
        self.perf_vars.push(var);
        self
    }

    pub fn with_reference(mut self, fom: &str, reference: Reference) -> TestCase {
        self.references.push((fom.to_string(), reference));
        self
    }

    pub fn with_extra(mut self, key: &str, value: &str) -> TestCase {
        self.extras.push((key.to_string(), value.to_string()));
        self
    }
}

/// Ready-made test cases for the paper's experiments.
pub mod cases {
    use super::*;
    use benchapps::babelstream::BabelStreamConfig;
    use parkern::Model;

    /// The BabelStream case for one programming model (§3.1 / Figure 2).
    pub fn babelstream(model: Model, array_size: usize) -> TestCase {
        let cfg = BabelStreamConfig {
            array_size,
            reps: 100,
            model,
            threads: None,
        };
        TestCase::new(
            &format!("babelstream_{}", model.name()),
            &format!("babelstream%gcc +{}", model.name()),
            App::BabelStream(cfg),
        )
        .with_layout(1, 1, 0) // 0 = all cores of the node (filled at run)
        .with_sanity(r"Function\s+MBytes/sec")
        .with_perf_var(PerfVar::new("Copy", r"Copy\s+([\d.]+)", "MB/s"))
        .with_perf_var(PerfVar::new("Mul", r"Mul\s+([\d.]+)", "MB/s"))
        .with_perf_var(PerfVar::new("Add", r"Add\s+([\d.]+)", "MB/s"))
        .with_perf_var(PerfVar::new("Triad", r"Triad\s+([\d.]+)", "MB/s"))
        .with_perf_var(PerfVar::new("Dot", r"Dot\s+([\d.]+)", "MB/s"))
        .with_extra("array_size", &array_size.to_string())
        .with_extra("model", model.name())
    }

    /// The HPCG case for one variant (§3.2 / Table 2).
    pub fn hpcg(variant: benchapps::hpcg::HpcgVariant, ranks: u32) -> TestCase {
        let cfg = benchapps::hpcg::HpcgConfig {
            local_dim: 64,
            ranks,
            variant,
            iterations: 50,
            threads: None,
        };
        TestCase::new(
            &format!("hpcg_{}", variant.spec_name()),
            &format!("hpcg%gcc +mpi impl={}", variant.spec_name()),
            App::Hpcg(cfg),
        )
        .with_layout(ranks, ranks, 1) // single node, MPI only
        .with_sanity(r"result is VALID")
        .with_perf_var(PerfVar::new("gflops", r"rating of=([\d.]+)", "GF/s"))
        .with_extra("variant", variant.spec_name())
    }

    /// Classic STREAM on a full node (the Principle-1 reference point).
    pub fn stream(array_size: usize) -> TestCase {
        let cfg = benchapps::stream::StreamConfig {
            array_size,
            reps: 10,
            threads: None,
        };
        TestCase::new("stream", "stream%gcc", App::Stream(cfg))
            .with_layout(1, 1, 0)
            .with_sanity(r"Solution Validates")
            .with_perf_var(PerfVar::new("Copy", r"Copy\s+([\d.]+)", "MB/s"))
            .with_perf_var(PerfVar::new("Scale", r"Scale\s+([\d.]+)", "MB/s"))
            .with_perf_var(PerfVar::new("Add", r"Add\s+([\d.]+)", "MB/s"))
            .with_perf_var(PerfVar::new("Triad", r"Triad\s+([\d.]+)", "MB/s"))
            .with_extra("array_size", &array_size.to_string())
    }

    /// The HPGMG case (§3.3 / Table 4): 8 tasks, 2 per node, 8 cpus each.
    pub fn hpgmg() -> TestCase {
        let cfg = benchapps::hpgmg::HpgmgConfig::paper();
        TestCase::new("hpgmg_fv", "hpgmg%gcc +fv", App::Hpgmg(cfg))
            .with_layout(8, 2, 8)
            .with_sanity(r"residual reduction=([\d.eE+-]+)")
            .with_perf_var(PerfVar::new(
                "l0",
                r"level 0 FMG solve averaged ([\d.eE+-]+)",
                "DOF/s",
            ))
            .with_perf_var(PerfVar::new(
                "l1",
                r"level 1 FMG solve averaged ([\d.eE+-]+)",
                "DOF/s",
            ))
            .with_perf_var(PerfVar::new(
                "l2",
                r"level 2 FMG solve averaged ([\d.eE+-]+)",
                "DOF/s",
            ))
            .with_extra("args", "7 8")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_checking() {
        let r = Reference::within(100.0, 0.1);
        assert!(r.check(95.0));
        assert!(r.check(109.9));
        assert!(!r.check(80.0));
        assert!(!r.check(120.0));
    }

    #[test]
    fn builder_accumulates() {
        let case = cases::babelstream(parkern::Model::Omp, 1 << 20);
        assert_eq!(case.name, "babelstream_omp");
        assert_eq!(case.perf_vars.len(), 5);
        assert!(case.spack_spec.contains("+omp"));
        assert!(case.extras.iter().any(|(k, _)| k == "array_size"));
    }

    #[test]
    fn hpgmg_case_matches_paper_layout() {
        let case = cases::hpgmg();
        assert_eq!(
            (
                case.num_tasks,
                case.num_tasks_per_node,
                case.num_cpus_per_task
            ),
            (8, 2, 8)
        );
    }
}
