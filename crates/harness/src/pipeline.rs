//! The test pipeline: setup → build → submit → run → sanity → performance.

use crate::TestCase;
use batchsim::{JobRequest, Policy, Scheduler};
use benchapps::{BenchError, ExecutionMode};
use perflogs::{Fom, Perflog, PerflogRecord};
use simhpc::faults::{self, Fault, FaultInjector, FaultProfile};
use simhpc::platform::SchedulerKind;
use std::collections::BTreeMap;
use std::fmt;

/// Options for a harness session (the command-line of the paper's appendix).
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// `--system name[:partition]`, resolved in the simhpc catalog
    /// (`native` runs on the local host with real timing).
    pub system: String,
    /// Deterministic run seed.
    pub seed: u64,
    /// Principle 3: rebuild the benchmark every run. On by default; the
    /// ablation bench turns it off to measure what P3 costs/saves.
    pub rebuild_every_run: bool,
    /// Account passed to the scheduler (`-J'--account=...'`).
    pub account: String,
    /// QoS (`--qos=standard` on ARCHER2).
    pub qos: String,
    /// Injected fault profile (`--fault-profile`); defaults to `none`,
    /// which leaves every pipeline byte-identical to the fault-free world.
    pub fault_profile: FaultProfile,
    /// How many times a faulted build/run stage is retried before the
    /// case is declared failed (`--max-retries`).
    pub max_retries: u32,
    /// Heal drained nodes after the system's deterministic repair window
    /// (`--heal`); off by default, which keeps every schedule
    /// byte-identical to the never-repair world.
    pub heal: bool,
    /// External benchmark engine (`--engine`). When set, the run stage
    /// executes this subprocess under the KLV protocol instead of the
    /// in-process `benchapps` path; engine failures (crash, hang, garbage
    /// output) are contained and retried exactly like injected faults.
    /// `None` falls back to the in-process path, byte-identical to before
    /// engines existed.
    pub engine: Option<engine::EngineSpec>,
}

impl RunOptions {
    pub fn on_system(system: &str) -> RunOptions {
        RunOptions {
            system: system.to_string(),
            seed: 42,
            rebuild_every_run: true,
            account: "ec176".to_string(),
            qos: "standard".to_string(),
            fault_profile: FaultProfile::none(),
            max_retries: 2,
            heal: false,
            engine: None,
        }
    }

    pub fn with_seed(mut self, seed: u64) -> RunOptions {
        self.seed = seed;
        self
    }

    pub fn with_fault_profile(mut self, profile: FaultProfile) -> RunOptions {
        self.fault_profile = profile;
        self
    }

    pub fn with_max_retries(mut self, max_retries: u32) -> RunOptions {
        self.max_retries = max_retries;
        self
    }

    pub fn with_heal(mut self, heal: bool) -> RunOptions {
        self.heal = heal;
        self
    }

    pub fn with_engine(mut self, engine: Option<engine::EngineSpec>) -> RunOptions {
        self.engine = engine;
        self
    }
}

/// Why a case did not produce a perflog record.
#[derive(Debug, Clone, PartialEq)]
pub enum HarnessError {
    UnknownSystem(String),
    /// The spec or app cannot run on this platform (Figure 2's `*` boxes).
    Unsupported(String),
    BadSpec(String),
    ConcretizeFailed(String),
    SchedulerRejected(String),
    SanityFailed {
        pattern: String,
        stdout_head: String,
    },
    FomNotFound {
        name: String,
        pattern: String,
    },
    ReferenceFailed {
        fom: String,
        measured: f64,
        expected: f64,
    },
    BenchFailed(String),
    /// An injected transient build failure (fault injection).
    BuildFault(String),
    /// The run job lost a node (`NODE_FAIL`).
    NodeFailed(String),
    /// The run job was killed at its wall-time limit.
    JobTimedOut(String),
    /// An external engine subprocess failed: crashed, died on a signal,
    /// overran its deadline, or emitted output the KLV decoder rejected.
    /// Carries the subprocess facts so perflogs can record them losslessly.
    EngineFailed {
        exit_code: Option<i64>,
        signal: Option<i64>,
        timed_out: bool,
        message: String,
    },
    /// The case failed for `cause` after the retry budget was exhausted;
    /// carries the resilience accounting for the whole attempt chain.
    AfterFaults {
        attempts: u32,
        faults_injected: u32,
        time_lost_s: f64,
        cause: Box<HarnessError>,
    },
    /// A failure replayed from a checkpoint journal. Preserves the
    /// original error's rendered message and resilience accounting so
    /// every consumer (CLI stream, markdown report, suite totals) emits
    /// byte-identical output without the journal having to encode the
    /// full error tree.
    Replayed {
        message: String,
        stats: Option<(u32, u32, f64)>,
    },
}

impl HarnessError {
    /// Resilience accounting, when this error wraps a retry chain.
    pub fn fault_stats(&self) -> Option<(u32, u32, f64)> {
        match self {
            HarnessError::AfterFaults {
                attempts,
                faults_injected,
                time_lost_s,
                ..
            } => Some((*attempts, *faults_injected, *time_lost_s)),
            HarnessError::Replayed { stats, .. } => *stats,
            _ => None,
        }
    }

    /// Subprocess facts when an external engine caused this failure,
    /// descending through the retry-chain wrapper.
    pub fn engine_status(&self) -> Option<(Option<i64>, Option<i64>, bool)> {
        match self {
            HarnessError::EngineFailed {
                exit_code,
                signal,
                timed_out,
                ..
            } => Some((*exit_code, *signal, *timed_out)),
            HarnessError::AfterFaults { cause, .. } => cause.engine_status(),
            _ => None,
        }
    }
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::UnknownSystem(s) => write!(f, "unknown system `{s}`"),
            HarnessError::Unsupported(m) => write!(f, "unsupported on this platform: {m}"),
            HarnessError::BadSpec(m) => write!(f, "bad spec: {m}"),
            HarnessError::ConcretizeFailed(m) => write!(f, "concretization failed: {m}"),
            HarnessError::SchedulerRejected(m) => write!(f, "scheduler rejected the job: {m}"),
            HarnessError::SanityFailed {
                pattern,
                stdout_head,
            } => {
                write!(
                    f,
                    "sanity pattern `{pattern}` not found in output `{stdout_head}...`"
                )
            }
            HarnessError::FomNotFound { name, pattern } => {
                write!(f, "FOM `{name}` (pattern `{pattern}`) not found in output")
            }
            HarnessError::ReferenceFailed {
                fom,
                measured,
                expected,
            } => {
                write!(
                    f,
                    "FOM `{fom}`: measured {measured} outside reference {expected}"
                )
            }
            HarnessError::BenchFailed(m) => write!(f, "benchmark failed: {m}"),
            HarnessError::BuildFault(m) => write!(f, "transient build failure: {m}"),
            HarnessError::NodeFailed(m) => write!(f, "node failure: {m}"),
            HarnessError::JobTimedOut(m) => write!(f, "job timed out: {m}"),
            HarnessError::EngineFailed { message, .. } => write!(f, "engine failure: {message}"),
            HarnessError::AfterFaults {
                attempts,
                faults_injected,
                time_lost_s,
                cause,
            } => {
                write!(
                    f,
                    "failed after {attempts} attempts ({faults_injected} faults injected, \
                     {time_lost_s:.1}s lost): {cause}"
                )
            }
            HarnessError::Replayed { message, .. } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for HarnessError {}

/// Everything one pipeline run produced (full provenance).
#[derive(Debug, Clone)]
pub struct CaseReport {
    pub record: PerflogRecord,
    /// Concrete build DAG, rendered (the lockfile's view of this run).
    pub concrete_rendered: String,
    pub dag_hash: String,
    /// How many packages were built vs reused this run.
    pub packages_built: usize,
    pub packages_cached: usize,
    pub build_time_s: f64,
    /// The generated batch script (P5 artifact).
    pub job_script: String,
    /// Queue wait the job experienced in the scheduler.
    pub queue_wait_s: f64,
    /// Captured system-state telemetry (energy, power, network traffic).
    pub telemetry: simhpc::Telemetry,
    /// Raw benchmark output.
    pub stdout: String,
    /// Resilience accounting across build + run: retries performed,
    /// faults injected, and simulated time lost to them. All zero in the
    /// default (no-fault) profile.
    pub retries: u32,
    pub faults_injected: u32,
    pub time_lost_s: f64,
    /// Nodes returned to service by `--heal` during this cell's schedule
    /// (always zero without healing).
    pub nodes_repaired: u32,
}

/// The build stage's output: everything `run_prepared` needs to continue
/// the pipeline without touching a package store again. In warm-store
/// sweeps the suite runner computes these in canonical case order so cache
/// attribution never depends on job scheduling.
#[derive(Debug, Clone)]
pub struct PreparedBuild {
    /// The concretized DAG (P2/P4 provenance).
    pub concrete: spackle::ConcreteSpec,
    /// What was built vs reused, with simulated build times.
    pub install: spackle::InstallReport,
    /// Build-stage resilience accounting (zero in the no-fault profile).
    pub retries: u32,
    pub faults_injected: u32,
    pub time_lost_s: f64,
}

/// The harness session: owns the package store, run counter, and perflogs.
pub struct Harness {
    repo: spackle::Repo,
    store: spackle::Store,
    /// When set, installs go to this shared store instead of the
    /// session-private one (warm-store mode).
    shared_store: Option<spackle::SharedStore>,
    options: RunOptions,
    sequence: u64,
    /// Perflogs keyed by (system, benchmark) — ReFrame's directory layout.
    perflogs: BTreeMap<(String, String), Perflog>,
    /// Scratch buffers reused across every case this harness runs, so
    /// steady-state repetitions allocate no working vectors.
    arena: benchapps::scratch::Arena,
}

impl Harness {
    pub fn new(options: RunOptions) -> Harness {
        Harness {
            repo: spackle::Repo::builtin(),
            store: spackle::Store::new(),
            shared_store: None,
            options,
            sequence: 0,
            perflogs: BTreeMap::new(),
            arena: benchapps::scratch::Arena::new(),
        }
    }

    /// Override the recipe repository (site-local repo layering).
    pub fn with_repo(mut self, repo: spackle::Repo) -> Harness {
        self.repo = repo;
        self
    }

    /// Install into a store shared with other sessions (warm-store mode).
    /// Cache accounting then depends on install order across sessions;
    /// callers needing deterministic attribution must serialize their
    /// `prepare_build` calls canonically (see `SuiteRunner`).
    pub fn with_shared_store(mut self, store: spackle::SharedStore) -> Harness {
        self.shared_store = Some(store);
        self
    }

    pub fn options(&self) -> &RunOptions {
        &self.options
    }

    /// Perflog for (system, benchmark), if any runs landed there.
    pub fn perflog(&self, system: &str, benchmark: &str) -> Option<&Perflog> {
        self.perflogs
            .get(&(system.to_string(), benchmark.to_string()))
    }

    /// All perflogs, keyed by (system, benchmark).
    pub fn perflogs(&self) -> impl Iterator<Item = (&(String, String), &Perflog)> {
        self.perflogs.iter()
    }

    /// Resolve the session's `--system` spec in the simhpc catalog.
    fn resolve_platform(
        &self,
    ) -> Result<(simhpc::System, String, simhpc::Partition), HarnessError> {
        let (system, partition_name) = simhpc::catalog::resolve(&self.options.system)
            .ok_or_else(|| HarnessError::UnknownSystem(self.options.system.clone()))?;
        let partition = system
            .partition(&partition_name)
            .expect("resolve() returns existing partitions")
            .clone();
        Ok((system, partition_name, partition))
    }

    /// The build stage alone: concretize + install via spackle (P2–P4).
    /// Warm-store sweeps call this serially in case order to fix cache
    /// attribution, then fan the prepared builds out to parallel jobs.
    pub fn prepare_build(&mut self, case: &TestCase) -> Result<PreparedBuild, HarnessError> {
        let (system, partition_name, partition) = self.resolve_platform()?;
        let spec = spackle::Spec::parse(&case.spack_spec)
            .map_err(|e| HarnessError::BadSpec(e.to_string()))?;
        let ctx = spackle::context_for(&system, &partition);
        let concrete = spackle::concretize(&spec, &self.repo, &ctx).map_err(|e| match e {
            spackle::ConcretizeError::Conflict { .. } => HarnessError::Unsupported(e.to_string()),
            other => HarnessError::ConcretizeFailed(other.to_string()),
        })?;
        // Injected transient build failures: each faulted attempt costs a
        // backoff wait; only a clean attempt touches the package store, so
        // cache attribution is unchanged by however many retries happened.
        let injector = FaultInjector::new(self.options.fault_profile.clone(), self.options.seed);
        let mut attempt = 1u32;
        let mut faults = 0u32;
        let mut time_lost = 0.0f64;
        while injector
            .build_fault(system.name(), &case.name, attempt)
            .is_some()
        {
            faults += 1;
            if attempt > self.options.max_retries {
                let err = self.fail(
                    case,
                    system.name(),
                    &partition_name,
                    attempt,
                    faults,
                    time_lost,
                    HarnessError::BuildFault(format!(
                        "build of `{}` failed on attempt {attempt}",
                        case.name
                    )),
                );
                return Err(err);
            }
            time_lost += faults::backoff_s(attempt);
            attempt += 1;
        }
        let opts = spackle::InstallOptions {
            rebuild_root: self.options.rebuild_every_run,
            ..spackle::InstallOptions::default()
        };
        let install = match &self.shared_store {
            Some(shared) => spackle::install(&concrete, &mut shared.lock(), opts),
            None => spackle::install(&concrete, &mut self.store, opts),
        };
        Ok(PreparedBuild {
            concrete,
            install,
            retries: attempt - 1,
            faults_injected: faults,
            time_lost_s: time_lost,
        })
    }

    /// Record an ultimately-failed case in the perflog (`result=fail`)
    /// instead of silently dropping the cell, wrapping the cause in the
    /// retry-chain accounting when any faults were injected.
    #[allow(clippy::too_many_arguments)]
    fn fail(
        &mut self,
        case: &TestCase,
        system: &str,
        partition: &str,
        attempts: u32,
        faults_injected: u32,
        time_lost_s: f64,
        cause: HarnessError,
    ) -> HarnessError {
        let err = if faults_injected > 0 {
            HarnessError::AfterFaults {
                attempts,
                faults_injected,
                time_lost_s,
                cause: Box::new(cause),
            }
        } else {
            cause
        };
        self.sequence += 1;
        let mut extras = case.extras.clone();
        extras.push(("result".to_string(), "fail".to_string()));
        extras.push(("attempt".to_string(), attempts.to_string()));
        extras.push(("error".to_string(), err.to_string()));
        // Engine failures carry the subprocess facts losslessly (negative
        // exit codes included — these are i64 strings, never wrapped).
        if let Some((exit_code, signal, timed_out)) = err.engine_status() {
            if let Some(code) = exit_code {
                extras.push(("exit_code".to_string(), code.to_string()));
            }
            if let Some(sig) = signal {
                extras.push(("signal".to_string(), sig.to_string()));
            }
            extras.push(("timed_out".to_string(), timed_out.to_string()));
        }
        let record = PerflogRecord {
            sequence: self.sequence,
            benchmark: case.name.clone(),
            system: system.to_string(),
            partition: partition.to_string(),
            environ: String::new(),
            spec: case.spack_spec.clone(),
            build_hash: String::new(),
            job_id: None,
            num_tasks: case.num_tasks,
            num_tasks_per_node: case.num_tasks_per_node,
            num_cpus_per_task: case.num_cpus_per_task,
            foms: Vec::new(),
            extras,
        };
        self.perflogs
            .entry((system.to_string(), case.app.name().to_string()))
            .or_default()
            .append(record);
        err
    }

    /// Execute the run stage in an external engine subprocess under the
    /// KLV protocol. Every failure mode — nonzero exit, signal death,
    /// deadline overrun (SIGTERM → grace → SIGKILL), garbage or truncated
    /// frames — is contained as a structured per-attempt error that feeds
    /// the same retry/accounting machinery as injected faults: each failed
    /// attempt counts one fault, charges the nominal backoff schedule to
    /// `time_lost` (wall-clock sleeps scale via
    /// `BENCHKIT_ENGINE_BACKOFF_SCALE`), and once the `--max-retries`
    /// budget is exhausted the case is recorded as `result=fail` with the
    /// subprocess facts in its extras. The engine never aborts the survey.
    ///
    /// Returns the engine's report as a `RunOutput` plus the attempt
    /// number that succeeded.
    #[allow(clippy::too_many_arguments)]
    fn run_engine(
        &mut self,
        case: &TestCase,
        spec: &engine::EngineSpec,
        system: &str,
        partition: &str,
        retries: &mut u32,
        faults: &mut u32,
        time_lost: &mut f64,
    ) -> Result<(benchapps::RunOutput, u32), HarnessError> {
        let mut attempt = 1u32;
        loop {
            let request = engine::EngineRequest {
                case: case.name.clone(),
                system: system.to_string(),
                partition: partition.to_string(),
                spec: case.spack_spec.clone(),
                seed: self.options.seed,
                attempt,
            };
            match engine::run_attempt(spec, &request) {
                Ok(report) => {
                    return Ok((
                        benchapps::RunOutput {
                            stdout: report.stdout,
                            wall_time_s: report.wall_time_s,
                        },
                        attempt,
                    ));
                }
                Err(failure) => {
                    *faults += 1;
                    let cause = HarnessError::EngineFailed {
                        exit_code: failure.exit_code,
                        signal: failure.signal,
                        timed_out: failure.timed_out,
                        message: failure.to_string(),
                    };
                    if attempt > self.options.max_retries {
                        return Err(
                            self.fail(case, system, partition, attempt, *faults, *time_lost, cause)
                        );
                    }
                    // The charged cost is the nominal deterministic backoff
                    // schedule; the real sleep is scaled (zero in tests/CI)
                    // so accounting never depends on wall-clock jitter.
                    *time_lost += faults::backoff_sleep(attempt);
                    *retries += 1;
                    attempt += 1;
                }
            }
        }
    }

    /// Run one case through the full pipeline on the session's system.
    pub fn run_case(&mut self, case: &TestCase) -> Result<CaseReport, HarnessError> {
        let prepared = self.prepare_build(case)?;
        self.run_prepared(case, prepared)
    }

    /// Continue the pipeline after the build stage:
    /// **submit → run → sanity → performance → perflog**.
    pub fn run_prepared(
        &mut self,
        case: &TestCase,
        prepared: PreparedBuild,
    ) -> Result<CaseReport, HarnessError> {
        let (system, partition_name, partition) = self.resolve_platform()?;
        let proc = partition.processor().clone();
        let PreparedBuild {
            concrete,
            install,
            retries: build_retries,
            faults_injected: build_faults,
            time_lost_s: build_lost,
        } = prepared;
        // Resilience accounting accumulates over the whole case: the build
        // stage's chain (from `prepare_build`) plus the run attempts below.
        let mut retries = build_retries;
        let mut faults = build_faults;
        let mut time_lost = build_lost;
        let environ = concrete
            .root()
            .compiler
            .as_ref()
            .map(|(c, v)| format!("{c}@{v}"))
            .unwrap_or_else(|| "default".to_string());

        // -- run: execute the app under the platform model ---------------
        let mode = if system.name() == "native" {
            ExecutionMode::Native
        } else {
            ExecutionMode::Simulated {
                partition: Box::new(partition.clone()),
                system: system.name().to_string(),
                seed: self.options.seed,
            }
        };
        let engine_mode = self.options.engine.is_some();
        let (output, engine_attempts) = match self.options.engine.clone() {
            Some(spec) => self.run_engine(
                case,
                &spec,
                system.name(),
                &partition_name,
                &mut retries,
                &mut faults,
                &mut time_lost,
            )?,
            None => {
                let output = match case.app.run_with(&mode, &mut self.arena) {
                    Ok(o) => o,
                    Err(BenchError::Unsupported(m)) => return Err(HarnessError::Unsupported(m)),
                    Err(other) => {
                        let cause = HarnessError::BenchFailed(other.to_string());
                        return Err(self.fail(
                            case,
                            system.name(),
                            &partition_name,
                            1,
                            faults,
                            time_lost,
                            cause,
                        ));
                    }
                };
                (output, 1)
            }
        };

        // -- submit: the scheduler sees the same layout (P5) --------------
        let cpus_per_task = if case.num_cpus_per_task == 0 {
            // "use the whole node" convention (BabelStream in the paper).
            proc.total_cores() / case.num_tasks_per_node.max(1)
        } else {
            case.num_cpus_per_task
        };
        let time_limit_s = (output.wall_time_s * 10.0).max(60.0);
        let request = JobRequest::new(
            &case.name,
            case.num_tasks,
            case.num_tasks_per_node,
            cpus_per_task,
        )
        .with_account(&self.options.account)
        .with_qos(&self.options.qos)
        .with_time_limit(time_limit_s);
        let policy = match system.scheduler() {
            SchedulerKind::Slurm => Policy::Backfill,
            SchedulerKind::Pbs => Policy::Fifo,
            SchedulerKind::Local => Policy::Backfill,
        };
        let mut sched = Scheduler::new(policy, partition.nodes().max(1), proc.total_cores().max(1));
        // Injected run faults shape the scheduled job (below); with --heal
        // the scheduler also repairs drained nodes after the system-wide
        // repair window, which every cell on this system derives
        // identically from (profile, seed, system).
        let injector = FaultInjector::new(self.options.fault_profile.clone(), self.options.seed);
        if self.options.heal {
            let window = injector.repair_window_s(system.name());
            if window > 0.0 {
                sched = sched.with_heal(window);
            }
        }
        // P3 makes the build part of every run: when packages were built,
        // a build job precedes the benchmark job via an `afterok`
        // dependency, exactly as a site CI pipeline would chain them.
        let build_job = if install.total_time_s > 0.0 {
            let build_request = JobRequest::new(&format!("{}-build", case.name), 1, 1, 1)
                .with_account(&self.options.account)
                .with_qos(&self.options.qos)
                .with_time_limit(install.total_time_s * 2.0 + 60.0);
            Some(
                sched
                    .submit(build_request, install.total_time_s)
                    .map_err(|e| HarnessError::SchedulerRejected(e.to_string()))?,
            )
        } else {
            None
        };
        // Injected run faults shape the scheduled job: a Timeout fault
        // overruns the wall-time limit (the scheduler kills the job); a
        // NodeFail fault kills a node partway through the run.
        let fault_params = |fault: Option<Fault>| -> (f64, Option<f64>) {
            match fault {
                None | Some(Fault::BuildFail) => (output.wall_time_s, None),
                Some(Fault::Timeout) => ((time_limit_s * 1.25).max(output.wall_time_s), None),
                Some(Fault::NodeFail { at_frac }) => {
                    let run = output.wall_time_s.min(time_limit_s);
                    (output.wall_time_s, Some(at_frac * run))
                }
            }
        };
        // On the engine path the attempt counter continues from the engine's
        // own retry chain, and injected *run* faults are not drawn: real
        // subprocess failures (crash/hang/garbage) already play that role.
        // Build-stage faults are injected identically in both modes.
        let mut run_attempt = engine_attempts;
        let mut fault = if engine_mode {
            None
        } else {
            injector.run_fault(system.name(), &case.name, run_attempt)
        };
        if fault.is_some() {
            faults += 1;
        }
        let (run_time_s, fail_after_s) = fault_params(fault);
        let submitted = match build_job {
            Some(b) => sched.submit_after_with_fault(request.clone(), run_time_s, b, fail_after_s),
            None => sched.submit_with_fault(request.clone(), run_time_s, fail_after_s),
        };
        let job_id = match submitted {
            Ok(id) => id,
            Err(e) => {
                let cause = HarnessError::SchedulerRejected(e.to_string());
                return Err(self.fail(
                    case,
                    system.name(),
                    &partition_name,
                    run_attempt,
                    faults,
                    time_lost,
                    cause,
                ));
            }
        };
        // Retry loop: a NodeFail/TimedOut attempt within budget is
        // requeued after a bounded exponential backoff, possibly drawing a
        // fresh fault for the next attempt. Everything happens in
        // simulated time; the accounting is deterministic per seed.
        sched.run_to_completion();
        let job = loop {
            let j = sched.job(job_id).expect("submitted job exists").clone();
            let elapsed = match (j.start_time, j.end_time) {
                (Some(st), Some(en)) => en - st,
                _ => 0.0,
            };
            match j.state {
                batchsim::JobState::Completed => break j,
                batchsim::JobState::NodeFail | batchsim::JobState::TimedOut
                    if run_attempt <= self.options.max_retries =>
                {
                    let backoff = faults::backoff_s(run_attempt);
                    time_lost += elapsed + backoff;
                    retries += 1;
                    run_attempt += 1;
                    fault = injector.run_fault(system.name(), &case.name, run_attempt);
                    if fault.is_some() {
                        faults += 1;
                    }
                    let (run_time_s, fail_after_s) = fault_params(fault);
                    sched
                        .requeue(job_id, run_time_s, fail_after_s, backoff)
                        .expect("NodeFail/TimedOut jobs are requeueable");
                    sched.run_to_completion();
                }
                terminal => {
                    time_lost += elapsed;
                    let cause = match terminal {
                        batchsim::JobState::NodeFail => HarnessError::NodeFailed(format!(
                            "job lost a node on attempt {run_attempt} (retry budget exhausted)"
                        )),
                        batchsim::JobState::TimedOut => HarnessError::JobTimedOut(format!(
                            "job exceeded its {time_limit_s:.0}s limit on attempt {run_attempt} \
                             (retry budget exhausted)"
                        )),
                        other => HarnessError::NodeFailed(format!(
                            "requeued job could not start (state {other:?}): partition drained"
                        )),
                    };
                    return Err(self.fail(
                        case,
                        system.name(),
                        &partition_name,
                        run_attempt,
                        faults,
                        time_lost,
                        cause,
                    ));
                }
            }
        };
        let job_script = batchsim::render_script(
            system.scheduler(),
            &request,
            &format!(
                "{} {}",
                case.name,
                case.extras
                    .iter()
                    .map(|(_, v)| v.clone())
                    .collect::<Vec<_>>()
                    .join(" ")
            ),
        );

        // -- sanity: the run must have produced valid output (rexpr) ------
        let sanity = rexpr::Regex::new(&case.sanity_pattern)
            .map_err(|e| HarnessError::BadSpec(format!("bad sanity pattern: {e}")))?;
        if !sanity.is_match(&output.stdout) {
            let cause = HarnessError::SanityFailed {
                pattern: case.sanity_pattern.clone(),
                stdout_head: output.stdout.chars().take(60).collect(),
            };
            return Err(self.fail(
                case,
                system.name(),
                &partition_name,
                run_attempt,
                faults,
                time_lost,
                cause,
            ));
        }

        // -- performance: extract FOMs (P6) -------------------------------
        let mut foms = Vec::new();
        for var in &case.perf_vars {
            let re = rexpr::Regex::new(&var.pattern)
                .map_err(|e| HarnessError::BadSpec(format!("bad perf pattern: {e}")))?;
            let value = re
                .captures(&output.stdout)
                .and_then(|caps| caps.get(1).map(|m| m.as_str().to_string()))
                .and_then(|text| text.parse::<f64>().ok());
            let Some(value) = value else {
                let cause = HarnessError::FomNotFound {
                    name: var.name.clone(),
                    pattern: var.pattern.clone(),
                };
                return Err(self.fail(
                    case,
                    system.name(),
                    &partition_name,
                    run_attempt,
                    faults,
                    time_lost,
                    cause,
                ));
            };
            foms.push(Fom {
                name: var.name.clone(),
                value,
                unit: var.unit.clone(),
            });
        }
        for (fom_name, reference) in &case.references {
            if let Some(f) = foms.iter().find(|f| &f.name == fom_name) {
                if !reference.check(f.value) {
                    let cause = HarnessError::ReferenceFailed {
                        fom: fom_name.clone(),
                        measured: f.value,
                        expected: reference.value,
                    };
                    return Err(self.fail(
                        case,
                        system.name(),
                        &partition_name,
                        run_attempt,
                        faults,
                        time_lost,
                        cause,
                    ));
                }
            }
        }

        // -- telemetry: the paper's §4 extension (energy / network) -------
        let telemetry = simhpc::telemetry::capture(
            &partition,
            output.wall_time_s,
            request.cores_per_node(),
            request.nodes_needed(),
            case.app.network_bytes(),
        );

        // -- perflog ------------------------------------------------------
        self.sequence += 1;
        let mut extras = case.extras.clone();
        extras.push((
            "queue_wait_s".to_string(),
            format!("{:.6}", job.wait_time().unwrap_or(0.0)),
        ));
        if let Some(b) = build_job {
            extras.push(("build_job_id".to_string(), b.to_string()));
        }
        extras.push(("energy_j".to_string(), format!("{:.3}", telemetry.energy_j)));
        extras.push((
            "avg_power_w".to_string(),
            format!("{:.1}", telemetry.avg_power_w),
        ));
        extras.push((
            "network_bytes".to_string(),
            telemetry.network_bytes.to_string(),
        ));
        // Only faulted cases carry retry provenance: the default (no-fault)
        // profile must stay byte-identical to the pre-fault-injection world.
        if faults > 0 {
            extras.push(("attempt".to_string(), run_attempt.to_string()));
        }
        let record = PerflogRecord {
            sequence: self.sequence,
            benchmark: case.name.clone(),
            system: system.name().to_string(),
            partition: partition_name.clone(),
            environ,
            spec: concrete.root().render(),
            build_hash: concrete.dag_hash().to_string(),
            job_id: Some(job_id.0),
            num_tasks: case.num_tasks,
            num_tasks_per_node: case.num_tasks_per_node,
            num_cpus_per_task: cpus_per_task,
            foms,
            extras,
        };
        self.perflogs
            .entry((system.name().to_string(), case.app.name().to_string()))
            .or_default()
            .append(record.clone());

        let nodes_repaired = sched
            .node_events()
            .iter()
            .filter(|e| matches!(e, batchsim::NodeEvent::NodeRepaired { .. }))
            .count() as u32;

        Ok(CaseReport {
            record,
            concrete_rendered: concrete.to_string(),
            dag_hash: concrete.dag_hash().to_string(),
            packages_built: install.n_built(),
            packages_cached: install.n_cached(),
            build_time_s: install.total_time_s,
            job_script,
            queue_wait_s: job.wait_time().unwrap_or(0.0),
            telemetry,
            stdout: output.stdout,
            retries,
            faults_injected: faults,
            time_lost_s: time_lost,
            nodes_repaired,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases;
    use parkern::Model;

    #[test]
    fn full_pipeline_babelstream_on_simulated_system() {
        let mut h = Harness::new(RunOptions::on_system("isambard-macs:cascadelake"));
        let case = cases::babelstream(Model::Omp, 1 << 25);
        let report = h.run_case(&case).unwrap();
        let triad = report.record.fom("Triad").unwrap();
        assert_eq!(triad.unit, "MB/s");
        // Below theoretical peak (282 GB/s), above half of sustained.
        assert!(triad.value < 282_000.0, "triad {}", triad.value);
        assert!(triad.value > 100_000.0, "triad {}", triad.value);
        // Build provenance captured.
        assert!(report.packages_built >= 1, "P3: root always rebuilt");
        assert!(report.concrete_rendered.contains("babelstream"));
        assert_eq!(report.dag_hash.len(), 7);
        // PBS system → PBS script.
        assert!(report.job_script.contains("#PBS"));
        // Perflog got the record.
        assert_eq!(h.perflog("isambard-macs", "babelstream").unwrap().len(), 1);
    }

    #[test]
    fn rebuild_every_run_rebuilds_root_only() {
        let mut h = Harness::new(RunOptions::on_system("csd3"));
        let case = cases::babelstream(Model::Omp, 1 << 22);
        let first = h.run_case(&case).unwrap();
        let second = h.run_case(&case).unwrap();
        assert!(first.packages_built >= second.packages_built);
        assert_eq!(
            second.packages_built, 1,
            "only the benchmark itself rebuilds"
        );
        assert!(second.packages_cached > 0);
    }

    #[test]
    fn p3_off_reuses_binary() {
        let mut opts = RunOptions::on_system("csd3");
        opts.rebuild_every_run = false;
        let mut h = Harness::new(opts);
        let case = cases::babelstream(Model::Omp, 1 << 22);
        h.run_case(&case).unwrap();
        let second = h.run_case(&case).unwrap();
        assert_eq!(
            second.packages_built, 0,
            "without P3 the stale binary is reused"
        );
    }

    #[test]
    fn unsupported_combination_is_skippable_error() {
        // CUDA on a CPU partition fails at concretization (conflict).
        let mut h = Harness::new(RunOptions::on_system("csd3"));
        let case = cases::babelstream(Model::Cuda, 1 << 22);
        match h.run_case(&case) {
            Err(HarnessError::Unsupported(_)) => {}
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn unknown_system_rejected() {
        let mut h = Harness::new(RunOptions::on_system("summit"));
        let case = cases::babelstream(Model::Omp, 1 << 20);
        assert!(matches!(
            h.run_case(&case),
            Err(HarnessError::UnknownSystem(_))
        ));
    }

    #[test]
    fn sanity_failure_blocks_fom() {
        let mut h = Harness::new(RunOptions::on_system("csd3"));
        let case = cases::babelstream(Model::Omp, 1 << 22).with_sanity("THIS NEVER APPEARS");
        assert!(matches!(
            h.run_case(&case),
            Err(HarnessError::SanityFailed { .. })
        ));
        // The cell is not silently dropped: a failure record (no FOMs,
        // result=fail) lands in the perflog instead.
        let log = h.perflog("csd3", "babelstream").expect("failure recorded");
        assert_eq!(log.len(), 1);
        let rec = &log.records()[0];
        assert!(rec.foms.is_empty(), "no FOM on sanity failure");
        assert!(rec.extras.iter().any(|(k, v)| k == "result" && v == "fail"));
        assert!(rec.extras.iter().any(|(k, v)| k == "attempt" && v == "1"));
        assert!(rec.extras.iter().any(|(k, _)| k == "error"));
    }

    #[test]
    fn no_fault_profile_changes_nothing() {
        // The default profile must leave records byte-identical to the
        // pre-fault-injection pipeline: no attempt extra, zero accounting.
        let mut h = Harness::new(RunOptions::on_system("csd3"));
        let report = h
            .run_case(&cases::babelstream(Model::Omp, 1 << 22))
            .unwrap();
        assert_eq!(report.retries, 0);
        assert_eq!(report.faults_injected, 0);
        assert_eq!(report.time_lost_s, 0.0);
        assert!(report.record.extras.iter().all(|(k, _)| k != "attempt"));
        assert!(report.record.extras.iter().all(|(k, _)| k != "result"));
    }

    #[test]
    fn flaky_runs_retry_and_replay_identically() {
        let run = |seed: u64| {
            let opts = RunOptions::on_system("csd3")
                .with_seed(seed)
                .with_fault_profile(simhpc::faults::FaultProfile::flaky())
                .with_max_retries(4);
            let mut h = Harness::new(opts);
            h.run_case(&cases::babelstream(Model::Omp, 1 << 22))
        };
        // Scan a few seeds: with flaky rates and 4 retries, at least one
        // seed must inject a fault and still complete.
        let mut saw_retry = false;
        for seed in 0..20 {
            if let Ok(report) = run(seed) {
                if report.faults_injected > 0 {
                    saw_retry = true;
                    assert!(report.retries > 0, "injected fault must force a retry");
                    assert!(report.time_lost_s > 0.0, "retries cost simulated time");
                    assert!(report.record.extras.iter().any(|(k, _)| k == "attempt"));
                    // Determinism: the same seed replays the same chain.
                    let again = run(seed).unwrap();
                    assert_eq!(report.record, again.record);
                    assert_eq!(report.retries, again.retries);
                    assert_eq!(report.time_lost_s, again.time_lost_s);
                    break;
                }
            }
        }
        assert!(saw_retry, "no seed in 0..20 injected a recoverable fault");
    }

    #[test]
    fn retry_exhaustion_reports_fault_accounting() {
        // With zero retries under the brutal profile, some seed must
        // exhaust its budget; the error then carries the fault accounting
        // and the perflog holds a failure record.
        let mut saw_exhaustion = false;
        for seed in 0..30 {
            let opts = RunOptions::on_system("csd3")
                .with_seed(seed)
                .with_fault_profile(simhpc::faults::FaultProfile::brutal())
                .with_max_retries(0);
            let mut h = Harness::new(opts);
            match h.run_case(&cases::babelstream(Model::Omp, 1 << 22)) {
                Err(err @ HarnessError::AfterFaults { .. }) => {
                    let (attempts, injected, lost) = err.fault_stats().unwrap();
                    assert_eq!(attempts, 1, "no retries allowed");
                    assert!(injected >= 1);
                    assert!(lost >= 0.0);
                    let log = h.perflog("csd3", "babelstream").expect("failure recorded");
                    let rec = &log.records()[0];
                    assert!(rec.extras.iter().any(|(k, v)| k == "result" && v == "fail"));
                    saw_exhaustion = true;
                    break;
                }
                _ => continue,
            }
        }
        assert!(
            saw_exhaustion,
            "no seed in 0..30 exhausted the retry budget"
        );
    }

    #[test]
    fn reference_violation_detected() {
        let mut h = Harness::new(RunOptions::on_system("csd3"));
        let case = cases::babelstream(Model::Omp, 1 << 25)
            .with_reference("Triad", crate::Reference::within(1.0, 0.05));
        assert!(matches!(
            h.run_case(&case),
            Err(HarnessError::ReferenceFailed { .. })
        ));
    }

    #[test]
    fn hpgmg_runs_with_paper_layout_and_queue_data() {
        let mut h = Harness::new(RunOptions::on_system("archer2"));
        let report = h.run_case(&cases::hpgmg()).unwrap();
        assert!(report.record.fom("l0").unwrap().value > report.record.fom("l2").unwrap().value);
        assert!(report.job_script.contains("--ntasks=8"));
        assert!(report.job_script.contains("--ntasks-per-node=2"));
        assert!(report.job_script.contains("--cpus-per-task=8"));
        assert!(report
            .record
            .extras
            .iter()
            .any(|(k, _)| k == "queue_wait_s"));
    }

    #[test]
    fn p3_build_job_chains_before_run_job() {
        let mut h = Harness::new(RunOptions::on_system("csd3"));
        let case = cases::babelstream(Model::Omp, 1 << 22);
        let report = h.run_case(&case).unwrap();
        // The run job waited for the build job (P3 made the rebuild part
        // of the pipeline's critical path).
        assert!(
            report
                .record
                .extras
                .iter()
                .any(|(k, _)| k == "build_job_id"),
            "build job recorded in the perflog"
        );
        assert!(
            report.queue_wait_s >= report.build_time_s * 0.99,
            "run queue wait {} must cover the build time {}",
            report.queue_wait_s,
            report.build_time_s
        );
        // With P3 off and a warm store, the second run has no build job.
        let mut opts = RunOptions::on_system("csd3");
        opts.rebuild_every_run = false;
        let mut h2 = Harness::new(opts);
        h2.run_case(&case).unwrap();
        let second = h2.run_case(&case).unwrap();
        assert!(second
            .record
            .extras
            .iter()
            .all(|(k, _)| k != "build_job_id"));
        assert_eq!(second.queue_wait_s, 0.0);
    }

    #[test]
    fn prepared_build_runs_identically_to_run_case() {
        // The split API (prepare_build + run_prepared) is the same
        // pipeline as run_case, just with the build stage detachable.
        let case = cases::babelstream(Model::Omp, 1 << 22);
        let mut whole = Harness::new(RunOptions::on_system("csd3"));
        let direct = whole.run_case(&case).unwrap();
        let mut split = Harness::new(RunOptions::on_system("csd3"));
        let prepared = split.prepare_build(&case).unwrap();
        let via_split = split.run_prepared(&case, prepared).unwrap();
        assert_eq!(direct.record, via_split.record);
        assert_eq!(direct.packages_built, via_split.packages_built);
        assert_eq!(direct.build_time_s, via_split.build_time_s);
    }

    #[test]
    fn shared_store_warms_across_sessions() {
        // Two sessions sharing one store: the second reuses the first's
        // dependency builds while still rebuilding its root (P3).
        let shared = spackle::Store::new().into_shared();
        let case = cases::babelstream(Model::Omp, 1 << 22);
        let mut first =
            Harness::new(RunOptions::on_system("csd3")).with_shared_store(shared.clone());
        let cold = first.run_case(&case).unwrap();
        assert_eq!(cold.packages_cached, 0);
        let mut second =
            Harness::new(RunOptions::on_system("csd3")).with_shared_store(shared.clone());
        let warm = second.run_case(&case).unwrap();
        assert_eq!(warm.packages_built, 1, "root only (P3)");
        assert!(warm.packages_cached > 0, "deps came from the shared store");
        // FOMs are store-independent.
        assert_eq!(
            cold.record.fom("Triad").unwrap().value,
            warm.record.fom("Triad").unwrap().value
        );
        assert_eq!(shared.lock().len(), cold.packages_built);
    }

    #[test]
    fn runs_are_reproducible_per_seed() {
        let run = |seed| {
            let mut h = Harness::new(RunOptions::on_system("noctua2").with_seed(seed));
            let case = cases::babelstream(Model::Omp, 1 << 25);
            h.run_case(&case)
                .unwrap()
                .record
                .fom("Triad")
                .unwrap()
                .value
        };
        assert_eq!(run(7), run(7), "same seed, same FOM");
        assert_ne!(run(7), run(8), "different seed, different noise");
    }

    #[test]
    fn native_mode_runs_real_kernels() {
        let mut h = Harness::new(RunOptions::on_system("native"));
        let mut case = cases::babelstream(Model::Serial, 1 << 16);
        if let crate::App::BabelStream(cfg) = &mut case.app {
            cfg.reps = 3;
        }
        let report = h.run_case(&case).unwrap();
        assert!(report.record.fom("Triad").unwrap().value > 0.0);
        assert!(report.job_script.starts_with("#!/bin/bash"));
    }

    /// A shell engine whose body is `script`. Tests never sleep for real:
    /// backoff wall-clock is scaled to zero (the var is only ever set to
    /// "0" here, so concurrent tests cannot race to different values).
    fn sh_engine(script: &str) -> engine::EngineSpec {
        std::env::set_var(faults::BACKOFF_SCALE_ENV, "0");
        engine::EngineSpec {
            cmd: vec!["/bin/sh".to_string(), "-c".to_string(), script.to_string()],
            timeout_s: 10.0,
            grace_s: 0.5,
        }
    }

    /// Shell fragment emitting a valid KLV report whose stdout satisfies
    /// the babelstream sanity and perf patterns.
    const SH_BABELSTREAM_REPORT: &str = r#"
out='Function    MBytes/sec
Copy        150000.0
Mul         151000.0
Add         152000.0
Triad       153000.0
Dot         154000.0'
printf 'wall:8:0.250000\n'
printf 'stdout:%d:%s\n' "$(printf %s "$out" | wc -c)" "$out"
printf 'done:0:\n'
"#;

    #[test]
    fn engine_path_runs_a_case_end_to_end() {
        let script = format!("cat >/dev/null\n{SH_BABELSTREAM_REPORT}");
        let opts = RunOptions::on_system("csd3").with_engine(Some(sh_engine(&script)));
        let mut h = Harness::new(opts);
        let case = cases::babelstream(Model::Omp, 1 << 22);
        let report = h.run_case(&case).unwrap();
        assert_eq!(report.record.fom("Triad").unwrap().value, 153_000.0);
        assert!(report.stdout.contains("Function    MBytes/sec"));
        assert_eq!(report.faults_injected, 0);
        assert_eq!(report.retries, 0);
        // The engine's declared wall time drives the scheduler, telemetry
        // and perflog exactly like an in-process run.
        assert!(report.record.extras.iter().any(|(k, _)| k == "energy_j"));
    }

    #[test]
    fn engine_request_carries_the_cell_identity() {
        // The engine sees case/system/seed; echo the request back as the
        // report stdout (plus the sanity/perf body) to prove it arrived.
        let script = format!(
            "req=$(cat)\ncase \"$req\" in *babelstream_omp*csd3*) ;; *) exit 9;; esac\n\
             {SH_BABELSTREAM_REPORT}"
        );
        let opts = RunOptions::on_system("csd3").with_engine(Some(sh_engine(&script)));
        let mut h = Harness::new(opts);
        let case = cases::babelstream(Model::Omp, 1 << 22);
        assert!(h.run_case(&case).is_ok());
    }

    #[test]
    fn crashing_engine_is_contained_with_subprocess_facts() {
        let opts = RunOptions::on_system("csd3")
            .with_engine(Some(sh_engine("echo boom >&2; exit 7")))
            .with_max_retries(1);
        let mut h = Harness::new(opts);
        let case = cases::babelstream(Model::Omp, 1 << 22);
        let err = h.run_case(&case).unwrap_err();
        // Retry budget 1 → two attempts, both counted as faults, each
        // failed attempt but the last charging the nominal backoff.
        assert_eq!(err.fault_stats(), Some((2, 2, 30.0)));
        assert_eq!(err.engine_status(), Some((Some(7), None, false)));
        let msg = err.to_string();
        assert!(msg.contains("engine failure"), "{msg}");
        assert!(msg.contains("boom"), "stderr head surfaced: {msg}");
        // The failure landed in the perflog with the subprocess facts.
        let log = h.perflog("csd3", "babelstream").unwrap();
        let extras = &log.records()[0].extras;
        let get = |k: &str| {
            extras
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.as_str())
        };
        assert_eq!(get("result"), Some("fail"));
        assert_eq!(get("exit_code"), Some("7"));
        assert_eq!(get("timed_out"), Some("false"));
        assert_eq!(get("signal"), None, "clean exit carries no signal");
    }

    #[test]
    fn garbage_engine_output_is_a_contained_protocol_failure() {
        let opts = RunOptions::on_system("csd3")
            .with_engine(Some(sh_engine("cat >/dev/null; echo 'NOT KLV AT ALL!'")))
            .with_max_retries(0);
        let mut h = Harness::new(opts);
        let case = cases::babelstream(Model::Omp, 1 << 22);
        let err = h.run_case(&case).unwrap_err();
        assert_eq!(err.engine_status(), Some((Some(0), None, false)));
        assert!(err.to_string().contains("invalid frames"), "{err}");
    }

    #[test]
    fn hanging_engine_is_killed_and_contained() {
        let mut spec = sh_engine("cat >/dev/null; exec sleep 30");
        spec.timeout_s = 0.3;
        let opts = RunOptions::on_system("csd3")
            .with_engine(Some(spec))
            .with_max_retries(0);
        let mut h = Harness::new(opts);
        let case = cases::babelstream(Model::Omp, 1 << 22);
        let started = std::time::Instant::now();
        let err = h.run_case(&case).unwrap_err();
        assert!(started.elapsed() < std::time::Duration::from_secs(10));
        let (_, signal, timed_out) = err.engine_status().unwrap();
        assert!(timed_out);
        assert_eq!(signal, Some(15), "sh dies on the polite SIGTERM");
        let log = h.perflog("csd3", "babelstream").unwrap();
        let extras = &log.records()[0].extras;
        assert!(extras.contains(&("timed_out".to_string(), "true".to_string())));
        assert!(extras.contains(&("signal".to_string(), "15".to_string())));
    }

    #[test]
    fn flaky_engine_recovers_within_the_retry_budget() {
        // Fails on attempt 1, succeeds on attempt 2 (the attempt number
        // travels in the request, so the engine itself can see it).
        let script = format!(
            "req=$(cat)\ncase \"$req\" in *'attempt:1:1'*) echo transient >&2; exit 3;; esac\n\
             {SH_BABELSTREAM_REPORT}"
        );
        let opts = RunOptions::on_system("csd3")
            .with_engine(Some(sh_engine(&script)))
            .with_max_retries(2);
        let mut h = Harness::new(opts);
        let case = cases::babelstream(Model::Omp, 1 << 22);
        let report = h.run_case(&case).unwrap();
        assert_eq!(report.retries, 1);
        assert_eq!(report.faults_injected, 1);
        assert_eq!(report.time_lost_s, 30.0, "nominal backoff charged");
        assert!(report
            .record
            .extras
            .contains(&("attempt".to_string(), "2".to_string())));
        assert_eq!(report.record.fom("Triad").unwrap().value, 153_000.0);
    }
}
