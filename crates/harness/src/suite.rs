//! Running a suite of cases across a stable of systems — the paper's
//! performance-portability survey workflow (§3.1): all benchmarks × all
//! systems in one invocation, with unsupported combinations recorded as
//! skips (the `*` boxes of Figure 2) rather than aborting the sweep.

use crate::{CaseReport, Harness, HarnessError, RunOptions, TestCase};
use perflogs::Perflog;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// What happened to one (case, system) combination.
#[derive(Debug)]
pub enum SuiteOutcome {
    Ran(Box<CaseReport>),
    /// The combination cannot run on that platform (recorded, not fatal).
    Skipped(String),
    /// A genuine failure (sanity, reference, scheduler, ...).
    Failed(HarnessError),
}

impl SuiteOutcome {
    pub fn ran(&self) -> bool {
        matches!(self, SuiteOutcome::Ran(_))
    }

    pub fn skipped(&self) -> bool {
        matches!(self, SuiteOutcome::Skipped(_))
    }
}

/// The result of a full sweep.
#[derive(Debug)]
pub struct SuiteReport {
    /// (case name, system spec, outcome)
    pub outcomes: Vec<(String, String, SuiteOutcome)>,
    /// Perflogs collected per (system, benchmark family).
    pub perflogs: Vec<((String, String), Perflog)>,
}

impl SuiteReport {
    pub fn n_ran(&self) -> usize {
        self.outcomes.iter().filter(|(_, _, o)| o.ran()).count()
    }

    pub fn n_skipped(&self) -> usize {
        self.outcomes.iter().filter(|(_, _, o)| o.skipped()).count()
    }

    pub fn n_failed(&self) -> usize {
        self.outcomes.len() - self.n_ran() - self.n_skipped()
    }

    /// Assimilate every perflog into one data frame (Principle 6).
    pub fn combined_frame(&self) -> dframe::DataFrame {
        let frames: Vec<dframe::DataFrame> = self
            .perflogs
            .iter()
            .map(|(_, log)| log.to_frame())
            .collect();
        dframe::DataFrame::concat(&frames)
    }

    /// Outcome for a (case, system) pair.
    pub fn outcome(&self, case: &str, system: &str) -> Option<&SuiteOutcome> {
        self.outcomes
            .iter()
            .find(|(c, s, _)| c == case && s == system)
            .map(|(_, _, o)| o)
    }
}

/// What one hermetic (system, case) job hands back for reassembly.
struct JobResult {
    outcome: SuiteOutcome,
    /// Perflog key `(system name, benchmark family)` when the job ran.
    key: Option<(String, String)>,
}

/// Sweeps cases across systems with a bounded worker pool.
///
/// Every (system, case) combination is a *hermetic* job: it gets a fresh
/// harness session (cold package store, fresh run counter), so jobs are
/// order-independent and the report is identical for any `jobs` count.
/// Outcomes are reassembled in deterministic (system, case) order and
/// perflog sequence numbers are renumbered per system in case order, as a
/// serial sweep would have assigned them.
pub struct SuiteRunner {
    pub systems: Vec<String>,
    pub seed: u64,
    /// Concurrent jobs; 1 runs inline on the caller, 0 means auto
    /// ([`parkern::default_workers`]).
    pub jobs: usize,
}

impl SuiteRunner {
    pub fn new(systems: &[&str]) -> SuiteRunner {
        SuiteRunner {
            systems: systems.iter().map(|s| s.to_string()).collect(),
            seed: 42,
            jobs: 1,
        }
    }

    pub fn with_seed(mut self, seed: u64) -> SuiteRunner {
        self.seed = seed;
        self
    }

    /// Fan (system × case) jobs across `jobs` workers (0 = auto).
    pub fn with_jobs(mut self, jobs: usize) -> SuiteRunner {
        self.jobs = jobs;
        self
    }

    /// Run one (system, case) combination in a fresh harness session.
    fn run_job(&self, cases: &[TestCase], job: usize) -> JobResult {
        let system = &self.systems[job / cases.len()];
        let case = &cases[job % cases.len()];
        let mut harness = Harness::new(RunOptions::on_system(system).with_seed(self.seed));
        match harness.run_case(case) {
            Ok(report) => JobResult {
                key: Some((report.record.system.clone(), case.app.name().to_string())),
                outcome: SuiteOutcome::Ran(Box::new(report)),
            },
            Err(HarnessError::Unsupported(reason)) => JobResult {
                outcome: SuiteOutcome::Skipped(reason),
                key: None,
            },
            Err(other) => JobResult {
                outcome: SuiteOutcome::Failed(other),
                key: None,
            },
        }
    }

    /// Pull jobs off the shared index until none remain.
    fn work(&self, cases: &[TestCase], slots: &[Mutex<Option<JobResult>>], next: &AtomicUsize) {
        loop {
            let job = next.fetch_add(1, Ordering::Relaxed);
            if job >= slots.len() {
                return;
            }
            let result = self.run_job(cases, job);
            *slots[job].lock().expect("job slot poisoned") = Some(result);
        }
    }

    /// Run every case on every system.
    pub fn run(&self, cases: &[TestCase]) -> SuiteReport {
        let n_jobs = self.systems.len() * cases.len();
        let jobs = if self.jobs == 0 {
            parkern::default_workers()
        } else {
            self.jobs
        };
        let workers = jobs.min(n_jobs).max(1);

        let mut results: Vec<Option<JobResult>> = if workers <= 1 {
            (0..n_jobs)
                .map(|job| Some(self.run_job(cases, job)))
                .collect()
        } else {
            let slots: Vec<Mutex<Option<JobResult>>> =
                (0..n_jobs).map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|s| {
                // The caller is a worker too; spawn only workers - 1.
                for _ in 1..workers {
                    s.spawn(|| self.work(cases, &slots, &next));
                }
                self.work(cases, &slots, &next);
            });
            slots
                .into_iter()
                .map(|slot| slot.into_inner().expect("job slot poisoned"))
                .collect()
        };

        // Deterministic reassembly: (system, case) order, with perflog
        // sequence numbers renumbered exactly as a serial one-session-per-
        // system sweep would count its successful runs.
        let mut outcomes = Vec::with_capacity(n_jobs);
        let mut perflogs = Vec::new();
        for (si, system) in self.systems.iter().enumerate() {
            let mut merged: BTreeMap<(String, String), Perflog> = BTreeMap::new();
            let mut sequence = 0u64;
            for (ci, case) in cases.iter().enumerate() {
                let JobResult { mut outcome, key } = results[si * cases.len() + ci]
                    .take()
                    .expect("every job slot filled");
                if let SuiteOutcome::Ran(report) = &mut outcome {
                    sequence += 1;
                    report.record.sequence = sequence;
                    let key = key.expect("ran jobs carry a perflog key");
                    merged.entry(key).or_default().append(report.record.clone());
                }
                outcomes.push((case.name.clone(), system.clone(), outcome));
            }
            perflogs.extend(merged);
        }
        SuiteReport { outcomes, perflogs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases;
    use parkern::Model;

    #[test]
    fn sweep_over_models_and_systems_matches_figure2_availability() {
        // A small Figure-2-style sweep: 3 models × (CPU + GPU partitions).
        let cases = vec![
            cases::babelstream(Model::Omp, 1 << 22),
            cases::babelstream(Model::Cuda, 1 << 22),
            cases::babelstream(Model::Tbb, 1 << 22),
        ];
        let runner = SuiteRunner::new(&[
            "isambard-macs:cascadelake",
            "isambard-macs:volta",
            "isambard:xci",
        ]);
        let report = runner.run(&cases);
        assert_eq!(report.outcomes.len(), 9);
        // OMP runs on both CPUs, not the GPU.
        assert!(report
            .outcome("babelstream_omp", "isambard-macs:cascadelake")
            .unwrap()
            .ran());
        assert!(report
            .outcome("babelstream_omp", "isambard:xci")
            .unwrap()
            .ran());
        assert!(report
            .outcome("babelstream_omp", "isambard-macs:volta")
            .unwrap()
            .skipped());
        // CUDA only on the GPU.
        assert!(report
            .outcome("babelstream_cuda", "isambard-macs:volta")
            .unwrap()
            .ran());
        assert!(report
            .outcome("babelstream_cuda", "isambard-macs:cascadelake")
            .unwrap()
            .skipped());
        // TBB skipped on ThunderX2 (the paper's starred box).
        assert!(report
            .outcome("babelstream_tbb", "isambard:xci")
            .unwrap()
            .skipped());
        assert!(report
            .outcome("babelstream_tbb", "isambard-macs:cascadelake")
            .unwrap()
            .ran());
        assert_eq!(report.n_failed(), 0);
    }

    #[test]
    fn combined_frame_assimilates_cross_system() {
        let cases = vec![cases::babelstream(Model::Omp, 1 << 22)];
        let runner = SuiteRunner::new(&["archer2", "csd3"]);
        let report = runner.run(&cases);
        let df = report.combined_frame();
        // 2 systems × 5 FOMs.
        assert_eq!(df.n_rows(), 10);
        assert_eq!(df.unique("system").unwrap().len(), 2);
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_serial() {
        // The tentpole determinism guarantee: fanning the (system × case)
        // grid across 4 workers must reproduce the jobs=1 report exactly —
        // same outcomes in the same order, same perflogs, same sequence
        // numbers. Mix of ran/skipped combinations and multiple cases per
        // system so sequence renumbering is actually exercised.
        let cases = vec![
            cases::babelstream(Model::Omp, 1 << 22),
            cases::babelstream(Model::Cuda, 1 << 22),
            cases::babelstream(Model::Tbb, 1 << 22),
            cases::hpgmg(),
        ];
        let systems = [
            "isambard-macs:cascadelake",
            "isambard-macs:volta",
            "archer2",
        ];
        let serial = SuiteRunner::new(&systems).with_seed(7).run(&cases);
        let parallel = SuiteRunner::new(&systems)
            .with_seed(7)
            .with_jobs(4)
            .run(&cases);
        assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
        assert_eq!(
            serial.combined_frame().to_string(),
            parallel.combined_frame().to_string()
        );
    }

    #[test]
    fn sequence_numbers_count_successful_runs_per_system() {
        // omp runs, cuda skips, tbb runs on cascadelake: the two ran cases
        // must carry sequences 1 and 2 (the skip does not consume one).
        let cases = vec![
            cases::babelstream(Model::Omp, 1 << 22),
            cases::babelstream(Model::Cuda, 1 << 22),
            cases::babelstream(Model::Tbb, 1 << 22),
        ];
        let report = SuiteRunner::new(&["isambard-macs:cascadelake"])
            .with_jobs(3)
            .run(&cases);
        let seq_of = |case: &str| match report.outcome(case, "isambard-macs:cascadelake") {
            Some(SuiteOutcome::Ran(r)) => r.record.sequence,
            other => panic!("expected Ran, got {other:?}"),
        };
        assert_eq!(seq_of("babelstream_omp"), 1);
        assert_eq!(seq_of("babelstream_tbb"), 2);
        // The perflog copy agrees with the report copy.
        let (_, log) = &report.perflogs[0];
        assert_eq!(
            log.records().iter().map(|r| r.sequence).collect::<Vec<_>>(),
            vec![1, 2]
        );
    }

    #[test]
    fn jobs_zero_means_auto() {
        let cases = vec![cases::babelstream(Model::Omp, 1 << 20)];
        let report = SuiteRunner::new(&["csd3"]).with_jobs(0).run(&cases);
        assert_eq!(report.n_ran(), 1);
    }
}
