//! Running a suite of cases across a stable of systems — the paper's
//! performance-portability survey workflow (§3.1): all benchmarks × all
//! systems in one invocation, with unsupported combinations recorded as
//! skips (the `*` boxes of Figure 2) rather than aborting the sweep.

use crate::{CaseReport, Harness, HarnessError, RunOptions, TestCase};
use perflogs::Perflog;

/// What happened to one (case, system) combination.
#[derive(Debug)]
pub enum SuiteOutcome {
    Ran(Box<CaseReport>),
    /// The combination cannot run on that platform (recorded, not fatal).
    Skipped(String),
    /// A genuine failure (sanity, reference, scheduler, ...).
    Failed(HarnessError),
}

impl SuiteOutcome {
    pub fn ran(&self) -> bool {
        matches!(self, SuiteOutcome::Ran(_))
    }

    pub fn skipped(&self) -> bool {
        matches!(self, SuiteOutcome::Skipped(_))
    }
}

/// The result of a full sweep.
#[derive(Debug)]
pub struct SuiteReport {
    /// (case name, system spec, outcome)
    pub outcomes: Vec<(String, String, SuiteOutcome)>,
    /// Perflogs collected per (system, benchmark family).
    pub perflogs: Vec<((String, String), Perflog)>,
}

impl SuiteReport {
    pub fn n_ran(&self) -> usize {
        self.outcomes.iter().filter(|(_, _, o)| o.ran()).count()
    }

    pub fn n_skipped(&self) -> usize {
        self.outcomes.iter().filter(|(_, _, o)| o.skipped()).count()
    }

    pub fn n_failed(&self) -> usize {
        self.outcomes.len() - self.n_ran() - self.n_skipped()
    }

    /// Assimilate every perflog into one data frame (Principle 6).
    pub fn combined_frame(&self) -> dframe::DataFrame {
        let frames: Vec<dframe::DataFrame> =
            self.perflogs.iter().map(|(_, log)| log.to_frame()).collect();
        dframe::DataFrame::concat(&frames)
    }

    /// Outcome for a (case, system) pair.
    pub fn outcome(&self, case: &str, system: &str) -> Option<&SuiteOutcome> {
        self.outcomes
            .iter()
            .find(|(c, s, _)| c == case && s == system)
            .map(|(_, _, o)| o)
    }
}

/// Sweeps cases across systems, one harness session per system.
pub struct SuiteRunner {
    pub systems: Vec<String>,
    pub seed: u64,
}

impl SuiteRunner {
    pub fn new(systems: &[&str]) -> SuiteRunner {
        SuiteRunner { systems: systems.iter().map(|s| s.to_string()).collect(), seed: 42 }
    }

    pub fn with_seed(mut self, seed: u64) -> SuiteRunner {
        self.seed = seed;
        self
    }

    /// Run every case on every system.
    pub fn run(&self, cases: &[TestCase]) -> SuiteReport {
        let mut outcomes = Vec::new();
        let mut perflogs = Vec::new();
        for system in &self.systems {
            let mut harness = Harness::new(RunOptions::on_system(system).with_seed(self.seed));
            for case in cases {
                let outcome = match harness.run_case(case) {
                    Ok(report) => SuiteOutcome::Ran(Box::new(report)),
                    Err(HarnessError::Unsupported(reason)) => SuiteOutcome::Skipped(reason),
                    Err(other) => SuiteOutcome::Failed(other),
                };
                outcomes.push((case.name.clone(), system.clone(), outcome));
            }
            for (key, log) in harness.perflogs() {
                perflogs.push((key.clone(), log.clone()));
            }
        }
        SuiteReport { outcomes, perflogs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases;
    use parkern::Model;

    #[test]
    fn sweep_over_models_and_systems_matches_figure2_availability() {
        // A small Figure-2-style sweep: 3 models × (CPU + GPU partitions).
        let cases = vec![
            cases::babelstream(Model::Omp, 1 << 22),
            cases::babelstream(Model::Cuda, 1 << 22),
            cases::babelstream(Model::Tbb, 1 << 22),
        ];
        let runner =
            SuiteRunner::new(&["isambard-macs:cascadelake", "isambard-macs:volta", "isambard:xci"]);
        let report = runner.run(&cases);
        assert_eq!(report.outcomes.len(), 9);
        // OMP runs on both CPUs, not the GPU.
        assert!(report.outcome("babelstream_omp", "isambard-macs:cascadelake").unwrap().ran());
        assert!(report.outcome("babelstream_omp", "isambard:xci").unwrap().ran());
        assert!(report.outcome("babelstream_omp", "isambard-macs:volta").unwrap().skipped());
        // CUDA only on the GPU.
        assert!(report.outcome("babelstream_cuda", "isambard-macs:volta").unwrap().ran());
        assert!(report
            .outcome("babelstream_cuda", "isambard-macs:cascadelake")
            .unwrap()
            .skipped());
        // TBB skipped on ThunderX2 (the paper's starred box).
        assert!(report.outcome("babelstream_tbb", "isambard:xci").unwrap().skipped());
        assert!(report.outcome("babelstream_tbb", "isambard-macs:cascadelake").unwrap().ran());
        assert_eq!(report.n_failed(), 0);
    }

    #[test]
    fn combined_frame_assimilates_cross_system() {
        let cases = vec![cases::babelstream(Model::Omp, 1 << 22)];
        let runner = SuiteRunner::new(&["archer2", "csd3"]);
        let report = runner.run(&cases);
        let df = report.combined_frame();
        // 2 systems × 5 FOMs.
        assert_eq!(df.n_rows(), 10);
        assert_eq!(df.unique("system").unwrap().len(), 2);
    }
}
