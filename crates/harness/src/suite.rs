//! Running a suite of cases across a stable of systems — the paper's
//! performance-portability survey workflow (§3.1): all benchmarks × all
//! systems in one invocation, with unsupported combinations recorded as
//! skips (the `*` boxes of Figure 2) rather than aborting the sweep.

use crate::checkpoint::{self, CheckpointError, CheckpointMode, Journal, StudyBinding};
use crate::{CaseReport, Harness, HarnessError, PreparedBuild, RunOptions, TestCase};
use perflogs::Perflog;
use simhpc::faults::FaultProfile;
use spackle::{BuildAction, DiskStore, Persist, StoreEntry};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// What happened to one (case, system) combination.
#[derive(Debug)]
pub enum SuiteOutcome {
    Ran(Box<CaseReport>),
    /// The combination cannot run on that platform (recorded, not fatal).
    Skipped(String),
    /// A genuine failure (sanity, reference, scheduler, ...).
    Failed(HarnessError),
}

impl SuiteOutcome {
    pub fn ran(&self) -> bool {
        matches!(self, SuiteOutcome::Ran(_))
    }

    pub fn skipped(&self) -> bool {
        matches!(self, SuiteOutcome::Skipped(_))
    }

    /// Retries this cell performed (build + run attempt chains).
    pub fn retries(&self) -> u32 {
        match self {
            SuiteOutcome::Ran(r) => r.retries,
            SuiteOutcome::Failed(e) => e
                .fault_stats()
                .map(|(a, _, _)| a.saturating_sub(1))
                .unwrap_or(0),
            SuiteOutcome::Skipped(_) => 0,
        }
    }

    /// Faults injected into this cell.
    pub fn faults_injected(&self) -> u32 {
        match self {
            SuiteOutcome::Ran(r) => r.faults_injected,
            SuiteOutcome::Failed(e) => e.fault_stats().map(|(_, f, _)| f).unwrap_or(0),
            SuiteOutcome::Skipped(_) => 0,
        }
    }

    /// Simulated time this cell lost to faults and backoff.
    pub fn time_lost_s(&self) -> f64 {
        match self {
            SuiteOutcome::Ran(r) => r.time_lost_s,
            SuiteOutcome::Failed(e) => e.fault_stats().map(|(_, _, t)| t).unwrap_or(0.0),
            SuiteOutcome::Skipped(_) => 0.0,
        }
    }
}

/// Persistent-store accounting for one sweep (`--store`). Counted against
/// the verified resident set at open, attributed by the canonical warm
/// prepass — so the numbers are identical at any `--jobs` count.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Dependency installs satisfied by an entry that was resident on disk.
    pub hits: usize,
    /// Packages built that no verified disk entry could have satisfied.
    /// (Forced P3 root rebuilds of resident entries are neither hit nor
    /// miss: the store could not legally serve them.)
    pub misses: usize,
    /// Entries quarantined to `corrupt/` while opening the store.
    pub quarantined: usize,
    /// New entries persisted after the study completed.
    pub persisted: usize,
    /// New entries *not* persisted because another live writer held the
    /// shard lease. The contended shard degrades; everything else commits.
    pub persist_skipped: usize,
    /// Shards observed under a live foreign lease when the store opened.
    pub shards_contended: usize,
    /// Why the sweep fell back to a plain in-memory warm store (I/O
    /// trouble opening or persisting), if it did. The study itself never
    /// fails because of the store.
    pub degraded: Option<String>,
}

/// The result of a full sweep.
#[derive(Debug)]
pub struct SuiteReport {
    /// (case name, system spec, outcome)
    pub outcomes: Vec<(String, String, SuiteOutcome)>,
    /// Perflogs collected per (system, benchmark family).
    pub perflogs: Vec<((String, String), Perflog)>,
    /// Canary verdicts for systems that started quarantined by memory:
    /// (system spec, readmitted?). Empty unless quarantine memory fired.
    pub canaries: Vec<(String, bool)>,
    /// Persistent-store accounting; `None` unless `--store` was given.
    pub store: Option<StoreStats>,
}

impl SuiteReport {
    pub fn n_ran(&self) -> usize {
        self.outcomes.iter().filter(|(_, _, o)| o.ran()).count()
    }

    pub fn n_skipped(&self) -> usize {
        self.outcomes.iter().filter(|(_, _, o)| o.skipped()).count()
    }

    pub fn n_failed(&self) -> usize {
        self.outcomes.len() - self.n_ran() - self.n_skipped()
    }

    /// Assimilate every perflog into one data frame (Principle 6).
    pub fn combined_frame(&self) -> dframe::DataFrame {
        let frames: Vec<dframe::DataFrame> = self
            .perflogs
            .iter()
            .map(|(_, log)| log.to_frame())
            .collect();
        dframe::DataFrame::concat(&frames)
    }

    /// Outcome for a (case, system) pair.
    pub fn outcome(&self, case: &str, system: &str) -> Option<&SuiteOutcome> {
        self.outcomes
            .iter()
            .find(|(c, s, _)| c == case && s == system)
            .map(|(_, _, o)| o)
    }

    /// Packages built across every ran combination.
    pub fn total_packages_built(&self) -> usize {
        self.ran_reports().map(|r| r.packages_built).sum()
    }

    /// Packages reused from the (shared or private) store across every ran
    /// combination — the warm-store mode's savings are visible here.
    pub fn total_packages_cached(&self) -> usize {
        self.ran_reports().map(|r| r.packages_cached).sum()
    }

    /// Total simulated build time across the sweep.
    pub fn total_build_time_s(&self) -> f64 {
        self.ran_reports().map(|r| r.build_time_s).sum()
    }

    fn ran_reports(&self) -> impl Iterator<Item = &CaseReport> {
        self.outcomes.iter().filter_map(|(_, _, o)| match o {
            SuiteOutcome::Ran(r) => Some(r.as_ref()),
            _ => None,
        })
    }

    /// Retries performed across the sweep (build + run attempt chains).
    pub fn total_retries(&self) -> u32 {
        self.outcomes.iter().map(|(_, _, o)| o.retries()).sum()
    }

    /// Faults injected across the sweep.
    pub fn total_faults_injected(&self) -> u32 {
        self.outcomes
            .iter()
            .map(|(_, _, o)| o.faults_injected())
            .sum()
    }

    /// Simulated time lost to faults and retry backoff across the sweep.
    pub fn total_time_lost_s(&self) -> f64 {
        self.outcomes.iter().map(|(_, _, o)| o.time_lost_s()).sum()
    }

    /// Nodes returned to service by healing across the sweep.
    pub fn total_nodes_repaired(&self) -> u32 {
        self.ran_reports().map(|r| r.nodes_repaired).sum()
    }

    /// Cells skipped by per-system quarantine.
    pub fn n_quarantined(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|(_, _, o)| {
                matches!(o, SuiteOutcome::Skipped(reason) if reason.starts_with("quarantined"))
            })
            .count()
    }
}

/// One streamed grid cell, handed to the progress callback the moment it
/// and every earlier cell are complete (the ordered flush). `index` walks
/// the canonical (system, case) grid order; sequence numbers on ran
/// records are already renumbered when the callback sees them.
#[derive(Debug, Clone, Copy)]
pub struct SuiteProgress<'a> {
    /// 0-based position in (system-major, case-minor) grid order.
    pub index: usize,
    /// Total grid cells in the sweep.
    pub total: usize,
    pub case: &'a str,
    pub system: &'a str,
    pub outcome: &'a SuiteOutcome,
}

/// What one hermetic (system, case) job hands back for reassembly.
struct JobResult {
    outcome: SuiteOutcome,
    /// Perflog key `(system name, benchmark family)` when the job ran.
    key: Option<(String, String)>,
}

/// The ordered-flush cursor: protects the canonical emission point of the
/// stream and the per-system run counter used to renumber sequences.
struct FlushState {
    /// Next grid index waiting to be flushed.
    next: usize,
    /// Successful runs flushed so far for the system currently streaming.
    sequence: u64,
    /// Consecutive *emitted* failures for the system currently streaming
    /// (quarantine trigger; resets at each system boundary and on a run).
    consecutive: u32,
    /// Whether any cell has been emitted as Failed (fail-fast trigger).
    failed_any: bool,
    /// Whether the current system's canary cell was emitted as Failed
    /// (demotes the system's remaining cells; resets per system).
    canary_failed: bool,
}

/// Shared coordination state for one sweep: result slots, the job-claim
/// counter, the ordered-flush cursor, and the short-circuit signals.
struct SweepState {
    slots: Vec<Mutex<Option<JobResult>>>,
    next: AtomicUsize,
    flush: Mutex<FlushState>,
    /// Lowest grid index known to hold a genuine failure (fail-fast).
    /// Workers may skip claiming any job behind it: the flush pass
    /// demotes those cells canonically anyway, so skipping only saves
    /// work, never changes the report.
    first_failure: AtomicUsize,
    /// Per-system quarantine flags, set only by the ordered flush (so a
    /// set flag implies every later claim for that system will be
    /// demoted at flush time — claims are monotonic past the cursor).
    quarantined: Vec<AtomicBool>,
    /// Per-system canary flag from quarantine memory: `Some(streak)` when
    /// the system enters this study on probation with that many prior
    /// consecutive failures.
    canary: Vec<Option<u32>>,
    /// Canary verdicts in system order: (system, readmitted?). Appended
    /// only by the ordered flush, so the order is deterministic.
    canary_verdicts: Mutex<Vec<(String, bool)>>,
    /// Checkpoint journal, when the sweep is checkpointed. Appends happen
    /// at flush time, before the progress callback sees the cell, so a
    /// reported cell is always durable.
    journal: Option<Journal>,
    /// Grid cells below this index were replayed from the journal and are
    /// not re-appended.
    journal_from: usize,
    /// First journal append failure (surfaced after the sweep).
    journal_error: Mutex<Option<CheckpointError>>,
}

/// Sweeps cases across systems with a bounded worker pool.
///
/// Every (system, case) combination is a job on its own harness session,
/// so jobs are order-independent and the report is identical for any
/// `jobs` count. Two store modes:
///
/// * **cold** (default): every job concretizes and installs against a
///   fresh store — fully hermetic, every dependency rebuilt per cell;
/// * **warm** ([`SuiteRunner::with_warm_store`]): each system shares one
///   [`spackle::SharedStore`] across its cases, the way the old serial
///   runner (and Spack's build cache) reused dependency builds. To keep
///   `packages_cached` / `build_time_s` independent of job scheduling,
///   the build stage runs as a serial *prepass* in canonical case order
///   (first-build-wins attribution: the first case in case order pays for
///   each shared dependency), and jobs then execute the prepared builds
///   in parallel. Root packages still rebuild every run (P3).
///
/// Outcomes stream through an **ordered flush**: a grid cell is emitted to
/// the progress callback as soon as it and every earlier cell (system-
/// major, case-minor order) are done, with perflog sequence numbers
/// renumbered per system in case order exactly as a serial sweep would
/// have assigned them.
pub struct SuiteRunner {
    pub systems: Vec<String>,
    pub seed: u64,
    /// Concurrent jobs; 1 runs inline on the caller, 0 means auto
    /// ([`parkern::default_workers`]).
    pub jobs: usize,
    /// Share one package store per system across its cases.
    pub warm_store: bool,
    /// Injected fault profile for every cell (`--fault-profile`).
    pub fault_profile: FaultProfile,
    /// Per-stage retry budget for every cell (`--max-retries`).
    pub max_retries: u32,
    /// Stop scheduling new cells after the first failure (`--fail-fast`):
    /// every cell behind the first failed one is reported as skipped.
    pub fail_fast: bool,
    /// After this many *consecutive* failures on one system, skip that
    /// system's remaining cells with an explicit reason (`--quarantine`).
    /// 0 disables quarantine.
    pub quarantine: u32,
    /// Per-system fault-profile overrides (`--fault-profile sys=name`):
    /// the named system draws faults from its own profile instead of the
    /// base one.
    pub fault_overrides: Vec<(String, FaultProfile)>,
    /// Return drained nodes to service after the system's deterministic
    /// repair window (`--heal`). Off = drained nodes stay down, exactly
    /// the pre-heal behavior.
    pub heal: bool,
    /// Checkpoint directory and mode (`--checkpoint` / `--resume`).
    pub checkpoint: Option<CheckpointMode>,
    /// Persistent package store directory (`--store`). Implies the warm
    /// prepass; each system's shared store is seeded from verified disk
    /// entries, and new builds are persisted once the study completes.
    pub store: Option<PathBuf>,
    /// External engine subprocess for the run stage of every case
    /// (`--engine`). `None` keeps the in-process path byte-identical to
    /// the pre-engine world.
    pub engine: Option<engine::EngineSpec>,
    /// Per-case engine overrides (`--engine case=SPEC`): the named case
    /// runs under its own engine instead of the base one (or instead of
    /// the in-process path when no base engine is set).
    pub engine_overrides: Vec<(String, engine::EngineSpec)>,
}

impl SuiteRunner {
    pub fn new(systems: &[&str]) -> SuiteRunner {
        SuiteRunner {
            systems: systems.iter().map(|s| s.to_string()).collect(),
            seed: 42,
            jobs: 1,
            warm_store: false,
            fault_profile: FaultProfile::none(),
            max_retries: 2,
            fail_fast: false,
            quarantine: 0,
            fault_overrides: Vec::new(),
            heal: false,
            checkpoint: None,
            store: None,
            engine: None,
            engine_overrides: Vec::new(),
        }
    }

    pub fn with_seed(mut self, seed: u64) -> SuiteRunner {
        self.seed = seed;
        self
    }

    /// Fan (system × case) jobs across `jobs` workers (0 = auto).
    pub fn with_jobs(mut self, jobs: usize) -> SuiteRunner {
        self.jobs = jobs;
        self
    }

    /// Reuse dependency builds across cases on the same system (see the
    /// type-level docs for the determinism rule).
    pub fn with_warm_store(mut self, warm: bool) -> SuiteRunner {
        self.warm_store = warm;
        self
    }

    /// Inject faults from `profile` into every cell of the sweep.
    pub fn with_fault_profile(mut self, profile: FaultProfile) -> SuiteRunner {
        self.fault_profile = profile;
        self
    }

    /// Per-stage retry budget before a cell is declared failed.
    pub fn with_max_retries(mut self, max_retries: u32) -> SuiteRunner {
        self.max_retries = max_retries;
        self
    }

    /// Skip every cell after the first failure.
    pub fn with_fail_fast(mut self, fail_fast: bool) -> SuiteRunner {
        self.fail_fast = fail_fast;
        self
    }

    /// Quarantine a system after `k` consecutive failures (0 = off).
    pub fn with_quarantine(mut self, k: u32) -> SuiteRunner {
        self.quarantine = k;
        self
    }

    /// Override the fault profile for one system (later builders do not
    /// replace earlier ones; duplicates are a CLI-level error).
    pub fn with_fault_override(mut self, system: &str, profile: FaultProfile) -> SuiteRunner {
        self.fault_overrides.push((system.to_string(), profile));
        self
    }

    /// Heal drained nodes after each system's deterministic repair window.
    pub fn with_heal(mut self, heal: bool) -> SuiteRunner {
        self.heal = heal;
        self
    }

    /// Journal every completed cell to `dir` (fresh journal).
    pub fn with_checkpoint(mut self, dir: &Path) -> SuiteRunner {
        self.checkpoint = Some(CheckpointMode::Fresh(dir.to_path_buf()));
        self
    }

    /// Resume an interrupted sweep from the journal in `dir`.
    pub fn with_resume(mut self, dir: &Path) -> SuiteRunner {
        self.checkpoint = Some(CheckpointMode::Resume(dir.to_path_buf()));
        self
    }

    /// Warm each system's store from the persistent store at `dir` and
    /// persist new builds there once the study completes. Implies the
    /// warm prepass. Store trouble (lock contention, corruption, I/O)
    /// degrades to an in-memory warm store — it never fails the study.
    pub fn with_store(mut self, dir: &Path) -> SuiteRunner {
        self.store = Some(dir.to_path_buf());
        self
    }

    /// Run every case's run stage in an external engine subprocess.
    pub fn with_engine(mut self, spec: Option<engine::EngineSpec>) -> SuiteRunner {
        self.engine = spec;
        self
    }

    /// Override the engine for one case (later builders do not replace
    /// earlier ones; duplicates are a CLI-level error).
    pub fn with_engine_override(mut self, case: &str, spec: engine::EngineSpec) -> SuiteRunner {
        self.engine_overrides.push((case.to_string(), spec));
        self
    }

    /// The engine a given case runs under (override, then base), `None`
    /// for the in-process path.
    pub fn engine_for(&self, case: &str) -> Option<&engine::EngineSpec> {
        self.engine_overrides
            .iter()
            .find(|(c, _)| c == case)
            .map(|(_, s)| s)
            .or(self.engine.as_ref())
    }

    /// Canonical rendering of the engine configuration for the checkpoint
    /// header: empty without engines, else the base spec and every
    /// per-case override in override order.
    fn engine_binding(&self) -> String {
        let mut parts = Vec::new();
        if let Some(base) = &self.engine {
            parts.push(base.render());
        }
        for (case, spec) in &self.engine_overrides {
            parts.push(format!("{case}={}", spec.render()));
        }
        parts.join(" ")
    }

    /// The fault profile a given system draws from (override or base).
    pub fn profile_for(&self, system: &str) -> &FaultProfile {
        self.fault_overrides
            .iter()
            .find(|(s, _)| s == system)
            .map(|(_, p)| p)
            .unwrap_or(&self.fault_profile)
    }

    fn job_options(&self, system: &str) -> RunOptions {
        RunOptions::on_system(system)
            .with_seed(self.seed)
            .with_fault_profile(self.profile_for(system).clone())
            .with_max_retries(self.max_retries)
            .with_heal(self.heal)
    }

    /// Warm-store prepass: per system, run the build stage serially in
    /// case order against that system's shared store. This fixes cache
    /// attribution canonically — whatever the later job schedule, the
    /// accounting is the one a serial sweep would have produced. With a
    /// persistent store open, each system's store starts seeded with the
    /// verified on-disk entries, so cross-study reuse shows up as cached
    /// dependency installs.
    fn prepare_warm(
        &self,
        cases: &[TestCase],
        disk: Option<&DiskStore>,
    ) -> Vec<Result<PreparedBuild, HarnessError>> {
        let mut prepared = Vec::with_capacity(self.systems.len() * cases.len());
        for system in &self.systems {
            let store = spackle::SharedStore::new();
            if let Some(disk) = disk {
                disk.seed_into(&mut store.lock());
            }
            let mut harness =
                Harness::new(self.job_options(system)).with_shared_store(store.clone());
            for case in cases {
                prepared.push(harness.prepare_build(case));
            }
        }
        prepared
    }

    /// Classify a pipeline result into a suite outcome.
    fn classify(case: &TestCase, result: Result<CaseReport, HarnessError>) -> JobResult {
        match result {
            Ok(report) => JobResult {
                key: Some((report.record.system.clone(), case.app.name().to_string())),
                outcome: SuiteOutcome::Ran(Box::new(report)),
            },
            Err(HarnessError::Unsupported(reason)) => JobResult {
                outcome: SuiteOutcome::Skipped(reason),
                key: None,
            },
            Err(other) => JobResult {
                outcome: SuiteOutcome::Failed(other),
                key: None,
            },
        }
    }

    /// Run one (system, case) combination in a fresh harness session.
    fn run_job(
        &self,
        cases: &[TestCase],
        prepared: Option<&[Result<PreparedBuild, HarnessError>]>,
        job: usize,
    ) -> JobResult {
        let system = &self.systems[job / cases.len()];
        let case = &cases[job % cases.len()];
        let options = self
            .job_options(system)
            .with_engine(self.engine_for(&case.name).cloned());
        let mut harness = Harness::new(options);
        let result = match prepared {
            // Warm mode: the build already ran in the canonical prepass.
            Some(builds) => builds[job]
                .clone()
                .and_then(|build| harness.run_prepared(case, build)),
            None => harness.run_case(case),
        };
        Self::classify(case, result)
    }

    /// Pull jobs off the shared index until none remain, flushing the
    /// outcome stream after every completion. Jobs provably behind a
    /// failure (fail-fast) or inside a quarantined system are not run at
    /// all; their placeholder result is demoted canonically at flush time.
    fn work(
        &self,
        cases: &[TestCase],
        prepared: Option<&[Result<PreparedBuild, HarnessError>]>,
        state: &SweepState,
        on_flush: &(dyn Fn(SuiteProgress<'_>) + Sync),
    ) {
        loop {
            let job = state.next.fetch_add(1, Ordering::Relaxed);
            if job >= state.slots.len() {
                return;
            }
            let short_circuit = (self.fail_fast
                && state.first_failure.load(Ordering::Relaxed) < job)
                || (self.quarantine > 0
                    && state.quarantined[job / cases.len()].load(Ordering::Relaxed));
            let result = if short_circuit {
                // Never executed; the flush pass stamps the real reason.
                JobResult {
                    outcome: SuiteOutcome::Skipped("not run".to_string()),
                    key: None,
                }
            } else {
                let result = self.run_job(cases, prepared, job);
                if matches!(result.outcome, SuiteOutcome::Failed(_)) {
                    state.first_failure.fetch_min(job, Ordering::Relaxed);
                }
                result
            };
            *state.slots[job].lock().expect("job slot poisoned") = Some(result);
            self.flush_ready(cases, state, on_flush);
        }
    }

    /// Advance the ordered flush: emit every contiguous completed cell
    /// starting at the cursor, renumbering ran sequences per system in
    /// case order. Serialized by the flush lock, so the stream is emitted
    /// in canonical grid order no matter which workers finish when.
    ///
    /// Fail-fast and quarantine are applied *here*, at the canonical
    /// emission point: cell i is demoted based only on cells < i, so the
    /// decision is identical at every `jobs` count even when a worker
    /// raced ahead and actually ran the cell.
    fn flush_ready(
        &self,
        cases: &[TestCase],
        state: &SweepState,
        on_flush: &(dyn Fn(SuiteProgress<'_>) + Sync),
    ) {
        let mut cursor = state.flush.lock().expect("flush state poisoned");
        while cursor.next < state.slots.len() {
            let mut slot = state.slots[cursor.next].lock().expect("job slot poisoned");
            let Some(result) = slot.as_mut() else {
                break; // an earlier cell is still running
            };
            let ci = cursor.next % cases.len();
            let si = cursor.next / cases.len();
            if ci == 0 {
                cursor.sequence = 0; // new system starts counting afresh
                cursor.consecutive = 0;
                cursor.canary_failed = false;
            }
            if self.fail_fast && cursor.failed_any {
                result.outcome =
                    SuiteOutcome::Skipped("not run: --fail-fast after earlier failure".to_string());
                result.key = None;
            } else if cursor.canary_failed {
                // The system entered this study on probation and its canary
                // cell just failed: everything else on it is skipped.
                result.outcome = SuiteOutcome::Skipped(format!(
                    "quarantined: canary failed on {} ({} prior consecutive failures)",
                    self.systems[si],
                    state.canary[si].unwrap_or(0)
                ));
                result.key = None;
            } else if self.quarantine > 0 && cursor.consecutive >= self.quarantine {
                result.outcome = SuiteOutcome::Skipped(format!(
                    "quarantined: {} consecutive failures on {}",
                    self.quarantine, self.systems[si]
                ));
                result.key = None;
            }
            match &mut result.outcome {
                SuiteOutcome::Ran(report) => {
                    cursor.sequence += 1;
                    report.record.sequence = cursor.sequence;
                    cursor.consecutive = 0;
                }
                SuiteOutcome::Failed(_) => {
                    cursor.failed_any = true;
                    cursor.consecutive += 1;
                    if self.quarantine > 0 && cursor.consecutive >= self.quarantine {
                        state.quarantined[si].store(true, Ordering::Relaxed);
                    }
                }
                SuiteOutcome::Skipped(_) => {}
            }
            // Canary verdict: the probing cell readmits the system (any
            // non-failure) or condemns the rest of its row.
            if ci == 0 && state.canary[si].is_some() {
                let failed = matches!(result.outcome, SuiteOutcome::Failed(_));
                if failed {
                    cursor.canary_failed = true;
                    state.quarantined[si].store(true, Ordering::Relaxed);
                }
                state
                    .canary_verdicts
                    .lock()
                    .expect("canary verdicts poisoned")
                    .push((self.systems[si].clone(), !failed));
            }
            // Make the cell durable before anyone hears about it: a crash
            // from here on resumes at this cell or later, never before it.
            if let Some(journal) = &state.journal {
                if cursor.next >= state.journal_from {
                    if let Err(e) = journal.append(
                        cursor.next,
                        &cases[ci].name,
                        &self.systems[si],
                        &result.outcome,
                    ) {
                        let mut slot = state.journal_error.lock().expect("journal error poisoned");
                        slot.get_or_insert(e);
                    }
                }
            }
            on_flush(SuiteProgress {
                index: cursor.next,
                total: state.slots.len(),
                case: &cases[ci].name,
                system: &self.systems[si],
                outcome: &result.outcome,
            });
            cursor.next += 1;
        }
    }

    /// Run every case on every system.
    pub fn run(&self, cases: &[TestCase]) -> SuiteReport {
        self.run_with_progress(cases, &|_| {})
    }

    /// Run every case on every system, streaming outcomes to `on_flush`.
    /// Panics on checkpoint errors — use [`SuiteRunner::try_run_with_progress`]
    /// when a checkpoint directory is configured.
    pub fn run_with_progress(
        &self,
        cases: &[TestCase],
        on_flush: &(dyn Fn(SuiteProgress<'_>) + Sync),
    ) -> SuiteReport {
        self.try_run_with_progress(cases, on_flush)
            .expect("checkpointing failed")
    }

    /// [`SuiteRunner::run`] with checkpoint errors surfaced.
    pub fn try_run(&self, cases: &[TestCase]) -> Result<SuiteReport, CheckpointError> {
        self.try_run_with_progress(cases, &|_| {})
    }

    /// Build the study-identity header this sweep binds its journal to.
    fn binding(&self, cases: &[TestCase], streaks: &[(String, u32)]) -> StudyBinding {
        StudyBinding {
            systems: self.systems.clone(),
            cases: cases.iter().map(|c| c.name.clone()).collect(),
            seed: self.seed,
            warm_store: self.warm_store,
            store: self.store.is_some(),
            profile: self.fault_profile.name.clone(),
            overrides: self
                .fault_overrides
                .iter()
                .map(|(s, p)| (s.clone(), p.name.clone()))
                .collect(),
            max_retries: self.max_retries,
            fail_fast: self.fail_fast,
            quarantine: self.quarantine,
            heal: self.heal,
            streaks: streaks.to_vec(),
            engine: self.engine_binding(),
        }
    }

    /// Run every case on every system, streaming outcomes to `on_flush`
    /// in canonical grid order as soon as each cell (and every earlier
    /// one) completes. With a checkpoint configured, every flushed cell is
    /// journaled durably before it is streamed, completed cells of a
    /// resumed sweep are replayed instead of re-run, and quarantine
    /// memory from earlier studies puts flaky systems on canary probation.
    pub fn try_run_with_progress(
        &self,
        cases: &[TestCase],
        on_flush: &(dyn Fn(SuiteProgress<'_>) + Sync),
    ) -> Result<SuiteReport, CheckpointError> {
        let n_jobs = self.systems.len() * cases.len();
        let jobs = if self.jobs == 0 {
            parkern::default_workers()
        } else {
            self.jobs
        };
        let workers = jobs.min(n_jobs).max(1);

        // Oversubscription guard: with `workers` cells running concurrently,
        // clamp each cell's *implicit* kernel-thread count so that
        // jobs × threads ≤ the machine's parallelism. An explicit
        // BENCHKIT_THREADS (or per-case `threads` setting) always wins.
        // The guard restores the previous cap on every exit path.
        struct CapGuard(usize);
        impl Drop for CapGuard {
            fn drop(&mut self) {
                parkern::set_worker_cap(self.0);
            }
        }
        let _cap_guard = if workers > 1 && std::env::var("BENCHKIT_THREADS").is_err() {
            let machine = std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1);
            let cap = (machine / workers).max(1);
            let prev = parkern::worker_cap();
            parkern::set_worker_cap(cap);
            eprintln!(
                "note: clamping per-cell kernel threads to {cap} \
                 ({machine} cores / {workers} concurrent jobs); \
                 set BENCHKIT_THREADS to override"
            );
            Some(CapGuard(prev))
        } else {
            None
        };

        // Quarantine memory: systems whose trailing streak in an earlier
        // study reached the threshold start on canary probation.
        let streaks = match &self.checkpoint {
            Some(mode) => checkpoint::load_streaks(mode.dir())?,
            None => Vec::new(),
        };
        let canary: Vec<Option<u32>> = self
            .systems
            .iter()
            .map(|sys| {
                if self.quarantine == 0 {
                    return None;
                }
                streaks
                    .iter()
                    .find(|(s, _)| s == sys)
                    .and_then(|(_, n)| (*n >= self.quarantine).then_some(*n))
            })
            .collect();

        let (journal, replayed) = match &self.checkpoint {
            Some(CheckpointMode::Fresh(dir)) => (
                Some(Journal::create(dir, &self.binding(cases, &streaks))?),
                Vec::new(),
            ),
            Some(CheckpointMode::Resume(dir)) => {
                let (j, cells) = Journal::resume(dir, &self.binding(cases, &streaks))?;
                (Some(j), cells)
            }
            None => (None, Vec::new()),
        };
        let replay_count = replayed.len().min(n_jobs);

        // Persistent store: open softly — lock contention, corruption, or
        // I/O trouble degrades to the plain in-memory warm store below; the
        // study never fails because of the store.
        let mut store_stats = self.store.as_ref().map(|_| StoreStats::default());
        let mut disk = None;
        if let Some(dir) = &self.store {
            let stats = store_stats.as_mut().expect("stats allocated with --store");
            match DiskStore::open(dir) {
                Ok(d) => {
                    stats.quarantined = d.quarantined().len();
                    stats.shards_contended = d.contended().len();
                    disk = Some(d);
                }
                Err(e) => {
                    let reason = e.to_string();
                    eprintln!("warning: degrading to in-memory warm store: {reason}");
                    stats.degraded = Some(reason);
                }
            }
        }

        let prepared_builds = if self.warm_store || self.store.is_some() {
            Some(self.prepare_warm(cases, disk.as_ref()))
        } else {
            None
        };
        let prepared = prepared_builds.as_deref();

        let state = SweepState {
            slots: (0..n_jobs).map(|_| Mutex::new(None)).collect(),
            next: AtomicUsize::new(replay_count),
            flush: Mutex::new(FlushState {
                next: 0,
                sequence: 0,
                consecutive: 0,
                failed_any: false,
                canary_failed: false,
            }),
            first_failure: AtomicUsize::new(usize::MAX),
            quarantined: (0..self.systems.len())
                .map(|_| AtomicBool::new(false))
                .collect(),
            canary,
            canary_verdicts: Mutex::new(Vec::new()),
            journal,
            journal_from: replay_count,
            journal_error: Mutex::new(None),
        };
        // Prefill replayed cells. The ordered flush re-walks them exactly
        // as the interrupted run did — every demotion and sequence number
        // is recomputed deterministically — so the stream and the report
        // come out byte-identical to an uninterrupted sweep.
        for (i, cell) in replayed.into_iter().enumerate().take(n_jobs) {
            let key = match &cell.outcome {
                SuiteOutcome::Ran(r) => Some((
                    r.record.system.clone(),
                    cases[i % cases.len()].app.name().to_string(),
                )),
                _ => None,
            };
            if matches!(cell.outcome, SuiteOutcome::Failed(_)) {
                state.first_failure.fetch_min(i, Ordering::Relaxed);
            }
            *state.slots[i].lock().expect("job slot poisoned") = Some(JobResult {
                outcome: cell.outcome,
                key,
            });
        }
        if replay_count > 0 {
            self.flush_ready(cases, &state, on_flush);
        }
        if workers <= 1 {
            self.work(cases, prepared, &state, on_flush);
        } else {
            std::thread::scope(|s| {
                // The caller is a worker too; spawn only workers - 1.
                for _ in 1..workers {
                    s.spawn(|| self.work(cases, prepared, &state, on_flush));
                }
                self.work(cases, prepared, &state, on_flush);
            });
        }
        if let Some(e) = state
            .journal_error
            .lock()
            .expect("journal error poisoned")
            .take()
        {
            return Err(e);
        }
        // Persistent-store accounting and persist-at-completion. Hits and
        // misses are counted against the resident set loaded at open, as
        // attributed by the canonical prepass; then — only now that the
        // sweep has completed — new entries and this study's reference
        // record go to disk. An interrupted run leaves the store untouched,
        // which keeps `--resume` byte-identical.
        if let (Some(stats), Some(disk)) = (store_stats.as_mut(), disk.as_mut()) {
            let mut to_persist: Vec<StoreEntry> = Vec::new();
            let mut queued: BTreeSet<&str> = BTreeSet::new();
            let mut refs: BTreeSet<String> = BTreeSet::new();
            for build in prepared_builds.iter().flatten().flatten() {
                for record in &build.install.records {
                    match record.action {
                        BuildAction::Cached => {
                            refs.insert(record.hash.clone());
                            if disk.resident(&record.hash) {
                                stats.hits += 1;
                            }
                        }
                        BuildAction::Built => {
                            refs.insert(record.hash.clone());
                            if disk.resident(&record.hash) {
                                // A forced P3 root rebuild of a resident
                                // entry: the store could not legally serve
                                // it, so it is neither hit nor miss.
                                continue;
                            }
                            stats.misses += 1;
                            if !queued.insert(record.hash.as_str()) {
                                continue;
                            }
                            if let Some(node) = build
                                .concrete
                                .nodes()
                                .iter()
                                .find(|n| n.hash == record.hash)
                            {
                                to_persist.push(StoreEntry {
                                    hash: record.hash.clone(),
                                    render: node.render(),
                                    record: record.clone(),
                                });
                            }
                        }
                        BuildAction::External => {}
                    }
                }
            }
            for entry in &to_persist {
                match disk.persist(entry) {
                    Ok(Persist::Written) => stats.persisted += 1,
                    // Another live writer holds this shard's lease: the
                    // entry stays in memory for this run and will be
                    // persisted by whichever study builds it next. Only
                    // the contended shard degrades, not the sweep.
                    Ok(Persist::SkippedContended) => stats.persist_skipped += 1,
                    Err(e) => {
                        if stats.degraded.is_none() {
                            stats.degraded = Some(format!("persist failed: {e}"));
                        }
                    }
                }
            }
            if stats.degraded.is_none() {
                if let Err(e) = disk.append_refs(&refs) {
                    stats.degraded = Some(format!("reference log append failed: {e}"));
                }
            }
        }

        let canaries = state
            .canary_verdicts
            .into_inner()
            .expect("canary verdicts poisoned");
        let mut results: Vec<Option<JobResult>> = state
            .slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("job slot poisoned"))
            .collect();

        // Deterministic reassembly in (system, case) order. Sequence
        // numbers were already renumbered by the ordered flush.
        let mut outcomes = Vec::with_capacity(n_jobs);
        let mut perflogs = Vec::new();
        for (si, system) in self.systems.iter().enumerate() {
            let mut merged: BTreeMap<(String, String), Perflog> = BTreeMap::new();
            for (ci, case) in cases.iter().enumerate() {
                let JobResult { outcome, key } = results[si * cases.len() + ci]
                    .take()
                    .expect("every job slot filled");
                if let SuiteOutcome::Ran(report) = &outcome {
                    let key = key.expect("ran jobs carry a perflog key");
                    merged.entry(key).or_default().append(report.record.clone());
                }
                outcomes.push((case.name.clone(), system.clone(), outcome));
            }
            perflogs.extend(merged);
        }
        let report = SuiteReport {
            outcomes,
            perflogs,
            canaries,
            store: store_stats,
        };
        // The study completed: persist each system's trailing consecutive-
        // failure streak (continuing any unreset prior streak) so the next
        // study against this directory knows who to canary.
        if let Some(mode) = &self.checkpoint {
            let trailing: Vec<(String, u32)> = self
                .systems
                .iter()
                .enumerate()
                .map(|(si, system)| {
                    let prior = streaks
                        .iter()
                        .find(|(s, _)| s == system)
                        .map(|(_, n)| *n)
                        .unwrap_or(0);
                    let mut streak = prior;
                    for ci in 0..cases.len() {
                        match &report.outcomes[si * cases.len() + ci].2 {
                            SuiteOutcome::Ran(_) => streak = 0,
                            SuiteOutcome::Failed(_) => streak += 1,
                            SuiteOutcome::Skipped(_) => {}
                        }
                    }
                    (system.clone(), streak)
                })
                .collect();
            checkpoint::save_streaks(mode.dir(), &trailing)?;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases;
    use parkern::Model;

    #[test]
    fn sweep_over_models_and_systems_matches_figure2_availability() {
        // A small Figure-2-style sweep: 3 models × (CPU + GPU partitions).
        let cases = vec![
            cases::babelstream(Model::Omp, 1 << 22),
            cases::babelstream(Model::Cuda, 1 << 22),
            cases::babelstream(Model::Tbb, 1 << 22),
        ];
        let runner = SuiteRunner::new(&[
            "isambard-macs:cascadelake",
            "isambard-macs:volta",
            "isambard:xci",
        ]);
        let report = runner.run(&cases);
        assert_eq!(report.outcomes.len(), 9);
        // OMP runs on both CPUs, not the GPU.
        assert!(report
            .outcome("babelstream_omp", "isambard-macs:cascadelake")
            .unwrap()
            .ran());
        assert!(report
            .outcome("babelstream_omp", "isambard:xci")
            .unwrap()
            .ran());
        assert!(report
            .outcome("babelstream_omp", "isambard-macs:volta")
            .unwrap()
            .skipped());
        // CUDA only on the GPU.
        assert!(report
            .outcome("babelstream_cuda", "isambard-macs:volta")
            .unwrap()
            .ran());
        assert!(report
            .outcome("babelstream_cuda", "isambard-macs:cascadelake")
            .unwrap()
            .skipped());
        // TBB skipped on ThunderX2 (the paper's starred box).
        assert!(report
            .outcome("babelstream_tbb", "isambard:xci")
            .unwrap()
            .skipped());
        assert!(report
            .outcome("babelstream_tbb", "isambard-macs:cascadelake")
            .unwrap()
            .ran());
        assert_eq!(report.n_failed(), 0);
    }

    #[test]
    fn combined_frame_assimilates_cross_system() {
        let cases = vec![cases::babelstream(Model::Omp, 1 << 22)];
        let runner = SuiteRunner::new(&["archer2", "csd3"]);
        let report = runner.run(&cases);
        let df = report.combined_frame();
        // 2 systems × 5 FOMs.
        assert_eq!(df.n_rows(), 10);
        assert_eq!(df.unique("system").unwrap().len(), 2);
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_serial() {
        // The tentpole determinism guarantee: fanning the (system × case)
        // grid across 4 workers must reproduce the jobs=1 report exactly —
        // same outcomes in the same order, same perflogs, same sequence
        // numbers. Mix of ran/skipped combinations and multiple cases per
        // system so sequence renumbering is actually exercised.
        let cases = vec![
            cases::babelstream(Model::Omp, 1 << 22),
            cases::babelstream(Model::Cuda, 1 << 22),
            cases::babelstream(Model::Tbb, 1 << 22),
            cases::hpgmg(),
        ];
        let systems = [
            "isambard-macs:cascadelake",
            "isambard-macs:volta",
            "archer2",
        ];
        let serial = SuiteRunner::new(&systems).with_seed(7).run(&cases);
        let parallel = SuiteRunner::new(&systems)
            .with_seed(7)
            .with_jobs(4)
            .run(&cases);
        assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
        assert_eq!(
            serial.combined_frame().to_string(),
            parallel.combined_frame().to_string()
        );
    }

    #[test]
    fn sequence_numbers_count_successful_runs_per_system() {
        // omp runs, cuda skips, tbb runs on cascadelake: the two ran cases
        // must carry sequences 1 and 2 (the skip does not consume one).
        let cases = vec![
            cases::babelstream(Model::Omp, 1 << 22),
            cases::babelstream(Model::Cuda, 1 << 22),
            cases::babelstream(Model::Tbb, 1 << 22),
        ];
        let report = SuiteRunner::new(&["isambard-macs:cascadelake"])
            .with_jobs(3)
            .run(&cases);
        let seq_of = |case: &str| match report.outcome(case, "isambard-macs:cascadelake") {
            Some(SuiteOutcome::Ran(r)) => r.record.sequence,
            other => panic!("expected Ran, got {other:?}"),
        };
        assert_eq!(seq_of("babelstream_omp"), 1);
        assert_eq!(seq_of("babelstream_tbb"), 2);
        // The perflog copy agrees with the report copy.
        let (_, log) = &report.perflogs[0];
        assert_eq!(
            log.records().iter().map(|r| r.sequence).collect::<Vec<_>>(),
            vec![1, 2]
        );
    }

    #[test]
    fn jobs_zero_means_auto() {
        let cases = vec![cases::babelstream(Model::Omp, 1 << 20)];
        let report = SuiteRunner::new(&["csd3"]).with_jobs(0).run(&cases);
        assert_eq!(report.n_ran(), 1);
    }

    fn multi_case_suite() -> Vec<TestCase> {
        vec![
            cases::babelstream(Model::Omp, 1 << 22),
            cases::babelstream(Model::Tbb, 1 << 22),
            cases::hpgmg(),
        ]
    }

    #[test]
    fn warm_store_reuses_dependency_builds() {
        let cases = multi_case_suite();
        let cold = SuiteRunner::new(&["csd3"]).run(&cases);
        let warm = SuiteRunner::new(&["csd3"])
            .with_warm_store(true)
            .run(&cases);
        // Warm mode builds strictly less and reuses strictly more.
        assert!(
            warm.total_packages_built() < cold.total_packages_built(),
            "warm {} < cold {}",
            warm.total_packages_built(),
            cold.total_packages_built()
        );
        assert!(warm.total_packages_cached() > 0, "multi-case system reuses");
        assert!(warm.total_build_time_s() < cold.total_build_time_s());
        // First case in case order pays for shared deps (first-build-wins);
        // P3 still rebuilds every root.
        for (case, _, outcome) in &warm.outcomes {
            if let SuiteOutcome::Ran(r) = outcome {
                assert!(r.packages_built >= 1, "{case}: root rebuilt (P3)");
            }
        }
        let first = match warm.outcome("babelstream_omp", "csd3").unwrap() {
            SuiteOutcome::Ran(r) => r,
            other => panic!("{other:?}"),
        };
        let second = match warm.outcome("babelstream_tbb", "csd3").unwrap() {
            SuiteOutcome::Ran(r) => r,
            other => panic!("{other:?}"),
        };
        assert_eq!(first.packages_cached, 0, "case 0 starts cold");
        assert!(second.packages_cached > 0, "case 1 reuses case 0's deps");
    }

    #[test]
    fn warm_and_cold_runs_yield_identical_foms() {
        // The store only affects build accounting; measured FOMs must be
        // bit-for-bit the same whether dependencies were reused or not.
        let cases = multi_case_suite();
        let systems = ["csd3", "archer2"];
        let cold = SuiteRunner::new(&systems).with_seed(3).run(&cases);
        let warm = SuiteRunner::new(&systems)
            .with_seed(3)
            .with_warm_store(true)
            .with_jobs(4)
            .run(&cases);
        for (case, system, outcome) in &cold.outcomes {
            let warm_outcome = warm.outcome(case, system).unwrap();
            match (outcome, warm_outcome) {
                (SuiteOutcome::Ran(c), SuiteOutcome::Ran(w)) => {
                    assert_eq!(c.record.foms, w.record.foms, "{case} on {system}");
                }
                (a, b) => assert_eq!(
                    std::mem::discriminant(a),
                    std::mem::discriminant(b),
                    "{case} on {system}: {a:?} vs {b:?}"
                ),
            }
        }
    }

    #[test]
    fn warm_store_report_is_identical_for_any_jobs_count() {
        // The tentpole invariant re-pinned with the shared store: cache
        // accounting is canonicalized by the prepass, so the full report
        // (outcomes, built/cached counts, perflogs) is byte-identical for
        // any worker count.
        let cases = vec![
            cases::babelstream(Model::Omp, 1 << 22),
            cases::babelstream(Model::Cuda, 1 << 22),
            cases::babelstream(Model::Tbb, 1 << 22),
            cases::hpgmg(),
        ];
        let systems = ["isambard-macs:cascadelake", "isambard-macs:volta", "csd3"];
        let run = |jobs| {
            SuiteRunner::new(&systems)
                .with_seed(7)
                .with_warm_store(true)
                .with_jobs(jobs)
                .run(&cases)
        };
        let serial = run(1);
        for jobs in [2, 8] {
            let parallel = run(jobs);
            assert_eq!(
                format!("{serial:?}"),
                format!("{parallel:?}"),
                "jobs={jobs}"
            );
            assert_eq!(
                serial.combined_frame().to_string(),
                parallel.combined_frame().to_string()
            );
        }
    }

    /// A case that always fails its reference check (no fault needed).
    fn failing_case(tag: &str) -> TestCase {
        let mut case = cases::babelstream(Model::Omp, 1 << 22)
            .with_reference("Triad", crate::Reference::within(1.0, 0.05));
        case.name = format!("babelstream_bad_{tag}");
        case
    }

    #[test]
    fn faulty_suite_reports_are_byte_identical_across_jobs() {
        // The tentpole pin: with a nonzero fault profile the whole report —
        // outcomes, retry accounting, perflogs — replays byte-identically
        // at any worker count, because faults are keyed per
        // (system, case, attempt), never drawn from shared mutable state.
        let cases = vec![
            cases::babelstream(Model::Omp, 1 << 22),
            cases::babelstream(Model::Tbb, 1 << 22),
            cases::hpgmg(),
        ];
        let systems = ["csd3", "archer2"];
        let run = |seed: u64, jobs: usize| {
            SuiteRunner::new(&systems)
                .with_seed(seed)
                .with_fault_profile(FaultProfile::flaky())
                .with_max_retries(2)
                .with_jobs(jobs)
                .run(&cases)
        };
        // Find a seed whose sweep actually injects faults, so the pin
        // exercises the retry machinery rather than the clean path.
        let seed = (0..20)
            .find(|&s| run(s, 1).total_faults_injected() > 0)
            .expect("some seed in 0..20 must inject faults under flaky");
        let serial = run(seed, 1);
        assert!(serial.total_retries() > 0 || serial.n_failed() > 0);
        for jobs in [2, 8] {
            let parallel = run(seed, jobs);
            assert_eq!(
                format!("{serial:?}"),
                format!("{parallel:?}"),
                "jobs={jobs} diverged under fault injection"
            );
            assert_eq!(
                serial.combined_frame().to_string(),
                parallel.combined_frame().to_string()
            );
            assert_eq!(serial.total_retries(), parallel.total_retries());
            assert_eq!(
                serial.total_faults_injected(),
                parallel.total_faults_injected()
            );
            assert_eq!(serial.total_time_lost_s(), parallel.total_time_lost_s());
        }
    }

    #[test]
    fn fail_fast_skips_everything_after_first_failure() {
        // Grid (system-major): csd3 × [good, bad, good], archer2 × [...].
        // The failure at cell 2 must skip every later cell, canonically at
        // any worker count.
        let cases = vec![
            cases::babelstream(Model::Omp, 1 << 22),
            failing_case("x"),
            cases::babelstream(Model::Tbb, 1 << 22),
        ];
        let systems = ["csd3", "archer2"];
        let run = |jobs| {
            SuiteRunner::new(&systems)
                .with_fail_fast(true)
                .with_jobs(jobs)
                .run(&cases)
        };
        let serial = run(1);
        assert_eq!(serial.n_failed(), 1, "only the first failure is reported");
        assert!(serial.outcomes[0].2.ran());
        assert!(matches!(serial.outcomes[1].2, SuiteOutcome::Failed(_)));
        for (case, system, outcome) in &serial.outcomes[2..] {
            match outcome {
                SuiteOutcome::Skipped(reason) => assert!(
                    reason.contains("--fail-fast"),
                    "{case} on {system}: {reason}"
                ),
                other => panic!("{case} on {system} not skipped: {other:?}"),
            }
        }
        for jobs in [2, 8] {
            assert_eq!(
                format!("{serial:?}"),
                format!("{:?}", run(jobs)),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn quarantine_skips_rest_of_system_after_k_consecutive_failures() {
        // Two failing cases in a row trip the K=2 quarantine; the rest of
        // that system is skipped with an explicit reason, and the next
        // system starts with a clean slate (and trips it again itself).
        let cases = vec![
            failing_case("a"),
            failing_case("b"),
            cases::babelstream(Model::Omp, 1 << 22),
            cases::babelstream(Model::Tbb, 1 << 22),
        ];
        let systems = ["csd3", "archer2"];
        let run = |jobs| {
            SuiteRunner::new(&systems)
                .with_quarantine(2)
                .with_jobs(jobs)
                .run(&cases)
        };
        let serial = run(1);
        assert_eq!(
            serial.n_failed(),
            4,
            "2 failures per system before the trip"
        );
        assert_eq!(serial.n_quarantined(), 4, "2 quarantined cells per system");
        for (si, system) in systems.iter().enumerate() {
            let base = si * cases.len();
            assert!(matches!(serial.outcomes[base].2, SuiteOutcome::Failed(_)));
            assert!(matches!(
                serial.outcomes[base + 1].2,
                SuiteOutcome::Failed(_)
            ));
            for cell in &serial.outcomes[base + 2..base + 4] {
                match &cell.2 {
                    SuiteOutcome::Skipped(reason) => {
                        assert!(
                            reason.starts_with("quarantined: 2 consecutive failures"),
                            "{reason}"
                        );
                        assert!(reason.contains(system), "{reason}");
                    }
                    other => panic!("expected quarantine skip, got {other:?}"),
                }
            }
        }
        for jobs in [2, 8] {
            assert_eq!(
                format!("{serial:?}"),
                format!("{:?}", run(jobs)),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn a_run_between_failures_resets_the_quarantine_counter() {
        // fail, run, fail, run: consecutive failures never reach 2, so
        // nothing is quarantined — and the reset is canonical at any
        // worker count (the counter lives in the ordered flush).
        let cases = vec![
            failing_case("a"),
            cases::babelstream(Model::Omp, 1 << 22),
            failing_case("b"),
            cases::babelstream(Model::Tbb, 1 << 22),
        ];
        let run = |jobs| {
            SuiteRunner::new(&["csd3", "archer2"])
                .with_quarantine(2)
                .with_jobs(jobs)
                .run(&cases)
        };
        let serial = run(1);
        assert_eq!(serial.n_failed(), 4);
        assert_eq!(serial.n_ran(), 4);
        assert_eq!(serial.n_quarantined(), 0);
        for jobs in [2, 8] {
            assert_eq!(
                format!("{serial:?}"),
                format!("{:?}", run(jobs)),
                "jobs={jobs}"
            );
        }
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "benchkit-suite-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Render a report down to what every consumer (CLI stream, markdown,
    /// frames) can observe. Resumed failures are `HarnessError::Replayed`
    /// internally, so reports are compared on this rendering, not Debug.
    fn rendered(report: &SuiteReport) -> String {
        let mut out = String::new();
        for (case, system, outcome) in &report.outcomes {
            let label = match outcome {
                SuiteOutcome::Ran(r) => format!(
                    "ran seq={} built={} cached={} retries={} faults={} lost={} repaired={}",
                    r.record.sequence,
                    r.packages_built,
                    r.packages_cached,
                    r.retries,
                    r.faults_injected,
                    r.time_lost_s,
                    r.nodes_repaired
                ),
                SuiteOutcome::Skipped(reason) => format!("skip {reason}"),
                SuiteOutcome::Failed(e) => format!("fail {e} stats={:?}", e.fault_stats()),
            };
            out.push_str(&format!("{case} on {system}: {label}\n"));
        }
        out.push_str(&format!("canaries={:?}\n", report.canaries));
        out.push_str(&report.combined_frame().to_string());
        out
    }

    #[test]
    fn interrupted_checkpoint_resume_is_byte_identical() {
        // The tentpole pin: a checkpointed sweep interrupted after any k
        // cells and resumed at any worker count must reproduce the
        // uninterrupted report and stream exactly. Interruption is
        // simulated by truncating the journal to its first k records.
        let cases = vec![
            cases::babelstream(Model::Omp, 1 << 22),
            failing_case("mid"),
            cases::hpgmg(),
        ];
        let systems = ["csd3", "archer2"];
        let make = |jobs: usize| {
            SuiteRunner::new(&systems)
                .with_seed(11)
                .with_fault_profile(FaultProfile::flaky())
                .with_quarantine(3)
                .with_jobs(jobs)
        };
        let stream_of = |runner: SuiteRunner| {
            let lines = Mutex::new(Vec::new());
            let report = runner
                .try_run_with_progress(&cases, &|p| {
                    let label = match p.outcome {
                        SuiteOutcome::Ran(r) => format!("ran seq={}", r.record.sequence),
                        SuiteOutcome::Skipped(reason) => format!("skip {reason}"),
                        SuiteOutcome::Failed(e) => format!("fail {e}"),
                    };
                    lines.lock().unwrap().push(format!(
                        "[{}/{}] {} on {}: {label}",
                        p.index + 1,
                        p.total,
                        p.case,
                        p.system
                    ));
                })
                .unwrap();
            (report, lines.into_inner().unwrap())
        };
        let base = tmpdir("resume-base");
        let (full, full_stream) = stream_of(make(1).with_checkpoint(&base));
        let total = systems.len() * cases.len();
        assert_eq!(full_stream.len(), total);
        let journal = std::fs::read_to_string(base.join(checkpoint::JOURNAL_FILE)).unwrap();
        let lines: Vec<&str> = journal.lines().collect();
        assert_eq!(lines.len(), total + 1, "header + one record per cell");
        let want = rendered(&full);
        for k in [0, 1, 3, total] {
            for jobs in [1, 2, 8] {
                let dir = tmpdir(&format!("resume-{k}-{jobs}"));
                std::fs::create_dir_all(&dir).unwrap();
                let prefix = lines[..=k].join("\n") + "\n";
                std::fs::write(dir.join(checkpoint::JOURNAL_FILE), prefix).unwrap();
                let (resumed, stream) = stream_of(make(jobs).with_resume(&dir));
                assert_eq!(rendered(&resumed), want, "k={k} jobs={jobs}");
                assert_eq!(stream, full_stream, "k={k} jobs={jobs}");
                std::fs::remove_dir_all(&dir).unwrap();
            }
        }
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn torn_journal_records_are_rerun_and_mismatched_configs_rejected() {
        let cases = vec![
            cases::babelstream(Model::Omp, 1 << 22),
            cases::babelstream(Model::Tbb, 1 << 22),
        ];
        let dir = tmpdir("torn-suite");
        let make = || SuiteRunner::new(&["csd3"]).with_seed(5);
        let full = make().with_checkpoint(&dir).try_run(&cases).unwrap();
        // Chop the last record in half mid-write: the resume discards it,
        // re-runs that cell, and still matches the uninterrupted report.
        let path = dir.join(checkpoint::JOURNAL_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        let torn = &text[..text.len() - 40];
        assert!(!torn.ends_with('\n'), "cut lands mid-record");
        std::fs::write(&path, torn).unwrap();
        let resumed = make().with_resume(&dir).try_run(&cases).unwrap();
        assert_eq!(rendered(&resumed), rendered(&full));
        // A different seed is a different experiment: hard error.
        match make().with_seed(6).with_resume(&dir).try_run(&cases) {
            Err(CheckpointError::ConfigMismatch { .. }) => {}
            other => panic!("expected ConfigMismatch, got {other:?}"),
        }
        // So is a different fault profile.
        assert!(matches!(
            make()
                .with_fault_profile(FaultProfile::flaky())
                .with_resume(&dir)
                .try_run(&cases),
            Err(CheckpointError::ConfigMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flaky_system_is_canaried_in_the_next_study() {
        // Study 1 trips quarantine on csd3; study 2 against the same
        // checkpoint directory probes it with a single canary cell, which
        // fails, so the rest of the system is skipped; study 3 leads with
        // a passing case, so the canary readmits the system.
        let dir = tmpdir("canary");
        let bad_suite = vec![
            failing_case("a"),
            failing_case("b"),
            cases::babelstream(Model::Omp, 1 << 22),
            cases::babelstream(Model::Tbb, 1 << 22),
        ];
        let study = |jobs| {
            SuiteRunner::new(&["csd3"])
                .with_quarantine(2)
                .with_jobs(jobs)
                .with_checkpoint(&dir)
        };
        let first = study(1).try_run(&bad_suite).unwrap();
        assert!(first.canaries.is_empty(), "no memory on the first study");
        assert_eq!(first.n_failed(), 2);
        assert_eq!(first.n_quarantined(), 2);
        // Snapshot the memory study 2 starts from: later studies advance
        // the streak, and the jobs-canonicality reruns below must each see
        // this same state.
        let memory = std::fs::read(dir.join(checkpoint::QUARANTINE_FILE)).unwrap();
        let second = study(1).try_run(&bad_suite).unwrap();
        assert_eq!(second.canaries, vec![("csd3".to_string(), false)]);
        assert_eq!(second.n_failed(), 1, "only the canary cell runs");
        for (case, _, outcome) in &second.outcomes[1..] {
            match outcome {
                SuiteOutcome::Skipped(reason) => assert_eq!(
                    reason, "quarantined: canary failed on csd3 (2 prior consecutive failures)",
                    "{case}"
                ),
                other => panic!("{case}: expected canary skip, got {other:?}"),
            }
        }
        // The canary decision is flush-canonical: same at any jobs count.
        // Each study advances the quarantine memory (streak 2 -> 3), so
        // the snapshot study 2 started from is restored before each rerun.
        let reference = rendered(&second);
        for jobs in [2, 8] {
            std::fs::write(dir.join(checkpoint::QUARANTINE_FILE), &memory).unwrap();
            assert_eq!(
                rendered(&study(jobs).try_run(&bad_suite).unwrap()),
                reference,
                "jobs={jobs}"
            );
        }
        std::fs::write(dir.join(checkpoint::QUARANTINE_FILE), &memory).unwrap();
        // Study 3: a passing canary readmits the system on the spot.
        let good_first = vec![
            cases::babelstream(Model::Omp, 1 << 22),
            failing_case("a"),
            cases::babelstream(Model::Tbb, 1 << 22),
        ];
        let third = study(1).try_run(&good_first).unwrap();
        assert_eq!(third.canaries, vec![("csd3".to_string(), true)]);
        assert!(third.outcomes[0].2.ran());
        assert_eq!(third.n_failed(), 1, "embedded failure runs normally");
        assert_eq!(third.n_ran(), 2);
        // Study 3 ended on a success, so the streak is clean: no canary.
        let fourth = study(1).try_run(&good_first).unwrap();
        assert!(fourth.canaries.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn healing_repairs_nodes_and_off_matches_default_exactly() {
        let cases = vec![cases::babelstream(Model::Omp, 1 << 22), cases::hpgmg()];
        let run = |heal: bool, seed: u64| {
            SuiteRunner::new(&["csd3"])
                .with_seed(seed)
                .with_fault_profile(FaultProfile::brutal())
                .with_max_retries(4)
                .with_heal(heal)
                .run(&cases)
        };
        // Find a seed whose sweep actually loses (and then repairs) a node.
        let seed = (0..40)
            .find(|&s| run(true, s).total_nodes_repaired() > 0)
            .expect("some seed in 0..40 must drain a node under brutal");
        let healed = run(true, seed);
        assert!(healed.total_nodes_repaired() > 0);
        // Without healing the same sweep repairs nothing, and is exactly
        // the report the pre-heal runner produced (heal defaults off).
        let unhealed = run(false, seed);
        assert_eq!(unhealed.total_nodes_repaired(), 0);
        let default_runner = SuiteRunner::new(&["csd3"])
            .with_seed(seed)
            .with_fault_profile(FaultProfile::brutal())
            .with_max_retries(4)
            .run(&cases);
        assert_eq!(format!("{unhealed:?}"), format!("{default_runner:?}"));
        // Healing replays byte-identically across worker counts too.
        let healed_parallel = SuiteRunner::new(&["csd3"])
            .with_seed(seed)
            .with_fault_profile(FaultProfile::brutal())
            .with_max_retries(4)
            .with_heal(true)
            .with_jobs(4)
            .run(&cases);
        assert_eq!(format!("{healed:?}"), format!("{healed_parallel:?}"));
    }

    #[test]
    fn per_system_fault_overrides_pick_the_right_profile() {
        let runner = SuiteRunner::new(&["csd3", "archer2"])
            .with_fault_profile(FaultProfile::flaky())
            .with_fault_override("archer2", FaultProfile::none());
        assert_eq!(runner.profile_for("csd3").name, "flaky");
        assert_eq!(runner.profile_for("archer2").name, "none");
        // An override to `none` really shields the system: its cells can
        // never inject faults, whatever the base profile does.
        let cases = vec![cases::babelstream(Model::Omp, 1 << 22), cases::hpgmg()];
        let report = runner.with_seed(3).run(&cases);
        for (case, system, outcome) in &report.outcomes {
            if system == "archer2" {
                assert_eq!(
                    outcome.faults_injected(),
                    0,
                    "{case} on {system} is shielded by the none override"
                );
            }
        }
    }

    #[test]
    fn streaming_flush_is_ordered_and_complete() {
        // Whatever the jobs count, the progress callback must see every
        // grid cell exactly once, in canonical (system, case) order, with
        // renumbered sequences — and the streamed text must match the
        // jobs=1 stream byte for byte.
        let cases = multi_case_suite();
        let systems = ["csd3", "archer2"];
        let stream_at = |jobs: usize, warm: bool| {
            let lines = Mutex::new(Vec::new());
            SuiteRunner::new(&systems)
                .with_jobs(jobs)
                .with_warm_store(warm)
                .run_with_progress(&cases, &|p| {
                    let label = match p.outcome {
                        SuiteOutcome::Ran(r) => format!(
                            "ran seq={} built={} cached={}",
                            r.record.sequence, r.packages_built, r.packages_cached
                        ),
                        SuiteOutcome::Skipped(_) => "skipped".to_string(),
                        SuiteOutcome::Failed(_) => "failed".to_string(),
                    };
                    lines.lock().unwrap().push(format!(
                        "[{}/{}] {} on {}: {label}",
                        p.index + 1,
                        p.total,
                        p.case,
                        p.system
                    ));
                });
            lines.into_inner().unwrap()
        };
        let serial = stream_at(1, true);
        assert_eq!(serial.len(), systems.len() * cases.len());
        assert!(serial[0].starts_with("[1/6] babelstream_omp on csd3: ran seq=1"));
        assert!(serial[3].contains("on archer2: ran seq=1"), "{serial:?}");
        for jobs in [2, 8] {
            assert_eq!(serial, stream_at(jobs, true), "jobs={jobs}");
        }
        // Cold mode streams in the same canonical order too.
        let cold = stream_at(4, false);
        assert_eq!(cold.len(), serial.len());
        for (a, b) in serial.iter().zip(&cold) {
            let cell = |s: &str| s.split(':').next().unwrap().to_string();
            assert_eq!(cell(a), cell(b), "same cell order");
        }
    }

    /// FOMs of every ran cell, rendered — the invariant currency of the
    /// persistent store: cold, warm, and corrupted-then-rebuilt runs must
    /// agree on this exactly.
    fn foms_of(report: &SuiteReport) -> String {
        let mut out = String::new();
        for (case, system, outcome) in &report.outcomes {
            if let SuiteOutcome::Ran(r) = outcome {
                out.push_str(&format!("{case} on {system}: {:?}\n", r.record.foms));
            }
        }
        out.push_str(&report.combined_frame().to_string());
        out
    }

    #[test]
    fn persistent_store_cold_then_warm_reuses_and_keeps_foms() {
        let dir = tmpdir("store-nightly");
        let cases = multi_case_suite();
        let systems = ["csd3", "archer2"];
        let run = || {
            SuiteRunner::new(&systems)
                .with_seed(5)
                .with_store(&dir)
                .run(&cases)
        };
        let cold = run();
        let stats = cold.store.as_ref().unwrap();
        assert_eq!(stats.hits, 0, "nothing resident on a cold store");
        assert!(stats.misses > 0);
        assert!(stats.persisted > 0, "cold run populates the store");
        assert_eq!(stats.degraded, None);
        assert_eq!(stats.quarantined, 0);

        let warm = run();
        let stats = warm.store.as_ref().unwrap();
        assert!(stats.hits > 0, "second study reuses persisted builds");
        assert_eq!(stats.misses, 0, "everything buildable is resident");
        assert_eq!(stats.persisted, 0, "nothing new to persist");
        assert_eq!(stats.degraded, None);
        assert_eq!(
            foms_of(&cold),
            foms_of(&warm),
            "FOMs identical cold vs warm"
        );
        // Warm builds genuinely skip dependency work: every cell's deps
        // come from the disk-seeded store, only roots rebuild (P3).
        assert!(warm.total_packages_built() < cold.total_packages_built());
        assert!(warm.total_packages_cached() > cold.total_packages_cached());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_store_entry_quarantines_and_rebuilds_identically() {
        let dir = tmpdir("store-corrupt");
        let cases = multi_case_suite();
        let systems = ["csd3"];
        let run = || {
            SuiteRunner::new(&systems)
                .with_seed(9)
                .with_store(&dir)
                .run(&cases)
        };
        let cold = run();
        // Flip one byte in the middle of one stored entry (entries now
        // live under `shard-XX/` directories).
        let victim = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with("shard-"))
            .flat_map(|shard| std::fs::read_dir(shard.path()).unwrap())
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| {
                p.extension().is_some_and(|x| x == "json")
                    && !p
                        .file_name()
                        .is_some_and(|n| n.to_string_lossy().starts_with('.'))
            })
            .expect("at least one persisted entry");
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&victim, &bytes).unwrap();

        let healed = run();
        let stats = healed.store.as_ref().unwrap();
        assert_eq!(stats.quarantined, 1, "the flipped entry is quarantined");
        assert_eq!(stats.degraded, None, "corruption never fails the study");
        assert!(stats.misses > 0, "the quarantined cell rebuilt cold");
        assert!(stats.persisted > 0, "the rebuild re-persisted the entry");
        assert_eq!(healed.n_failed(), 0);
        assert_eq!(
            foms_of(&cold),
            foms_of(&healed),
            "FOMs identical after corruption + rebuild"
        );
        assert!(victim.exists(), "rebuilt entry is back on disk");
        assert!(
            dir.join("corrupt")
                .join(victim.file_name().unwrap())
                .exists(),
            "corrupt original kept for forensics"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_lease_contention_skips_persists_without_degrading() {
        // A live competing writer holding every shard lease no longer
        // fails or degrades the open: the sweep runs, reports normally,
        // and simply skips persisting into the contended shards.
        let dir = tmpdir("store-busy");
        let mut held = spackle::DiskStore::open(&dir).unwrap();
        assert_eq!(held.acquire_all(), spackle::SHARD_COUNT);
        let cases = multi_case_suite();
        let report = SuiteRunner::new(&["csd3"])
            .with_seed(2)
            .with_store(&dir)
            .run(&cases);
        let stats = report.store.as_ref().unwrap();
        assert_eq!(stats.degraded, None, "contention is not degradation");
        assert_eq!(stats.shards_contended, spackle::SHARD_COUNT);
        assert_eq!(stats.persisted, 0, "every shard was leased elsewhere");
        assert!(
            stats.persist_skipped > 0,
            "new builds were skipped with notice, not lost silently: {stats:?}"
        );
        assert_eq!(report.n_failed(), 0, "the study itself still runs");
        // It behaved as an in-memory warm store: later cases reused deps.
        assert!(report.total_packages_cached() > 0);
        // And the held store saw no interference.
        assert!(held.is_empty());
        drop(held);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_runs_are_byte_identical_at_any_jobs() {
        let cases = multi_case_suite();
        let systems = ["csd3", "archer2"];
        let observe = |jobs: usize| {
            let dir = tmpdir(&format!("store-jobs-{jobs}"));
            let run = || {
                SuiteRunner::new(&systems)
                    .with_seed(13)
                    .with_store(&dir)
                    .with_jobs(jobs)
                    .run(&cases)
            };
            let cold = run();
            let warm = run();
            let out = format!(
                "cold {:?}\n{}warm {:?}\n{}",
                cold.store.as_ref().unwrap(),
                rendered(&cold),
                warm.store.as_ref().unwrap(),
                rendered(&warm)
            );
            let _ = std::fs::remove_dir_all(&dir);
            out
        };
        let serial = observe(1);
        for jobs in [2, 8] {
            assert_eq!(serial, observe(jobs), "jobs={jobs}");
        }
    }

    #[test]
    fn resuming_with_different_store_mode_is_refused() {
        let ckpt = tmpdir("store-binding");
        let store = tmpdir("store-binding-store");
        let cases = vec![cases::babelstream(Model::Omp, 1 << 22)];
        SuiteRunner::new(&["csd3"])
            .with_checkpoint(&ckpt)
            .with_store(&store)
            .try_run(&cases)
            .unwrap();
        // Dropping --store on resume would silently change the experiment.
        let err = SuiteRunner::new(&["csd3"])
            .with_resume(&ckpt)
            .try_run(&cases)
            .unwrap_err();
        assert!(matches!(err, CheckpointError::ConfigMismatch { .. }));
        let _ = std::fs::remove_dir_all(&ckpt);
        let _ = std::fs::remove_dir_all(&store);
    }

    /// A shell engine for suite tests; backoff wall-clock scaled to zero.
    fn sh_engine(script: &str) -> crate::EngineSpec {
        std::env::set_var(simhpc::faults::BACKOFF_SCALE_ENV, "0");
        crate::EngineSpec {
            cmd: vec!["/bin/sh".to_string(), "-c".to_string(), script.to_string()],
            timeout_s: 10.0,
            grace_s: 0.5,
        }
    }

    /// Shell engine emitting a valid report for any babelstream case.
    fn ok_engine() -> crate::EngineSpec {
        sh_engine(
            r#"cat >/dev/null
out='Function    MBytes/sec
Copy        150000.0
Mul         151000.0
Add         152000.0
Triad       153000.0
Dot         154000.0'
printf 'wall:8:0.250000\n'
printf 'stdout:%d:%s\n' "$(printf %s "$out" | wc -c)" "$out"
printf 'done:0:\n'
"#,
        )
    }

    #[test]
    fn engine_survey_is_byte_identical_for_any_jobs_count() {
        // Tentpole pin on the engine path: a mixed survey — two cases on a
        // healthy engine, one per-case override crashing every attempt —
        // reproduces byte-identically at any worker count, failures and
        // retry accounting included. The crash never aborts the sweep.
        let cases = vec![
            cases::babelstream(Model::Omp, 1 << 22),
            cases::babelstream(Model::Tbb, 1 << 22),
            cases::babelstream(Model::Serial, 1 << 22),
        ];
        let run = |jobs| {
            SuiteRunner::new(&["csd3", "archer2"])
                .with_engine(Some(ok_engine()))
                .with_engine_override("babelstream_tbb", sh_engine("echo kaput >&2; exit 11"))
                .with_max_retries(1)
                .with_jobs(jobs)
                .run(&cases)
        };
        let serial = run(1);
        assert_eq!(serial.n_ran(), 4);
        assert_eq!(serial.n_failed(), 2, "the crashing override, per system");
        match serial.outcome("babelstream_tbb", "csd3").unwrap() {
            SuiteOutcome::Failed(e) => {
                assert_eq!(e.engine_status(), Some((Some(11), None, false)));
                assert_eq!(e.fault_stats(), Some((2, 2, 30.0)));
            }
            other => panic!("expected engine failure, got {other:?}"),
        }
        for jobs in [2, 8] {
            assert_eq!(rendered(&serial), rendered(&run(jobs)), "jobs={jobs}");
        }
    }

    #[test]
    fn engine_mode_is_bound_into_the_checkpoint() {
        // A survey checkpointed under an engine can only resume under the
        // same engine: resuming in-process (or with a different command)
        // is a ConfigMismatch hard error, never a silent mode switch.
        let dir = tmpdir("engine-binding");
        let cases = vec![
            cases::babelstream(Model::Omp, 1 << 22),
            cases::babelstream(Model::Tbb, 1 << 22),
        ];
        let engined = || SuiteRunner::new(&["csd3"]).with_engine(Some(ok_engine()));
        let full = engined().with_checkpoint(&dir).try_run(&cases).unwrap();
        assert_eq!(full.n_ran(), 2);
        // Same engine resumes cleanly (replaying the completed cells).
        let resumed = engined().with_resume(&dir).try_run(&cases).unwrap();
        assert_eq!(rendered(&resumed), rendered(&full));
        // Dropping --engine switches modes: hard error.
        assert!(matches!(
            SuiteRunner::new(&["csd3"])
                .with_resume(&dir)
                .try_run(&cases),
            Err(CheckpointError::ConfigMismatch { .. })
        ));
        // A different engine command is a different experiment too.
        assert!(matches!(
            SuiteRunner::new(&["csd3"])
                .with_engine(Some(sh_engine("exit 0")))
                .with_resume(&dir)
                .try_run(&cases),
            Err(CheckpointError::ConfigMismatch { .. })
        ));
        // And so is moving the engine to a per-case override.
        assert!(matches!(
            SuiteRunner::new(&["csd3"])
                .with_engine_override("babelstream_omp", ok_engine())
                .with_resume(&dir)
                .try_run(&cases),
            Err(CheckpointError::ConfigMismatch { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_kill_and_resume_is_byte_identical() {
        // Interrupt an engine survey after k cells (journal truncation),
        // resume with --engine at several worker counts: stream and report
        // must match the uninterrupted run exactly.
        let cases = vec![
            cases::babelstream(Model::Omp, 1 << 22),
            cases::babelstream(Model::Tbb, 1 << 22),
        ];
        let make = || {
            SuiteRunner::new(&["csd3", "archer2"])
                .with_engine(Some(ok_engine()))
                .with_engine_override("babelstream_tbb", sh_engine("exit 5"))
                .with_max_retries(0)
        };
        let base = tmpdir("engine-resume");
        let full = make().with_checkpoint(&base).try_run(&cases).unwrap();
        let want = rendered(&full);
        let journal = std::fs::read_to_string(base.join(checkpoint::JOURNAL_FILE)).unwrap();
        let lines: Vec<&str> = journal.lines().collect();
        for k in [1, 2] {
            for jobs in [1, 2, 8] {
                let dir = tmpdir(&format!("engine-resume-{k}-{jobs}"));
                std::fs::create_dir_all(&dir).unwrap();
                std::fs::write(
                    dir.join(checkpoint::JOURNAL_FILE),
                    lines[..=k].join("\n") + "\n",
                )
                .unwrap();
                let resumed = make()
                    .with_jobs(jobs)
                    .with_resume(&dir)
                    .try_run(&cases)
                    .unwrap();
                assert_eq!(rendered(&resumed), want, "k={k} jobs={jobs}");
                std::fs::remove_dir_all(&dir).unwrap();
            }
        }
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn quarantine_fires_on_consecutive_engine_failures() {
        // A system whose engine keeps crashing trips quarantine exactly
        // like injected faults would: K consecutive failures, then the
        // rest of the system is skipped with an explicit reason.
        let cases = vec![
            cases::babelstream(Model::Omp, 1 << 22),
            cases::babelstream(Model::Tbb, 1 << 22),
            cases::babelstream(Model::Serial, 1 << 22),
        ];
        let report = SuiteRunner::new(&["csd3"])
            .with_engine(Some(sh_engine("exit 13")))
            .with_max_retries(0)
            .with_quarantine(2)
            .run(&cases);
        assert_eq!(report.n_failed(), 2);
        assert_eq!(report.n_quarantined(), 1);
        match report.outcome("babelstream_serial", "csd3").unwrap() {
            SuiteOutcome::Skipped(reason) => {
                assert!(reason.starts_with("quarantined"), "{reason}")
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
    }
}
