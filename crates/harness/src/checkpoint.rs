//! Crash-safe suite checkpoints and cross-study quarantine memory.
//!
//! The paper's nightly-pipeline use case (§6) runs multi-hour surveys; a
//! crash halfway through must not cost the night. The suite runner
//! therefore journals every *flushed* grid cell to an append-only
//! JSON-lines file in the checkpoint directory, fsync'd per record. The
//! ordered flush emits cells strictly in canonical (system-major,
//! case-minor) order, so the journal is always a contiguous prefix of the
//! grid — resuming is "replay the prefix, run the remainder", and the
//! resumed report is byte-identical to an uninterrupted run at any
//! `--jobs` count.
//!
//! The journal's first line is a header binding the study configuration
//! (systems, cases, seed, fault profile and overrides, retry/fail-fast/
//! quarantine/heal settings, and the quarantine-memory snapshot the run
//! started from). Resuming under a different configuration is a hard
//! [`CheckpointError::ConfigMismatch`] — never silent reuse. A torn or
//! truncated trailing record (the crash arrived mid-write) is detected,
//! discarded, and re-run; everything before it is trusted because each
//! append was flushed to disk before the cell was reported upstream.
//!
//! The directory also holds `quarantine.json`: the per-system trailing
//! consecutive-failure streaks of the last *completed* study. A later
//! study against the same directory starts any system whose streak
//! reached its `--quarantine` threshold in canary mode (see
//! `SuiteRunner`).

use crate::walog::AppendLog;
use crate::{CaseReport, HarnessError, SuiteOutcome};
use perflogs::PerflogRecord;
use spackle::IoShim;
use std::fmt;
use std::path::{Path, PathBuf};
use tinycfg::{Map, Value};

/// Journal file name inside the checkpoint directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";
/// Quarantine-memory file name inside the checkpoint directory.
pub const QUARANTINE_FILE: &str = "quarantine.json";
const FORMAT_VERSION: i64 = 2;

/// How the suite runner uses a checkpoint directory.
#[derive(Debug, Clone)]
pub enum CheckpointMode {
    /// `--checkpoint DIR`: start a fresh journal (any previous journal is
    /// truncated), but honour the directory's quarantine memory.
    Fresh(PathBuf),
    /// `--resume DIR`: validate the journal header against the current
    /// study configuration, replay its completed cells, run the rest.
    Resume(PathBuf),
}

impl CheckpointMode {
    pub fn dir(&self) -> &Path {
        match self {
            CheckpointMode::Fresh(d) | CheckpointMode::Resume(d) => d,
        }
    }
}

/// Why a checkpoint could not be created, resumed, or appended to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    Io(String),
    /// The journal was written by a different study configuration.
    /// Resuming it would silently mix two experiments, so it is refused.
    ConfigMismatch {
        expected: String,
        found: String,
    },
    /// The journal is structurally damaged beyond the tolerated torn
    /// trailing record (e.g. no header line at all).
    Corrupt(String),
    /// `checkpoint gc` refused to collect a journal whose study never
    /// reached its terminal record (use `--force` to collect anyway).
    Incomplete {
        have: usize,
        want: usize,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(m) => write!(f, "checkpoint I/O error: {m}"),
            CheckpointError::ConfigMismatch { expected, found } => write!(
                f,
                "checkpoint does not match this study configuration \
                 (expected header {expected}, found {found}); \
                 refusing to resume a different experiment"
            ),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint journal: {m}"),
            CheckpointError::Incomplete { have, want } => write!(
                f,
                "journal holds {have} of {want} cells — the study never \
                 completed; resume it or pass --force to collect anyway"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> CheckpointError {
        CheckpointError::Io(e.to_string())
    }
}

/// Everything a journal binds. Two runs with equal bindings are the same
/// experiment (`--jobs` is deliberately absent: the worker count never
/// changes the report, so a survey may resume at a different parallelism).
#[derive(Debug, Clone, PartialEq)]
pub struct StudyBinding {
    pub systems: Vec<String>,
    pub cases: Vec<String>,
    pub seed: u64,
    pub warm_store: bool,
    /// Whether the study was backed by a persistent disk store. Bound so
    /// a resume cannot silently switch store modes mid-study.
    pub store: bool,
    /// Base fault profile name.
    pub profile: String,
    /// Per-system profile overrides, in override order: (system, profile).
    pub overrides: Vec<(String, String)>,
    pub max_retries: u32,
    pub fail_fast: bool,
    pub quarantine: u32,
    pub heal: bool,
    /// Quarantine-memory snapshot the run started from. Binding it means
    /// a resume sees exactly the canary decisions of the interrupted run.
    pub streaks: Vec<(String, u32)>,
    /// Canonical rendering of the engine configuration (base spec plus
    /// per-case overrides), empty when the survey runs in-process. Bound
    /// so a resume can never cross engine modes: an in-process journal
    /// resumed with `--engine` (or vice versa, or with a different engine
    /// command) is a [`CheckpointError::ConfigMismatch`] hard error.
    pub engine: String,
}

impl StudyBinding {
    /// The header line (compact JSON). Equality of header lines is the
    /// definition of "same experiment".
    pub fn header_line(&self) -> String {
        let mut m = Map::new();
        m.insert("format", Value::from("benchkit-checkpoint"));
        m.insert("version", Value::Int(FORMAT_VERSION));
        m.insert("systems", str_list(&self.systems));
        m.insert("cases", str_list(&self.cases));
        m.insert("seed", Value::Int(self.seed as i64));
        m.insert("warm_store", Value::Bool(self.warm_store));
        m.insert("store", Value::Bool(self.store));
        m.insert("profile", Value::from(self.profile.as_str()));
        let mut overrides = Map::new();
        for (system, profile) in &self.overrides {
            overrides.insert(system.clone(), Value::from(profile.as_str()));
        }
        m.insert("overrides", Value::Map(overrides));
        m.insert("max_retries", Value::Int(i64::from(self.max_retries)));
        m.insert("fail_fast", Value::Bool(self.fail_fast));
        m.insert("quarantine", Value::Int(i64::from(self.quarantine)));
        m.insert("heal", Value::Bool(self.heal));
        let mut streaks = Map::new();
        for (system, n) in &self.streaks {
            streaks.insert(system.clone(), Value::Int(i64::from(*n)));
        }
        m.insert("streaks", Value::Map(streaks));
        // Always present, `null` for the in-process mode, so the engine
        // axis is part of every header — never an optional key whose
        // absence could be confused with "don't care".
        if self.engine.is_empty() {
            m.insert("engine", Value::Null);
        } else {
            m.insert("engine", Value::from(self.engine.as_str()));
        }
        Value::Map(m).to_json()
    }
}

fn str_list(items: &[String]) -> Value {
    Value::List(items.iter().map(|s| Value::from(s.as_str())).collect())
}

/// One journal record replayed during resume.
#[derive(Debug)]
pub struct ReplayedCell {
    pub case: String,
    pub system: String,
    pub outcome: SuiteOutcome,
}

/// The append side of a checkpoint journal. Records are written one JSON
/// line at a time and fsync'd before the cell is reported upstream, so a
/// crash at any instant leaves at worst one torn trailing record. The
/// durability mechanics live in [`crate::walog::AppendLog`]; all writes
/// and fsyncs go through a [`spackle::IoShim`], so the torture suite (and
/// `BENCHKIT_IOFAULTS`) can inject torn appends and fsync failures here
/// and prove the resume path recovers the valid prefix.
#[derive(Debug)]
pub struct Journal {
    log: AppendLog,
}

impl Journal {
    /// Start a fresh journal in `dir` (creating the directory), write the
    /// binding header, and fsync it. Honours `BENCHKIT_IOFAULTS`.
    pub fn create(dir: &Path, binding: &StudyBinding) -> Result<Journal, CheckpointError> {
        Journal::create_with(dir, binding, IoShim::from_env())
    }

    /// [`Journal::create`] with an explicit I/O shim (tests inject faults
    /// without touching the process environment).
    pub fn create_with(
        dir: &Path,
        binding: &StudyBinding,
        io: IoShim,
    ) -> Result<Journal, CheckpointError> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let log = AppendLog::create(&path, io)?;
        log.append(&binding.header_line())?;
        Ok(Journal { log })
    }

    /// Open an existing journal for continuation: validate its header
    /// against `binding`, parse the contiguous prefix of completed cells,
    /// discard a torn/truncated trailing record (and truncate the file
    /// back to the valid prefix so appends continue cleanly), and return
    /// the replayable cells in grid order.
    pub fn resume(
        dir: &Path,
        binding: &StudyBinding,
    ) -> Result<(Journal, Vec<ReplayedCell>), CheckpointError> {
        let path = dir.join(JOURNAL_FILE);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| CheckpointError::Io(format!("cannot read {}: {e}", path.display())))?;
        let Some(header_end) = text.find('\n') else {
            return Err(CheckpointError::Corrupt(
                "journal has no complete header line".to_string(),
            ));
        };
        let header = &text[..header_end];
        let expected = binding.header_line();
        if header != expected {
            return Err(CheckpointError::ConfigMismatch {
                expected,
                found: header.to_string(),
            });
        }
        let mut valid_len = header_end + 1;
        let mut cells = Vec::new();
        let mut rest = &text[valid_len..];
        // A record is trusted only if its line is complete (newline-
        // terminated) *and* parses as the next grid cell. The first record
        // that fails either test is where the crash landed: discard it and
        // anything after — those cells simply re-run.
        while let Some(line_end) = rest.find('\n') {
            match parse_cell(&rest[..line_end], cells.len()) {
                Ok(cell) => {
                    cells.push(cell);
                    valid_len += line_end + 1;
                    rest = &rest[line_end + 1..];
                }
                Err(_) => break,
            }
        }
        // The header check above must fail as ConfigMismatch, never as a
        // truncate-to-empty recovery, so the parse happens here and the
        // log is opened at the already-validated prefix length.
        let log = AppendLog::open_at(&path, IoShim::from_env(), valid_len as u64)?;
        Ok((Journal { log }, cells))
    }

    /// Append one flushed cell and fsync it. Called by the ordered flush
    /// (already serialized), so records land strictly in grid order.
    pub fn append(
        &self,
        index: usize,
        case: &str,
        system: &str,
        outcome: &SuiteOutcome,
    ) -> Result<(), CheckpointError> {
        let mut m = Map::new();
        m.insert("cell", Value::Int(index as i64));
        m.insert("case", Value::from(case));
        m.insert("system", Value::from(system));
        m.insert("outcome", outcome_to_value(outcome));
        self.log.append(&Value::Map(m).to_json())?;
        Ok(())
    }
}

fn parse_cell(line: &str, expected_index: usize) -> Result<ReplayedCell, CheckpointError> {
    let doc =
        tinycfg::parse(line).map_err(|e| CheckpointError::Corrupt(format!("bad record: {e}")))?;
    let index = doc
        .get_path("cell")
        .and_then(Value::as_int)
        .ok_or_else(|| CheckpointError::Corrupt("record missing `cell`".to_string()))?;
    if index != expected_index as i64 {
        return Err(CheckpointError::Corrupt(format!(
            "record out of order: expected cell {expected_index}, found {index}"
        )));
    }
    let str_at = |key: &str| -> Result<String, CheckpointError> {
        doc.get_path(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| CheckpointError::Corrupt(format!("record missing `{key}`")))
    };
    Ok(ReplayedCell {
        case: str_at("case")?,
        system: str_at("system")?,
        outcome: outcome_from_value(
            doc.get_path("outcome")
                .ok_or_else(|| CheckpointError::Corrupt("record missing `outcome`".to_string()))?,
        )?,
    })
}

fn outcome_to_value(outcome: &SuiteOutcome) -> Value {
    let mut m = Map::new();
    match outcome {
        SuiteOutcome::Ran(report) => m.insert("ran", report_to_value(report)),
        SuiteOutcome::Skipped(reason) => m.insert("skipped", Value::from(reason.as_str())),
        SuiteOutcome::Failed(err) => {
            // The journal preserves the rendered message and the
            // resilience stats — everything the report surfaces — rather
            // than the full error tree; replayed failures come back as
            // `HarnessError::Replayed` and render byte-identically.
            let mut fm = Map::new();
            fm.insert("message", Value::from(err.to_string()));
            fm.insert(
                "stats",
                match err.fault_stats() {
                    Some((attempts, faults, lost)) => Value::List(vec![
                        Value::Int(i64::from(attempts)),
                        Value::Int(i64::from(faults)),
                        Value::Float(lost),
                    ]),
                    None => Value::Null,
                },
            );
            m.insert("failed", Value::Map(fm))
        }
    }
    Value::Map(m)
}

fn outcome_from_value(v: &Value) -> Result<SuiteOutcome, CheckpointError> {
    if let Some(report) = v.get("ran") {
        return Ok(SuiteOutcome::Ran(Box::new(report_from_value(report)?)));
    }
    if let Some(reason) = v.get("skipped").and_then(Value::as_str) {
        return Ok(SuiteOutcome::Skipped(reason.to_string()));
    }
    if let Some(failed) = v.get("failed") {
        let message = failed
            .get("message")
            .and_then(Value::as_str)
            .ok_or_else(|| CheckpointError::Corrupt("failed cell missing message".to_string()))?
            .to_string();
        let stats = match failed.get("stats") {
            None | Some(Value::Null) => None,
            Some(Value::List(items)) if items.len() == 3 => {
                let attempts = int_as_u32(&items[0], "stats.attempts")?;
                let faults = int_as_u32(&items[1], "stats.faults")?;
                let lost = items[2].as_float().ok_or_else(|| {
                    CheckpointError::Corrupt("stats.time_lost not a float".to_string())
                })?;
                Some((attempts, faults, lost))
            }
            Some(other) => {
                return Err(CheckpointError::Corrupt(format!(
                    "failed cell has malformed stats: {other:?}"
                )))
            }
        };
        return Ok(SuiteOutcome::Failed(HarnessError::Replayed {
            message,
            stats,
        }));
    }
    Err(CheckpointError::Corrupt(
        "outcome is none of ran/skipped/failed".to_string(),
    ))
}

fn report_to_value(report: &CaseReport) -> Value {
    let mut m = Map::new();
    m.insert("record", report.record.to_value());
    m.insert(
        "concrete_rendered",
        Value::from(report.concrete_rendered.as_str()),
    );
    m.insert("dag_hash", Value::from(report.dag_hash.as_str()));
    m.insert("packages_built", Value::Int(report.packages_built as i64));
    m.insert("packages_cached", Value::Int(report.packages_cached as i64));
    m.insert("build_time_s", Value::Float(report.build_time_s));
    m.insert("job_script", Value::from(report.job_script.as_str()));
    m.insert("queue_wait_s", Value::Float(report.queue_wait_s));
    let mut t = Map::new();
    t.insert("avg_power_w", Value::Float(report.telemetry.avg_power_w));
    t.insert("energy_j", Value::Float(report.telemetry.energy_j));
    t.insert(
        "network_bytes",
        Value::Int(report.telemetry.network_bytes as i64),
    );
    t.insert(
        "total_power_w",
        Value::Float(report.telemetry.total_power_w),
    );
    m.insert("telemetry", Value::Map(t));
    m.insert("stdout", Value::from(report.stdout.as_str()));
    m.insert("retries", Value::Int(i64::from(report.retries)));
    m.insert(
        "faults_injected",
        Value::Int(i64::from(report.faults_injected)),
    );
    m.insert("time_lost_s", Value::Float(report.time_lost_s));
    m.insert(
        "nodes_repaired",
        Value::Int(i64::from(report.nodes_repaired)),
    );
    Value::Map(m)
}

fn report_from_value(v: &Value) -> Result<CaseReport, CheckpointError> {
    let str_at = |key: &str| -> Result<String, CheckpointError> {
        v.get(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| CheckpointError::Corrupt(format!("report missing string `{key}`")))
    };
    let float_at = |key: &str| -> Result<f64, CheckpointError> {
        v.get(key)
            .and_then(Value::as_float)
            .ok_or_else(|| CheckpointError::Corrupt(format!("report missing float `{key}`")))
    };
    let usize_at = |key: &str| -> Result<usize, CheckpointError> {
        let i = v
            .get(key)
            .and_then(Value::as_int)
            .ok_or_else(|| CheckpointError::Corrupt(format!("report missing int `{key}`")))?;
        usize::try_from(i)
            .map_err(|_| CheckpointError::Corrupt(format!("`{key}` must be non-negative: {i}")))
    };
    let u32_at = |key: &str| -> Result<u32, CheckpointError> {
        let value = v
            .get(key)
            .ok_or_else(|| CheckpointError::Corrupt(format!("report missing int `{key}`")))?;
        int_as_u32(value, key)
    };
    let record = PerflogRecord::from_value(
        v.get("record")
            .ok_or_else(|| CheckpointError::Corrupt("report missing `record`".to_string()))?,
    )
    .map_err(|e| CheckpointError::Corrupt(e.to_string()))?;
    let telemetry_at = |key: &str| -> Result<f64, CheckpointError> {
        v.get("telemetry")
            .and_then(|t| t.get(key))
            .and_then(Value::as_float)
            .ok_or_else(|| CheckpointError::Corrupt(format!("telemetry missing `{key}`")))
    };
    let network_bytes = v
        .get("telemetry")
        .and_then(|t| t.get("network_bytes"))
        .and_then(Value::as_int)
        .and_then(|i| u64::try_from(i).ok())
        .ok_or_else(|| CheckpointError::Corrupt("telemetry missing `network_bytes`".to_string()))?;
    Ok(CaseReport {
        record,
        concrete_rendered: str_at("concrete_rendered")?,
        dag_hash: str_at("dag_hash")?,
        packages_built: usize_at("packages_built")?,
        packages_cached: usize_at("packages_cached")?,
        build_time_s: float_at("build_time_s")?,
        job_script: str_at("job_script")?,
        queue_wait_s: float_at("queue_wait_s")?,
        telemetry: simhpc::Telemetry {
            avg_power_w: telemetry_at("avg_power_w")?,
            energy_j: telemetry_at("energy_j")?,
            network_bytes,
            total_power_w: telemetry_at("total_power_w")?,
        },
        stdout: str_at("stdout")?,
        retries: u32_at("retries")?,
        faults_injected: u32_at("faults_injected")?,
        time_lost_s: float_at("time_lost_s")?,
        nodes_repaired: u32_at("nodes_repaired")?,
    })
}

fn int_as_u32(v: &Value, what: &str) -> Result<u32, CheckpointError> {
    v.as_int()
        .and_then(|i| u32::try_from(i).ok())
        .ok_or_else(|| CheckpointError::Corrupt(format!("`{what}` must be a non-negative count")))
}

/// Load the per-system consecutive-failure streaks persisted by the last
/// completed study in `dir`. Missing file = no memory (empty). A torn or
/// unreadable file means the memory is lost, not that the study must die:
/// warn and start fresh — quarantine memory is an optimization, and the
/// atomic rewrite in [`save_streaks`] makes this path unreachable except
/// after external damage.
pub fn load_streaks(dir: &Path) -> Result<Vec<(String, u32)>, CheckpointError> {
    let path = dir.join(QUARANTINE_FILE);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => {
            eprintln!(
                "warning: quarantine memory unreadable ({}: {e}); starting fresh",
                path.display()
            );
            return Ok(Vec::new());
        }
    };
    let doc = match tinycfg::parse(text.trim()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!(
                "warning: quarantine memory corrupt ({}: {e}); starting fresh",
                path.display()
            );
            return Ok(Vec::new());
        }
    };
    let mut streaks = Vec::new();
    if let Some(m) = doc.get_path("streaks").and_then(Value::as_map) {
        for (system, v) in m.iter() {
            match v.as_int().and_then(|i| u32::try_from(i).ok()) {
                Some(n) => streaks.push((system.to_string(), n)),
                None => {
                    eprintln!(
                        "warning: quarantine memory corrupt (bad streak for `{system}`); \
                         starting fresh"
                    );
                    return Ok(Vec::new());
                }
            }
        }
    }
    Ok(streaks)
}

/// Persist the per-system streaks at the end of a completed study
/// (systems with streak 0 are omitted — absence means healthy). Written
/// atomically (temp + fsync + rename) so a crash mid-write can never
/// corrupt cross-study quarantine memory.
pub fn save_streaks(dir: &Path, streaks: &[(String, u32)]) -> Result<(), CheckpointError> {
    std::fs::create_dir_all(dir)?;
    let mut m = Map::new();
    m.insert("format", Value::from("benchkit-quarantine"));
    m.insert("version", Value::Int(FORMAT_VERSION));
    let mut sm = Map::new();
    for (system, n) in streaks {
        if *n > 0 {
            sm.insert(system.clone(), Value::Int(i64::from(*n)));
        }
    }
    m.insert("streaks", Value::Map(sm));
    let text = format!("{}\n", Value::Map(m).to_json());
    spackle::write_atomic(&dir.join(QUARANTINE_FILE), &text)?;
    Ok(())
}

/// Outcome of [`gc`] on one checkpoint directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GcOutcome {
    /// The journal was removed; `cells` records were collected.
    /// `quarantine.json` is always left in place.
    Collected { cells: usize, forced: bool },
    /// No journal in the directory — nothing to collect.
    NoJournal,
}

/// `benchkit checkpoint gc`: drop the study journal from `dir` once its
/// study has completed, keeping `quarantine.json` (cross-study memory
/// outlives any one journal). A journal whose study never reached its
/// terminal record is refused with [`CheckpointError::Incomplete`] unless
/// `force` — an interrupted study is exactly what checkpoints exist to
/// save.
pub fn gc(dir: &Path, force: bool) -> Result<GcOutcome, CheckpointError> {
    let path = dir.join(JOURNAL_FILE);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(GcOutcome::NoJournal),
        Err(e) => return Err(CheckpointError::Io(format!("{}: {e}", path.display()))),
    };
    // How many cells does the bound study have, and how many landed?
    let verdict: Result<(usize, usize), CheckpointError> = (|| {
        let header_end = text
            .find('\n')
            .ok_or_else(|| CheckpointError::Corrupt("journal has no header line".to_string()))?;
        let doc = tinycfg::parse(&text[..header_end])
            .map_err(|e| CheckpointError::Corrupt(format!("bad journal header: {e}")))?;
        let len_of = |key: &str| -> Result<usize, CheckpointError> {
            doc.get_path(key)
                .and_then(Value::as_list)
                .map(<[Value]>::len)
                .ok_or_else(|| CheckpointError::Corrupt(format!("header missing `{key}`")))
        };
        let want = len_of("systems")? * len_of("cases")?;
        let mut have = 0;
        for line in text[header_end + 1..].lines() {
            if parse_cell(line, have).is_err() {
                break;
            }
            have += 1;
        }
        Ok((have, want))
    })();
    let (cells, forced) = match verdict {
        Ok((have, want)) if have >= want => (have, false),
        Ok((have, want)) => {
            if !force {
                return Err(CheckpointError::Incomplete { have, want });
            }
            (have, true)
        }
        Err(e) => {
            // Structurally damaged journal: refuse by default (the user
            // should look at it), collect under force.
            if !force {
                return Err(e);
            }
            (0, true)
        }
    };
    std::fs::remove_file(&path)?;
    Ok(GcOutcome::Collected { cells, forced })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::OpenOptions;
    use std::io::Write;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tmpdir(tag: &str) -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "benchkit-ckpt-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn binding() -> StudyBinding {
        StudyBinding {
            systems: vec!["csd3".to_string(), "archer2".to_string()],
            cases: vec!["babelstream_omp".to_string(), "hpgmg_fv".to_string()],
            seed: 7,
            warm_store: false,
            store: false,
            profile: "flaky".to_string(),
            overrides: vec![("archer2".to_string(), "brutal".to_string())],
            max_retries: 2,
            fail_fast: false,
            quarantine: 2,
            heal: true,
            streaks: vec![("csd3".to_string(), 3)],
            engine: String::new(),
        }
    }

    #[test]
    fn outcome_serialization_round_trips() {
        let skipped = SuiteOutcome::Skipped("unsupported on this platform: no gpu".to_string());
        let failed = SuiteOutcome::Failed(HarnessError::AfterFaults {
            attempts: 3,
            faults_injected: 2,
            time_lost_s: 145.5,
            cause: Box::new(HarnessError::NodeFailed("lost a node".to_string())),
        });
        for outcome in [&skipped, &failed] {
            let v = outcome_to_value(outcome);
            let line = v.to_json();
            let back =
                outcome_from_value(&tinycfg::parse(&line).expect("journal lines parse")).unwrap();
            // Replay preserves what reports consume: the rendered message
            // and the resilience stats.
            let rendered = |o: &SuiteOutcome| match o {
                SuiteOutcome::Ran(_) => "ran".to_string(),
                SuiteOutcome::Skipped(r) => format!("skip {r}"),
                SuiteOutcome::Failed(e) => format!("fail {e}"),
            };
            assert_eq!(rendered(&back), rendered(outcome));
            assert_eq!(back.retries(), outcome.retries());
            assert_eq!(back.faults_injected(), outcome.faults_injected());
            assert_eq!(back.time_lost_s(), outcome.time_lost_s());
        }
    }

    #[test]
    fn journal_round_trips_and_discards_torn_tail() {
        let dir = tmpdir("torn");
        let b = binding();
        let journal = Journal::create(&dir, &b).unwrap();
        journal
            .append(
                0,
                "babelstream_omp",
                "csd3",
                &SuiteOutcome::Skipped("no".into()),
            )
            .unwrap();
        journal
            .append(
                1,
                "hpgmg_fv",
                "csd3",
                &SuiteOutcome::Failed(HarnessError::Replayed {
                    message: "boom".to_string(),
                    stats: Some((3, 2, 99.5)),
                }),
            )
            .unwrap();
        drop(journal);
        // Simulate a crash mid-append: a torn, newline-less trailing record.
        let path = dir.join(JOURNAL_FILE);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "{{\"cell\":2,\"case\":\"trunc").unwrap();
        drop(f);
        let (journal, cells) = Journal::resume(&dir, &b).unwrap();
        assert_eq!(cells.len(), 2, "torn record discarded");
        assert_eq!(cells[0].case, "babelstream_omp");
        assert!(cells[0].outcome.skipped());
        match &cells[1].outcome {
            SuiteOutcome::Failed(e) => {
                assert_eq!(e.to_string(), "boom");
                assert_eq!(e.fault_stats(), Some((3, 2, 99.5)));
            }
            other => panic!("expected replayed failure, got {other:?}"),
        }
        // The torn bytes are gone: the next append lands on a clean line.
        journal
            .append(2, "x", "archer2", &SuiteOutcome::Skipped("later".into()))
            .unwrap();
        drop(journal);
        let (_, cells) = Journal::resume(&dir, &b).unwrap();
        assert_eq!(cells.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_torn_append_surfaces_error_and_resume_recovers_prefix() {
        // Drive the journal through the fault shim: a torn append must
        // surface as an error to the runner (never a silent half-record),
        // and a later resume must recover exactly the cells whose appends
        // succeeded before the tear. Fault schedules are keyed by seed, so
        // scan seeds until one produces "some commits, then a tear" — the
        // chosen schedule then replays identically forever.
        let b = binding();
        let mut exercised = false;
        for seed in 0..200u64 {
            let dir = tmpdir(&format!("iofault-{seed}"));
            let mut spec = spackle::FaultSpec::quiet(seed);
            spec.torn = 0.35;
            spec.only_matching = Some(JOURNAL_FILE.to_string());
            let journal = match Journal::create_with(&dir, &b, spackle::IoShim::faulty(spec)) {
                Ok(j) => j,
                Err(_) => continue, // header write faulted; try the next seed
            };
            let mut committed = 0usize;
            let mut tore = false;
            for i in 0..10 {
                match journal.append(i, "case", "sys", &SuiteOutcome::Skipped("s".into())) {
                    Ok(()) => committed += 1,
                    Err(_) => {
                        tore = true;
                        break;
                    }
                }
            }
            drop(journal);
            if !(tore && committed >= 2) {
                let _ = std::fs::remove_dir_all(&dir);
                continue;
            }
            let (_, cells) = Journal::resume(&dir, &b).unwrap();
            assert_eq!(
                cells.len(),
                committed,
                "resume must replay exactly the appends that were \
                 acknowledged before the torn write (seed {seed})"
            );
            std::fs::remove_dir_all(&dir).unwrap();
            exercised = true;
            break;
        }
        assert!(exercised, "no seed in 0..200 produced commits-then-tear");
    }

    #[test]
    fn mismatched_binding_is_a_hard_error() {
        let dir = tmpdir("mismatch");
        drop(Journal::create(&dir, &binding()).unwrap());
        let mut other = binding();
        other.seed = 8;
        match Journal::resume(&dir, &other) {
            Err(CheckpointError::ConfigMismatch { .. }) => {}
            other => panic!("expected ConfigMismatch, got {other:?}"),
        }
        // Every bound knob participates, including the memory snapshot.
        let mut other = binding();
        other.streaks.clear();
        assert!(matches!(
            Journal::resume(&dir, &other),
            Err(CheckpointError::ConfigMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_order_records_are_discarded_from_first_deviation() {
        let dir = tmpdir("order");
        let b = binding();
        let journal = Journal::create(&dir, &b).unwrap();
        journal
            .append(0, "a", "csd3", &SuiteOutcome::Skipped("s".into()))
            .unwrap();
        // A record claiming the wrong cell index (disk corruption): the
        // prefix before it survives, it and later records do not.
        journal
            .append(5, "b", "csd3", &SuiteOutcome::Skipped("s".into()))
            .unwrap();
        journal
            .append(2, "c", "csd3", &SuiteOutcome::Skipped("s".into()))
            .unwrap();
        drop(journal);
        let (_, cells) = Journal::resume(&dir, &b).unwrap();
        assert_eq!(cells.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantine_memory_round_trips_and_defaults_empty() {
        let dir = tmpdir("streaks");
        assert_eq!(load_streaks(&dir).unwrap(), vec![]);
        save_streaks(
            &dir,
            &[
                ("csd3".to_string(), 0),
                ("archer2".to_string(), 4),
                ("cosma8".to_string(), 1),
            ],
        )
        .unwrap();
        // Zero streaks are dropped; nonzero ones survive.
        assert_eq!(
            load_streaks(&dir).unwrap(),
            vec![("archer2".to_string(), 4), ("cosma8".to_string(), 1)]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_quarantine_memory_warns_and_starts_fresh() {
        let dir = tmpdir("torn-streaks");
        std::fs::create_dir_all(&dir).unwrap();
        // A crash mid-write under the old in-place rewrite could leave any
        // of these on disk; none may panic or error — memory starts fresh.
        for torn in [
            "",
            "{\"format\":\"benchkit-quar",
            "not json",
            "{\"streaks\":{\"csd3\":\"x\"}}",
        ] {
            std::fs::write(dir.join(QUARANTINE_FILE), torn).unwrap();
            assert_eq!(load_streaks(&dir).unwrap(), vec![], "torn content {torn:?}");
        }
        // And a fresh save repairs the file for the next study.
        save_streaks(&dir, &[("csd3".to_string(), 2)]).unwrap();
        assert_eq!(load_streaks(&dir).unwrap(), vec![("csd3".to_string(), 2)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_streaks_leaves_no_temp_files() {
        let dir = tmpdir("atomic-streaks");
        save_streaks(&dir, &[("archer2".to_string(), 1)]).unwrap();
        save_streaks(&dir, &[("archer2".to_string(), 2)]).unwrap();
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec![QUARANTINE_FILE.to_string()], "{names:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A journal for `binding()`'s 2×2 grid with `n` completed cells.
    fn journal_with_cells(dir: &Path, n: usize) {
        let journal = Journal::create(dir, &binding()).unwrap();
        for i in 0..n {
            journal
                .append(i, "case", "sys", &SuiteOutcome::Skipped("s".into()))
                .unwrap();
        }
    }

    #[test]
    fn gc_collects_completed_journal_and_keeps_quarantine() {
        let dir = tmpdir("gc-done");
        journal_with_cells(&dir, 4); // 2 systems × 2 cases = terminal
        save_streaks(&dir, &[("csd3".to_string(), 3)]).unwrap();
        assert_eq!(
            gc(&dir, false).unwrap(),
            GcOutcome::Collected {
                cells: 4,
                forced: false
            }
        );
        assert!(!dir.join(JOURNAL_FILE).exists());
        assert_eq!(
            load_streaks(&dir).unwrap(),
            vec![("csd3".to_string(), 3)],
            "gc must never delete quarantine memory"
        );
        // Idempotent: a second pass finds nothing.
        assert_eq!(gc(&dir, false).unwrap(), GcOutcome::NoJournal);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_refuses_incomplete_journal_without_force() {
        let dir = tmpdir("gc-incomplete");
        journal_with_cells(&dir, 2); // interrupted: 2 of 4 cells
        match gc(&dir, false) {
            Err(CheckpointError::Incomplete { have: 2, want: 4 }) => {}
            other => panic!("expected Incomplete, got {other:?}"),
        }
        assert!(dir.join(JOURNAL_FILE).exists(), "refusal must not delete");
        assert_eq!(
            gc(&dir, true).unwrap(),
            GcOutcome::Collected {
                cells: 2,
                forced: true
            }
        );
        assert!(!dir.join(JOURNAL_FILE).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_refuses_headerless_journal_without_force() {
        let dir = tmpdir("gc-headerless");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(JOURNAL_FILE), "garbage with no newline").unwrap();
        assert!(matches!(gc(&dir, false), Err(CheckpointError::Corrupt(_))));
        assert!(matches!(
            gc(&dir, true),
            Ok(GcOutcome::Collected { forced: true, .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_on_empty_dir_is_a_noop() {
        let dir = tmpdir("gc-empty");
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(gc(&dir, false).unwrap(), GcOutcome::NoJournal);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
