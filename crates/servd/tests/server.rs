//! In-process daemon tests: bind on an ephemeral port, drive the server
//! with the real push client over real sockets, and check that every
//! robustness mechanism degrades exactly the connection it should.

use servd::{http_get, http_post, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

fn tmpdir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "servd-it-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn record_line(benchmark: &str, system: &str, sequence: u64, value: f64) -> String {
    format!(
        "{{\"sequence\":{sequence},\"benchmark\":\"{benchmark}\",\"system\":\"{system}\",\
         \"partition\":\"compute\",\"environ\":\"gcc@11.2.0\",\
         \"spec\":\"{benchmark}%gcc\",\"build_hash\":\"abc123\",\
         \"num_tasks\":1,\"num_tasks_per_node\":1,\"num_cpus_per_task\":1,\
         \"foms\":[{{\"name\":\"bw\",\"value\":{value},\"unit\":\"GB/s\"}}]}}"
    )
}

/// Bind + run a daemon, returning `(addr, drain, join)`. Waits until the
/// worker pool answers `/v1/health` so tests never race daemon startup.
fn start(
    cfg: ServeConfig,
) -> (
    String,
    std::sync::Arc<std::sync::atomic::AtomicBool>,
    std::thread::JoinHandle<std::io::Result<servd::ServeSummary>>,
) {
    let server = Server::bind(cfg).expect("bind daemon");
    let addr = server.local_addr().expect("local addr").to_string();
    let drain = server.drain_handle();
    let join = std::thread::spawn(move || server.run());
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match http_get(&addr, "/v1/health") {
            Ok(resp) if resp.status == 200 => break,
            _ if Instant::now() > deadline => panic!("daemon never became healthy"),
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    (addr, drain, join)
}

fn quick_cfg(dir: &PathBuf) -> ServeConfig {
    let mut cfg = ServeConfig::new(dir, "127.0.0.1:0");
    cfg.read_timeout_ms = 2_000;
    cfg
}

#[test]
fn ingest_query_drain_restart_round_trip() {
    let dir = tmpdir("roundtrip");
    let (addr, drain, join) = start(quick_cfg(&dir));

    let body = [
        record_line("stream", "sysa", 1, 180.0),
        record_line("stream", "sysa", 2, 185.0),
        record_line("stream", "sysb", 1, 140.0),
    ]
    .join("\n")
        + "\n";
    let resp = http_post(&addr, "/v1/ingest", body.as_bytes()).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    let ack = tinycfg::parse(resp.body_text().trim()).unwrap();
    assert_eq!(ack.get_path("acked").and_then(|v| v.as_int()), Some(3));
    assert_eq!(ack.get_path("duplicates").and_then(|v| v.as_int()), Some(0));

    // The same batch again: pure duplicates, nothing re-acknowledged.
    let resp = http_post(&addr, "/v1/ingest", body.as_bytes()).unwrap();
    assert_eq!(resp.status, 200);
    let ack = tinycfg::parse(resp.body_text().trim()).unwrap();
    assert_eq!(ack.get_path("acked").and_then(|v| v.as_int()), Some(0));
    assert_eq!(ack.get_path("duplicates").and_then(|v| v.as_int()), Some(3));

    let fom = http_get(&addr, "/v1/fom").unwrap();
    assert_eq!(fom.status, 200);
    assert_eq!(fom.body_text().lines().count(), 3);

    // /v1/verdict is byte-identical to the offline `benchkit rank` over
    // the same records.
    let verdict = http_get(&addr, "/v1/verdict").unwrap();
    assert_eq!(verdict.status, 200);
    let frame = postproc::assimilate(std::slice::from_ref(&body)).unwrap();
    let policy = postproc::RankPolicy {
        direction: postproc::Direction::HigherIsBetter,
        jobs: 1,
    };
    let offline = postproc::rank_frame(&frame, &policy).unwrap().render_text();
    assert_eq!(verdict.body_text(), offline);

    let history = http_get(&addr, "/v1/history?benchmark=stream&system=sysa&fom=bw").unwrap();
    assert_eq!(history.status, 200, "{}", history.body_text());
    assert!(
        history.body_text().contains("points=2"),
        "{}",
        history.body_text()
    );

    drain.store(true, Ordering::SeqCst);
    let summary = join.join().unwrap().unwrap();
    assert_eq!(summary.wal_records, 3);
    assert!(
        !dir.join("servd").join(".lease").exists(),
        "drain must release the daemon lease"
    );

    // Restart over the same directory: the WAL replays every
    // acknowledged record and queries pick up where they left off.
    let server = Server::bind(quick_cfg(&dir)).expect("rebind after drain");
    assert_eq!(server.recovered_records(), 3);
    let addr = server.local_addr().unwrap().to_string();
    let drain = server.drain_handle();
    let join = std::thread::spawn(move || server.run());
    let deadline = Instant::now() + Duration::from_secs(10);
    let fom = loop {
        match http_get(&addr, "/v1/fom") {
            Ok(resp) if resp.status == 200 => break resp,
            _ if Instant::now() > deadline => panic!("restarted daemon never answered"),
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    };
    assert_eq!(fom.body_text().lines().count(), 3);
    drain.store(true, Ordering::SeqCst);
    join.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn second_daemon_is_refused_while_lease_live() {
    let dir = tmpdir("exclusive");
    let first = Server::bind(quick_cfg(&dir)).expect("first daemon binds");
    let err = match Server::bind(quick_cfg(&dir)) {
        Ok(_) => panic!("second daemon must be refused"),
        Err(e) => e,
    };
    assert!(
        err.to_string().contains("another daemon"),
        "unexpected error: {err}"
    );
    drop(first);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn admission_control_rejects_then_recovers() {
    let dir = tmpdir("admission");
    let mut cfg = quick_cfg(&dir);
    cfg.workers = 1;
    cfg.queue = 0; // rendezvous: admit only when the worker is parked
    cfg.read_timeout_ms = 400;
    cfg.retry_after_s = 7;
    let (addr, drain, join) = start(cfg);

    // Occupy the only worker with a connection that sends nothing, then
    // probe: the probe must be turned away by the acceptor with a 503
    // carrying the advertised Retry-After. Observing the rejection can
    // race the worker parking back after startup, so attempt a few times.
    let mut rejected = None;
    for _ in 0..10 {
        let stall = TcpStream::connect(&addr).unwrap();
        std::thread::sleep(Duration::from_millis(150));
        let probe = http_get(&addr, "/v1/health").unwrap();
        if probe.status == 503 {
            rejected = Some(probe);
            drop(stall);
            break;
        }
        drop(stall);
        std::thread::sleep(Duration::from_millis(200));
    }
    let rejected = rejected.expect("saturated daemon never answered 503");
    assert_eq!(rejected.header("retry-after"), Some("7"));

    // After the stalled connection times out, the worker frees up and the
    // same request succeeds — saturation is a state, not a death.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match http_get(&addr, "/v1/health") {
            Ok(resp) if resp.status == 200 => break,
            _ if Instant::now() > deadline => panic!("daemon never recovered from saturation"),
            _ => std::thread::sleep(Duration::from_millis(50)),
        }
    }

    drain.store(true, Ordering::SeqCst);
    let summary = join.join().unwrap().unwrap();
    assert!(summary.rejected >= 1, "summary: {summary:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slowloris_degrades_only_its_own_connection() {
    let dir = tmpdir("slowloris");
    let mut cfg = quick_cfg(&dir);
    cfg.workers = 2;
    cfg.read_timeout_ms = 200;
    let (addr, drain, join) = start(cfg);

    // A client that trickles half a request line and stops: its read
    // deadline expires and the daemon closes it without a response.
    let mut slow = TcpStream::connect(&addr).unwrap();
    slow.write_all(b"GET /v1/he").unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = Vec::new();
    let n = slow.read_to_end(&mut buf).unwrap_or(0);
    assert_eq!(
        n,
        0,
        "slowloris got a response: {:?}",
        String::from_utf8_lossy(&buf)
    );

    // The sibling connection never noticed.
    let resp = http_get(&addr, "/v1/health").unwrap();
    assert_eq!(resp.status, 200);

    drain.store(true, Ordering::SeqCst);
    join.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oversized_and_malformed_bodies_are_bounded_errors() {
    let dir = tmpdir("bounds");
    let mut cfg = quick_cfg(&dir);
    cfg.max_body = 1024;
    let (addr, drain, join) = start(cfg);

    let huge = vec![b'x'; 4096];
    let resp = http_post(&addr, "/v1/ingest", &huge).unwrap();
    assert_eq!(resp.status, 413, "{}", resp.body_text());

    let resp = http_post(&addr, "/v1/ingest", b"{\"not\": \"a perflog\"}\n").unwrap();
    assert_eq!(resp.status, 400);

    let resp = http_get(&addr, "/v1/nope").unwrap();
    assert_eq!(resp.status, 404);

    // The daemon is still perfectly healthy after all that abuse.
    let resp = http_get(&addr, "/v1/health").unwrap();
    assert_eq!(resp.status, 200);

    drain.store(true, Ordering::SeqCst);
    join.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn push_client_round_trips_and_deduplicates() {
    let dir = tmpdir("pushdir");
    let logs = tmpdir("pushlogs");
    std::fs::create_dir_all(&logs).unwrap();
    std::fs::write(
        logs.join("a.jsonl"),
        record_line("stream", "sysa", 1, 180.0) + "\n",
    )
    .unwrap();
    std::fs::write(
        logs.join("b.jsonl"),
        record_line("stream", "sysb", 1, 140.0) + "\n",
    )
    .unwrap();
    let (addr, drain, join) = start(quick_cfg(&dir));

    let mut out = Vec::new();
    let report = servd::push_dir(&logs, &addr, 3, &mut out).expect("push succeeds");
    assert_eq!(report.files, 2);
    assert_eq!(report.acked, 2);
    assert_eq!(report.duplicates, 0);

    // Pushing the same directory again is all duplicates — the content
    // dedup that makes retry-after-lost-ack safe.
    let report = servd::push_dir(&logs, &addr, 3, &mut out).expect("re-push succeeds");
    assert_eq!(report.acked, 0);
    assert_eq!(report.duplicates, 2);

    drain.store(true, Ordering::SeqCst);
    let summary = join.join().unwrap().unwrap();
    assert_eq!(summary.wal_records, 2);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&logs);
}
