//! `servd` — the crash-tolerant results daemon behind `benchkit serve`.
//!
//! The paper's automation principle says benchmark results must flow into
//! a durable, queryable record with no human in the loop; the
//! continuous-benchmarking ecosystem literature adds that the service
//! layer is where reproducibility dies in practice — ingestion must
//! survive crashes, slow clients, and partial writes, or the record
//! silently diverges from what ran. This crate is that service, std-only
//! (`std::net::TcpListener`, matching the vendored-offline build):
//!
//! * [`server`] — the daemon: bounded worker pool with admission control
//!   (`503` + `Retry-After`, never an unbounded queue), per-connection
//!   deadlines and body bounds, an fsync'd ingest
//!   [WAL](wal::IngestWal) so acknowledged records survive SIGKILL, and
//!   SIGTERM graceful drain that releases its store lease.
//! * [`client`] — `benchkit push`/`query`: uploads survey perflogs with
//!   the repo's 30·2ⁿ ≤ 480 s backoff, honoring `Retry-After`, and never
//!   mistaking a torn response for an acknowledgment.
//! * [`netfault`] — deterministic network fault injection
//!   (`BENCHKIT_NETFAULTS`): torn reads, short writes, resets, and
//!   stalls keyed SplitMix64-per-(op, connection, counter), so fault
//!   schedules and transcripts are independent of thread interleaving.
//! * [`http`] — the minimal HTTP/1.1 subset both sides speak, with
//!   header/body bounds enforced before bytes are swallowed.
//! * [`wal`] — the append-only ingest log in the `harness::checkpoint`
//!   idiom, recovered to its longest valid prefix on restart.

pub mod client;
pub mod http;
pub mod netfault;
pub mod server;
pub mod wal;

pub use client::{http_get, http_post, push_dir, PushError, PushReport};
pub use netfault::{ConnShim, NetFaultSpec, NetShim, NETFAULTS_ENV};
pub use server::{install_sigterm_drain, ServeConfig, ServeSummary, Server};
pub use wal::{IngestWal, WAL_FILE};
