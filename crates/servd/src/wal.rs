//! The daemon's ingest write-ahead log: the durability contract behind
//! every `202`-free `200` the daemon sends.
//!
//! One WAL line per accepted perflog record:
//!
//! ```text
//! {"seq": 17, "record": {…canonical perflog record…}}
//! ```
//!
//! built on [`harness::walog::AppendLog`], so appends are fsync'd through
//! `spackle::IoShim` *before* the ingest handler acknowledges, and
//! recovery trusts the longest valid prefix — a torn tail from a SIGKILL
//! mid-append is truncated, never replayed into the record. `seq` is the
//! zero-based line index; recovery additionally checks it, so a line
//! transplanted from another WAL (or a lost middle line) ends the prefix
//! instead of silently renumbering history.
//!
//! Exactly-once across retries comes from *content*, not sequence: the
//! daemon deduplicates on the canonical record line, so a client that
//! never saw its ack (short-written response) can re-push the same batch
//! and the record lands once.

use harness::walog::AppendLog;
use perflogs::PerflogRecord;
use spackle::IoShim;
use std::io;
use std::path::Path;

/// The WAL file name inside the daemon's state directory.
pub const WAL_FILE: &str = "wal.jsonl";

/// An open ingest WAL. Appends serialize on the underlying log's lock;
/// the daemon's ingest path holds its own state lock around the
/// (dedup-check, append) pair anyway.
#[derive(Debug)]
pub struct IngestWal {
    log: AppendLog,
    next_seq: u64,
}

impl IngestWal {
    /// Open (or create) the WAL in `dir`, recovering the longest valid
    /// prefix and returning the records it acknowledged. The file is
    /// truncated back to that prefix, so a torn tail is gone for good.
    pub fn open(dir: &Path, io: IoShim) -> io::Result<(IngestWal, Vec<PerflogRecord>)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(WAL_FILE);
        let mut records = Vec::new();
        let (log, _lines) = AppendLog::recover(&path, io, |line, index| {
            match decode_line(line, index as u64) {
                Some(record) => {
                    records.push(record);
                    true
                }
                None => false,
            }
        })?;
        let next_seq = records.len() as u64;
        Ok((IngestWal { log, next_seq }, records))
    }

    /// Durably append one record; on `Ok` the record may be acknowledged.
    /// The canonical line (`record.to_json_line()`) is what lands, so the
    /// WAL is also the dedup key space.
    pub fn append(&mut self, record: &PerflogRecord) -> io::Result<u64> {
        let seq = self.next_seq;
        let mut m = tinycfg::Map::new();
        m.insert("seq", tinycfg::Value::Int(seq as i64));
        m.insert("record", record.to_value());
        self.log.append(&tinycfg::Value::Map(m).to_json())?;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Records acknowledged so far (recovered + appended).
    pub fn len(&self) -> u64 {
        self.next_seq
    }

    pub fn is_empty(&self) -> bool {
        self.next_seq == 0
    }

    /// The WAL's on-disk path.
    pub fn path(&self) -> &Path {
        self.log.path()
    }
}

fn decode_line(line: &str, expect_seq: u64) -> Option<PerflogRecord> {
    let v = tinycfg::parse(line).ok()?;
    let seq = v.get_path("seq")?.as_int()?;
    if seq != expect_seq as i64 {
        return None;
    }
    let record = v.get_path("record")?;
    PerflogRecord::from_value(record).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tmpdir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "servd-wal-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn record(benchmark: &str, value: f64) -> PerflogRecord {
        PerflogRecord::from_json_line(&format!(
            "{{\"sequence\":1,\"benchmark\":\"{benchmark}\",\"system\":\"archer2\",\
             \"partition\":\"compute\",\"environ\":\"gcc@11.2.0\",\
             \"spec\":\"{benchmark}%gcc\",\"build_hash\":\"abc123\",\
             \"num_tasks\":1,\"num_tasks_per_node\":1,\"num_cpus_per_task\":1,\
             \"foms\":[{{\"name\":\"bw\",\"value\":{value},\"unit\":\"GB/s\"}}]}}"
        ))
        .expect("test record parses")
    }

    #[test]
    fn append_then_reopen_replays_acknowledged_records() {
        let dir = tmpdir("replay");
        {
            let (mut wal, replayed) = IngestWal::open(&dir, IoShim::Real).unwrap();
            assert!(replayed.is_empty());
            assert_eq!(wal.append(&record("stream", 181.4)).unwrap(), 0);
            assert_eq!(wal.append(&record("hpgmg", 0.92)).unwrap(), 1);
        }
        let (wal, replayed) = IngestWal::open(&dir, IoShim::Real).unwrap();
        assert_eq!(wal.len(), 2);
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[0].benchmark, "stream");
        assert_eq!(replayed[1].benchmark, "hpgmg");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_and_wrong_seq_end_the_prefix() {
        let dir = tmpdir("torn");
        {
            let (mut wal, _) = IngestWal::open(&dir, IoShim::Real).unwrap();
            wal.append(&record("stream", 181.4)).unwrap();
        }
        let path = dir.join(WAL_FILE);
        let mut text = std::fs::read_to_string(&path).unwrap();
        // A fully-formed line whose seq skips ahead (lost middle), then a
        // torn fragment: both must be truncated away.
        text.push_str("{\"seq\": 7, \"record\": {\"benchmark\": \"x\"}}\n");
        text.push_str("{\"seq\": 2, \"rec");
        std::fs::write(&path, &text).unwrap();
        let (wal, replayed) = IngestWal::open(&dir, IoShim::Real).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(wal.len(), 1);
        let after = std::fs::read_to_string(&path).unwrap();
        assert_eq!(after.lines().count(), 1);
        // And the log continues cleanly from the recovered prefix.
        drop(wal);
        let (mut wal, _) = IngestWal::open(&dir, IoShim::Real).unwrap();
        assert_eq!(wal.append(&record("hpgmg", 0.92)).unwrap(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A faulted append reports failure and leaves the WAL replayable at
    /// its previous length — the handler's "no ack without durability".
    #[test]
    fn faulted_append_is_not_acknowledged() {
        let dir = tmpdir("fault");
        {
            let (mut wal, _) = IngestWal::open(&dir, IoShim::Real).unwrap();
            wal.append(&record("stream", 181.4)).unwrap();
        }
        let mut spec = spackle::FaultSpec::quiet(5);
        spec.torn = 1.0;
        {
            let (mut wal, replayed) = IngestWal::open(&dir, IoShim::faulty(spec)).unwrap();
            assert_eq!(replayed.len(), 1);
            assert!(wal.append(&record("hpgmg", 0.92)).is_err());
        }
        let (wal, replayed) = IngestWal::open(&dir, IoShim::Real).unwrap();
        assert_eq!(wal.len(), 1);
        assert_eq!(replayed[0].benchmark, "stream");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
