//! The results daemon: `benchkit serve DIR --addr HOST:PORT`.
//!
//! Accepts perflog JSONL streams (`POST /v1/ingest`) and answers queries
//! (`GET /v1/fom`, `/v1/verdict`, `/v1/history`, `/v1/health`) over the
//! multi-writer store directory, as just another lease-holding writer.
//! Every robustness mechanism has a narrow blast radius by construction:
//!
//! * **Admission control.** A bounded worker pool behind a bounded queue;
//!   a connection that finds both full is answered `503` +
//!   `Retry-After` immediately by the acceptor. The daemon never queues
//!   unboundedly — overload degrades to fast rejections, not to a
//!   lengthening tail of half-served clients.
//! * **Deadlines and bounds.** Per-connection read/write timeouts (the
//!   slowloris answer) and bounded header/body sizes (the oversized-body
//!   answer) hold per connection: the offender loses its connection, the
//!   sibling on the next worker never notices.
//! * **Durability before acknowledgment.** Ingested records are fsync'd
//!   into the [WAL](crate::wal) before the `200` is written; restart
//!   replays the WAL, truncating torn tails, so an acknowledged record
//!   survives SIGKILL. Retried batches deduplicate on canonical record
//!   content, so a client that never saw its ack can safely re-push.
//! * **Graceful drain.** SIGTERM (or the in-process drain flag) stops the
//!   acceptor, lets in-flight requests finish, releases the daemon lease,
//!   and returns — the engine crate's TERM→grace discipline, serverside.

use crate::http::{read_request, HttpError, Request, Response};
use crate::netfault::NetShim;
use crate::wal::IngestWal;
use perflogs::PerflogRecord;
use spackle::{read_lease_info, write_lease, DiskStore, IoShim, StoreOptions};
use std::collections::BTreeSet;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};

/// Subdirectory of the store that holds the daemon's own state (WAL,
/// daemon lease). Invisible to `fsck`, which scans only store layout.
pub const SERVD_DIR: &str = "servd";

/// Daemon configuration. The defaults favor the torture suites' scale;
/// production use tunes via CLI flags.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    pub dir: PathBuf,
    pub addr: String,
    /// Worker threads handling accepted connections.
    pub workers: usize,
    /// Accepted-but-unhandled connection bound. `0` = rendezvous: a
    /// connection is admitted only when a worker is waiting for it.
    pub queue: usize,
    /// Per-connection socket read/write timeout — the slowloris deadline.
    pub read_timeout_ms: u64,
    /// Bound on an ingest request body.
    pub max_body: usize,
    /// `Retry-After` seconds advertised on admission rejections.
    pub retry_after_s: u64,
    /// Daemon-lease lifetime without renewal.
    pub lease_ttl_s: i64,
}

impl ServeConfig {
    pub fn new(dir: impl Into<PathBuf>, addr: impl Into<String>) -> ServeConfig {
        ServeConfig {
            dir: dir.into(),
            addr: addr.into(),
            workers: 4,
            queue: 16,
            read_timeout_ms: 5_000,
            max_body: 4 * 1024 * 1024,
            retry_after_s: 1,
            lease_ttl_s: 60,
        }
    }
}

/// What a drained daemon did with its life.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSummary {
    /// Connections handed to workers (served or degraded individually).
    pub served: u64,
    /// Connections rejected by admission control.
    pub rejected: u64,
    /// Records durable in the WAL at drain.
    pub wal_records: u64,
}

/// Process-global drain request, set by the SIGTERM handler. A static
/// because a signal handler cannot capture state.
fn drain_requested() -> &'static AtomicBool {
    static FLAG: AtomicBool = AtomicBool::new(false);
    &FLAG
}

/// Install a SIGTERM handler that requests a graceful drain: stop
/// accepting, finish in-flight requests, flush, release leases, return.
/// Raw `signal(2)` via FFI, in the engine crate's no-libc idiom.
pub fn install_sigterm_drain() {
    extern "C" fn on_term(_sig: i32) {
        drain_requested().store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_term);
    }
}

fn unix_now() -> i64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0)
}

/// In-memory ingest state, guarded by one lock: the (dedup, WAL append)
/// pair must be atomic or two retries of the same batch could both pass
/// the dedup check.
struct Ingest {
    wal: IngestWal,
    /// Canonical record lines already acknowledged — the dedup key space.
    seen: BTreeSet<String>,
    /// Acknowledged records in WAL order.
    records: Vec<PerflogRecord>,
}

struct Shared {
    dir: PathBuf,
    ingest: Mutex<Ingest>,
    max_body: usize,
    read_timeout: Duration,
    served: AtomicU64,
}

/// A bound, lease-holding daemon, ready to [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    cfg: ServeConfig,
    shared: Arc<Shared>,
    net: NetShim,
    io: IoShim,
    drain: Arc<AtomicBool>,
    writer: String,
    lease_path: PathBuf,
    /// Held so the daemon is a registered writer of the store (its own
    /// identity in the lease/ref economy); dropped (releasing any shard
    /// leases) when the drained server is dropped.
    _store: DiskStore,
}

impl Server {
    /// Open the store, acquire the daemon lease, recover the WAL, and
    /// bind the listener. Fails loudly when another live daemon holds the
    /// lease — two daemons over one directory would double-ack.
    pub fn bind(cfg: ServeConfig) -> io::Result<Server> {
        let io = IoShim::from_env();
        let net = NetShim::from_env();
        // PID alone is not unique enough: tests (and embedders) bind
        // several daemons in one process, and each needs its own lease
        // identity or exclusivity could not tell them apart.
        static INSTANCE: AtomicU64 = AtomicU64::new(0);
        let writer = format!(
            "servd-{}-{}-{}",
            spackle::local_hostname(),
            std::process::id(),
            INSTANCE.fetch_add(1, Ordering::Relaxed)
        );
        let store = DiskStore::open_with(
            &cfg.dir,
            StoreOptions {
                writer: Some(writer.clone()),
                lease_ttl_s: cfg.lease_ttl_s,
                io: io.clone(),
            },
        )
        .map_err(|e| io::Error::other(format!("opening store: {e}")))?;
        let state_dir = cfg.dir.join(SERVD_DIR);
        std::fs::create_dir_all(&state_dir)?;
        // The daemon lease: same format and liveness rules as shard
        // leases (including cross-host expiry-only trust), guarding
        // against two daemons serving one directory.
        let lease_path = state_dir.join(".lease");
        if let Some(info) = read_lease_info(&lease_path) {
            if info.writer != writer && info.is_live(unix_now()) {
                return Err(io::Error::other(format!(
                    "another daemon already serves {}: writer {} (pid {}, host {}, \
                     expires unix {})",
                    cfg.dir.display(),
                    info.writer,
                    info.pid,
                    info.host,
                    info.expires_unix
                )));
            }
        }
        write_lease(&io, &lease_path, &writer, cfg.lease_ttl_s)?;
        match read_lease_info(&lease_path) {
            Some(info) if info.writer == writer => {}
            _ => {
                return Err(io::Error::other(
                    "lost the daemon lease race — another daemon started concurrently",
                ))
            }
        }
        let (wal, records) = IngestWal::open(&state_dir, io.clone())?;
        let seen: BTreeSet<String> = records.iter().map(|r| r.to_json_line()).collect();
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            dir: cfg.dir.clone(),
            ingest: Mutex::new(Ingest { wal, seen, records }),
            max_body: cfg.max_body,
            read_timeout: Duration::from_millis(cfg.read_timeout_ms),
            served: AtomicU64::new(0),
        });
        Ok(Server {
            listener,
            cfg,
            shared,
            net,
            io,
            drain: Arc::new(AtomicBool::new(false)),
            writer,
            lease_path,
            _store: store,
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Records replayed from the WAL at startup.
    pub fn recovered_records(&self) -> u64 {
        self.shared.ingest.lock().expect("ingest lock").wal.len()
    }

    /// In-process drain trigger (tests and embedders; SIGTERM sets the
    /// process-global flag instead).
    pub fn drain_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.drain)
    }

    /// The fault transcript accumulated by this daemon's network shim.
    pub fn net_transcript(&self) -> Vec<String> {
        self.net.transcript()
    }

    /// Serve until drained (in-process flag or SIGTERM), then finish
    /// in-flight requests, release the daemon lease, and return.
    pub fn run(self) -> io::Result<ServeSummary> {
        let (tx, rx) = sync_channel::<(TcpStream, u64)>(self.cfg.queue);
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::new();
        for _ in 0..self.cfg.workers.max(1) {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&self.shared);
            let net = self.net.clone();
            workers.push(std::thread::spawn(move || worker_loop(&rx, &shared, &net)));
        }
        let mut rejected = 0u64;
        let mut conn_ids = 0u64;
        let mut last_renew = Instant::now();
        let renew_every = Duration::from_secs((self.cfg.lease_ttl_s.max(3) as u64) / 3);
        while !self.drain.load(Ordering::SeqCst) && !drain_requested().load(Ordering::SeqCst) {
            if last_renew.elapsed() >= renew_every {
                // Renewal failure is survivable until expiry; keep serving.
                let _ = write_lease(
                    &self.io,
                    &self.lease_path,
                    &self.writer,
                    self.cfg.lease_ttl_s,
                );
                last_renew = Instant::now();
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    conn_ids += 1;
                    match tx.try_send((stream, conn_ids)) {
                        Ok(()) => {}
                        Err(TrySendError::Full((stream, conn))) => {
                            rejected += 1;
                            self.reject_saturated(stream, conn);
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        // Drain: stop accepting (drop the send side), finish in-flight.
        drop(tx);
        for w in workers {
            let _ = w.join();
        }
        // Appends fsync'd individually; release the daemon lease if it is
        // still ours (never clobber a taker's lease after an expiry).
        match read_lease_info(&self.lease_path) {
            Some(info) if info.writer == self.writer => {
                let _ = std::fs::remove_file(&self.lease_path);
            }
            _ => {}
        }
        let wal_records = self.shared.ingest.lock().expect("ingest lock").wal.len();
        Ok(ServeSummary {
            served: self.shared.served.load(Ordering::SeqCst),
            rejected,
            wal_records,
        })
    }

    /// Immediate `503` + `Retry-After` from the acceptor thread, bounded
    /// by a short write timeout so a dead peer cannot stall admission.
    fn reject_saturated(&self, mut stream: TcpStream, conn: u64) {
        let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
        let shim = self.net.conn(conn);
        let resp = Response::new(503, "daemon saturated; retry after the advertised delay\n")
            .with_header("Retry-After", &self.cfg.retry_after_s.to_string());
        let _ = resp.write_to(&mut stream, &shim);
    }
}

fn worker_loop(rx: &Arc<Mutex<Receiver<(TcpStream, u64)>>>, shared: &Shared, net: &NetShim) {
    loop {
        let msg = rx.lock().expect("worker receiver lock").recv();
        let Ok((stream, conn)) = msg else { break };
        shared.served.fetch_add(1, Ordering::SeqCst);
        handle_connection(stream, conn, shared, net);
    }
}

/// Serve one connection end to end. Every failure path here degrades
/// exactly this connection: an error response when the socket still
/// works, a silent close when it does not.
fn handle_connection(mut stream: TcpStream, conn: u64, shared: &Shared, net: &NetShim) {
    let shim = net.conn(conn);
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.read_timeout));
    let request = read_request(&mut stream, &shim, shared.max_body);
    let response = match request {
        Ok(req) => dispatch(&req, shared),
        Err(HttpError::BodyTooLarge { declared, max }) => Response::new(
            413,
            format!("request body {declared} bytes exceeds bound {max}\n"),
        ),
        Err(HttpError::HeadersTooLarge) => Response::new(431, "header block too large\n"),
        Err(HttpError::Malformed(why)) => Response::new(400, format!("{why}\n")),
        // Timeout, reset, torn read: the socket is not worth answering on.
        Err(HttpError::Io(_)) => return,
    };
    let _ = response.write_to(&mut stream, &shim);
}

fn dispatch(req: &Request, shared: &Shared) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/ingest") => handle_ingest(req, shared),
        ("GET", "/v1/fom") => handle_fom(shared),
        ("GET", "/v1/verdict") => handle_verdict(req, shared),
        ("GET", "/v1/history") => handle_history(req, shared),
        ("GET", "/v1/health") => handle_health(shared),
        (_, "/v1/ingest" | "/v1/fom" | "/v1/verdict" | "/v1/history" | "/v1/health") => {
            Response::new(405, "method not allowed\n")
        }
        _ => Response::new(404, format!("no such endpoint {}\n", req.path)),
    }
}

/// `POST /v1/ingest`: a perflog JSONL body. All-or-nothing parse, then
/// per-record (dedup, durable append, ack). The `200` is only written
/// after every non-duplicate record is fsync'd in the WAL.
fn handle_ingest(req: &Request, shared: &Shared) -> Response {
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return Response::new(400, "ingest body is not UTF-8\n"),
    };
    let mut parsed = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match PerflogRecord::from_json_line(line) {
            Ok(r) => parsed.push(r),
            Err(e) => {
                return Response::new(400, format!("bad perflog record on line {}: {e}\n", i + 1))
            }
        }
    }
    if parsed.is_empty() {
        return Response::new(400, "empty ingest body\n");
    }
    let mut ingest = shared.ingest.lock().expect("ingest lock");
    let mut acked = 0u64;
    let mut duplicates = 0u64;
    for record in parsed {
        let canonical = record.to_json_line();
        if ingest.seen.contains(&canonical) {
            duplicates += 1;
            continue;
        }
        // Durable append *before* counting the record acknowledged; a
        // failed append fails the whole batch so the client retries it
        // (records already appended deduplicate on the retry).
        if let Err(e) = ingest.wal.append(&record) {
            return Response::new(500, format!("WAL append failed: {e}\n"));
        }
        ingest.seen.insert(canonical);
        ingest.records.push(record);
        acked += 1;
    }
    let mut m = tinycfg::Map::new();
    m.insert("acked", tinycfg::Value::Int(acked as i64));
    m.insert("duplicates", tinycfg::Value::Int(duplicates as i64));
    m.insert("total", tinycfg::Value::Int(ingest.wal.len() as i64));
    Response::new(200, tinycfg::Value::Map(m).to_json() + "\n")
        .with_header("Content-Type", "application/json")
}

/// `GET /v1/fom`: the full acknowledged record set as perflog JSONL —
/// pipe it straight back into `benchkit rank`.
fn handle_fom(shared: &Shared) -> Response {
    let ingest = shared.ingest.lock().expect("ingest lock");
    let mut body = String::new();
    for r in &ingest.records {
        body.push_str(&r.to_json_line());
        body.push('\n');
    }
    Response::new(200, body)
}

fn frame_of(records: &[PerflogRecord]) -> Result<dframe::DataFrame, String> {
    let jsonl: String = records.iter().map(|r| r.to_json_line() + "\n").collect();
    postproc::assimilate(&[jsonl]).map_err(|e| e.to_string())
}

/// `GET /v1/verdict[?lower_is_better=1][&markdown=1]`: the exact
/// `benchkit rank` rendering of everything ingested — byte-identical to
/// the offline command over the same records (ranking is proven
/// row-permutation-invariant, so ingest order does not matter).
fn handle_verdict(req: &Request, shared: &Shared) -> Response {
    let ingest = shared.ingest.lock().expect("ingest lock");
    if ingest.records.is_empty() {
        return Response::new(400, "no records ingested yet\n");
    }
    let frame = match frame_of(&ingest.records) {
        Ok(f) => f,
        Err(e) => return Response::new(500, format!("assimilation failed: {e}\n")),
    };
    let direction = if req.query_param("lower_is_better").is_some() {
        postproc::Direction::LowerIsBetter
    } else {
        postproc::Direction::HigherIsBetter
    };
    let policy = postproc::RankPolicy { direction, jobs: 1 };
    match postproc::rank_frame(&frame, &policy) {
        Ok(ranking) => Response::new(
            200,
            if req.query_param("markdown").is_some() {
                ranking.render_markdown()
            } else {
                ranking.render_text()
            },
        ),
        Err(e) => Response::new(500, format!("rank failed: {e}\n")),
    }
}

/// `GET /v1/history?benchmark=B&system=S&fom=F`: the (sequence, value)
/// series plus its sparkline, for regression eyeballs and monitors.
fn handle_history(req: &Request, shared: &Shared) -> Response {
    let (Some(benchmark), Some(system), Some(fom)) = (
        req.query_param("benchmark"),
        req.query_param("system"),
        req.query_param("fom"),
    ) else {
        return Response::new(
            400,
            "history needs ?benchmark=B&system=S&fom=F query parameters\n",
        );
    };
    let ingest = shared.ingest.lock().expect("ingest lock");
    if ingest.records.is_empty() {
        return Response::new(400, "no records ingested yet\n");
    }
    let frame = match frame_of(&ingest.records) {
        Ok(f) => f,
        Err(e) => return Response::new(500, format!("assimilation failed: {e}\n")),
    };
    match postproc::History::from_frame(&frame, benchmark, system, fom) {
        Ok(history) => {
            let mut body = format!(
                "history benchmark={benchmark} system={system} fom={fom} points={}\n",
                history.points.len()
            );
            if !history.points.is_empty() {
                body.push_str(&history.sparkline());
                body.push('\n');
            }
            for (seq, value) in &history.points {
                body.push_str(&format!("{seq} {value}\n"));
            }
            Response::new(200, body)
        }
        Err(e) => Response::new(400, format!("history failed: {e}\n")),
    }
}

/// `GET /v1/health`: the machine-readable fsck report over the store
/// directory — read-only, `200` when clean, `503` when any committed
/// entry is invalid (crash residue like temps and stale leases is clean).
fn handle_health(shared: &Shared) -> Response {
    match spackle::fsck(&shared.dir) {
        Ok(report) => {
            let status = if report.clean() { 200 } else { 503 };
            Response::new(status, report.to_json() + "\n")
                .with_header("Content-Type", "application/json")
        }
        Err(e) => Response::new(500, format!("fsck failed: {e}\n")),
    }
}
