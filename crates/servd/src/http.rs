//! A deliberately small HTTP/1.1 subset — exactly what the results
//! daemon and its push client need, std-only.
//!
//! One request per connection (`Connection: close` on every response):
//! retries then always start from a fresh connection, which keeps the
//! netfault keying per-connection and the failure unit obvious. Requests
//! are read through the [`ConnShim`] seam under two bounds that hold per
//! connection, never per daemon: a byte bound (header block and body are
//! each capped, oversized bodies are refused *before* they are read) and
//! a time bound (the socket read timeout is the slowloris deadline — a
//! client trickling bytes loses its connection, not a worker forever).

use crate::netfault::ConnShim;
use std::collections::BTreeMap;
use std::io::{self, Read, Write};

/// Cap on the request-line + header block. Generous for a CLI protocol.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// A parsed request. Header names are lowercased; the query string is
/// split into `key=value` pairs (no percent-decoding — the daemon's
/// parameter values are benchmark/system/fom names, which the perflog
/// format already restricts to tame characters).
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub query: BTreeMap<String, String>,
    pub headers: BTreeMap<String, String>,
    pub body: Vec<u8>,
}

impl Request {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(String::as_str)
    }

    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.get(name).map(String::as_str)
    }
}

/// Why a request could not be served from this connection. Each variant
/// maps to a response (or to silently dropping a connection that is
/// already unusable).
#[derive(Debug)]
pub enum HttpError {
    /// Declared body exceeds the daemon's bound — answer 413 and close.
    BodyTooLarge { declared: usize, max: usize },
    /// Header block exceeded [`MAX_HEADER_BYTES`] — answer 431 and close.
    HeadersTooLarge,
    /// Malformed request line / headers / body framing — answer 400.
    Malformed(String),
    /// The socket timed out (slowloris) or died (reset, torn read) before
    /// a full request arrived — the connection is unusable, just close.
    Io(io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BodyTooLarge { declared, max } => {
                write!(f, "request body {declared} bytes exceeds bound {max}")
            }
            HttpError::HeadersTooLarge => write!(f, "header block exceeds {MAX_HEADER_BYTES}"),
            HttpError::Malformed(why) => write!(f, "malformed request: {why}"),
            HttpError::Io(e) => write!(f, "connection failed: {e}"),
        }
    }
}

/// Read one request from `src` through the fault shim. `max_body` bounds
/// the accepted `Content-Length`; the caller bounds *time* by setting the
/// socket read timeout before calling.
pub fn read_request(
    src: &mut impl Read,
    shim: &ConnShim,
    max_body: usize,
) -> Result<Request, HttpError> {
    // Accumulate until the blank line; everything past it is body prefix.
    let mut head = Vec::new();
    let mut body_start;
    loop {
        let mut chunk = [0u8; 4096];
        let n = shim.read(src, &mut chunk).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::Malformed(
                "connection closed before header block ended".into(),
            ));
        }
        head.extend_from_slice(&chunk[..n]);
        if let Some(pos) = find_blank_line(&head) {
            body_start = pos;
            break;
        }
        if head.len() > MAX_HEADER_BYTES {
            return Err(HttpError::HeadersTooLarge);
        }
    }
    let header_text = std::str::from_utf8(&head[..body_start])
        .map_err(|_| HttpError::Malformed("header block is not UTF-8".into()))?
        .to_string();
    body_start += 4; // past \r\n\r\n
    let mut lines = header_text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request".into()))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::Malformed("missing method".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?;
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        other => return Err(HttpError::Malformed(format!("bad HTTP version {other:?}"))),
    }
    let (path, query_text) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q),
        None => (target.to_string(), ""),
    };
    let mut query = BTreeMap::new();
    for pair in query_text.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        query.insert(k.to_string(), v.to_string());
    }
    let mut headers = BTreeMap::new();
    for line in lines.filter(|l| !l.is_empty()) {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line {line:?}")))?;
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }
    let content_length = match headers.get("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}")))?,
    };
    // The body bound is enforced on the *declared* length, before reading
    // a byte of it: an oversized upload costs the daemon one header block.
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge {
            declared: content_length,
            max: max_body,
        });
    }
    let mut body = head[body_start..].to_vec();
    while body.len() < content_length {
        let mut chunk = [0u8; 8192];
        let want = (content_length - body.len()).min(chunk.len());
        let n = shim.read(src, &mut chunk[..want]).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::Malformed(format!(
                "body ended at byte {} of {content_length}",
                body.len()
            )));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

fn find_blank_line(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A response to serialize. Always `Connection: close`.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Response {
    pub fn new(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Response",
        }
    }

    /// Serialize and send through the fault shim in one write, so a short
    /// write tears the whole response rather than leaving framing intact
    /// with a truncated body the peer might misparse as complete.
    pub fn write_to(&self, dst: &mut impl Write, shim: &ConnShim) -> io::Result<()> {
        let mut text = format!("HTTP/1.1 {} {}\r\n", self.status, self.reason());
        for (name, value) in &self.headers {
            text.push_str(&format!("{name}: {value}\r\n"));
        }
        text.push_str(&format!(
            "Content-Length: {}\r\nConnection: close\r\n\r\n",
            self.body.len()
        ));
        let mut bytes = text.into_bytes();
        bytes.extend_from_slice(&self.body);
        shim.write_all(dst, &bytes)?;
        dst.flush()
    }
}

/// A parsed response (client side).
#[derive(Debug, Clone)]
pub struct ClientResponse {
    pub status: u16,
    pub headers: BTreeMap<String, String>,
    pub body: Vec<u8>,
}

impl ClientResponse {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(String::as_str)
    }

    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Read a full response from `src` (plain reads — fault injection lives
/// in the daemon; the client's failure handling is exercised by what the
/// daemon's shim does to the wire). The body must satisfy
/// `Content-Length`: a short body (torn response) is an error, so a
/// truncated 200 is never mistaken for an acknowledgment.
pub fn read_response(src: &mut impl Read) -> io::Result<ClientResponse> {
    let mut bytes = Vec::new();
    let mut buf = [0u8; 8192];
    let header_end = loop {
        let n = src.read(&mut buf)?;
        if n == 0 {
            match find_blank_line(&bytes) {
                Some(pos) => break pos,
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed before response headers ended",
                    ))
                }
            }
        }
        bytes.extend_from_slice(&buf[..n]);
        if let Some(pos) = find_blank_line(&bytes) {
            break pos;
        }
        if bytes.len() > MAX_HEADER_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "response header block too large",
            ));
        }
    };
    let header_text = std::str::from_utf8(&bytes[..header_end])
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response headers not UTF-8"))?
        .to_string();
    let mut lines = header_text.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line {status_line:?}"),
            )
        })?;
    let mut headers = BTreeMap::new();
    for line in lines.filter(|l| !l.is_empty()) {
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
    }
    let content_length = headers
        .get("content-length")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(0);
    let mut body = bytes[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = src.read(&mut buf)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "response body ended at byte {} of {content_length}",
                    body.len()
                ),
            ));
        }
        body.extend_from_slice(&buf[..n]);
    }
    body.truncate(content_length);
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netfault::NetShim;

    fn shim() -> ConnShim {
        NetShim::Real.conn(0)
    }

    #[test]
    fn request_round_trips_with_query_and_body() {
        let raw = b"POST /v1/ingest?source=ci HTTP/1.1\r\n\
                    Content-Length: 11\r\nX-Thing:  a b \r\n\r\nhello world";
        let req = read_request(&mut io::Cursor::new(raw.to_vec()), &shim(), 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/ingest");
        assert_eq!(req.query_param("source"), Some("ci"));
        assert_eq!(req.header("x-thing"), Some("a b"));
        assert_eq!(req.body, b"hello world");
    }

    #[test]
    fn oversized_body_is_refused_before_reading_it() {
        let raw = b"POST /v1/ingest HTTP/1.1\r\nContent-Length: 999999\r\n\r\n";
        let err = read_request(&mut io::Cursor::new(raw.to_vec()), &shim(), 1024).unwrap_err();
        assert!(matches!(
            err,
            HttpError::BodyTooLarge {
                declared: 999999,
                max: 1024
            }
        ));
    }

    #[test]
    fn short_body_is_malformed_not_a_request() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 50\r\n\r\nonly this";
        let err = read_request(&mut io::Cursor::new(raw.to_vec()), &shim(), 1024).unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)), "{err:?}");
    }

    #[test]
    fn unbounded_header_block_is_refused() {
        let raw = vec![b'A'; MAX_HEADER_BYTES + 4096];
        let err = read_request(&mut io::Cursor::new(raw), &shim(), 1024).unwrap_err();
        assert!(matches!(err, HttpError::HeadersTooLarge), "{err:?}");
    }

    #[test]
    fn response_round_trips_through_client_parser() {
        let resp = Response::new(503, "saturated").with_header("Retry-After", "7");
        let mut wire = Vec::new();
        resp.write_to(&mut wire, &shim()).unwrap();
        let parsed = read_response(&mut io::Cursor::new(wire)).unwrap();
        assert_eq!(parsed.status, 503);
        assert_eq!(parsed.header("retry-after"), Some("7"));
        assert_eq!(parsed.body_text(), "saturated");
    }

    #[test]
    fn truncated_response_body_is_an_error_not_an_ack() {
        let resp = Response::new(200, "acked:5");
        let mut wire = Vec::new();
        resp.write_to(&mut wire, &shim()).unwrap();
        wire.truncate(wire.len() - 3);
        assert!(read_response(&mut io::Cursor::new(wire)).is_err());
    }
}
