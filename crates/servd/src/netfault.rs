//! Deterministic network fault injection for the results daemon.
//!
//! The daemon claims that slow clients, reset connections, and torn
//! request/response streams degrade *one connection*, never the record —
//! a claim only worth its torture schedule. [`NetShim`] is the network
//! analogue of `spackle::IoShim`: a seam over the two socket operations a
//! connection performs — read and write — that either passes through
//! ([`NetShim::Real`]) or injects faults from a deterministic schedule
//! ([`NetShim::faulty`]): torn reads that deliver only a prefix then
//! error, short writes that land only a prefix of a response, injected
//! connection resets, and stalls that eat a connection's deadline.
//!
//! Determinism follows `simhpc::faults` and `spackle::iofault`: it comes
//! from draw *keying*, not draw order. Every fault is drawn from a fresh
//! `SplitMix64` stream seeded by the `(seed, op, connection id,
//! per-(op, connection) counter)` tuple via `fnv1a`, so the n-th read on
//! connection k faults identically whatever order worker threads reach it
//! in — the same seed reproduces the same schedule at any worker count.
//! The fired faults are recorded in a sorted [transcript](NetShim::transcript)
//! whose rendering is interleaving-independent for the same reason.
//!
//! CI arms the shim without recompiling through `BENCHKIT_NETFAULTS`,
//! e.g. `BENCHKIT_NETFAULTS="seed=7,torn=0.2,short=0.2,reset=0.1"`.

use simhpc::noise::{fnv1a, SplitMix64};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, Read, Write};
use std::sync::{Arc, Mutex};

/// Environment variable holding a [`NetFaultSpec`] for CLI/CI injection.
pub const NETFAULTS_ENV: &str = "BENCHKIT_NETFAULTS";

/// Per-operation fault probabilities plus the seed keying the schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct NetFaultSpec {
    pub seed: u64,
    /// P(a read delivers only a prefix of what arrived, then errors).
    pub torn: f64,
    /// P(a write lands only a prefix of its bytes, then errors).
    pub short: f64,
    /// P(an operation fails immediately with a connection reset).
    pub reset: f64,
    /// P(an operation stalls for `stall_ms` before proceeding) — the
    /// slowloris generator, spending the connection's deadline budget.
    pub stall: f64,
    /// Stall duration in milliseconds.
    pub stall_ms: u64,
}

impl NetFaultSpec {
    /// No faults ever — useful as a parse base.
    pub fn quiet(seed: u64) -> NetFaultSpec {
        NetFaultSpec {
            seed,
            torn: 0.0,
            short: 0.0,
            reset: 0.0,
            stall: 0.0,
            stall_ms: 100,
        }
    }

    /// Parse the `BENCHKIT_NETFAULTS` format: comma-separated `key=value`
    /// pairs from `seed`, `torn`, `short`, `reset`, `stall`, `stallms`.
    /// Unknown keys and malformed values are hard errors — a typo in a
    /// torture schedule must not silently test nothing.
    pub fn parse(text: &str) -> Result<NetFaultSpec, String> {
        let mut spec = NetFaultSpec::quiet(0);
        for part in text.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {part:?}"))?;
            let (key, value) = (key.trim(), value.trim());
            let prob = |field: &mut f64| -> Result<(), String> {
                let p: f64 = value
                    .parse()
                    .map_err(|_| format!("bad probability for {key}: {value:?}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability for {key} out of [0,1]: {value}"));
                }
                *field = p;
                Ok(())
            };
            match key {
                "seed" => {
                    spec.seed = value.parse().map_err(|_| format!("bad seed: {value:?}"))?;
                }
                "torn" => prob(&mut spec.torn)?,
                "short" => prob(&mut spec.short)?,
                "reset" => prob(&mut spec.reset)?,
                "stall" => prob(&mut spec.stall)?,
                "stallms" => {
                    spec.stall_ms = value
                        .parse()
                        .map_err(|_| format!("bad stallms: {value:?}"))?;
                }
                other => return Err(format!("unknown fault key {other:?}")),
            }
        }
        Ok(spec)
    }
}

/// One faulted operation class; the name keys the draw stream.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    Read,
    Write,
}

impl Op {
    fn name(self) -> &'static str {
        match self {
            Op::Read => "read",
            Op::Write => "write",
        }
    }
}

/// The deterministic schedule (and transcript) shared by every clone.
#[derive(Debug)]
pub struct NetPlan {
    spec: NetFaultSpec,
    /// Per-`(op, connection)` call counters: the n-th read on a
    /// connection draws from the same stream regardless of interleaving.
    counters: Mutex<BTreeMap<(String, u64), u64>>,
    /// Every fired fault, in sorted order — two same-seed runs of the
    /// same request script dump identical transcripts at any worker count.
    transcript: Mutex<BTreeSet<String>>,
}

/// The network seam: `Real` passes through, `Faulty` injects scheduled
/// failures. Cloning a faulty shim shares the schedule and transcript.
#[derive(Debug, Clone, Default)]
pub enum NetShim {
    #[default]
    Real,
    Faulty(Arc<NetPlan>),
}

fn injected(what: &str, conn: u64) -> io::Error {
    io::Error::new(
        io::ErrorKind::ConnectionReset,
        format!("injected {what} (conn {conn})"),
    )
}

impl NetShim {
    /// A shim injecting faults per `spec`.
    pub fn faulty(spec: NetFaultSpec) -> NetShim {
        NetShim::Faulty(Arc::new(NetPlan {
            spec,
            counters: Mutex::new(BTreeMap::new()),
            transcript: Mutex::new(BTreeSet::new()),
        }))
    }

    /// Build a shim from `BENCHKIT_NETFAULTS` if set; parse errors are
    /// reported (never silently ignored) and fall back to `Real` so a bad
    /// spec cannot brick a daemon.
    pub fn from_env() -> NetShim {
        match std::env::var(NETFAULTS_ENV) {
            Ok(text) if !text.trim().is_empty() => match NetFaultSpec::parse(&text) {
                Ok(spec) => NetShim::faulty(spec),
                Err(e) => {
                    eprintln!("warning: ignoring bad {NETFAULTS_ENV}: {e}");
                    NetShim::Real
                }
            },
            _ => NetShim::Real,
        }
    }

    /// True when this shim can inject faults (used only for logging).
    pub fn is_faulty(&self) -> bool {
        matches!(self, NetShim::Faulty(_))
    }

    /// Bind the shim to one connection's draw streams. Connection ids are
    /// assigned by the caller (the daemon uses accept order).
    pub fn conn(&self, conn: u64) -> ConnShim {
        ConnShim {
            shim: self.clone(),
            conn,
        }
    }

    /// Every fault fired so far, sorted — the reproducibility artifact.
    pub fn transcript(&self) -> Vec<String> {
        match self {
            NetShim::Real => Vec::new(),
            NetShim::Faulty(plan) => plan
                .transcript
                .lock()
                .expect("netfault transcript lock")
                .iter()
                .cloned()
                .collect(),
        }
    }

    /// Draw the fault decision for the next `op` on `conn`. Returns the
    /// draw stream when a fault fires, so the torn/short prefix length
    /// comes from the same stream.
    fn draw(
        &self,
        op: Op,
        conn: u64,
        kind: &str,
        p_of: impl Fn(&NetFaultSpec) -> f64,
    ) -> Option<SplitMix64> {
        let NetShim::Faulty(plan) = self else {
            return None;
        };
        let p = p_of(&plan.spec);
        if p <= 0.0 {
            return None;
        }
        let n = {
            let mut counters = plan.counters.lock().expect("netfault counter lock");
            let slot = counters
                .entry((format!("{}:{kind}", op.name()), conn))
                .or_insert(0);
            let n = *slot;
            *slot += 1;
            n
        };
        let mut stream = SplitMix64::new(fnv1a(&[
            &plan.spec.seed.to_le_bytes(),
            op.name().as_bytes(),
            kind.as_bytes(),
            &conn.to_le_bytes(),
            &n.to_le_bytes(),
        ]));
        if stream.next_f64() < p {
            plan.transcript
                .lock()
                .expect("netfault transcript lock")
                .insert(format!("conn={conn:06} {}:{kind} n={n:06}", op.name()));
            Some(stream)
        } else {
            None
        }
    }
}

/// A [`NetShim`] bound to one connection.
#[derive(Debug, Clone)]
pub struct ConnShim {
    shim: NetShim,
    conn: u64,
}

impl ConnShim {
    /// The bound connection id.
    pub fn conn_id(&self) -> u64 {
        self.conn
    }

    /// Read into `buf`. A stall sleeps first (spending the caller's
    /// deadline); a reset errors before touching the socket; a torn read
    /// consumes bytes from the socket but delivers only a prefix, then
    /// errors — the rest of the request is gone for good, exactly like a
    /// peer dying mid-send.
    pub fn read(&self, src: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
        if self
            .shim
            .draw(Op::Read, self.conn, "stall", |s| s.stall)
            .is_some()
        {
            self.sleep_stall();
        }
        if self
            .shim
            .draw(Op::Read, self.conn, "reset", |s| s.reset)
            .is_some()
        {
            return Err(injected("connection reset on read", self.conn));
        }
        let n = src.read(buf)?;
        if let Some(mut stream) = self.shim.draw(Op::Read, self.conn, "torn", |s| s.torn) {
            if n > 0 {
                let cut = (stream.next_u64() % n as u64) as usize;
                return Err(injected(
                    &format!("torn read at byte {cut} of {n}"),
                    self.conn,
                ));
            }
        }
        Ok(n)
    }

    /// Write all of `bytes`. A short write lands only a prefix on the
    /// socket, then errors — the peer sees a truncated response and must
    /// treat the request as unacknowledged.
    pub fn write_all(&self, dst: &mut impl Write, bytes: &[u8]) -> io::Result<()> {
        if self
            .shim
            .draw(Op::Write, self.conn, "stall", |s| s.stall)
            .is_some()
        {
            self.sleep_stall();
        }
        if self
            .shim
            .draw(Op::Write, self.conn, "reset", |s| s.reset)
            .is_some()
        {
            return Err(injected("connection reset on write", self.conn));
        }
        if let Some(mut stream) = self.shim.draw(Op::Write, self.conn, "short", |s| s.short) {
            let cut = if bytes.is_empty() {
                0
            } else {
                (stream.next_u64() % bytes.len() as u64) as usize
            };
            let _ = dst.write_all(&bytes[..cut]);
            let _ = dst.flush();
            return Err(injected(
                &format!("short write at byte {cut} of {}", bytes.len()),
                self.conn,
            ));
        }
        dst.write_all(bytes)
    }

    fn sleep_stall(&self) {
        if let NetShim::Faulty(plan) = &self.shim {
            std::thread::sleep(std::time::Duration::from_millis(plan.spec.stall_ms));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_and_rejects_garbage() {
        let spec = NetFaultSpec::parse("seed=7, torn=0.25, short=0.1, stallms=50").unwrap();
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.torn, 0.25);
        assert_eq!(spec.short, 0.1);
        assert_eq!(spec.stall_ms, 50);
        assert!(NetFaultSpec::parse("torn=2.0").is_err());
        assert!(NetFaultSpec::parse("bogus=1").is_err());
        assert!(NetFaultSpec::parse("torn").is_err());
        assert!(NetFaultSpec::parse("seed=x").is_err());
    }

    #[test]
    fn real_shim_passes_through() {
        let shim = NetShim::Real.conn(0);
        let mut src = io::Cursor::new(b"hello".to_vec());
        let mut buf = [0u8; 8];
        assert_eq!(shim.read(&mut src, &mut buf).unwrap(), 5);
        let mut dst = Vec::new();
        shim.write_all(&mut dst, b"world").unwrap();
        assert_eq!(dst, b"world");
        assert!(NetShim::Real.transcript().is_empty());
    }

    #[test]
    fn torn_read_and_short_write_fire_and_are_transcribed() {
        let mut spec = NetFaultSpec::quiet(3);
        spec.torn = 1.0;
        spec.short = 1.0;
        let shim = NetShim::faulty(spec);
        let conn = shim.conn(1);
        let mut src = io::Cursor::new(b"request bytes".to_vec());
        let mut buf = [0u8; 16];
        let err = conn.read(&mut src, &mut buf).unwrap_err();
        assert!(err.to_string().contains("torn read"), "{err}");
        let mut dst = Vec::new();
        let err = conn.write_all(&mut dst, b"response bytes").unwrap_err();
        assert!(err.to_string().contains("short write"), "{err}");
        assert!(
            dst.len() < b"response bytes".len(),
            "short write must not land every byte"
        );
        let transcript = shim.transcript();
        assert_eq!(transcript.len(), 2, "{transcript:?}");
        assert!(transcript[0].contains("read:torn"), "{transcript:?}");
        assert!(transcript[1].contains("write:short"), "{transcript:?}");
    }

    /// The acceptance criterion: the same seed reproduces the same fault
    /// schedule and transcript, independent of the order connections
    /// interleave their operations — keyed, not ordered.
    #[test]
    fn schedule_and_transcript_are_keyed_not_ordered() {
        let spec = NetFaultSpec::parse("seed=11,torn=0.4,short=0.3,reset=0.2").unwrap();
        let run = |order: &[u64]| -> Vec<String> {
            let shim = NetShim::faulty(spec.clone());
            for &conn_id in order {
                let conn = shim.conn(conn_id);
                for _ in 0..5 {
                    let mut src = io::Cursor::new(b"x".repeat(32));
                    let mut buf = [0u8; 32];
                    let _ = conn.read(&mut src, &mut buf);
                    let _ = conn.write_all(&mut io::sink(), b"y".as_ref());
                }
            }
            shim.transcript()
        };
        let forward: Vec<u64> = (0..16).collect();
        let backward: Vec<u64> = (0..16).rev().collect();
        let a = run(&forward);
        let b = run(&backward);
        assert_eq!(a, b, "fault transcript depends on draw order");
        assert!(!a.is_empty(), "schedule drew no faults at these rates");
    }

    /// Same schedule under *real thread* interleaving: N threads each
    /// driving their own connection concurrently produce the transcript a
    /// serial run produces.
    #[test]
    fn transcript_is_stable_under_thread_interleaving() {
        let spec = NetFaultSpec::parse("seed=23,torn=0.5,short=0.5,reset=0.2").unwrap();
        let serial = {
            let shim = NetShim::faulty(spec.clone());
            for conn_id in 0..8u64 {
                let conn = shim.conn(conn_id);
                for _ in 0..6 {
                    let mut src = io::Cursor::new(b"z".repeat(16));
                    let mut buf = [0u8; 16];
                    let _ = conn.read(&mut src, &mut buf);
                    let _ = conn.write_all(&mut io::sink(), b"w".as_ref());
                }
            }
            shim.transcript()
        };
        let threaded = {
            let shim = NetShim::faulty(spec);
            std::thread::scope(|scope| {
                for conn_id in 0..8u64 {
                    let conn = shim.conn(conn_id);
                    scope.spawn(move || {
                        for _ in 0..6 {
                            let mut src = io::Cursor::new(b"z".repeat(16));
                            let mut buf = [0u8; 16];
                            let _ = conn.read(&mut src, &mut buf);
                            let _ = conn.write_all(&mut io::sink(), b"w".as_ref());
                        }
                    });
                }
            });
            shim.transcript()
        };
        assert_eq!(serial, threaded);
    }
}
