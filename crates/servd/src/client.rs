//! The push client: `benchkit push DIR --to ADDR` and the `query`
//! helper CI uses instead of curl.
//!
//! Retries follow the repo's one backoff policy — `simhpc::faults`'
//! jitter-free 30·2ⁿ ≤ 480 s schedule, wall-clock scaled by
//! `BENCHKIT_ENGINE_BACKOFF_SCALE` — except when the daemon names its own
//! price: a `503` carries `Retry-After`, and the client honors it (scaled
//! the same way) instead of guessing. A response that arrives truncated
//! (torn by a daemon-side fault) is *not* an acknowledgment; the batch is
//! retried whole, and the daemon's content dedup makes that safe.

use crate::http::{read_response, ClientResponse};
use simhpc::faults::BACKOFF_SCALE_ENV;
use std::io::{self, Write};
use std::net::TcpStream;
use std::path::Path;
use std::time::Duration;

/// Connection/response deadline for one client attempt.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

fn wall_scale() -> f64 {
    std::env::var(BACKOFF_SCALE_ENV)
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|s| s.is_finite() && *s >= 0.0)
        .unwrap_or(1.0)
}

fn sleep_scaled(nominal_s: f64) {
    let actual = (nominal_s * wall_scale()).min(480.0);
    if actual > 0.0 {
        std::thread::sleep(Duration::from_secs_f64(actual));
    }
}

/// One HTTP request over a fresh connection (one request per connection,
/// matching the daemon). Any transport error — including a torn response
/// — is an `Err`, never a partial success.
fn request(addr: &str, method: &str, path: &str, body: &[u8]) -> io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\n");
    if !body.is_empty() {
        head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    head.push_str("Connection: close\r\n\r\n");
    let mut bytes = head.into_bytes();
    bytes.extend_from_slice(body);
    stream.write_all(&bytes)?;
    stream.flush()?;
    read_response(&mut stream)
}

/// `GET` a daemon endpoint.
pub fn http_get(addr: &str, path: &str) -> io::Result<ClientResponse> {
    request(addr, "GET", path, &[])
}

/// `POST` a body to a daemon endpoint.
pub fn http_post(addr: &str, path: &str, body: &[u8]) -> io::Result<ClientResponse> {
    request(addr, "POST", path, body)
}

/// What one `push` accomplished.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PushReport {
    pub files: usize,
    /// Records newly acknowledged by the daemon across all batches.
    pub acked: u64,
    /// Records the daemon had already acknowledged (retries, re-pushes).
    pub duplicates: u64,
    /// Attempts that were retried (transport failures and 503s).
    pub retries: u32,
}

/// Push error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PushError(pub String);

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for PushError {}

/// Upload every `*.jsonl` perflog under `dir` (a file is also accepted)
/// to `addr`'s `/v1/ingest`, one batch per file in name order. Each batch
/// is retried up to `max_retries` times on transport failure or a `5xx`
/// answer; an unparseable batch (`400`) fails immediately — retrying a
/// malformed file cannot fix it.
pub fn push_dir(
    dir: &Path,
    addr: &str,
    max_retries: u32,
    out: &mut dyn Write,
) -> Result<PushReport, PushError> {
    let mut files = Vec::new();
    if dir.is_dir() {
        let entries = std::fs::read_dir(dir)
            .map_err(|e| PushError(format!("cannot read `{}`: {e}", dir.display())))?;
        files.extend(
            entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "jsonl")),
        );
        files.sort();
        if files.is_empty() {
            return Err(PushError(format!(
                "`{}`: no .jsonl perflogs to push",
                dir.display()
            )));
        }
    } else {
        files.push(dir.to_path_buf());
    }
    let mut report = PushReport {
        files: files.len(),
        ..PushReport::default()
    };
    for file in &files {
        let body = std::fs::read(file)
            .map_err(|e| PushError(format!("cannot read `{}`: {e}", file.display())))?;
        let mut attempt = 0u32;
        loop {
            match http_post(addr, "/v1/ingest", &body) {
                Ok(resp) if resp.status == 200 => {
                    let (acked, duplicates) = parse_ack(&resp);
                    report.acked += acked;
                    report.duplicates += duplicates;
                    writeln!(
                        out,
                        "pushed {}: {acked} acked, {duplicates} duplicate",
                        file.display()
                    )
                    .ok();
                    break;
                }
                // Any 5xx is the daemon's transient trouble (saturation,
                // a faulted WAL append that rolled back): retryable. 4xx
                // means this batch can never succeed: fatal.
                Ok(resp) if resp.status >= 500 => {
                    attempt += 1;
                    if attempt > max_retries {
                        return Err(PushError(format!(
                            "`{}`: daemon still answering {} after {max_retries} retries",
                            file.display(),
                            resp.status
                        )));
                    }
                    report.retries += 1;
                    // The daemon knows its own drain rate: honor its
                    // Retry-After over the default schedule when present.
                    let nominal = resp
                        .header("retry-after")
                        .and_then(|v| v.parse::<f64>().ok())
                        .filter(|s| s.is_finite() && *s >= 0.0)
                        .unwrap_or_else(|| simhpc::faults::backoff_s(attempt));
                    writeln!(
                        out,
                        "daemon answered {}; retrying {} in {nominal}s (attempt {attempt})",
                        resp.status,
                        file.display()
                    )
                    .ok();
                    sleep_scaled(nominal);
                }
                Ok(resp) => {
                    return Err(PushError(format!(
                        "`{}`: daemon answered {}: {}",
                        file.display(),
                        resp.status,
                        resp.body_text().trim_end()
                    )));
                }
                Err(e) => {
                    attempt += 1;
                    if attempt > max_retries {
                        return Err(PushError(format!(
                            "`{}`: push failed after {max_retries} retries: {e}",
                            file.display()
                        )));
                    }
                    report.retries += 1;
                    let nominal = simhpc::faults::backoff_s(attempt);
                    writeln!(
                        out,
                        "push of {} failed ({e}); retrying in {nominal}s (attempt {attempt})",
                        file.display()
                    )
                    .ok();
                    sleep_scaled(nominal);
                }
            }
        }
    }
    Ok(report)
}

fn parse_ack(resp: &ClientResponse) -> (u64, u64) {
    let text = resp.body_text();
    let Ok(v) = tinycfg::parse(text.trim()) else {
        return (0, 0);
    };
    let int = |key: &str| {
        v.get_path(key)
            .and_then(|x| x.as_int())
            .and_then(|i| u64::try_from(i).ok())
            .unwrap_or(0)
    };
    (int("acked"), int("duplicates"))
}
