//! `ppmetrics` — efficiency and performance-portability metrics.
//!
//! Principle 1 says a benchmark's Figure of Merit should measure
//! *efficiency* on a platform, not raw runtime. This crate implements the
//! metrics the paper builds its analysis on:
//!
//! * **architectural efficiency** — measured performance over the
//!   platform's theoretical peak (Figure 2 plots exactly this for the
//!   Triad bandwidth);
//! * **application efficiency** — measured performance over the best
//!   observed performance on that platform;
//! * **variant ratios** (Eq. 1) — `E = VAR / ORIG`, used in §3.2 to
//!   compare implementation gains against algorithmic gains;
//! * the **Pennycook performance-portability metric** ΦΦ — the harmonic
//!   mean of efficiencies across a platform set, zero if any platform is
//!   unsupported.

use dframe::{Cell, DataFrame};

/// Measured performance over theoretical peak, clamped to `[0, 1]` only on
/// the lower side (cache effects can legitimately exceed "peak" DRAM
/// figures, and the paper discusses exactly that trap — so we don't hide
/// it).
pub fn architectural_efficiency(measured: f64, peak: f64) -> f64 {
    assert!(peak > 0.0, "peak must be positive");
    clamp_low(measured / peak)
}

/// Measured performance over the best known performance on that platform.
pub fn application_efficiency(measured: f64, best: f64) -> f64 {
    assert!(best > 0.0, "best must be positive");
    clamp_low(measured / best)
}

/// Clamp negatives to zero while letting NaN through: `f64::max(NaN, 0.0)`
/// returns 0.0, which would silently launder a NaN measurement into a
/// legitimate-looking efficiency.
fn clamp_low(e: f64) -> f64 {
    if e < 0.0 {
        0.0
    } else {
        e
    }
}

/// Eq. 1 of the paper: the ratio of a variant's FOM to the original's.
pub fn variant_ratio(variant_fom: f64, original_fom: f64) -> f64 {
    assert!(original_fom > 0.0, "original FOM must be positive");
    variant_fom / original_fom
}

/// The Pennycook/Sewall/Lee performance-portability metric: the harmonic
/// mean of an application's efficiency across a set of platforms, or 0 if
/// the application does not run on every platform in the set.
///
/// `efficiencies[i]` is `Some(e_i)` when the application ran on platform
/// `i` with efficiency `e_i`, `None` when it did not run there.
pub fn performance_portability(efficiencies: &[Option<f64>]) -> f64 {
    if efficiencies.is_empty() {
        return 0.0;
    }
    let mut sum_inverse = 0.0;
    for e in efficiencies {
        match e {
            None => return 0.0,
            Some(v) if *v <= 0.0 => return 0.0,
            Some(v) => sum_inverse += 1.0 / v,
        }
    }
    efficiencies.len() as f64 / sum_inverse
}

/// Efficiencies of one application across a platform set, with helpers to
/// build the Figure-2 style analyses.
#[derive(Debug, Clone, Default)]
pub struct EfficiencySet {
    /// (platform label, efficiency); None = unsupported there.
    entries: Vec<(String, Option<f64>)>,
}

impl EfficiencySet {
    pub fn new() -> EfficiencySet {
        EfficiencySet::default()
    }

    /// Record a platform the application ran on.
    pub fn add(&mut self, platform: &str, measured: f64, peak: f64) {
        self.entries.push((
            platform.to_string(),
            Some(architectural_efficiency(measured, peak)),
        ));
    }

    /// Record a platform the application could not run on.
    pub fn add_unsupported(&mut self, platform: &str) {
        self.entries.push((platform.to_string(), None));
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn get(&self, platform: &str) -> Option<Option<f64>> {
        self.entries
            .iter()
            .find(|(p, _)| p == platform)
            .map(|(_, e)| *e)
    }

    /// The ΦΦ metric over this set.
    pub fn pp(&self) -> f64 {
        let effs: Vec<Option<f64>> = self.entries.iter().map(|(_, e)| *e).collect();
        performance_portability(&effs)
    }

    /// Lowest efficiency among supported platforms. A NaN efficiency
    /// poisons the minimum (the result is NaN), matching
    /// [`performance_portability`], whose harmonic mean also propagates
    /// NaN — `f64::min` would instead *discard* the NaN operand and
    /// silently report the smallest well-formed value.
    pub fn min_efficiency(&self) -> Option<f64> {
        self.entries.iter().filter_map(|(_, e)| *e).reduce(|a, b| {
            if a.is_nan() || b.is_nan() {
                f64::NAN
            } else {
                a.min(b)
            }
        })
    }

    pub fn entries(&self) -> &[(String, Option<f64>)] {
        &self.entries
    }
}

/// Add an `efficiency` column to a FOM frame: `value / peak(platform)`,
/// where `peaks` maps platform labels to theoretical peaks.
///
/// This is the programmable post-processing step of Principle 6: the same
/// transformation for every row, no hand-curation.
pub fn with_efficiency_column(
    df: &DataFrame,
    platform_column: &str,
    peaks: &[(String, f64)],
) -> Result<DataFrame, dframe::FrameError> {
    df.with_column("efficiency", |row| {
        let platform = row
            .get(platform_column)
            .and_then(Cell::as_str)
            .unwrap_or_default();
        let value = row.get("value").and_then(Cell::as_float);
        let peak = peaks.iter().find(|(p, _)| p == platform).map(|&(_, v)| v);
        match (value, peak) {
            (Some(v), Some(p)) if p > 0.0 => Cell::from(v / p),
            _ => Cell::Null,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiencies() {
        assert_eq!(architectural_efficiency(50.0, 100.0), 0.5);
        assert_eq!(application_efficiency(80.0, 100.0), 0.8);
        // Cache-inflated results deliberately pass through > 1.
        assert!(architectural_efficiency(150.0, 100.0) > 1.0);
    }

    #[test]
    fn eq1_ratios_from_table2() {
        // The paper's worked example: E_I = 39/24 = 1.625,
        // E_A = 51/24 = 2.125, and on AMD 124.2/39.2 = 3.168.
        assert!((variant_ratio(39.0, 24.0) - 1.625).abs() < 1e-12);
        assert!((variant_ratio(51.0, 24.0) - 2.125).abs() < 1e-12);
        assert!((variant_ratio(124.2, 39.2) - 3.168).abs() < 1e-3);
    }

    #[test]
    fn pp_is_harmonic_mean() {
        let pp = performance_portability(&[Some(0.5), Some(1.0)]);
        assert!((pp - 2.0 / 3.0).abs() < 1e-12);
        // Identical efficiencies: PP equals them.
        let pp = performance_portability(&[Some(0.7), Some(0.7), Some(0.7)]);
        assert!((pp - 0.7).abs() < 1e-12);
    }

    #[test]
    fn pp_zero_when_unsupported_anywhere() {
        assert_eq!(performance_portability(&[Some(0.9), None]), 0.0);
        assert_eq!(performance_portability(&[]), 0.0);
        assert_eq!(performance_portability(&[Some(0.0)]), 0.0);
    }

    #[test]
    fn pp_never_exceeds_max_efficiency() {
        let pp = performance_portability(&[Some(0.2), Some(0.9)]);
        assert!(pp <= 0.9);
        assert!(pp >= 0.2);
    }

    #[test]
    fn efficiency_set_workflow() {
        let mut set = EfficiencySet::new();
        set.add("cascadelake", 212.0, 282.0);
        set.add("milan", 335.0, 409.6);
        set.add_unsupported("volta");
        assert_eq!(set.len(), 3);
        assert_eq!(set.pp(), 0.0, "unsupported platform zeroes PP");
        assert!(set.get("cascadelake").unwrap().unwrap() > 0.7);
        assert!(set.min_efficiency().unwrap() > 0.7);

        let mut supported = EfficiencySet::new();
        supported.add("a", 80.0, 100.0);
        supported.add("b", 90.0, 100.0);
        assert!(supported.pp() > 0.8 && supported.pp() < 0.9);
    }

    #[test]
    fn nan_efficiency_poisons_min_and_pp() {
        // The fixed behavior: a NaN efficiency must surface, never vanish.
        // (Before the fix, `reduce(f64::min)` dropped NaN operands, so
        // min_efficiency reported 0.5 here and the bad platform was
        // invisible to any ranking built on top.)
        assert!(architectural_efficiency(f64::NAN, 100.0).is_nan());
        assert!(application_efficiency(f64::NAN, 100.0).is_nan());
        assert_eq!(
            architectural_efficiency(-5.0, 100.0),
            0.0,
            "clamp keeps negatives at 0"
        );
        let mut set = EfficiencySet::new();
        set.add("good", 50.0, 100.0);
        set.add("bad", f64::NAN, 100.0);
        set.add("fine", 80.0, 100.0);
        assert!(
            set.min_efficiency().unwrap().is_nan(),
            "NaN must propagate through the minimum"
        );
        // performance_portability behaves the same way: the harmonic mean
        // over a NaN efficiency is NaN, so the two reductions agree.
        assert!(performance_portability(&[Some(0.5), Some(f64::NAN)]).is_nan());
        assert!(set.pp().is_nan());
        // Without the NaN, the minimum is the honest smallest value.
        let mut clean = EfficiencySet::new();
        clean.add("good", 50.0, 100.0);
        clean.add("fine", 80.0, 100.0);
        assert_eq!(clean.min_efficiency(), Some(0.5));
    }

    #[test]
    fn efficiency_column() {
        let mut df = DataFrame::new(vec!["platform", "value"]);
        df.push_row(vec![Cell::from("a"), Cell::from(50.0)])
            .unwrap();
        df.push_row(vec![Cell::from("b"), Cell::from(30.0)])
            .unwrap();
        df.push_row(vec![Cell::from("c"), Cell::from(10.0)])
            .unwrap();
        let peaks = vec![("a".to_string(), 100.0), ("b".to_string(), 60.0)];
        let out = with_efficiency_column(&df, "platform", &peaks).unwrap();
        assert_eq!(
            out.column("efficiency").unwrap().get(0).as_float(),
            Some(0.5)
        );
        assert_eq!(
            out.column("efficiency").unwrap().get(1).as_float(),
            Some(0.5)
        );
        assert!(
            out.column("efficiency").unwrap().get(2).is_null(),
            "no peak for c"
        );
    }
}
