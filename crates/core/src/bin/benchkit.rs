//! `benchkit` — the command-line entry point.
//!
//! See `benchkit help` (or `benchkit::cli::USAGE`) for the grammar; all
//! logic lives in `benchkit::cli` where it is unit-tested.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match benchkit::cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", benchkit::cli::USAGE);
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout();
    if let Err(e) = benchkit::cli::execute(cmd, &mut stdout) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
