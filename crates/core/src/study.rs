//! The Figure-1 workflow as an API: a *study* takes benchmark definitions
//! and a stable of systems, runs the full pipeline everywhere, and hands
//! back an assimilated frame plus analysis helpers.

use dframe::{Cell, DataFrame};
use harness::checkpoint::CheckpointError;
use harness::{SuiteProgress, SuiteReport, SuiteRunner, TestCase};
use postproc::Heatmap;
use ppmetrics::EfficiencySet;
use simhpc::faults::FaultProfile;
use std::path::{Path, PathBuf};

/// A benchmarking study: cases × systems.
#[derive(Debug, Default)]
pub struct Study {
    pub name: String,
    cases: Vec<TestCase>,
    systems: Vec<String>,
    seed: u64,
    jobs: usize,
    warm_store: bool,
    fault_profile: FaultProfile,
    max_retries: u32,
    fail_fast: bool,
    quarantine: u32,
    fault_overrides: Vec<(String, FaultProfile)>,
    heal: bool,
    checkpoint: Option<(PathBuf, bool)>,
    store: Option<PathBuf>,
    engine: Option<engine::EngineSpec>,
    engine_overrides: Vec<(String, engine::EngineSpec)>,
}

impl Study {
    pub fn new(name: &str) -> Study {
        Study {
            name: name.to_string(),
            cases: Vec::new(),
            systems: Vec::new(),
            seed: 42,
            jobs: 1,
            warm_store: false,
            fault_profile: FaultProfile::none(),
            max_retries: 2,
            fail_fast: false,
            quarantine: 0,
            fault_overrides: Vec::new(),
            heal: false,
            checkpoint: None,
            store: None,
            engine: None,
            engine_overrides: Vec::new(),
        }
    }

    pub fn with_case(mut self, case: TestCase) -> Study {
        self.cases.push(case);
        self
    }

    pub fn with_cases(mut self, cases: Vec<TestCase>) -> Study {
        self.cases.extend(cases);
        self
    }

    pub fn on_systems(mut self, systems: &[&str]) -> Study {
        self.systems.extend(systems.iter().map(|s| s.to_string()));
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Study {
        self.seed = seed;
        self
    }

    /// Run up to `jobs` (case, system) combinations concurrently
    /// (0 = one per available core). The results are identical to a
    /// serial study; only the wall-clock changes.
    pub fn with_jobs(mut self, jobs: usize) -> Study {
        self.jobs = jobs;
        self
    }

    /// Share one package store per system across the study's cases, so
    /// multi-case systems reuse dependency builds (the results stay
    /// identical; only build accounting and wall-clock change).
    pub fn with_warm_store(mut self, warm: bool) -> Study {
        self.warm_store = warm;
        self
    }

    /// Inject seeded deterministic faults (builds, node failures,
    /// timeouts) from a named profile. The default profile is `none`,
    /// which leaves every run untouched.
    pub fn with_fault_profile(mut self, profile: FaultProfile) -> Study {
        self.fault_profile = profile;
        self
    }

    /// How many times each faulted stage is retried before the cell is
    /// reported failed.
    pub fn with_max_retries(mut self, max_retries: u32) -> Study {
        self.max_retries = max_retries;
        self
    }

    /// Skip every grid cell after the first failure (in canonical grid
    /// order, so the report is still identical at any `--jobs` count).
    pub fn with_fail_fast(mut self, fail_fast: bool) -> Study {
        self.fail_fast = fail_fast;
        self
    }

    /// Quarantine a system after `k` consecutive failures: its remaining
    /// cells are skipped with an explicit reason. `0` disables.
    pub fn with_quarantine(mut self, k: u32) -> Study {
        self.quarantine = k;
        self
    }

    /// Override the fault profile for one system (`--fault-profile
    /// sys=name`); other systems keep the base profile.
    pub fn with_fault_override(mut self, system: &str, profile: FaultProfile) -> Study {
        self.fault_overrides.push((system.to_string(), profile));
        self
    }

    /// Return drained nodes to service after each system's deterministic
    /// repair window (`--heal`).
    pub fn with_heal(mut self, heal: bool) -> Study {
        self.heal = heal;
        self
    }

    /// Journal each completed cell to `dir` so an interrupted study can
    /// be resumed (`--checkpoint`). Also enables quarantine memory.
    pub fn with_checkpoint(mut self, dir: &Path) -> Study {
        self.checkpoint = Some((dir.to_path_buf(), false));
        self
    }

    /// Resume an interrupted study from the journal in `dir` (`--resume`).
    pub fn with_resume(mut self, dir: &Path) -> Study {
        self.checkpoint = Some((dir.to_path_buf(), true));
        self
    }

    /// Warm builds from (and persist new builds to) the crash-safe
    /// persistent package store at `dir` (`--store`). Store trouble
    /// degrades to an in-memory warm store; it never fails the study.
    pub fn with_store(mut self, dir: &Path) -> Study {
        self.store = Some(dir.to_path_buf());
        self
    }

    /// Run every case's run stage in an external engine subprocess
    /// speaking the KLV protocol (`--engine`). Engine failures are
    /// contained per attempt; they never abort the study.
    pub fn with_engine(mut self, spec: Option<engine::EngineSpec>) -> Study {
        self.engine = spec;
        self
    }

    /// Override the engine for one case (`--engine case=SPEC`).
    pub fn with_engine_override(mut self, case: &str, spec: engine::EngineSpec) -> Study {
        self.engine_overrides.push((case.to_string(), spec));
        self
    }

    /// Execute the full workflow: build, run, extract on every system.
    pub fn run(&self) -> StudyResults {
        self.run_with_progress(&|_| {})
    }

    /// Execute the full workflow, streaming each (case, system) outcome
    /// to `on_flush` in canonical grid order as soon as it completes.
    /// Panics on checkpoint errors — use [`Study::try_run_with_progress`]
    /// when checkpointing is configured.
    pub fn run_with_progress(&self, on_flush: &(dyn Fn(SuiteProgress<'_>) + Sync)) -> StudyResults {
        self.try_run_with_progress(on_flush)
            .expect("checkpointing failed")
    }

    /// [`Study::run_with_progress`] with checkpoint errors surfaced.
    pub fn try_run_with_progress(
        &self,
        on_flush: &(dyn Fn(SuiteProgress<'_>) + Sync),
    ) -> Result<StudyResults, CheckpointError> {
        let mut runner =
            SuiteRunner::new(&self.systems.iter().map(String::as_str).collect::<Vec<_>>())
                .with_seed(self.seed)
                .with_jobs(self.jobs)
                .with_warm_store(self.warm_store)
                .with_fault_profile(self.fault_profile.clone())
                .with_max_retries(self.max_retries)
                .with_fail_fast(self.fail_fast)
                .with_quarantine(self.quarantine)
                .with_heal(self.heal);
        for (system, profile) in &self.fault_overrides {
            runner = runner.with_fault_override(system, profile.clone());
        }
        match &self.checkpoint {
            Some((dir, true)) => runner = runner.with_resume(dir),
            Some((dir, false)) => runner = runner.with_checkpoint(dir),
            None => {}
        }
        if let Some(dir) = &self.store {
            runner = runner.with_store(dir);
        }
        runner = runner.with_engine(self.engine.clone());
        for (case, spec) in &self.engine_overrides {
            runner = runner.with_engine_override(case, spec.clone());
        }
        let report = runner.try_run_with_progress(&self.cases, on_flush)?;
        Ok(StudyResults {
            name: self.name.clone(),
            report,
        })
    }
}

/// The analysed output of a study.
#[derive(Debug)]
pub struct StudyResults {
    pub name: String,
    pub report: SuiteReport,
}

impl StudyResults {
    /// The assimilated frame (one row per FOM per run).
    pub fn frame(&self) -> DataFrame {
        self.report.combined_frame()
    }

    /// Mean value of `fom` for `benchmark` on `system`, if it ran.
    /// `system` may be a bare system name or a `system:partition` spec.
    pub fn mean_fom(&self, benchmark: &str, system: &str, fom: &str) -> Option<f64> {
        let (sys_name, partition) = match system.split_once(':') {
            Some((s, p)) => (s, Some(p)),
            None => (system, None),
        };
        let mut df = self
            .frame()
            .filter_eq("benchmark", &Cell::from(benchmark))
            .ok()?
            .filter_eq("system", &Cell::from(sys_name))
            .ok()?
            .filter_eq("fom", &Cell::from(fom))
            .ok()?;
        if let Some(p) = partition {
            df = df.filter_eq("partition", &Cell::from(p)).ok()?;
        }
        let vals = df.column("value")?.floats();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Architectural-efficiency set for one benchmark's `fom` across the
    /// study's systems, using peak values supplied per system label.
    pub fn efficiency_set(
        &self,
        benchmark: &str,
        fom: &str,
        peaks: &[(&str, f64)],
    ) -> EfficiencySet {
        let mut set = EfficiencySet::new();
        for (system, peak) in peaks {
            match self.mean_fom(benchmark, system, fom) {
                Some(v) => set.add(system, v, *peak),
                None => set.add_unsupported(system),
            }
        }
        set
    }

    /// Figure-2-style heat map: benchmarks (rows) × systems (columns) of
    /// architectural efficiency; cells stay starred where a combination
    /// was skipped.
    pub fn efficiency_heatmap(
        &self,
        title: &str,
        benchmarks: &[&str],
        fom: &str,
        peaks: &[(&str, f64)],
    ) -> Heatmap {
        let systems: Vec<&str> = peaks.iter().map(|(s, _)| *s).collect();
        let mut map = Heatmap::new(title, benchmarks.to_vec(), systems.clone());
        for bench in benchmarks {
            for (system, peak) in peaks {
                if let Some(v) = self.mean_fom(bench, system, fom) {
                    map.set(bench, system, v / peak);
                }
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harness::cases;
    use parkern::Model;

    #[test]
    fn study_runs_and_summarizes() {
        let study = Study::new("smoke")
            .with_case(cases::babelstream(Model::Omp, 1 << 22))
            .with_case(cases::babelstream(Model::Cuda, 1 << 22))
            .on_systems(&["isambard-macs:cascadelake", "isambard-macs:volta"]);
        let results = study.run();
        assert_eq!(results.report.n_ran(), 2, "omp on CPU + cuda on GPU");
        assert_eq!(results.report.n_skipped(), 2, "the two cross combinations");

        let omp = results
            .mean_fom("babelstream_omp", "isambard-macs:cascadelake", "Triad")
            .unwrap();
        assert!(omp > 0.0);
        assert!(results
            .mean_fom("babelstream_omp", "isambard-macs:volta", "Triad")
            .is_none());
    }

    #[test]
    fn heatmap_has_stars_for_skips() {
        let study = Study::new("fig2-mini")
            .with_case(cases::babelstream(Model::Omp, 1 << 22))
            .with_case(cases::babelstream(Model::Cuda, 1 << 22))
            .on_systems(&["isambard-macs:cascadelake", "isambard-macs:volta"]);
        let results = study.run();
        let peaks = [
            ("isambard-macs:cascadelake", 282_000.0),
            ("isambard-macs:volta", 900_000.0),
        ];
        let map = results.efficiency_heatmap(
            "Figure 2 (mini)",
            &["babelstream_omp", "babelstream_cuda"],
            "Triad",
            &peaks,
        );
        assert!(
            map.get("babelstream_omp", "isambard-macs:cascadelake")
                .unwrap()
                > 0.5
        );
        assert!(map.get("babelstream_omp", "isambard-macs:volta").is_none());
        assert!(map.get("babelstream_cuda", "isambard-macs:volta").unwrap() > 0.85);
        assert!(map.render_text().contains('*'));
    }

    #[test]
    fn parallel_study_reproduces_serial_frame() {
        let build = |jobs| {
            Study::new("jobs-parity")
                .with_case(cases::babelstream(Model::Omp, 1 << 22))
                .with_case(cases::babelstream(Model::Tbb, 1 << 22))
                .on_systems(&["archer2", "csd3"])
                .with_seed(9)
                .with_jobs(jobs)
                .run()
        };
        let serial = build(1);
        let parallel = build(4);
        assert_eq!(serial.frame().to_string(), parallel.frame().to_string());
        assert_eq!(
            serial.mean_fom("babelstream_omp", "archer2", "Triad"),
            parallel.mean_fom("babelstream_omp", "archer2", "Triad"),
        );
    }

    #[test]
    fn warm_study_streams_and_matches_cold_foms() {
        use std::sync::Mutex;
        let build = |warm| {
            Study::new("warmth")
                .with_case(cases::babelstream(Model::Omp, 1 << 22))
                .with_case(cases::babelstream(Model::Tbb, 1 << 22))
                .on_systems(&["csd3"])
                .with_seed(5)
                .with_warm_store(warm)
        };
        let cold = build(false).run();
        let streamed = Mutex::new(Vec::new());
        let warm = build(true).with_jobs(2).run_with_progress(&|p| {
            streamed
                .lock()
                .unwrap()
                .push(format!("{}/{}", p.case, p.system));
        });
        // Same FOMs, warmer store.
        assert_eq!(
            cold.mean_fom("babelstream_omp", "csd3", "Triad"),
            warm.mean_fom("babelstream_omp", "csd3", "Triad"),
        );
        assert_eq!(cold.frame().to_string(), warm.frame().to_string());
        assert!(warm.report.total_packages_cached() > 0);
        // Streamed every cell in canonical order.
        assert_eq!(
            streamed.into_inner().unwrap(),
            vec!["babelstream_omp/csd3", "babelstream_tbb/csd3"]
        );
    }

    #[test]
    fn efficiency_set_feeds_pp_metric() {
        let study = Study::new("pp")
            .with_case(cases::babelstream(Model::Omp, 1 << 27))
            .on_systems(&["archer2", "csd3"]);
        let results = study.run();
        let set = results.efficiency_set(
            "babelstream_omp",
            "Triad",
            &[("archer2", 409_600.0), ("csd3", 282_000.0)],
        );
        let pp = set.pp();
        assert!(pp > 0.5 && pp < 1.0, "PP = {pp}");
    }
}
