//! The command-line interface — the analogue of the paper's appendix
//! invocations like:
//!
//! ```text
//! reframe -c benchmarks/apps/babelstream -r --system=isambard-macs:cascadelake \
//!         -S spack_spec='babelstream%gcc@9.2.0 +omp'
//! ```
//!
//! Argument parsing and command execution live here (testable); the
//! `benchkit` binary is a thin wrapper. No external CLI dependency: the
//! grammar is small and fixed.

use crate::study::Study;
use harness::{cases, Harness, RunOptions, TestCase};
use std::fmt;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `list-systems`
    ListSystems,
    /// `list-benchmarks`
    ListBenchmarks,
    /// `run -c <benchmark> --system <spec> [--seed N] [--repeats N]`
    Run {
        benchmark: String,
        system: String,
        seed: u64,
        repeats: u32,
    },
    /// `spec <spack-spec> --system <spec>` — concretize and print.
    Spec { spec: String, system: String },
    /// `survey --system a --system b -c x -c y [--seed N] [--jobs N]
    /// [--warm-store] [--fault-profile [SYS=]NAME]... [--max-retries N]
    /// [--fail-fast] [--quarantine K] [--heal] [--checkpoint DIR |
    /// --resume DIR] [--interrupt-after N]`
    Survey {
        benchmarks: Vec<String>,
        systems: Vec<String>,
        seed: u64,
        jobs: usize,
        warm_store: bool,
        fault_profile: String,
        /// Per-system overrides: (system spec, profile name).
        fault_overrides: Vec<(String, String)>,
        max_retries: u32,
        fail_fast: bool,
        quarantine: u32,
        /// Return drained nodes after each system's repair window.
        heal: bool,
        /// Journal completed cells into this directory (fresh journal).
        checkpoint: Option<String>,
        /// Continue an interrupted survey from this directory's journal.
        resume: Option<String>,
        /// Abort the process (exit 3) after this many cells have been
        /// journaled — a deterministic crash for resume testing.
        interrupt_after: Option<usize>,
    },
    /// `help`
    Help,
}

/// CLI error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

pub const USAGE: &str = "benchkit — automated and reproducible benchmarking

USAGE:
    benchkit list-systems
    benchkit list-benchmarks
    benchkit run -c <benchmark> --system <system[:partition]> [--seed N] [--repeats N]
    benchkit survey -c <benchmark>... --system <system>... [--seed N] [--jobs N] [--warm-store]
                    [--fault-profile [SYS=]NAME]... [--max-retries N] [--fail-fast]
                    [--quarantine K] [--heal] [--checkpoint DIR | --resume DIR]
                    [--interrupt-after N]
        --jobs N runs N (benchmark, system) combinations concurrently
        (0 = one per available core); the report is identical to --jobs 1.
        --warm-store shares one package store per system so its cases
        reuse dependency builds (accounting stays deterministic: the
        first case in case order is attributed each shared build).
        Outcomes stream as they complete, in grid order.
        --fault-profile NAME injects seeded deterministic faults (build
        failures, node failures, timeouts); NAME is one of none, flaky,
        brutal. The same --seed and profile replay the same faults at
        any --jobs count. --fault-profile SYS=NAME overrides the profile
        for one system (repeatable). --max-retries N bounds per-stage
        retries (default 2). --fail-fast skips every cell after the first
        failure; --quarantine K skips a system's remaining cells after
        K consecutive failures. --heal returns nodes drained by failures
        to service after a per-system deterministic repair window.
        --checkpoint DIR journals each completed cell durably so an
        interrupted survey can be continued with --resume DIR; the
        resumed report is byte-identical to an uninterrupted run, and a
        journal from a different configuration is refused. Checkpoint
        directories also remember per-system failure streaks: a system
        quarantined in an earlier study is probed with a single canary
        cell before being readmitted. --interrupt-after N aborts the
        process (exit 3) after N cells, for crash drills.
        Exits nonzero if any cell fails.
    benchkit spec <spack-spec> --system <system>
    benchkit help

EXAMPLES:
    benchkit run -c babelstream_omp --system isambard-macs:cascadelake
    benchkit survey -c babelstream_omp -c hpgmg --system archer2 --system csd3
    benchkit spec 'hpgmg%gcc' --system archer2
";

/// Parse an argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let sub = match it.next() {
        None => return Ok(Command::Help),
        Some(s) => s.as_str(),
    };
    let rest: Vec<String> = it.cloned().collect();
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "list-systems" => Ok(Command::ListSystems),
        "list-benchmarks" => Ok(Command::ListBenchmarks),
        "run" => {
            let opts = parse_options(&rest)?;
            if opts.warm_store {
                return Err(CliError(
                    "run: `--warm-store` only applies to `survey`".into(),
                ));
            }
            for (set, flag) in [
                (!opts.fault_profiles.is_empty(), "--fault-profile"),
                (opts.max_retries.is_some(), "--max-retries"),
                (opts.fail_fast, "--fail-fast"),
                (opts.quarantine.is_some(), "--quarantine"),
                (opts.heal, "--heal"),
                (opts.checkpoint.is_some(), "--checkpoint"),
                (opts.resume.is_some(), "--resume"),
                (opts.interrupt_after.is_some(), "--interrupt-after"),
            ] {
                if set {
                    return Err(CliError(format!("run: `{flag}` only applies to `survey`")));
                }
            }
            let benchmark = opts
                .cases
                .first()
                .cloned()
                .ok_or_else(|| CliError("run: missing `-c <benchmark>`".into()))?;
            let system = opts
                .systems
                .first()
                .cloned()
                .ok_or_else(|| CliError("run: missing `--system`".into()))?;
            Ok(Command::Run {
                benchmark,
                system,
                seed: opts.seed,
                repeats: opts.repeats,
            })
        }
        "survey" => {
            let opts = parse_options(&rest)?;
            if opts.cases.is_empty() {
                return Err(CliError("survey: at least one `-c <benchmark>`".into()));
            }
            if opts.systems.is_empty() {
                return Err(CliError("survey: at least one `--system`".into()));
            }
            if opts.checkpoint.is_some() && opts.resume.is_some() {
                return Err(CliError(
                    "survey: `--checkpoint` and `--resume` are mutually exclusive \
                     (--resume continues an existing checkpoint directory)"
                        .into(),
                ));
            }
            // Split repeated --fault-profile values into the base profile
            // (bare NAME, at most once) and per-system overrides
            // (SYS=NAME, at most once per system, SYS must be surveyed).
            let mut fault_profile: Option<String> = None;
            let mut fault_overrides: Vec<(String, String)> = Vec::new();
            for value in &opts.fault_profiles {
                match value.split_once('=') {
                    None => {
                        if fault_profile.is_some() {
                            return Err(CliError(format!(
                                "survey: duplicate base `--fault-profile {value}` \
                                 (use SYS=NAME for per-system overrides)"
                            )));
                        }
                        fault_profile = Some(value.clone());
                    }
                    Some((system, name)) => {
                        if !opts.systems.iter().any(|s| s == system) {
                            return Err(CliError(format!(
                                "survey: `--fault-profile {value}` names system `{system}` \
                                 which is not in the surveyed `--system` list"
                            )));
                        }
                        if fault_overrides.iter().any(|(s, _)| s == system) {
                            return Err(CliError(format!(
                                "survey: duplicate `--fault-profile` override for `{system}`"
                            )));
                        }
                        fault_overrides.push((system.to_string(), name.to_string()));
                    }
                }
            }
            Ok(Command::Survey {
                benchmarks: opts.cases,
                systems: opts.systems,
                seed: opts.seed,
                jobs: opts.jobs,
                warm_store: opts.warm_store,
                fault_profile: fault_profile.unwrap_or_else(|| "none".to_string()),
                fault_overrides,
                max_retries: opts.max_retries.unwrap_or(2),
                fail_fast: opts.fail_fast,
                quarantine: opts.quarantine.unwrap_or(0),
                heal: opts.heal,
                checkpoint: opts.checkpoint,
                resume: opts.resume,
                interrupt_after: opts.interrupt_after,
            })
        }
        "spec" => {
            let mut positional = None;
            let mut i = 0;
            let mut system = None;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--system" => {
                        system = Some(take_value(&rest, &mut i, "--system")?);
                    }
                    other if !other.starts_with('-') && positional.is_none() => {
                        positional = Some(other.to_string());
                        i += 1;
                    }
                    other => return Err(CliError(format!("spec: unexpected argument `{other}`"))),
                }
            }
            Ok(Command::Spec {
                spec: positional.ok_or_else(|| CliError("spec: missing <spack-spec>".into()))?,
                system: system.ok_or_else(|| CliError("spec: missing `--system`".into()))?,
            })
        }
        other => Err(CliError(format!(
            "unknown command `{other}` (try `benchkit help`)"
        ))),
    }
}

struct Options {
    cases: Vec<String>,
    systems: Vec<String>,
    seed: u64,
    repeats: u32,
    jobs: usize,
    warm_store: bool,
    /// Raw repeated `--fault-profile` values (`NAME` or `SYS=NAME`);
    /// split into base + overrides by the survey arm.
    fault_profiles: Vec<String>,
    max_retries: Option<u32>,
    fail_fast: bool,
    quarantine: Option<u32>,
    heal: bool,
    checkpoint: Option<String>,
    resume: Option<String>,
    interrupt_after: Option<usize>,
}

fn take_value(args: &[String], i: &mut usize, flag: &str) -> Result<String, CliError> {
    let value = args
        .get(*i + 1)
        .cloned()
        .ok_or_else(|| CliError(format!("{flag} needs a value")))?;
    *i += 2;
    Ok(value)
}

fn parse_options(args: &[String]) -> Result<Options, CliError> {
    let mut opts = Options {
        cases: Vec::new(),
        systems: Vec::new(),
        seed: 42,
        repeats: 1,
        jobs: 1,
        warm_store: false,
        fault_profiles: Vec::new(),
        max_retries: None,
        fail_fast: false,
        quarantine: None,
        heal: false,
        checkpoint: None,
        resume: None,
        interrupt_after: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-c" | "--case" => opts.cases.push(take_value(args, &mut i, "-c")?),
            "--system" => {
                let v = take_value(args, &mut i, "--system")?;
                // `--system=a` form also accepted.
                opts.systems.push(v);
            }
            "--seed" => {
                let v = take_value(args, &mut i, "--seed")?;
                opts.seed = v.parse().map_err(|_| CliError(format!("bad seed `{v}`")))?;
            }
            "--repeats" => {
                let v = take_value(args, &mut i, "--repeats")?;
                opts.repeats = v
                    .parse()
                    .map_err(|_| CliError(format!("bad repeats `{v}`")))?;
            }
            "--jobs" | "-j" => {
                let v = take_value(args, &mut i, "--jobs")?;
                opts.jobs = v.parse().map_err(|_| CliError(format!("bad jobs `{v}`")))?;
            }
            "--warm-store" => {
                opts.warm_store = true;
                i += 1;
            }
            "--fault-profile" => {
                let v = take_value(args, &mut i, "--fault-profile")?;
                // `SYS=NAME` overrides one system; bare `NAME` is the base.
                let name = v.split_once('=').map(|(_, n)| n).unwrap_or(&v);
                if simhpc::faults::FaultProfile::from_name(name).is_none() {
                    return Err(CliError(format!(
                        "unknown fault profile `{name}` (known: {})",
                        simhpc::faults::FaultProfile::known_names().join(", ")
                    )));
                }
                opts.fault_profiles.push(v);
            }
            "--max-retries" => {
                let v = take_value(args, &mut i, "--max-retries")?;
                opts.max_retries = Some(
                    v.parse()
                        .map_err(|_| CliError(format!("bad max-retries `{v}`")))?,
                );
            }
            "--fail-fast" => {
                opts.fail_fast = true;
                i += 1;
            }
            "--quarantine" => {
                let v = take_value(args, &mut i, "--quarantine")?;
                opts.quarantine = Some(
                    v.parse()
                        .map_err(|_| CliError(format!("bad quarantine `{v}`")))?,
                );
            }
            "--heal" => {
                opts.heal = true;
                i += 1;
            }
            "--checkpoint" => {
                opts.checkpoint = Some(take_value(args, &mut i, "--checkpoint")?);
            }
            "--resume" => {
                opts.resume = Some(take_value(args, &mut i, "--resume")?);
            }
            "--interrupt-after" => {
                let v = take_value(args, &mut i, "--interrupt-after")?;
                opts.interrupt_after = Some(
                    v.parse()
                        .map_err(|_| CliError(format!("bad interrupt-after `{v}`")))?,
                );
            }
            other if other.starts_with("--system=") => {
                opts.systems.push(other["--system=".len()..].to_string());
                i += 1;
            }
            other => return Err(CliError(format!("unexpected argument `{other}`"))),
        }
    }
    Ok(opts)
}

/// All named benchmarks the CLI can run.
pub fn benchmark_names() -> Vec<String> {
    let mut names: Vec<String> = parkern::Model::all()
        .iter()
        .map(|m| format!("babelstream_{}", m.name()))
        .collect();
    names.extend(
        benchapps::hpcg::HpcgVariant::all()
            .iter()
            .map(|v| format!("hpcg_{}", v.spec_name())),
    );
    names.push("hpgmg".to_string());
    names.push("stream".to_string());
    names
}

/// Build the TestCase for a CLI benchmark name.
pub fn case_by_name(name: &str) -> Result<TestCase, CliError> {
    if let Some(model_name) = name.strip_prefix("babelstream_") {
        let model = parkern::Model::from_name(model_name)
            .ok_or_else(|| CliError(format!("unknown programming model `{model_name}`")))?;
        return Ok(cases::babelstream(model, 1 << 25));
    }
    if let Some(variant_name) = name.strip_prefix("hpcg_") {
        let variant = benchapps::hpcg::HpcgVariant::from_spec_name(variant_name)
            .ok_or_else(|| CliError(format!("unknown HPCG variant `{variant_name}`")))?;
        return Ok(cases::hpcg(variant, 40));
    }
    if name == "hpgmg" {
        return Ok(cases::hpgmg());
    }
    if name == "stream" {
        return Ok(cases::stream(1 << 25));
    }
    Err(CliError(format!(
        "unknown benchmark `{name}` — try `benchkit list-benchmarks`"
    )))
}

/// Execute a parsed command, writing human-readable output. The writer is
/// `Send` because `survey` streams outcome lines from worker threads as
/// grid cells complete (the ordered flush).
pub fn execute(
    cmd: Command,
    out: &mut (dyn std::io::Write + Send),
) -> Result<(), Box<dyn std::error::Error>> {
    match cmd {
        Command::Help => writeln!(out, "{USAGE}")?,
        Command::ListSystems => {
            writeln!(out, "Available systems (from the simhpc catalog):")?;
            for sys in simhpc::catalog::all_systems() {
                for part in sys.partitions() {
                    let p = part.processor();
                    writeln!(
                        out,
                        "  {:<28} {} ({} cores, {:.0} GB/s peak)",
                        format!("{}:{}", sys.name(), part.name()),
                        p.model(),
                        p.total_cores(),
                        p.peak_mem_bw_gbs(),
                    )?;
                }
            }
        }
        Command::ListBenchmarks => {
            writeln!(out, "Available benchmarks:")?;
            for name in benchmark_names() {
                writeln!(out, "  {name}")?;
            }
        }
        Command::Run {
            benchmark,
            system,
            seed,
            repeats,
        } => {
            let case = case_by_name(&benchmark)?;
            let mut harness = Harness::new(RunOptions::on_system(&system).with_seed(seed));
            for rep in 0..repeats.max(1) {
                let report = harness.run_case(&case)?;
                writeln!(
                    out,
                    "[{}/{repeats}] {} on {} (hash {}, built {}, cached {})",
                    rep + 1,
                    benchmark,
                    system,
                    report.dag_hash,
                    report.packages_built,
                    report.packages_cached,
                )?;
                for fom in &report.record.foms {
                    writeln!(out, "    {:<8} {:>16.3} {}", fom.name, fom.value, fom.unit)?;
                }
                writeln!(
                    out,
                    "    energy {:.0} J, avg power {:.0} W, queue wait {:.3} s",
                    report.telemetry.energy_j, report.telemetry.avg_power_w, report.queue_wait_s,
                )?;
            }
            // Emit the perflog like the real framework.
            let (sys_name, _) = system.split_once(':').unwrap_or((system.as_str(), ""));
            if let Some(log) = harness.perflog(sys_name, case.app.name()) {
                writeln!(out, "\nperflog ({} records):", log.len())?;
                write!(out, "{}", log.to_jsonl())?;
            }
        }
        Command::Survey {
            benchmarks,
            systems,
            seed,
            jobs,
            warm_store,
            fault_profile,
            fault_overrides,
            max_retries,
            fail_fast,
            quarantine,
            heal,
            checkpoint,
            resume,
            interrupt_after,
        } => {
            let profile = simhpc::faults::FaultProfile::from_name(&fault_profile)
                .ok_or_else(|| CliError(format!("unknown fault profile `{fault_profile}`")))?;
            let mut study = Study::new("cli-survey")
                .with_seed(seed)
                .with_jobs(jobs)
                .with_warm_store(warm_store)
                .with_fault_profile(profile.clone())
                .with_max_retries(max_retries)
                .with_fail_fast(fail_fast)
                .with_quarantine(quarantine)
                .with_heal(heal);
            for (system, name) in &fault_overrides {
                let p = simhpc::faults::FaultProfile::from_name(name)
                    .ok_or_else(|| CliError(format!("unknown fault profile `{name}`")))?;
                study = study.with_fault_override(system, p);
            }
            if let Some(dir) = &checkpoint {
                study = study.with_checkpoint(std::path::Path::new(dir));
            }
            if let Some(dir) = &resume {
                study = study.with_resume(std::path::Path::new(dir));
            }
            for b in &benchmarks {
                study = study.with_case(case_by_name(b)?);
            }
            study = study.on_systems(&systems.iter().map(String::as_str).collect::<Vec<_>>());
            // Stream one line per grid cell as soon as it (and every
            // earlier cell) finishes; the flush order is canonical, so
            // this output is byte-identical for any --jobs count.
            let flushed = std::sync::atomic::AtomicUsize::new(0);
            let results = {
                let shared = std::sync::Mutex::new(&mut *out);
                study.try_run_with_progress(&|p| {
                    let status = match p.outcome {
                        harness::SuiteOutcome::Ran(r) => {
                            let mut s = format!(
                                "ok ({} built, {} cached, build {:.1}s",
                                r.packages_built, r.packages_cached, r.build_time_s
                            );
                            if r.retries > 0 {
                                s.push_str(&format!(", {} retries", r.retries));
                            }
                            s.push(')');
                            s
                        }
                        harness::SuiteOutcome::Skipped(reason) => format!("skip: {reason}"),
                        harness::SuiteOutcome::Failed(err) => format!("FAIL: {err}"),
                    };
                    let mut o = shared.lock().expect("survey writer poisoned");
                    writeln!(
                        o,
                        "[{}/{}] {} on {}: {status}",
                        p.index + 1,
                        p.total,
                        p.case,
                        p.system
                    )
                    .ok();
                    // The crash drill: die hard after the cell budget. The
                    // journal entry for this cell was already fsync'd, so a
                    // --resume picks up exactly here.
                    let n = flushed.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                    if interrupt_after.is_some_and(|budget| n >= budget) {
                        o.flush().ok();
                        std::process::exit(3);
                    }
                })?
            };
            writeln!(
                out,
                "ran {}  skipped {}  failed {}",
                results.report.n_ran(),
                results.report.n_skipped(),
                results.report.n_failed()
            )?;
            let any_faults =
                !profile.is_none() || fault_overrides.iter().any(|(_, name)| name != "none");
            if any_faults {
                let mut line = format!(
                    "fault profile `{}`: {} faults injected, {} retries, {:.1}s simulated time lost, {} quarantined",
                    profile.name,
                    results.report.total_faults_injected(),
                    results.report.total_retries(),
                    results.report.total_time_lost_s(),
                    results.report.n_quarantined()
                );
                if heal {
                    line.push_str(&format!(
                        ", {} nodes repaired",
                        results.report.total_nodes_repaired()
                    ));
                }
                writeln!(out, "{line}")?;
            }
            if !fault_overrides.is_empty() {
                let rendered: Vec<String> = fault_overrides
                    .iter()
                    .map(|(s, n)| format!("{s}={n}"))
                    .collect();
                writeln!(out, "fault overrides: {}", rendered.join(", "))?;
            }
            for (system, readmitted) in &results.report.canaries {
                writeln!(
                    out,
                    "canary: {system} {}",
                    if *readmitted {
                        "readmitted after probe"
                    } else {
                        "still quarantined (canary failed)"
                    }
                )?;
            }
            if warm_store {
                writeln!(
                    out,
                    "warm store: {} built, {} reused, {:.1}s total build time",
                    results.report.total_packages_built(),
                    results.report.total_packages_cached(),
                    results.report.total_build_time_s()
                )?;
            }
            write!(out, "{}", results.frame())?;
            let failed = results.report.n_failed();
            if failed > 0 {
                return Err(CliError(format!(
                    "survey: {failed} of {} cells failed",
                    results.report.outcomes.len()
                ))
                .into());
            }
        }
        Command::Spec { spec, system } => {
            let (sys, part_name) = simhpc::catalog::resolve(&system)
                .ok_or_else(|| CliError(format!("unknown system `{system}`")))?;
            let partition = sys.partition(&part_name).expect("resolved partition");
            let ctx = spackle::context_for(&sys, partition);
            let parsed = spackle::Spec::parse(&spec)?;
            let concrete = spackle::concretize(&parsed, &spackle::Repo::builtin(), &ctx)?;
            writeln!(
                out,
                "concretized on {system} (dag hash {}):",
                concrete.dag_hash()
            )?;
            write!(out, "{concrete}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parse_run() {
        let cmd = parse(&argv("run -c babelstream_omp --system csd3 --seed 7")).unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                benchmark: "babelstream_omp".into(),
                system: "csd3".into(),
                seed: 7,
                repeats: 1
            }
        );
        assert!(parse(&argv("run --system csd3")).is_err(), "missing -c");
        assert!(parse(&argv("run -c x")).is_err(), "missing --system");
        assert!(parse(&argv("run -c x --seed nope --system csd3")).is_err());
    }

    #[test]
    fn parse_survey_and_equals_form() {
        let cmd = parse(&argv(
            "survey -c hpgmg -c babelstream_omp --system=archer2 --system csd3",
        ))
        .unwrap();
        match cmd {
            Command::Survey {
                benchmarks,
                systems,
                seed,
                jobs,
                warm_store,
                fault_profile,
                fault_overrides,
                max_retries,
                fail_fast,
                quarantine,
                heal,
                checkpoint,
                resume,
                interrupt_after,
            } => {
                assert_eq!(benchmarks, vec!["hpgmg", "babelstream_omp"]);
                assert_eq!(systems, vec!["archer2", "csd3"]);
                assert_eq!(seed, 42);
                assert_eq!(jobs, 1, "serial by default");
                assert!(!warm_store, "cold by default");
                assert_eq!(fault_profile, "none", "no faults by default");
                assert!(fault_overrides.is_empty(), "no overrides by default");
                assert_eq!(max_retries, 2);
                assert!(!fail_fast);
                assert_eq!(quarantine, 0, "quarantine off by default");
                assert!(!heal, "healing off by default");
                assert_eq!(checkpoint, None, "no checkpointing by default");
                assert_eq!(resume, None);
                assert_eq!(interrupt_after, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_survey_warm_store() {
        let cmd = parse(&argv(
            "survey -c hpgmg --system archer2 --warm-store --jobs 2",
        ))
        .unwrap();
        match cmd {
            Command::Survey {
                warm_store, jobs, ..
            } => {
                assert!(warm_store);
                assert_eq!(jobs, 2);
            }
            other => panic!("{other:?}"),
        }
        // Only survey takes it.
        assert!(parse(&argv("run -c hpgmg --system archer2 --warm-store")).is_err());
    }

    #[test]
    fn parse_survey_jobs() {
        let cmd = parse(&argv("survey -c hpgmg --system archer2 --jobs 4")).unwrap();
        match cmd {
            Command::Survey { jobs, .. } => assert_eq!(jobs, 4),
            other => panic!("{other:?}"),
        }
        let cmd = parse(&argv("survey -c hpgmg --system archer2 -j 0")).unwrap();
        match cmd {
            Command::Survey { jobs, .. } => assert_eq!(jobs, 0, "0 = auto"),
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("survey -c hpgmg --system archer2 --jobs nope")).is_err());
    }

    #[test]
    fn parse_survey_fault_flags() {
        let cmd = parse(&argv(
            "survey -c hpgmg --system archer2 --fault-profile flaky --max-retries 5 \
             --fail-fast --quarantine 3",
        ))
        .unwrap();
        match cmd {
            Command::Survey {
                fault_profile,
                max_retries,
                fail_fast,
                quarantine,
                ..
            } => {
                assert_eq!(fault_profile, "flaky");
                assert_eq!(max_retries, 5);
                assert!(fail_fast);
                assert_eq!(quarantine, 3);
            }
            other => panic!("{other:?}"),
        }
        // Unknown profiles are rejected at parse time, with the catalog.
        let err = parse(&argv(
            "survey -c hpgmg --system archer2 --fault-profile wat",
        ))
        .unwrap_err()
        .to_string();
        assert!(err.contains("unknown fault profile"), "{err}");
        assert!(err.contains("flaky"), "{err}");
        assert!(parse(&argv("survey -c x --system y --max-retries nope")).is_err());
        assert!(parse(&argv("survey -c x --system y --quarantine nope")).is_err());
        // Fault flags apply to survey only.
        for flags in [
            "--fault-profile flaky",
            "--max-retries 1",
            "--fail-fast",
            "--quarantine 2",
        ] {
            assert!(
                parse(&argv(&format!("run -c hpgmg --system archer2 {flags}"))).is_err(),
                "run should reject {flags}"
            );
        }
    }

    #[test]
    fn parse_fault_profile_overrides() {
        let cmd = parse(&argv(
            "survey -c hpgmg --system archer2 --system csd3 \
             --fault-profile flaky --fault-profile csd3=brutal",
        ))
        .unwrap();
        match cmd {
            Command::Survey {
                fault_profile,
                fault_overrides,
                ..
            } => {
                assert_eq!(fault_profile, "flaky");
                assert_eq!(
                    fault_overrides,
                    vec![("csd3".to_string(), "brutal".to_string())]
                );
            }
            other => panic!("{other:?}"),
        }
        // Unknown profile inside an override is caught at parse time.
        let err = parse(&argv(
            "survey -c hpgmg --system csd3 --fault-profile csd3=wat",
        ))
        .unwrap_err()
        .to_string();
        assert!(err.contains("unknown fault profile `wat`"), "{err}");
        // Overriding a system that is not surveyed is an error.
        let err = parse(&argv(
            "survey -c hpgmg --system csd3 --fault-profile archer2=flaky",
        ))
        .unwrap_err()
        .to_string();
        assert!(err.contains("not in the surveyed"), "{err}");
        // Duplicate override for the same system is an error.
        let err = parse(&argv(
            "survey -c hpgmg --system csd3 \
             --fault-profile csd3=flaky --fault-profile csd3=brutal",
        ))
        .unwrap_err()
        .to_string();
        assert!(
            err.contains("duplicate `--fault-profile` override"),
            "{err}"
        );
        // So is a duplicate base profile.
        let err = parse(&argv(
            "survey -c hpgmg --system csd3 --fault-profile flaky --fault-profile brutal",
        ))
        .unwrap_err()
        .to_string();
        assert!(err.contains("duplicate base"), "{err}");
    }

    #[test]
    fn parse_checkpoint_heal_and_interrupt_flags() {
        let cmd = parse(&argv(
            "survey -c hpgmg --system csd3 --heal --checkpoint /tmp/ck --interrupt-after 3",
        ))
        .unwrap();
        match cmd {
            Command::Survey {
                heal,
                checkpoint,
                resume,
                interrupt_after,
                ..
            } => {
                assert!(heal);
                assert_eq!(checkpoint.as_deref(), Some("/tmp/ck"));
                assert_eq!(resume, None);
                assert_eq!(interrupt_after, Some(3));
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("survey -c hpgmg --system csd3 --resume /tmp/ck")).unwrap() {
            Command::Survey {
                checkpoint, resume, ..
            } => {
                assert_eq!(checkpoint, None);
                assert_eq!(resume.as_deref(), Some("/tmp/ck"));
            }
            other => panic!("{other:?}"),
        }
        // Checkpoint and resume are mutually exclusive.
        let err = parse(&argv(
            "survey -c hpgmg --system csd3 --checkpoint /a --resume /b",
        ))
        .unwrap_err()
        .to_string();
        assert!(err.contains("mutually exclusive"), "{err}");
        assert!(parse(&argv("survey -c x --system y --interrupt-after nope")).is_err());
        // All of them are survey-only.
        for flags in [
            "--heal",
            "--checkpoint /a",
            "--resume /a",
            "--interrupt-after 1",
        ] {
            assert!(
                parse(&argv(&format!("run -c hpgmg --system csd3 {flags}"))).is_err(),
                "run should reject {flags}"
            );
        }
    }

    #[test]
    fn parse_misc() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("list-systems")).unwrap(), Command::ListSystems);
        assert!(parse(&argv("frobnicate")).is_err());
        let cmd = parse(&argv("spec hpgmg%gcc --system archer2")).unwrap();
        assert_eq!(
            cmd,
            Command::Spec {
                spec: "hpgmg%gcc".into(),
                system: "archer2".into()
            }
        );
    }

    #[test]
    fn benchmark_name_registry() {
        let names = benchmark_names();
        assert!(names.contains(&"babelstream_omp".to_string()));
        assert!(names.contains(&"hpcg_matfree".to_string()));
        assert!(names.contains(&"hpgmg".to_string()));
        for name in &names {
            // hpcg_avx2 etc. must all be constructible.
            case_by_name(name).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        assert!(case_by_name("nope").is_err());
    }

    #[test]
    fn execute_list_and_run() {
        let mut buf = Vec::new();
        execute(Command::ListSystems, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("archer2:rome"));
        assert!(text.contains("isambard-macs:volta"));

        let mut buf = Vec::new();
        execute(
            Command::Run {
                benchmark: "babelstream_omp".into(),
                system: "csd3".into(),
                seed: 42,
                repeats: 2,
            },
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("Triad"));
        assert!(text.contains("perflog (2 records):"));
        assert!(text.contains("energy"));
    }

    #[test]
    fn execute_spec_prints_table3_row() {
        let mut buf = Vec::new();
        execute(
            Command::Spec {
                spec: "hpgmg%gcc".into(),
                system: "archer2".into(),
            },
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("cray-mpich@8.1.23"));
        assert!(text.contains("[external]"));
    }

    #[test]
    fn execute_survey_counts_and_streams() {
        let mut buf = Vec::new();
        execute(
            Command::Survey {
                benchmarks: vec!["babelstream_cuda".into()],
                systems: vec!["csd3".into(), "isambard-macs:volta".into()],
                seed: 42,
                jobs: 2,
                warm_store: false,
                fault_profile: "none".into(),
                fault_overrides: vec![],
                max_retries: 2,
                fail_fast: false,
                quarantine: 0,
                heal: false,
                checkpoint: None,
                resume: None,
                interrupt_after: None,
            },
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("ran 1  skipped 1  failed 0"), "{text}");
        // One streamed line per grid cell, in canonical order.
        assert!(
            text.contains("[1/2] babelstream_cuda on csd3: skip"),
            "{text}"
        );
        assert!(
            text.contains("[2/2] babelstream_cuda on isambard-macs:volta: ok"),
            "{text}"
        );
    }

    #[test]
    fn warm_survey_is_byte_identical_for_any_jobs_count() {
        // The acceptance criterion: `benchkit survey --warm-store --jobs N`
        // produces a byte-identical report for N ∈ {1, 2, 8}, with
        // packages reused on multi-case systems.
        let run_at = |jobs: usize| {
            let mut buf = Vec::new();
            execute(
                Command::Survey {
                    benchmarks: vec![
                        "babelstream_omp".into(),
                        "babelstream_tbb".into(),
                        "hpgmg".into(),
                    ],
                    systems: vec!["csd3".into(), "archer2".into()],
                    seed: 7,
                    jobs,
                    warm_store: true,
                    fault_profile: "none".into(),
                    fault_overrides: vec![],
                    max_retries: 2,
                    fail_fast: false,
                    quarantine: 0,
                    heal: false,
                    checkpoint: None,
                    resume: None,
                    interrupt_after: None,
                },
                &mut buf,
            )
            .unwrap();
            String::from_utf8(buf).unwrap()
        };
        let serial = run_at(1);
        assert!(
            serial.contains("[1/6] babelstream_omp on csd3: ok"),
            "{serial}"
        );
        assert!(
            !serial.contains("fault profile"),
            "no resilience line without faults: {serial}"
        );
        assert!(serial.contains("cached"), "{serial}");
        // Multi-case systems reuse dependency builds.
        let warm_line = serial
            .lines()
            .find(|l| l.starts_with("warm store:"))
            .expect("warm summary present");
        let reused: usize = warm_line
            .split(" built, ")
            .nth(1)
            .and_then(|s| s.split(" reused").next())
            .and_then(|s| s.parse().ok())
            .expect("reused count parses");
        assert!(reused > 0, "{warm_line}");
        for jobs in [2, 8] {
            assert_eq!(serial, run_at(jobs), "jobs={jobs}");
        }
    }

    #[test]
    fn faulty_survey_streams_retries_and_replays_byte_identically() {
        // A flaky survey replays byte-identically at any jobs count, and
        // the streamed `ok` lines surface retry counts when faults bit.
        let run_at = |seed: u64, jobs: usize| {
            let mut buf = Vec::new();
            let result = execute(
                Command::Survey {
                    benchmarks: vec!["babelstream_omp".into(), "hpgmg".into()],
                    systems: vec!["csd3".into(), "archer2".into()],
                    seed,
                    jobs,
                    warm_store: false,
                    fault_profile: "flaky".into(),
                    fault_overrides: vec![],
                    max_retries: 4,
                    fail_fast: false,
                    quarantine: 0,
                    heal: false,
                    checkpoint: None,
                    resume: None,
                    interrupt_after: None,
                },
                &mut buf,
            );
            (
                String::from_utf8(buf).unwrap(),
                result.err().map(|e| e.to_string()),
            )
        };
        // Find a seed where faults were injected yet every cell recovered.
        let seed = (0..30)
            .find(|&s| {
                let (text, err) = run_at(s, 1);
                err.is_none() && text.contains(" retries")
            })
            .expect("some seed in 0..30 recovers from injected faults");
        let (serial, serial_err) = run_at(seed, 1);
        assert!(serial_err.is_none(), "all cells recovered");
        assert!(serial.contains("fault profile `flaky`:"), "{serial}");
        assert!(!serial.contains("0 faults injected"), "{serial}");
        for jobs in [2, 8] {
            let (text, err) = run_at(seed, jobs);
            assert_eq!(serial, text, "jobs={jobs}");
            assert_eq!(serial_err, err, "jobs={jobs}");
        }
    }

    #[test]
    fn survey_exits_nonzero_when_a_cell_fails() {
        // Under the brutal profile with no retries some seed fails a cell;
        // execute must return Err (→ exit 1) while still writing the
        // streamed lines, summary, and frame.
        let run_at = |seed: u64, jobs: usize| {
            let mut buf = Vec::new();
            let result = execute(
                Command::Survey {
                    benchmarks: vec!["babelstream_omp".into()],
                    systems: vec!["csd3".into(), "archer2".into()],
                    seed,
                    jobs,
                    warm_store: false,
                    fault_profile: "brutal".into(),
                    fault_overrides: vec![],
                    max_retries: 0,
                    fail_fast: false,
                    quarantine: 0,
                    heal: false,
                    checkpoint: None,
                    resume: None,
                    interrupt_after: None,
                },
                &mut buf,
            );
            (
                String::from_utf8(buf).unwrap(),
                result.err().map(|e| e.to_string()),
            )
        };
        let seed = (0..30)
            .find(|&s| run_at(s, 1).1.is_some())
            .expect("some seed in 0..30 fails a cell under brutal/no-retries");
        let (text, err) = run_at(seed, 1);
        let err = err.unwrap();
        assert!(err.contains("cells failed"), "{err}");
        assert!(text.contains("FAIL:"), "{text}");
        assert!(text.contains("fault profile `brutal`:"), "{text}");
        // The failure exit is just as deterministic as the report.
        for jobs in [2, 8] {
            let (t, e) = run_at(seed, jobs);
            assert_eq!(text, t, "jobs={jobs}");
            assert_eq!(Some(err.clone()), e, "jobs={jobs}");
        }
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "benchkit-cli-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A Survey command with every knob at its default.
    fn survey(benchmarks: &[&str], systems: &[&str]) -> Command {
        Command::Survey {
            benchmarks: benchmarks.iter().map(|s| s.to_string()).collect(),
            systems: systems.iter().map(|s| s.to_string()).collect(),
            seed: 42,
            jobs: 1,
            warm_store: false,
            fault_profile: "none".into(),
            fault_overrides: vec![],
            max_retries: 2,
            fail_fast: false,
            quarantine: 0,
            heal: false,
            checkpoint: None,
            resume: None,
            interrupt_after: None,
        }
    }

    fn run_cmd(cmd: Command) -> (String, Option<String>) {
        let mut buf = Vec::new();
        let result = execute(cmd, &mut buf);
        (
            String::from_utf8(buf).unwrap(),
            result.err().map(|e| e.to_string()),
        )
    }

    #[test]
    fn checkpointed_survey_resumes_byte_identically() {
        // The acceptance pin at the CLI layer: a survey interrupted after
        // k cells and resumed with --resume reproduces the uninterrupted
        // stdout byte for byte, at --jobs 1, 2 and 8. Interruption is
        // simulated by truncating the journal to k records.
        let base = tmpdir("resume-full");
        let make = |jobs: usize, dir: &std::path::Path, resume: bool| {
            let mut cmd = survey(&["babelstream_omp", "hpgmg"], &["csd3", "archer2"]);
            if let Command::Survey {
                seed,
                jobs: j,
                fault_profile,
                max_retries,
                checkpoint,
                resume: r,
                ..
            } = &mut cmd
            {
                *seed = 3;
                *j = jobs;
                *fault_profile = "flaky".into();
                *max_retries = 4;
                let d = Some(dir.to_string_lossy().into_owned());
                if resume {
                    *r = d;
                } else {
                    *checkpoint = d;
                }
            }
            cmd
        };
        let (full_text, full_err) = run_cmd(make(1, &base, false));
        let journal =
            std::fs::read_to_string(base.join(harness::checkpoint::JOURNAL_FILE)).unwrap();
        let lines: Vec<&str> = journal.lines().collect();
        assert_eq!(lines.len(), 5, "header + 4 cells");
        for k in [1, 3] {
            for jobs in [1, 2, 8] {
                let dir = tmpdir(&format!("resume-{k}-{jobs}"));
                std::fs::create_dir_all(&dir).unwrap();
                std::fs::write(
                    dir.join(harness::checkpoint::JOURNAL_FILE),
                    lines[..=k].join("\n") + "\n",
                )
                .unwrap();
                let (text, err) = run_cmd(make(jobs, &dir, true));
                assert_eq!(text, full_text, "k={k} jobs={jobs}");
                assert_eq!(err, full_err, "k={k} jobs={jobs}");
                std::fs::remove_dir_all(&dir).unwrap();
            }
        }
        // Resuming under a different seed is refused loudly.
        let dir = tmpdir("resume-mismatch");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(harness::checkpoint::JOURNAL_FILE), &journal).unwrap();
        let mut wrong = make(1, &dir, true);
        if let Command::Survey { seed, .. } = &mut wrong {
            *seed = 4;
        }
        let (_, err) = run_cmd(wrong);
        let err = err.expect("mismatched resume must fail");
        assert!(err.contains("does not match"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn canary_verdicts_and_override_lines_are_reported() {
        // Study 1 under brutal/no-retries fails a system and trips the
        // K=1 quarantine; study 2 against the same checkpoint directory
        // reports the canary decision on stdout.
        let scan = |seed: u64| {
            let dir = tmpdir(&format!("canary-{seed}"));
            let make = |s| {
                let mut cmd = survey(&["babelstream_omp"], &["csd3", "archer2"]);
                if let Command::Survey {
                    seed,
                    fault_profile,
                    max_retries,
                    quarantine,
                    heal,
                    checkpoint,
                    ..
                } = &mut cmd
                {
                    *seed = s;
                    *fault_profile = "brutal".into();
                    *max_retries = 0;
                    *quarantine = 1;
                    *heal = true;
                    *checkpoint = Some(dir.to_string_lossy().into_owned());
                }
                cmd
            };
            let (_, first_err) = run_cmd(make(seed));
            let second = run_cmd(make(seed));
            let _ = std::fs::remove_dir_all(&dir);
            (first_err, second.0)
        };
        let (_, second_text) = (0..30)
            .map(scan)
            .find(|(first_err, _)| first_err.is_some())
            .expect("some seed in 0..30 fails a cell under brutal/no-retries");
        assert!(second_text.contains("canary: "), "{second_text}");
        assert!(
            second_text.contains("still quarantined (canary failed)")
                || second_text.contains("readmitted after probe"),
            "{second_text}"
        );
        // Healing surveys extend the resilience line with repair counts.
        assert!(second_text.contains("nodes repaired"), "{second_text}");
        // Per-system overrides are echoed so reports are self-describing.
        let mut cmd = survey(&["babelstream_omp"], &["csd3", "archer2"]);
        if let Command::Survey {
            fault_profile,
            fault_overrides,
            max_retries,
            ..
        } = &mut cmd
        {
            *fault_profile = "flaky".into();
            *fault_overrides = vec![("archer2".to_string(), "none".to_string())];
            *max_retries = 6;
        }
        let (text, _) = run_cmd(cmd);
        assert!(text.contains("fault overrides: archer2=none"), "{text}");
        assert!(text.contains("fault profile `flaky`:"), "{text}");
    }
}
