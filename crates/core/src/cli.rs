//! The command-line interface — the analogue of the paper's appendix
//! invocations like:
//!
//! ```text
//! reframe -c benchmarks/apps/babelstream -r --system=isambard-macs:cascadelake \
//!         -S spack_spec='babelstream%gcc@9.2.0 +omp'
//! ```
//!
//! Argument parsing and command execution live here (testable); the
//! `benchkit` binary is a thin wrapper. No external CLI dependency: the
//! grammar is small and fixed.

use crate::study::Study;
use harness::{cases, Harness, RunOptions, TestCase};
use std::fmt;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `list-systems`
    ListSystems,
    /// `list-benchmarks`
    ListBenchmarks,
    /// `run -c <benchmark> --system <spec> [--seed N] [--repeats N]`
    Run {
        benchmark: String,
        system: String,
        seed: u64,
        repeats: u32,
    },
    /// `spec <spack-spec> --system <spec>` — concretize and print.
    Spec { spec: String, system: String },
    /// `survey --system a --system b -c x -c y [--seed N] [--jobs N]`
    Survey {
        benchmarks: Vec<String>,
        systems: Vec<String>,
        seed: u64,
        jobs: usize,
    },
    /// `help`
    Help,
}

/// CLI error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

pub const USAGE: &str = "benchkit — automated and reproducible benchmarking

USAGE:
    benchkit list-systems
    benchkit list-benchmarks
    benchkit run -c <benchmark> --system <system[:partition]> [--seed N] [--repeats N]
    benchkit survey -c <benchmark>... --system <system>... [--seed N] [--jobs N]
        --jobs N runs N (benchmark, system) combinations concurrently
        (0 = one per available core); the report is identical to --jobs 1.
    benchkit spec <spack-spec> --system <system>
    benchkit help

EXAMPLES:
    benchkit run -c babelstream_omp --system isambard-macs:cascadelake
    benchkit survey -c babelstream_omp -c hpgmg --system archer2 --system csd3
    benchkit spec 'hpgmg%gcc' --system archer2
";

/// Parse an argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let sub = match it.next() {
        None => return Ok(Command::Help),
        Some(s) => s.as_str(),
    };
    let rest: Vec<String> = it.cloned().collect();
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "list-systems" => Ok(Command::ListSystems),
        "list-benchmarks" => Ok(Command::ListBenchmarks),
        "run" => {
            let opts = parse_options(&rest)?;
            let benchmark = opts
                .cases
                .first()
                .cloned()
                .ok_or_else(|| CliError("run: missing `-c <benchmark>`".into()))?;
            let system = opts
                .systems
                .first()
                .cloned()
                .ok_or_else(|| CliError("run: missing `--system`".into()))?;
            Ok(Command::Run {
                benchmark,
                system,
                seed: opts.seed,
                repeats: opts.repeats,
            })
        }
        "survey" => {
            let opts = parse_options(&rest)?;
            if opts.cases.is_empty() {
                return Err(CliError("survey: at least one `-c <benchmark>`".into()));
            }
            if opts.systems.is_empty() {
                return Err(CliError("survey: at least one `--system`".into()));
            }
            Ok(Command::Survey {
                benchmarks: opts.cases,
                systems: opts.systems,
                seed: opts.seed,
                jobs: opts.jobs,
            })
        }
        "spec" => {
            let mut positional = None;
            let mut i = 0;
            let mut system = None;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--system" => {
                        system = Some(take_value(&rest, &mut i, "--system")?);
                    }
                    other if !other.starts_with('-') && positional.is_none() => {
                        positional = Some(other.to_string());
                        i += 1;
                    }
                    other => return Err(CliError(format!("spec: unexpected argument `{other}`"))),
                }
            }
            Ok(Command::Spec {
                spec: positional.ok_or_else(|| CliError("spec: missing <spack-spec>".into()))?,
                system: system.ok_or_else(|| CliError("spec: missing `--system`".into()))?,
            })
        }
        other => Err(CliError(format!(
            "unknown command `{other}` (try `benchkit help`)"
        ))),
    }
}

struct Options {
    cases: Vec<String>,
    systems: Vec<String>,
    seed: u64,
    repeats: u32,
    jobs: usize,
}

fn take_value(args: &[String], i: &mut usize, flag: &str) -> Result<String, CliError> {
    let value = args
        .get(*i + 1)
        .cloned()
        .ok_or_else(|| CliError(format!("{flag} needs a value")))?;
    *i += 2;
    Ok(value)
}

fn parse_options(args: &[String]) -> Result<Options, CliError> {
    let mut opts = Options {
        cases: Vec::new(),
        systems: Vec::new(),
        seed: 42,
        repeats: 1,
        jobs: 1,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-c" | "--case" => opts.cases.push(take_value(args, &mut i, "-c")?),
            "--system" => {
                let v = take_value(args, &mut i, "--system")?;
                // `--system=a` form also accepted.
                opts.systems.push(v);
            }
            "--seed" => {
                let v = take_value(args, &mut i, "--seed")?;
                opts.seed = v.parse().map_err(|_| CliError(format!("bad seed `{v}`")))?;
            }
            "--repeats" => {
                let v = take_value(args, &mut i, "--repeats")?;
                opts.repeats = v
                    .parse()
                    .map_err(|_| CliError(format!("bad repeats `{v}`")))?;
            }
            "--jobs" | "-j" => {
                let v = take_value(args, &mut i, "--jobs")?;
                opts.jobs = v.parse().map_err(|_| CliError(format!("bad jobs `{v}`")))?;
            }
            other if other.starts_with("--system=") => {
                opts.systems.push(other["--system=".len()..].to_string());
                i += 1;
            }
            other => return Err(CliError(format!("unexpected argument `{other}`"))),
        }
    }
    Ok(opts)
}

/// All named benchmarks the CLI can run.
pub fn benchmark_names() -> Vec<String> {
    let mut names: Vec<String> = parkern::Model::all()
        .iter()
        .map(|m| format!("babelstream_{}", m.name()))
        .collect();
    names.extend(
        benchapps::hpcg::HpcgVariant::all()
            .iter()
            .map(|v| format!("hpcg_{}", v.spec_name())),
    );
    names.push("hpgmg".to_string());
    names.push("stream".to_string());
    names
}

/// Build the TestCase for a CLI benchmark name.
pub fn case_by_name(name: &str) -> Result<TestCase, CliError> {
    if let Some(model_name) = name.strip_prefix("babelstream_") {
        let model = parkern::Model::from_name(model_name)
            .ok_or_else(|| CliError(format!("unknown programming model `{model_name}`")))?;
        return Ok(cases::babelstream(model, 1 << 25));
    }
    if let Some(variant_name) = name.strip_prefix("hpcg_") {
        let variant = benchapps::hpcg::HpcgVariant::from_spec_name(variant_name)
            .ok_or_else(|| CliError(format!("unknown HPCG variant `{variant_name}`")))?;
        return Ok(cases::hpcg(variant, 40));
    }
    if name == "hpgmg" {
        return Ok(cases::hpgmg());
    }
    if name == "stream" {
        return Ok(cases::stream(1 << 25));
    }
    Err(CliError(format!(
        "unknown benchmark `{name}` — try `benchkit list-benchmarks`"
    )))
}

/// Execute a parsed command, writing human-readable output.
pub fn execute(
    cmd: Command,
    out: &mut dyn std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    match cmd {
        Command::Help => writeln!(out, "{USAGE}")?,
        Command::ListSystems => {
            writeln!(out, "Available systems (from the simhpc catalog):")?;
            for sys in simhpc::catalog::all_systems() {
                for part in sys.partitions() {
                    let p = part.processor();
                    writeln!(
                        out,
                        "  {:<28} {} ({} cores, {:.0} GB/s peak)",
                        format!("{}:{}", sys.name(), part.name()),
                        p.model(),
                        p.total_cores(),
                        p.peak_mem_bw_gbs(),
                    )?;
                }
            }
        }
        Command::ListBenchmarks => {
            writeln!(out, "Available benchmarks:")?;
            for name in benchmark_names() {
                writeln!(out, "  {name}")?;
            }
        }
        Command::Run {
            benchmark,
            system,
            seed,
            repeats,
        } => {
            let case = case_by_name(&benchmark)?;
            let mut harness = Harness::new(RunOptions::on_system(&system).with_seed(seed));
            for rep in 0..repeats.max(1) {
                let report = harness.run_case(&case)?;
                writeln!(
                    out,
                    "[{}/{repeats}] {} on {} (hash {}, built {}, cached {})",
                    rep + 1,
                    benchmark,
                    system,
                    report.dag_hash,
                    report.packages_built,
                    report.packages_cached,
                )?;
                for fom in &report.record.foms {
                    writeln!(out, "    {:<8} {:>16.3} {}", fom.name, fom.value, fom.unit)?;
                }
                writeln!(
                    out,
                    "    energy {:.0} J, avg power {:.0} W, queue wait {:.3} s",
                    report.telemetry.energy_j, report.telemetry.avg_power_w, report.queue_wait_s,
                )?;
            }
            // Emit the perflog like the real framework.
            let (sys_name, _) = system.split_once(':').unwrap_or((system.as_str(), ""));
            if let Some(log) = harness.perflog(sys_name, case.app.name()) {
                writeln!(out, "\nperflog ({} records):", log.len())?;
                write!(out, "{}", log.to_jsonl())?;
            }
        }
        Command::Survey {
            benchmarks,
            systems,
            seed,
            jobs,
        } => {
            let mut study = Study::new("cli-survey").with_seed(seed).with_jobs(jobs);
            for b in &benchmarks {
                study = study.with_case(case_by_name(b)?);
            }
            study = study.on_systems(&systems.iter().map(String::as_str).collect::<Vec<_>>());
            let results = study.run();
            writeln!(
                out,
                "ran {}  skipped {}  failed {}",
                results.report.n_ran(),
                results.report.n_skipped(),
                results.report.n_failed()
            )?;
            write!(out, "{}", results.frame())?;
        }
        Command::Spec { spec, system } => {
            let (sys, part_name) = simhpc::catalog::resolve(&system)
                .ok_or_else(|| CliError(format!("unknown system `{system}`")))?;
            let partition = sys.partition(&part_name).expect("resolved partition");
            let ctx = spackle::context_for(&sys, partition);
            let parsed = spackle::Spec::parse(&spec)?;
            let concrete = spackle::concretize(&parsed, &spackle::Repo::builtin(), &ctx)?;
            writeln!(
                out,
                "concretized on {system} (dag hash {}):",
                concrete.dag_hash()
            )?;
            write!(out, "{concrete}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parse_run() {
        let cmd = parse(&argv("run -c babelstream_omp --system csd3 --seed 7")).unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                benchmark: "babelstream_omp".into(),
                system: "csd3".into(),
                seed: 7,
                repeats: 1
            }
        );
        assert!(parse(&argv("run --system csd3")).is_err(), "missing -c");
        assert!(parse(&argv("run -c x")).is_err(), "missing --system");
        assert!(parse(&argv("run -c x --seed nope --system csd3")).is_err());
    }

    #[test]
    fn parse_survey_and_equals_form() {
        let cmd = parse(&argv(
            "survey -c hpgmg -c babelstream_omp --system=archer2 --system csd3",
        ))
        .unwrap();
        match cmd {
            Command::Survey {
                benchmarks,
                systems,
                seed,
                jobs,
            } => {
                assert_eq!(benchmarks, vec!["hpgmg", "babelstream_omp"]);
                assert_eq!(systems, vec!["archer2", "csd3"]);
                assert_eq!(seed, 42);
                assert_eq!(jobs, 1, "serial by default");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_survey_jobs() {
        let cmd = parse(&argv("survey -c hpgmg --system archer2 --jobs 4")).unwrap();
        match cmd {
            Command::Survey { jobs, .. } => assert_eq!(jobs, 4),
            other => panic!("{other:?}"),
        }
        let cmd = parse(&argv("survey -c hpgmg --system archer2 -j 0")).unwrap();
        match cmd {
            Command::Survey { jobs, .. } => assert_eq!(jobs, 0, "0 = auto"),
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("survey -c hpgmg --system archer2 --jobs nope")).is_err());
    }

    #[test]
    fn parse_misc() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("list-systems")).unwrap(), Command::ListSystems);
        assert!(parse(&argv("frobnicate")).is_err());
        let cmd = parse(&argv("spec hpgmg%gcc --system archer2")).unwrap();
        assert_eq!(
            cmd,
            Command::Spec {
                spec: "hpgmg%gcc".into(),
                system: "archer2".into()
            }
        );
    }

    #[test]
    fn benchmark_name_registry() {
        let names = benchmark_names();
        assert!(names.contains(&"babelstream_omp".to_string()));
        assert!(names.contains(&"hpcg_matfree".to_string()));
        assert!(names.contains(&"hpgmg".to_string()));
        for name in &names {
            // hpcg_avx2 etc. must all be constructible.
            case_by_name(name).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        assert!(case_by_name("nope").is_err());
    }

    #[test]
    fn execute_list_and_run() {
        let mut buf = Vec::new();
        execute(Command::ListSystems, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("archer2:rome"));
        assert!(text.contains("isambard-macs:volta"));

        let mut buf = Vec::new();
        execute(
            Command::Run {
                benchmark: "babelstream_omp".into(),
                system: "csd3".into(),
                seed: 42,
                repeats: 2,
            },
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("Triad"));
        assert!(text.contains("perflog (2 records):"));
        assert!(text.contains("energy"));
    }

    #[test]
    fn execute_spec_prints_table3_row() {
        let mut buf = Vec::new();
        execute(
            Command::Spec {
                spec: "hpgmg%gcc".into(),
                system: "archer2".into(),
            },
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("cray-mpich@8.1.23"));
        assert!(text.contains("[external]"));
    }

    #[test]
    fn execute_survey_counts() {
        let mut buf = Vec::new();
        execute(
            Command::Survey {
                benchmarks: vec!["babelstream_cuda".into()],
                systems: vec!["csd3".into(), "isambard-macs:volta".into()],
                seed: 42,
                jobs: 2,
            },
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("ran 1  skipped 1  failed 0"), "{text}");
    }
}
