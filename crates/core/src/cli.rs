//! The command-line interface — the analogue of the paper's appendix
//! invocations like:
//!
//! ```text
//! reframe -c benchmarks/apps/babelstream -r --system=isambard-macs:cascadelake \
//!         -S spack_spec='babelstream%gcc@9.2.0 +omp'
//! ```
//!
//! Argument parsing and command execution live here (testable); the
//! `benchkit` binary is a thin wrapper. No external CLI dependency: the
//! grammar is small and fixed.

use crate::study::Study;
use harness::{cases, Harness, RunOptions, TestCase};
use std::fmt;

/// A parsed CLI invocation.
// One `Command` exists per process; `Survey` carrying its full engine
// configuration inline beats boxing for a value never stored in bulk.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `list-systems`
    ListSystems,
    /// `list-benchmarks`
    ListBenchmarks,
    /// `run -c <benchmark> --system <spec> [--seed N] [--repeats N]`
    Run {
        benchmark: String,
        system: String,
        seed: u64,
        repeats: u32,
    },
    /// `spec <spack-spec> --system <spec>` — concretize and print.
    Spec { spec: String, system: String },
    /// `survey --system a --system b -c x -c y [--seed N] [--jobs N]
    /// [--warm-store] [--fault-profile [SYS=]NAME]... [--max-retries N]
    /// [--fail-fast] [--quarantine K] [--heal] [--checkpoint DIR |
    /// --resume DIR] [--interrupt-after N]`
    Survey {
        benchmarks: Vec<String>,
        systems: Vec<String>,
        seed: u64,
        jobs: usize,
        warm_store: bool,
        fault_profile: String,
        /// Per-system overrides: (system spec, profile name).
        fault_overrides: Vec<(String, String)>,
        max_retries: u32,
        fail_fast: bool,
        quarantine: u32,
        /// Return drained nodes after each system's repair window.
        heal: bool,
        /// Journal completed cells into this directory (fresh journal).
        checkpoint: Option<String>,
        /// Continue an interrupted survey from this directory's journal.
        resume: Option<String>,
        /// Abort the process (exit 3) after this many cells have been
        /// journaled — a deterministic crash for resume testing.
        interrupt_after: Option<usize>,
        /// Persistent package store directory (`--store DIR`): warm
        /// builds from it, persist new builds back into it.
        store: Option<String>,
        /// Write one `<system>-<benchmark>.jsonl` perflog per surveyed
        /// (system, benchmark family) into this directory (`--perflog`),
        /// the input format of `rank` and `cmp`.
        perflog: Option<String>,
        /// External engine subprocess for every case's run stage
        /// (`--engine SPEC`), speaking the KLV protocol.
        engine: Option<engine::EngineSpec>,
        /// Per-case engine overrides (`--engine CASE=SPEC`).
        engine_overrides: Vec<(String, engine::EngineSpec)>,
    },
    /// `rank <perflog-or-dir>... [--lower-is-better] [--markdown]
    /// [--jobs N]` — geometric-mean-speedup ranking of systems across
    /// every (benchmark, FOM) cell of a study.
    Rank {
        inputs: Vec<String>,
        lower_is_better: bool,
        markdown: bool,
        jobs: usize,
    },
    /// `cmp <study-a> <study-b> [--threshold PCT] [--lower-is-better]
    /// [--markdown] [--jobs N]` — cell-by-cell deltas between two studies.
    Cmp {
        study_a: String,
        study_b: String,
        threshold_pct: f64,
        lower_is_better: bool,
        markdown: bool,
        jobs: usize,
    },
    /// `store gc <dir> [--keep K]` — evict entries not referenced by the
    /// last K studies.
    StoreGc { dir: String, keep: usize },
    /// `store fsck <dir> [--json]` — read-only integrity scan; exits
    /// nonzero when any committed entry fails verification. `--json`
    /// prints the machine-readable report instead of the text rendering.
    StoreFsck { dir: String, json: bool },
    /// `serve <dir> --addr HOST:PORT [--workers N] [--queue N]
    /// [--read-timeout-ms N] [--max-body BYTES]` — the crash-tolerant
    /// results daemon over a store directory.
    Serve {
        dir: String,
        addr: String,
        workers: usize,
        queue: usize,
        read_timeout_ms: u64,
        max_body: usize,
    },
    /// `push <dir-or-file> --to HOST:PORT [--max-retries N]` — upload
    /// perflog JSONL to a daemon, honoring its backpressure.
    Push {
        dir: String,
        to: String,
        max_retries: u32,
    },
    /// `query HOST:PORT </v1/...>` — GET a daemon endpoint and print the
    /// body (curl-free CI plumbing).
    Query { addr: String, path: String },
    /// `checkpoint gc <dir> [--force]` — drop a completed study's journal,
    /// keeping quarantine memory.
    CheckpointGc { dir: String, force: bool },
    /// `bench-digest <log>...` — median-regression digest over criterion
    /// JSON logs, oldest first, plus cross-benchmark speedup floors
    /// (`--min-speedup BASE_GROUP/BASE_ID:TARGET_GROUP/TARGET_ID:RATIO`)
    /// judged on the newest log.
    BenchDigest {
        logs: Vec<String>,
        min_speedups: Vec<String>,
        /// `--rank GROUP` (repeatable): fail the digest when the
        /// speed-ranking of GROUP's benchmark ids flipped between the
        /// second-newest and the newest log.
        rank_groups: Vec<String>,
    },
    /// `help`
    Help,
}

/// CLI error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

pub const USAGE: &str = "benchkit — automated and reproducible benchmarking

USAGE:
    benchkit list-systems
    benchkit list-benchmarks
    benchkit run -c <benchmark> --system <system[:partition]> [--seed N] [--repeats N]
    benchkit survey -c <benchmark>... --system <system>... [--seed N] [--jobs N] [--warm-store]
                    [--fault-profile [SYS=]NAME]... [--max-retries N] [--fail-fast]
                    [--quarantine K] [--heal] [--checkpoint DIR | --resume DIR]
                    [--interrupt-after N] [--store DIR]
                    [--engine [CASE=]SPEC]... [--engine-timeout S]
        --jobs N runs N (benchmark, system) combinations concurrently
        (0 = one per available core); the report is identical to --jobs 1.
        --warm-store shares one package store per system so its cases
        reuse dependency builds (accounting stays deterministic: the
        first case in case order is attributed each shared build).
        Outcomes stream as they complete, in grid order.
        --fault-profile NAME injects seeded deterministic faults (build
        failures, node failures, timeouts); NAME is one of none, flaky,
        brutal. The same --seed and profile replay the same faults at
        any --jobs count. --fault-profile SYS=NAME overrides the profile
        for one system (repeatable). --max-retries N bounds per-stage
        retries (default 2). --fail-fast skips every cell after the first
        failure; --quarantine K skips a system's remaining cells after
        K consecutive failures. --heal returns nodes drained by failures
        to service after a per-system deterministic repair window.
        --checkpoint DIR journals each completed cell durably so an
        interrupted survey can be continued with --resume DIR; the
        resumed report is byte-identical to an uninterrupted run, and a
        journal from a different configuration is refused. Checkpoint
        directories also remember per-system failure streaks: a system
        quarantined in an earlier study is probed with a single canary
        cell before being readmitted. --interrupt-after N aborts the
        process (exit 3) after N cells, for crash drills.
        --store DIR warms builds from a crash-safe persistent package
        store that survives across studies (entries are checksummed;
        corrupt ones are quarantined to DIR/corrupt/ and rebuilt cold).
        The store is sharded with per-shard lease locks, so several
        writers — even on different machines sharing DIR — can run
        concurrently: a shard leased by a live competing writer only
        skips that shard's persists, never the study, and the report
        stays byte-identical. FOMs are identical cold vs. warm.
        --perflog DIR writes one <system>-<benchmark>.jsonl perflog per
        surveyed (system, benchmark) into DIR — the input of `rank`
        and `cmp`.
        --engine SPEC runs every case's run stage in an external engine
        subprocess speaking the KLV protocol on stdin/stdout (bring
        your own benchmark). SPEC is either a command line
        ('./my-engine --fast') or a tinycfg map
        ('{cmd=[\"./my-engine\"] timeout=30 grace=2'). A crashing,
        hanging, or garbage-emitting engine is contained per attempt:
        the failure feeds --max-retries/--fail-fast/--quarantine
        exactly like an injected fault, with exit_code/signal/
        timed_out recorded in the perflog; hung engines are killed
        with SIGTERM, then SIGKILL after the grace window. --engine
        CASE=SPEC overrides the engine for one case (repeatable).
        --engine-timeout S sets the default deadline for specs that
        carry none (rejected at parse time unless finite and > 0).
        Checkpoints bind the engine configuration: a journal written
        in one engine mode refuses to resume in another.
        Exits nonzero if any cell fails.
    benchkit rank <perflog-or-dir>... [--lower-is-better] [--markdown] [--jobs N]
        Rank systems by the geometric mean of their per-cell speedup
        against the best system, one cell per (benchmark, FOM) pair.
        Inputs are perflog JSONL files or directories of them (e.g. a
        `survey --perflog` directory). Missing, non-finite, and
        non-positive cells are excluded from the mean and reported —
        never silently dropped. Output is byte-identical at any --jobs.
    benchkit cmp <study-a> <study-b> [--threshold PCT] [--lower-is-better]
                 [--markdown] [--jobs N]
        Cell-by-cell comparison of two studies (perflog files or
        directories): each (benchmark, FOM, system) cell is classified
        improved / regressed / unchanged (within --threshold percent,
        default 2), missing on either side, or incomparable
        (non-finite or non-positive baseline). Informational: always
        exits 0 when both studies parse.
    benchkit store gc <dir> [--keep K]
        Evict store entries not referenced by the last K studies
        (default 5), merging every writer's reference log. Shards
        leased by a live writer are skipped with a notice; entries
        referenced by any live-leased writer are never evicted. Never
        touches quarantined entries in DIR/corrupt/.
    benchkit store fsck <dir> [--json]
        Read-only integrity scan: verifies every committed entry
        (checksum, canonical form, shard placement) and reports
        orphaned temp files, live and expired leases, and reference
        segments. Exits nonzero when any committed entry is invalid;
        crash residue (temps, stale leases) is reported but clean.
        --json prints one machine-readable JSON object instead of the
        text rendering (same exit semantics).
    benchkit serve <dir> --addr HOST:PORT [--workers N] [--queue N]
                   [--read-timeout-ms N] [--max-body BYTES]
        Results daemon over a store directory: POST /v1/ingest accepts
        perflog JSONL; GET /v1/fom, /v1/verdict, /v1/history and
        /v1/health answer queries (verdicts are byte-identical to the
        offline `rank` over the same records). A record is fsync'd
        into an append-only WAL before its 200 is written, so every
        acknowledged record survives SIGKILL; restart replays the WAL,
        truncating torn tails. A bounded worker pool (--workers) behind
        a bounded queue (--queue) answers saturation with 503 +
        Retry-After — never an unbounded backlog. Per-connection
        deadlines (--read-timeout-ms) and body bounds (--max-body)
        degrade only the offending connection. SIGTERM drains
        gracefully: stop accepting, finish in-flight, release leases,
        exit 0. `--addr host:0` picks a free port (printed on the
        readiness line). BENCHKIT_NETFAULTS injects deterministic
        network faults (torn reads, short writes, resets, stalls) for
        torture drills, keyed like BENCHKIT_IOFAULTS.
    benchkit push <dir-or-file> --to HOST:PORT [--max-retries N]
        Upload perflogs (*.jsonl, one batch per file in name order) to
        a daemon. 503s and transport failures retry with the standard
        30·2ⁿ ≤ 480 s backoff, honoring the daemon's Retry-After when
        present (default 5 retries). Re-pushing after a lost ack is
        safe: the daemon deduplicates on record content.
    benchkit query HOST:PORT </v1/...>
        GET a daemon endpoint and print the body; exits nonzero on a
        non-2xx answer.
    benchkit checkpoint gc <dir> [--force]
        Drop the study journal once its study completed, keeping
        quarantine memory. An incomplete journal is refused unless
        --force.
    benchkit bench-digest <log>... [--min-speedup BG/BI:TG/TI:R]... [--rank GROUP]...
        Median-regression digest over criterion JSON logs (oldest
        first): one sparkline + verdict per benchmark id.
        --min-speedup asserts, on the newest log, that benchmark
        TG/TI runs at least R times the speed of BG/BI (speed =
        declared bytes/elements per iteration over the fastest
        time). Exits nonzero when a floor is missed.
        --rank GROUP asserts the speed-ranking of GROUP's benchmark
        ids is the same in the newest log as in the one before it;
        a rank flip exits nonzero.
    benchkit spec <spack-spec> --system <system>
    benchkit help

EXAMPLES:
    benchkit run -c babelstream_omp --system isambard-macs:cascadelake
    benchkit survey -c babelstream_omp -c hpgmg --system archer2 --system csd3
    benchkit survey -c hpgmg --system archer2 --system csd3 --perflog study-a/
    benchkit rank study-a/
    benchkit cmp study-a/ study-b/ --threshold 5
    benchkit spec 'hpgmg%gcc' --system archer2
";

/// Parse an argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let sub = match it.next() {
        None => return Ok(Command::Help),
        Some(s) => s.as_str(),
    };
    let rest: Vec<String> = it.cloned().collect();
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "list-systems" => Ok(Command::ListSystems),
        "list-benchmarks" => Ok(Command::ListBenchmarks),
        "run" => {
            let opts = parse_options(&rest)?;
            if opts.warm_store {
                return Err(CliError(
                    "run: `--warm-store` only applies to `survey`".into(),
                ));
            }
            for (set, flag) in [
                (!opts.fault_profiles.is_empty(), "--fault-profile"),
                (opts.max_retries.is_some(), "--max-retries"),
                (opts.fail_fast, "--fail-fast"),
                (opts.quarantine.is_some(), "--quarantine"),
                (opts.heal, "--heal"),
                (opts.checkpoint.is_some(), "--checkpoint"),
                (opts.resume.is_some(), "--resume"),
                (opts.interrupt_after.is_some(), "--interrupt-after"),
                (opts.store.is_some(), "--store"),
                (opts.perflog.is_some(), "--perflog"),
                (!opts.engines.is_empty(), "--engine"),
                (opts.engine_timeout.is_some(), "--engine-timeout"),
            ] {
                if set {
                    return Err(CliError(format!("run: `{flag}` only applies to `survey`")));
                }
            }
            let benchmark = opts
                .cases
                .first()
                .cloned()
                .ok_or_else(|| CliError("run: missing `-c <benchmark>`".into()))?;
            let system = opts
                .systems
                .first()
                .cloned()
                .ok_or_else(|| CliError("run: missing `--system`".into()))?;
            Ok(Command::Run {
                benchmark,
                system,
                seed: opts.seed,
                repeats: opts.repeats,
            })
        }
        "survey" => {
            let opts = parse_options(&rest)?;
            if opts.cases.is_empty() {
                return Err(CliError("survey: at least one `-c <benchmark>`".into()));
            }
            if opts.systems.is_empty() {
                return Err(CliError("survey: at least one `--system`".into()));
            }
            if opts.checkpoint.is_some() && opts.resume.is_some() {
                return Err(CliError(
                    "survey: `--checkpoint` and `--resume` are mutually exclusive \
                     (--resume continues an existing checkpoint directory)"
                        .into(),
                ));
            }
            // Split repeated --fault-profile values into the base profile
            // (bare NAME, at most once) and per-system overrides
            // (SYS=NAME, at most once per system, SYS must be surveyed).
            let mut fault_profile: Option<String> = None;
            let mut fault_overrides: Vec<(String, String)> = Vec::new();
            for value in &opts.fault_profiles {
                match value.split_once('=') {
                    None => {
                        if fault_profile.is_some() {
                            return Err(CliError(format!(
                                "survey: duplicate base `--fault-profile {value}` \
                                 (use SYS=NAME for per-system overrides)"
                            )));
                        }
                        fault_profile = Some(value.clone());
                    }
                    Some((system, name)) => {
                        if !opts.systems.iter().any(|s| s == system) {
                            return Err(CliError(format!(
                                "survey: `--fault-profile {value}` names system `{system}` \
                                 which is not in the surveyed `--system` list"
                            )));
                        }
                        if fault_overrides.iter().any(|(s, _)| s == system) {
                            return Err(CliError(format!(
                                "survey: duplicate `--fault-profile` override for `{system}`"
                            )));
                        }
                        fault_overrides.push((system.to_string(), name.to_string()));
                    }
                }
            }
            // Split repeated --engine values into the base engine (bare
            // SPEC, at most once) and per-case overrides (CASE=SPEC, at
            // most once per case, CASE must be surveyed). A value counts
            // as an override only when everything before its first `=` is
            // shaped like a benchmark name, so engine commands containing
            // `=` (e.g. `./engine --mode=fast`) still parse as base specs.
            let default_timeout = opts.engine_timeout.unwrap_or(engine::DEFAULT_TIMEOUT_S);
            let parse_spec = |raw: &str| {
                engine::EngineSpec::parse(raw, default_timeout)
                    .map_err(|e| CliError(format!("survey: bad `--engine` spec `{raw}`: {e}")))
            };
            let case_shaped = |name: &str| {
                !name.is_empty()
                    && name
                        .bytes()
                        .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
            };
            let mut engine_spec: Option<engine::EngineSpec> = None;
            let mut engine_overrides: Vec<(String, engine::EngineSpec)> = Vec::new();
            for value in &opts.engines {
                match value.split_once('=').filter(|(case, _)| case_shaped(case)) {
                    None => {
                        if engine_spec.is_some() {
                            return Err(CliError(format!(
                                "survey: duplicate base `--engine {value}` \
                                 (use CASE=SPEC for per-case overrides)"
                            )));
                        }
                        engine_spec = Some(parse_spec(value)?);
                    }
                    Some((case, spec)) => {
                        if !opts.cases.iter().any(|c| c == case) {
                            return Err(CliError(format!(
                                "survey: `--engine {value}` names case `{case}` \
                                 which is not in the surveyed `-c` list"
                            )));
                        }
                        if engine_overrides.iter().any(|(c, _)| c == case) {
                            return Err(CliError(format!(
                                "survey: duplicate `--engine` override for `{case}`"
                            )));
                        }
                        engine_overrides.push((case.to_string(), parse_spec(spec)?));
                    }
                }
            }
            if opts.engine_timeout.is_some() && opts.engines.is_empty() {
                return Err(CliError(
                    "survey: `--engine-timeout` requires `--engine`".into(),
                ));
            }
            Ok(Command::Survey {
                benchmarks: opts.cases,
                systems: opts.systems,
                seed: opts.seed,
                jobs: opts.jobs,
                warm_store: opts.warm_store,
                fault_profile: fault_profile.unwrap_or_else(|| "none".to_string()),
                fault_overrides,
                max_retries: opts.max_retries.unwrap_or(2),
                fail_fast: opts.fail_fast,
                quarantine: opts.quarantine.unwrap_or(0),
                heal: opts.heal,
                checkpoint: opts.checkpoint,
                resume: opts.resume,
                interrupt_after: opts.interrupt_after,
                store: opts.store,
                perflog: opts.perflog,
                engine: engine_spec,
                engine_overrides,
            })
        }
        "rank" => {
            let mut inputs = Vec::new();
            let mut lower_is_better = false;
            let mut markdown = false;
            let mut jobs = 1usize;
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--lower-is-better" => {
                        lower_is_better = true;
                        i += 1;
                    }
                    "--markdown" => {
                        markdown = true;
                        i += 1;
                    }
                    "--jobs" | "-j" => {
                        let v = take_value(&rest, &mut i, "--jobs")?;
                        jobs = v.parse().map_err(|_| CliError(format!("bad jobs `{v}`")))?;
                    }
                    other if !other.starts_with('-') => {
                        inputs.push(other.to_string());
                        i += 1;
                    }
                    other => return Err(CliError(format!("rank: unexpected argument `{other}`"))),
                }
            }
            if inputs.is_empty() {
                return Err(CliError(
                    "rank: at least one perflog file or directory".into(),
                ));
            }
            Ok(Command::Rank {
                inputs,
                lower_is_better,
                markdown,
                jobs,
            })
        }
        "cmp" => {
            let mut studies = Vec::new();
            let mut threshold_pct = 2.0f64;
            let mut lower_is_better = false;
            let mut markdown = false;
            let mut jobs = 1usize;
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--threshold" => {
                        let v = take_value(&rest, &mut i, "--threshold")?;
                        threshold_pct = v
                            .parse()
                            .ok()
                            .filter(|t: &f64| t.is_finite() && *t >= 0.0)
                            .ok_or_else(|| {
                                CliError(format!(
                                    "bad threshold `{v}` (want a finite percentage ≥ 0)"
                                ))
                            })?;
                    }
                    "--lower-is-better" => {
                        lower_is_better = true;
                        i += 1;
                    }
                    "--markdown" => {
                        markdown = true;
                        i += 1;
                    }
                    "--jobs" | "-j" => {
                        let v = take_value(&rest, &mut i, "--jobs")?;
                        jobs = v.parse().map_err(|_| CliError(format!("bad jobs `{v}`")))?;
                    }
                    other if !other.starts_with('-') => {
                        studies.push(other.to_string());
                        i += 1;
                    }
                    other => return Err(CliError(format!("cmp: unexpected argument `{other}`"))),
                }
            }
            let [study_a, study_b]: [String; 2] = studies.try_into().map_err(|_| {
                CliError("cmp: exactly two studies (perflog files or directories)".into())
            })?;
            Ok(Command::Cmp {
                study_a,
                study_b,
                threshold_pct,
                lower_is_better,
                markdown,
                jobs,
            })
        }
        "store" => match rest.first().map(String::as_str) {
            Some("gc") => {
                let mut dir = None;
                let mut keep = 5usize;
                let mut i = 1;
                while i < rest.len() {
                    match rest[i].as_str() {
                        "--keep" => {
                            let v = take_value(&rest, &mut i, "--keep")?;
                            keep = v.parse().map_err(|_| CliError(format!("bad keep `{v}`")))?;
                        }
                        other if !other.starts_with('-') && dir.is_none() => {
                            dir = Some(other.to_string());
                            i += 1;
                        }
                        other => {
                            return Err(CliError(format!(
                                "store gc: unexpected argument `{other}`"
                            )))
                        }
                    }
                }
                Ok(Command::StoreGc {
                    dir: dir.ok_or_else(|| CliError("store gc: missing <dir>".into()))?,
                    keep,
                })
            }
            Some("fsck") => {
                let mut dir = None;
                let mut json = false;
                for arg in &rest[1..] {
                    match arg.as_str() {
                        "--json" => json = true,
                        other if !other.starts_with('-') && dir.is_none() => {
                            dir = Some(other.to_string());
                        }
                        other => {
                            return Err(CliError(format!(
                                "store fsck: unexpected argument `{other}`"
                            )))
                        }
                    }
                }
                Ok(Command::StoreFsck {
                    dir: dir.ok_or_else(|| CliError("store fsck: missing <dir>".into()))?,
                    json,
                })
            }
            _ => Err(CliError(
                "store: expected a subcommand: `store gc <dir> [--keep K]` \
                 or `store fsck <dir> [--json]`"
                    .into(),
            )),
        },
        "serve" => {
            let mut dir = None;
            let mut addr = None;
            let mut workers = 4usize;
            let mut queue = 16usize;
            let mut read_timeout_ms = 5_000u64;
            let mut max_body = 4 * 1024 * 1024usize;
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--addr" => {
                        addr = Some(take_value(&rest, &mut i, "--addr")?);
                    }
                    "--workers" => {
                        let v = take_value(&rest, &mut i, "--workers")?;
                        workers = v.parse().ok().filter(|w: &usize| *w >= 1).ok_or_else(|| {
                            CliError(format!("bad workers `{v}` (want an integer ≥ 1)"))
                        })?;
                    }
                    "--queue" => {
                        let v = take_value(&rest, &mut i, "--queue")?;
                        queue = v
                            .parse()
                            .map_err(|_| CliError(format!("bad queue `{v}`")))?;
                    }
                    "--read-timeout-ms" => {
                        let v = take_value(&rest, &mut i, "--read-timeout-ms")?;
                        read_timeout_ms =
                            v.parse().ok().filter(|t: &u64| *t >= 1).ok_or_else(|| {
                                CliError(format!("bad read-timeout-ms `{v}` (want ≥ 1)"))
                            })?;
                    }
                    "--max-body" => {
                        let v = take_value(&rest, &mut i, "--max-body")?;
                        max_body = v.parse().ok().filter(|b: &usize| *b >= 1).ok_or_else(|| {
                            CliError(format!("bad max-body `{v}` (want bytes ≥ 1)"))
                        })?;
                    }
                    other if !other.starts_with('-') && dir.is_none() => {
                        dir = Some(other.to_string());
                        i += 1;
                    }
                    other => return Err(CliError(format!("serve: unexpected argument `{other}`"))),
                }
            }
            Ok(Command::Serve {
                dir: dir.ok_or_else(|| CliError("serve: missing <dir>".into()))?,
                addr: addr.ok_or_else(|| CliError("serve: missing `--addr HOST:PORT`".into()))?,
                workers,
                queue,
                read_timeout_ms,
                max_body,
            })
        }
        "push" => {
            let mut dir = None;
            let mut to = None;
            let mut max_retries = 5u32;
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--to" => {
                        to = Some(take_value(&rest, &mut i, "--to")?);
                    }
                    "--max-retries" => {
                        let v = take_value(&rest, &mut i, "--max-retries")?;
                        max_retries = v
                            .parse()
                            .map_err(|_| CliError(format!("bad max-retries `{v}`")))?;
                    }
                    other if !other.starts_with('-') && dir.is_none() => {
                        dir = Some(other.to_string());
                        i += 1;
                    }
                    other => return Err(CliError(format!("push: unexpected argument `{other}`"))),
                }
            }
            Ok(Command::Push {
                dir: dir.ok_or_else(|| CliError("push: missing <dir-or-file>".into()))?,
                to: to.ok_or_else(|| CliError("push: missing `--to HOST:PORT`".into()))?,
                max_retries,
            })
        }
        "query" => {
            let mut positionals = Vec::new();
            for arg in &rest {
                if arg.starts_with("--") {
                    return Err(CliError(format!("query: unexpected argument `{arg}`")));
                }
                positionals.push(arg.clone());
            }
            let [addr, path]: [String; 2] = positionals
                .try_into()
                .map_err(|_| CliError("query: expected HOST:PORT and an endpoint path".into()))?;
            if !path.starts_with('/') {
                return Err(CliError(format!(
                    "query: endpoint path `{path}` must start with `/` (e.g. /v1/health)"
                )));
            }
            Ok(Command::Query { addr, path })
        }
        "checkpoint" => match rest.first().map(String::as_str) {
            Some("gc") => {
                let mut dir = None;
                let mut force = false;
                for arg in &rest[1..] {
                    match arg.as_str() {
                        "--force" => force = true,
                        other if !other.starts_with('-') && dir.is_none() => {
                            dir = Some(other.to_string());
                        }
                        other => {
                            return Err(CliError(format!(
                                "checkpoint gc: unexpected argument `{other}`"
                            )))
                        }
                    }
                }
                Ok(Command::CheckpointGc {
                    dir: dir.ok_or_else(|| CliError("checkpoint gc: missing <dir>".into()))?,
                    force,
                })
            }
            _ => Err(CliError(
                "checkpoint: expected a subcommand: `checkpoint gc <dir> [--force]`".into(),
            )),
        },
        "bench-digest" => {
            let mut logs = Vec::new();
            let mut min_speedups = Vec::new();
            let mut rank_groups = Vec::new();
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--min-speedup" => {
                        min_speedups.push(take_value(&rest, &mut i, "--min-speedup")?);
                    }
                    "--rank" => {
                        rank_groups.push(take_value(&rest, &mut i, "--rank")?);
                    }
                    other if !other.starts_with('-') => {
                        logs.push(other.to_string());
                        i += 1;
                    }
                    other => {
                        return Err(CliError(format!(
                            "bench-digest: unexpected argument `{other}`"
                        )))
                    }
                }
            }
            if logs.is_empty() {
                return Err(CliError("bench-digest: at least one <log> file".into()));
            }
            if !rank_groups.is_empty() && logs.len() < 2 {
                return Err(CliError(
                    "bench-digest: `--rank` needs at least two logs to compare".into(),
                ));
            }
            Ok(Command::BenchDigest {
                logs,
                min_speedups,
                rank_groups,
            })
        }
        "spec" => {
            let mut positional = None;
            let mut i = 0;
            let mut system = None;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--system" => {
                        system = Some(take_value(&rest, &mut i, "--system")?);
                    }
                    other if !other.starts_with('-') && positional.is_none() => {
                        positional = Some(other.to_string());
                        i += 1;
                    }
                    other => return Err(CliError(format!("spec: unexpected argument `{other}`"))),
                }
            }
            Ok(Command::Spec {
                spec: positional.ok_or_else(|| CliError("spec: missing <spack-spec>".into()))?,
                system: system.ok_or_else(|| CliError("spec: missing `--system`".into()))?,
            })
        }
        other => Err(CliError(format!(
            "unknown command `{other}` (try `benchkit help`)"
        ))),
    }
}

struct Options {
    cases: Vec<String>,
    systems: Vec<String>,
    seed: u64,
    repeats: u32,
    jobs: usize,
    warm_store: bool,
    /// Raw repeated `--fault-profile` values (`NAME` or `SYS=NAME`);
    /// split into base + overrides by the survey arm.
    fault_profiles: Vec<String>,
    max_retries: Option<u32>,
    fail_fast: bool,
    quarantine: Option<u32>,
    heal: bool,
    checkpoint: Option<String>,
    resume: Option<String>,
    interrupt_after: Option<usize>,
    store: Option<String>,
    perflog: Option<String>,
    /// Raw repeated `--engine` values (`SPEC` or `CASE=SPEC`); split into
    /// base + overrides by the survey arm.
    engines: Vec<String>,
    /// `--engine-timeout S`: default deadline for engine specs that do
    /// not set their own. Validated (finite, positive) at parse time.
    engine_timeout: Option<f64>,
}

fn take_value(args: &[String], i: &mut usize, flag: &str) -> Result<String, CliError> {
    let value = args
        .get(*i + 1)
        .cloned()
        .ok_or_else(|| CliError(format!("{flag} needs a value")))?;
    *i += 2;
    Ok(value)
}

fn parse_options(args: &[String]) -> Result<Options, CliError> {
    let mut opts = Options {
        cases: Vec::new(),
        systems: Vec::new(),
        seed: 42,
        repeats: 1,
        jobs: 1,
        warm_store: false,
        fault_profiles: Vec::new(),
        max_retries: None,
        fail_fast: false,
        quarantine: None,
        heal: false,
        checkpoint: None,
        resume: None,
        interrupt_after: None,
        store: None,
        perflog: None,
        engines: Vec::new(),
        engine_timeout: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-c" | "--case" => opts.cases.push(take_value(args, &mut i, "-c")?),
            "--system" => {
                let v = take_value(args, &mut i, "--system")?;
                // `--system=a` form also accepted.
                opts.systems.push(v);
            }
            "--seed" => {
                let v = take_value(args, &mut i, "--seed")?;
                opts.seed = v.parse().map_err(|_| CliError(format!("bad seed `{v}`")))?;
            }
            "--repeats" => {
                let v = take_value(args, &mut i, "--repeats")?;
                opts.repeats = v
                    .parse()
                    .map_err(|_| CliError(format!("bad repeats `{v}`")))?;
            }
            "--jobs" | "-j" => {
                let v = take_value(args, &mut i, "--jobs")?;
                opts.jobs = v.parse().map_err(|_| CliError(format!("bad jobs `{v}`")))?;
            }
            "--warm-store" => {
                opts.warm_store = true;
                i += 1;
            }
            "--fault-profile" => {
                let v = take_value(args, &mut i, "--fault-profile")?;
                // `SYS=NAME` overrides one system; bare `NAME` is the base.
                let name = v.split_once('=').map(|(_, n)| n).unwrap_or(&v);
                if simhpc::faults::FaultProfile::from_name(name).is_none() {
                    return Err(CliError(format!(
                        "unknown fault profile `{name}` (known: {})",
                        simhpc::faults::FaultProfile::known_names().join(", ")
                    )));
                }
                opts.fault_profiles.push(v);
            }
            "--max-retries" => {
                let v = take_value(args, &mut i, "--max-retries")?;
                opts.max_retries = Some(
                    v.parse()
                        .map_err(|_| CliError(format!("bad max-retries `{v}`")))?,
                );
            }
            "--fail-fast" => {
                opts.fail_fast = true;
                i += 1;
            }
            "--quarantine" => {
                let v = take_value(args, &mut i, "--quarantine")?;
                opts.quarantine = Some(
                    v.parse()
                        .map_err(|_| CliError(format!("bad quarantine `{v}`")))?,
                );
            }
            "--heal" => {
                opts.heal = true;
                i += 1;
            }
            "--checkpoint" => {
                opts.checkpoint = Some(take_value(args, &mut i, "--checkpoint")?);
            }
            "--resume" => {
                opts.resume = Some(take_value(args, &mut i, "--resume")?);
            }
            "--interrupt-after" => {
                let v = take_value(args, &mut i, "--interrupt-after")?;
                opts.interrupt_after = Some(
                    v.parse()
                        .map_err(|_| CliError(format!("bad interrupt-after `{v}`")))?,
                );
            }
            "--store" => {
                opts.store = Some(take_value(args, &mut i, "--store")?);
            }
            "--perflog" => {
                opts.perflog = Some(take_value(args, &mut i, "--perflog")?);
            }
            "--engine" => {
                opts.engines.push(take_value(args, &mut i, "--engine")?);
            }
            "--engine-timeout" => {
                let v = take_value(args, &mut i, "--engine-timeout")?;
                let timeout: f64 = v
                    .parse()
                    .map_err(|_| CliError(format!("bad engine-timeout `{v}`")))?;
                // Zero, negative and non-finite deadlines are rejected
                // here, not at the first engine launch hours into a sweep.
                engine::validate_timeout(timeout)
                    .map_err(|e| CliError(format!("bad engine-timeout `{v}`: {e}")))?;
                opts.engine_timeout = Some(timeout);
            }
            other if other.starts_with("--system=") => {
                opts.systems.push(other["--system=".len()..].to_string());
                i += 1;
            }
            other => return Err(CliError(format!("unexpected argument `{other}`"))),
        }
    }
    Ok(opts)
}

/// All named benchmarks the CLI can run.
pub fn benchmark_names() -> Vec<String> {
    let mut names: Vec<String> = parkern::Model::all()
        .iter()
        .map(|m| format!("babelstream_{}", m.name()))
        .collect();
    names.extend(
        benchapps::hpcg::HpcgVariant::all()
            .iter()
            .map(|v| format!("hpcg_{}", v.spec_name())),
    );
    names.push("hpgmg".to_string());
    names.push("stream".to_string());
    names
}

/// Build the TestCase for a CLI benchmark name.
pub fn case_by_name(name: &str) -> Result<TestCase, CliError> {
    if let Some(model_name) = name.strip_prefix("babelstream_") {
        let model = parkern::Model::from_name(model_name)
            .ok_or_else(|| CliError(format!("unknown programming model `{model_name}`")))?;
        return Ok(cases::babelstream(model, 1 << 25));
    }
    if let Some(variant_name) = name.strip_prefix("hpcg_") {
        let variant = benchapps::hpcg::HpcgVariant::from_spec_name(variant_name)
            .ok_or_else(|| CliError(format!("unknown HPCG variant `{variant_name}`")))?;
        return Ok(cases::hpcg(variant, 40));
    }
    if name == "hpgmg" {
        return Ok(cases::hpgmg());
    }
    if name == "stream" {
        return Ok(cases::stream(1 << 25));
    }
    Err(CliError(format!(
        "unknown benchmark `{name}` — try `benchkit list-benchmarks`"
    )))
}

/// Read perflog JSONL inputs — files, or directories whose `*.jsonl`
/// entries are read in name order — into one assimilated FOM frame.
fn load_fom_frame(inputs: &[String]) -> Result<dframe::DataFrame, CliError> {
    let mut texts = Vec::new();
    for input in inputs {
        let path = std::path::Path::new(input);
        let mut files = Vec::new();
        if path.is_dir() {
            let entries = std::fs::read_dir(path)
                .map_err(|e| CliError(format!("cannot read directory `{input}`: {e}")))?;
            let mut logs: Vec<std::path::PathBuf> = entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
                .collect();
            logs.sort();
            if logs.is_empty() {
                return Err(CliError(format!(
                    "`{input}`: no .jsonl perflogs in directory"
                )));
            }
            files.extend(logs);
        } else {
            files.push(path.to_path_buf());
        }
        for f in files {
            texts.push(
                std::fs::read_to_string(&f)
                    .map_err(|e| CliError(format!("cannot read `{}`: {e}", f.display())))?,
            );
        }
    }
    postproc::assimilate(&texts).map_err(|e| CliError(format!("bad perflog: {e}")))
}

fn rank_direction(lower_is_better: bool) -> postproc::Direction {
    if lower_is_better {
        postproc::Direction::LowerIsBetter
    } else {
        postproc::Direction::HigherIsBetter
    }
}

/// Execute a parsed command, writing human-readable output. The writer is
/// `Send` because `survey` streams outcome lines from worker threads as
/// grid cells complete (the ordered flush).
pub fn execute(
    cmd: Command,
    out: &mut (dyn std::io::Write + Send),
) -> Result<(), Box<dyn std::error::Error>> {
    match cmd {
        Command::Help => writeln!(out, "{USAGE}")?,
        Command::ListSystems => {
            writeln!(out, "Available systems (from the simhpc catalog):")?;
            for sys in simhpc::catalog::all_systems() {
                for part in sys.partitions() {
                    let p = part.processor();
                    writeln!(
                        out,
                        "  {:<28} {} ({} cores, {:.0} GB/s peak)",
                        format!("{}:{}", sys.name(), part.name()),
                        p.model(),
                        p.total_cores(),
                        p.peak_mem_bw_gbs(),
                    )?;
                }
            }
        }
        Command::ListBenchmarks => {
            writeln!(out, "Available benchmarks:")?;
            for name in benchmark_names() {
                writeln!(out, "  {name}")?;
            }
        }
        Command::Run {
            benchmark,
            system,
            seed,
            repeats,
        } => {
            let case = case_by_name(&benchmark)?;
            let mut harness = Harness::new(RunOptions::on_system(&system).with_seed(seed));
            for rep in 0..repeats.max(1) {
                let report = harness.run_case(&case)?;
                writeln!(
                    out,
                    "[{}/{repeats}] {} on {} (hash {}, built {}, cached {})",
                    rep + 1,
                    benchmark,
                    system,
                    report.dag_hash,
                    report.packages_built,
                    report.packages_cached,
                )?;
                for fom in &report.record.foms {
                    writeln!(out, "    {:<8} {:>16.3} {}", fom.name, fom.value, fom.unit)?;
                }
                writeln!(
                    out,
                    "    energy {:.0} J, avg power {:.0} W, queue wait {:.3} s",
                    report.telemetry.energy_j, report.telemetry.avg_power_w, report.queue_wait_s,
                )?;
            }
            // Emit the perflog like the real framework.
            let (sys_name, _) = system.split_once(':').unwrap_or((system.as_str(), ""));
            if let Some(log) = harness.perflog(sys_name, case.app.name()) {
                writeln!(out, "\nperflog ({} records):", log.len())?;
                write!(out, "{}", log.to_jsonl())?;
            }
        }
        Command::Survey {
            benchmarks,
            systems,
            seed,
            jobs,
            warm_store,
            fault_profile,
            fault_overrides,
            max_retries,
            fail_fast,
            quarantine,
            heal,
            checkpoint,
            resume,
            interrupt_after,
            store,
            perflog,
            engine,
            engine_overrides,
        } => {
            let profile = simhpc::faults::FaultProfile::from_name(&fault_profile)
                .ok_or_else(|| CliError(format!("unknown fault profile `{fault_profile}`")))?;
            let mut study = Study::new("cli-survey")
                .with_seed(seed)
                .with_jobs(jobs)
                .with_warm_store(warm_store)
                .with_fault_profile(profile.clone())
                .with_max_retries(max_retries)
                .with_fail_fast(fail_fast)
                .with_quarantine(quarantine)
                .with_heal(heal);
            for (system, name) in &fault_overrides {
                let p = simhpc::faults::FaultProfile::from_name(name)
                    .ok_or_else(|| CliError(format!("unknown fault profile `{name}`")))?;
                study = study.with_fault_override(system, p);
            }
            if let Some(dir) = &checkpoint {
                study = study.with_checkpoint(std::path::Path::new(dir));
            }
            if let Some(dir) = &resume {
                study = study.with_resume(std::path::Path::new(dir));
            }
            if let Some(dir) = &store {
                study = study.with_store(std::path::Path::new(dir));
            }
            study = study.with_engine(engine.clone());
            for (case, spec) in &engine_overrides {
                study = study.with_engine_override(case, spec.clone());
            }
            for b in &benchmarks {
                study = study.with_case(case_by_name(b)?);
            }
            study = study.on_systems(&systems.iter().map(String::as_str).collect::<Vec<_>>());
            // Stream one line per grid cell as soon as it (and every
            // earlier cell) finishes; the flush order is canonical, so
            // this output is byte-identical for any --jobs count.
            let flushed = std::sync::atomic::AtomicUsize::new(0);
            let results = {
                let shared = std::sync::Mutex::new(&mut *out);
                study.try_run_with_progress(&|p| {
                    let status = match p.outcome {
                        harness::SuiteOutcome::Ran(r) => {
                            let mut s = format!(
                                "ok ({} built, {} cached, build {:.1}s",
                                r.packages_built, r.packages_cached, r.build_time_s
                            );
                            if r.retries > 0 {
                                s.push_str(&format!(", {} retries", r.retries));
                            }
                            s.push(')');
                            s
                        }
                        harness::SuiteOutcome::Skipped(reason) => format!("skip: {reason}"),
                        harness::SuiteOutcome::Failed(err) => format!("FAIL: {err}"),
                    };
                    let mut o = shared.lock().expect("survey writer poisoned");
                    writeln!(
                        o,
                        "[{}/{}] {} on {}: {status}",
                        p.index + 1,
                        p.total,
                        p.case,
                        p.system
                    )
                    .ok();
                    // The crash drill: die hard after the cell budget. The
                    // journal entry for this cell was already fsync'd, so a
                    // --resume picks up exactly here.
                    let n = flushed.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                    if interrupt_after.is_some_and(|budget| n >= budget) {
                        o.flush().ok();
                        std::process::exit(3);
                    }
                })?
            };
            writeln!(
                out,
                "ran {}  skipped {}  failed {}",
                results.report.n_ran(),
                results.report.n_skipped(),
                results.report.n_failed()
            )?;
            if let Some(spec) = &engine {
                writeln!(out, "engine: {}", spec.render())?;
            }
            for (case, spec) in &engine_overrides {
                writeln!(out, "engine override: {case}={}", spec.render())?;
            }
            let any_faults =
                !profile.is_none() || fault_overrides.iter().any(|(_, name)| name != "none");
            if any_faults {
                let mut line = format!(
                    "fault profile `{}`: {} faults injected, {} retries, {:.1}s simulated time lost, {} quarantined",
                    profile.name,
                    results.report.total_faults_injected(),
                    results.report.total_retries(),
                    results.report.total_time_lost_s(),
                    results.report.n_quarantined()
                );
                if heal {
                    line.push_str(&format!(
                        ", {} nodes repaired",
                        results.report.total_nodes_repaired()
                    ));
                }
                writeln!(out, "{line}")?;
            }
            if !fault_overrides.is_empty() {
                let rendered: Vec<String> = fault_overrides
                    .iter()
                    .map(|(s, n)| format!("{s}={n}"))
                    .collect();
                writeln!(out, "fault overrides: {}", rendered.join(", "))?;
            }
            for (system, readmitted) in &results.report.canaries {
                writeln!(
                    out,
                    "canary: {system} {}",
                    if *readmitted {
                        "readmitted after probe"
                    } else {
                        "still quarantined (canary failed)"
                    }
                )?;
            }
            if warm_store {
                writeln!(
                    out,
                    "warm store: {} built, {} reused, {:.1}s total build time",
                    results.report.total_packages_built(),
                    results.report.total_packages_cached(),
                    results.report.total_build_time_s()
                )?;
            }
            if let Some(stats) = &results.report.store {
                let mut line = format!(
                    "store: {} hits, {} misses, {} quarantined, {} persisted",
                    stats.hits, stats.misses, stats.quarantined, stats.persisted
                );
                // Contention annotations only when they happened, so a
                // clean run's report stays byte-identical to older ones.
                if stats.persist_skipped > 0 {
                    line.push_str(&format!(
                        ", {} skipped (shard leased elsewhere)",
                        stats.persist_skipped
                    ));
                }
                if stats.shards_contended > 0 {
                    line.push_str(&format!(
                        " [{} shards held by a live writer]",
                        stats.shards_contended
                    ));
                }
                if let Some(reason) = &stats.degraded {
                    line.push_str(&format!(" (degraded to in-memory warm store: {reason})"));
                }
                writeln!(out, "{line}")?;
            }
            write!(out, "{}", results.frame())?;
            // Perflogs are written even when cells failed: a partial study
            // is still comparable, and the gaps surface as explicit
            // missing cells in `rank`/`cmp` rather than vanishing.
            if let Some(dir) = &perflog {
                let dir = std::path::Path::new(dir);
                std::fs::create_dir_all(dir).map_err(|e| {
                    CliError(format!("survey: cannot create `{}`: {e}", dir.display()))
                })?;
                let mut written = 0usize;
                for ((system, benchmark), log) in &results.report.perflogs {
                    let sanitize = |s: &str| s.replace([':', '/'], "_");
                    let path = dir.join(format!(
                        "{}-{}.jsonl",
                        sanitize(system),
                        sanitize(benchmark)
                    ));
                    std::fs::write(&path, log.to_jsonl()).map_err(|e| {
                        CliError(format!("survey: cannot write `{}`: {e}", path.display()))
                    })?;
                    written += 1;
                }
                writeln!(
                    out,
                    "perflogs: {written} files written to {}",
                    dir.display()
                )?;
            }
            let failed = results.report.n_failed();
            if failed > 0 {
                return Err(CliError(format!(
                    "survey: {failed} of {} cells failed",
                    results.report.outcomes.len()
                ))
                .into());
            }
        }
        Command::Rank {
            inputs,
            lower_is_better,
            markdown,
            jobs,
        } => {
            let frame = load_fom_frame(&inputs).map_err(|e| CliError(format!("rank: {e}")))?;
            let policy = postproc::RankPolicy {
                direction: rank_direction(lower_is_better),
                jobs,
            };
            let ranking = postproc::rank_frame(&frame, &policy)
                .map_err(|e| CliError(format!("rank: {e}")))?;
            write!(
                out,
                "{}",
                if markdown {
                    ranking.render_markdown()
                } else {
                    ranking.render_text()
                }
            )?;
        }
        Command::Cmp {
            study_a,
            study_b,
            threshold_pct,
            lower_is_better,
            markdown,
            jobs,
        } => {
            let a = load_fom_frame(std::slice::from_ref(&study_a))
                .map_err(|e| CliError(format!("cmp: {e}")))?;
            let b = load_fom_frame(std::slice::from_ref(&study_b))
                .map_err(|e| CliError(format!("cmp: {e}")))?;
            let policy = postproc::CmpPolicy {
                threshold_pct,
                direction: rank_direction(lower_is_better),
                jobs,
            };
            let comparison =
                postproc::cmp_frames(&a, &b, &policy).map_err(|e| CliError(format!("cmp: {e}")))?;
            writeln!(out, "comparing A={study_a} to B={study_b}")?;
            write!(
                out,
                "{}",
                if markdown {
                    comparison.render_markdown()
                } else {
                    comparison.render_text()
                }
            )?;
        }
        Command::StoreGc { dir, keep } => {
            let path = std::path::Path::new(&dir);
            let mut disk = spackle::DiskStore::open(path).map_err(|e| {
                CliError(match e {
                    spackle::DiskStoreError::Busy { pid, .. } => format!(
                        "store gc: `{dir}` holds a legacy v1 lock owned by a live process \
                     (pid {pid}); retry once its study finishes"
                    ),
                    other => format!("store gc: {other}"),
                })
            })?;
            let report = disk
                .gc(keep)
                .map_err(|e| CliError(format!("store gc: {e}")))?;
            let mut line = format!(
                "store gc: kept {}, evicted {} (referenced by the last {} studies)",
                report.kept, report.evicted, report.studies_considered
            );
            if !report.skipped_shards.is_empty() {
                line.push_str(&format!(
                    "; skipped {} leased by live writers: {}",
                    report.skipped_shards.len(),
                    report.skipped_shards.join(", ")
                ));
            }
            writeln!(out, "{line}")?;
        }
        Command::StoreFsck { dir, json } => {
            let path = std::path::Path::new(&dir);
            let report = spackle::fsck(path).map_err(|e| CliError(format!("store fsck: {e}")))?;
            if json {
                writeln!(out, "{}", report.to_json())?;
                if !report.clean() {
                    return Err(CliError(format!(
                        "store fsck: {} invalid committed entries in `{dir}`",
                        report.invalid.len()
                    ))
                    .into());
                }
                return Ok(());
            }
            writeln!(
                out,
                "store fsck: {} valid, {} invalid, {} quarantined, \
                 {} orphaned temps, {} live leases, {} expired leases, \
                 {} ref segments ({} records)",
                report.valid,
                report.invalid.len(),
                report.quarantined,
                report.orphan_temps.len(),
                report.live_leases.len(),
                report.expired_leases.len(),
                report.ref_segments,
                report.ref_records,
            )?;
            for (file, why) in &report.invalid {
                writeln!(out, "  invalid {file}: {why}")?;
            }
            for temp in &report.orphan_temps {
                writeln!(out, "  orphaned temp {temp}")?;
            }
            for lease in &report.live_leases {
                writeln!(out, "  live lease {lease}")?;
            }
            for lease in &report.expired_leases {
                writeln!(out, "  expired lease {lease}")?;
            }
            if report.legacy_layout {
                writeln!(
                    out,
                    "  note: unmigrated v1 layout (entries/) — \
                     the next writer will migrate it in place"
                )?;
            }
            if !report.clean() {
                return Err(CliError(format!(
                    "store fsck: {} invalid committed entries in `{dir}`",
                    report.invalid.len()
                ))
                .into());
            }
        }
        Command::Serve {
            dir,
            addr,
            workers,
            queue,
            read_timeout_ms,
            max_body,
        } => {
            let mut cfg = servd::ServeConfig::new(&dir, &addr);
            cfg.workers = workers;
            cfg.queue = queue;
            cfg.read_timeout_ms = read_timeout_ms;
            cfg.max_body = max_body;
            let server = servd::Server::bind(cfg).map_err(|e| CliError(format!("serve: {e}")))?;
            let bound = server
                .local_addr()
                .map_err(|e| CliError(format!("serve: {e}")))?;
            servd::install_sigterm_drain();
            let recovered = server.recovered_records();
            if recovered > 0 {
                writeln!(
                    out,
                    "serve: recovered {recovered} acknowledged records from the WAL"
                )?;
            }
            // The readiness line: scripts wait for it (and parse the
            // bound address out of it when --addr ended in :0).
            writeln!(
                out,
                "serving {dir} on {bound} ({workers} workers, queue {queue})"
            )?;
            out.flush()?;
            let summary = server.run().map_err(|e| CliError(format!("serve: {e}")))?;
            writeln!(
                out,
                "serve: drained — {} connections served, {} rejected, {} records durable",
                summary.served, summary.rejected, summary.wal_records
            )?;
        }
        Command::Push {
            dir,
            to,
            max_retries,
        } => {
            let report = servd::push_dir(std::path::Path::new(&dir), &to, max_retries, &mut *out)
                .map_err(|e| CliError(format!("push: {e}")))?;
            writeln!(
                out,
                "push: {} files, {} acked, {} duplicate, {} retries",
                report.files, report.acked, report.duplicates, report.retries
            )?;
        }
        Command::Query { addr, path } => {
            let resp = servd::http_get(&addr, &path)
                .map_err(|e| CliError(format!("query: {addr}{path}: {e}")))?;
            write!(out, "{}", resp.body_text())?;
            out.flush()?;
            if !(200..300).contains(&resp.status) {
                return Err(
                    CliError(format!("query: {addr}{path} answered {}", resp.status)).into(),
                );
            }
        }
        Command::CheckpointGc { dir, force } => {
            match harness::checkpoint::gc(std::path::Path::new(&dir), force)? {
                harness::checkpoint::GcOutcome::Collected { cells, forced } => writeln!(
                    out,
                    "checkpoint gc: collected journal ({cells} cells{}); quarantine memory kept",
                    if forced { ", forced" } else { "" }
                )?,
                harness::checkpoint::GcOutcome::NoJournal => {
                    writeln!(out, "checkpoint gc: no journal in `{dir}`")?;
                }
            }
        }
        Command::BenchDigest {
            logs,
            min_speedups,
            rank_groups,
        } => {
            // Oldest first: each file is one bench run; the last file's
            // medians are judged against all earlier ones.
            let mut runs = Vec::new();
            for path in &logs {
                runs.push(
                    std::fs::read_to_string(path).map_err(|e| {
                        CliError(format!("bench-digest: cannot read `{path}`: {e}"))
                    })?,
                );
            }
            // Every (group, id) pair seen in any run, sorted for a stable
            // digest regardless of log ordering quirks.
            let mut ids = std::collections::BTreeSet::new();
            for run in &runs {
                for p in postproc::parse_criterion_log(run) {
                    ids.insert((p.group, p.id));
                }
            }
            if ids.is_empty() {
                return Err(CliError(
                    "bench-digest: no criterion records in the given logs".into(),
                )
                .into());
            }
            // Bench medians are wall times: lower is better.
            let policy = postproc::RegressionPolicy::default().lower_is_better();
            let mut regressions = 0usize;
            for (group, id) in &ids {
                let history = postproc::criterion_history(&runs, group, id);
                let verdict = history.check_latest(&policy);
                let verdict_text = match &verdict {
                    postproc::Verdict::Ok { z_score } => format!("ok (z={z_score:.2})"),
                    postproc::Verdict::Regression { z_score, .. } => {
                        regressions += 1;
                        format!("REGRESSION (z={z_score:.2})")
                    }
                    postproc::Verdict::Improvement { z_score, .. } => {
                        format!("improvement (z={z_score:.2})")
                    }
                    postproc::Verdict::InsufficientHistory { have, need } => {
                        format!("insufficient history ({have}/{need})")
                    }
                };
                writeln!(out, "{group}/{id}: {} {verdict_text}", history.sparkline())?;
            }
            // Cross-benchmark speedup floors, judged on the newest run:
            // `--min-speedup BG/BI:TG/TI:R` requires speed(TG/TI) ≥
            // R × speed(BG/BI), where speed is the declared per-iteration
            // work (bytes or elements) over the fastest time. This is how
            // CI pins roofline relations (triad within 1.5× of copy
            // bandwidth, SELL ≥ 1.2× CSR) rather than absolute times.
            let newest = postproc::parse_criterion_log(runs.last().expect("nonempty logs"));
            let mut floors_missed = 0usize;
            for spec in &min_speedups {
                let parsed = (|| {
                    let mut parts = spec.splitn(3, ':');
                    let base = parts.next()?.split_once('/')?;
                    let target = parts.next()?.split_once('/')?;
                    let ratio: f64 = parts.next()?.parse().ok()?;
                    Some((base, target, ratio))
                })();
                let Some(((bg, bi), (tg, ti), ratio)) = parsed else {
                    return Err(CliError(format!(
                        "bench-digest: bad --min-speedup `{spec}` \
                         (want BASEGROUP/BASEID:TARGETGROUP/TARGETID:RATIO)"
                    ))
                    .into());
                };
                let find = |g: &str, id: &str| newest.iter().find(|p| p.group == g && p.id == id);
                let (Some(base), Some(target)) = (find(bg, bi), find(tg, ti)) else {
                    return Err(CliError(format!(
                        "bench-digest: --min-speedup `{spec}`: \
                         benchmark missing from the newest log"
                    ))
                    .into());
                };
                let actual = target.speed() / base.speed();
                let verdict = if actual >= ratio {
                    "ok"
                } else {
                    floors_missed += 1;
                    "FLOOR MISSED"
                };
                writeln!(
                    out,
                    "{tg}/{ti} vs {bg}/{bi}: {actual:.2}x (floor {ratio}x) {verdict}"
                )?;
            }
            // Rank-flip gate: the speed-ordering of a group's benchmark
            // ids must agree between the two newest logs. This is the
            // `postproc::rank` geomean machinery fed with criterion
            // speeds, so a CI digest can gate on "SELL is still faster
            // than CSR" instead of absolute times.
            let mut rank_flips = 0usize;
            for group in &rank_groups {
                let frame_for = |run: &String| -> Result<dframe::DataFrame, CliError> {
                    let mut df = dframe::DataFrame::new(vec![
                        "benchmark",
                        "fom",
                        "system",
                        "partition",
                        "value",
                    ]);
                    let mut any = false;
                    for p in postproc::parse_criterion_log(run) {
                        if p.group == *group {
                            any = true;
                            df.push_row(vec![
                                dframe::Cell::from(group.as_str()),
                                dframe::Cell::from("speed"),
                                dframe::Cell::from(p.id.as_str()),
                                dframe::Cell::Null,
                                dframe::Cell::from(p.speed()),
                            ])
                            .expect("fixed schema");
                        }
                    }
                    if !any {
                        return Err(CliError(format!(
                            "bench-digest: --rank `{group}`: no criterion records \
                             for that group in one of the two newest logs"
                        )));
                    }
                    Ok(df)
                };
                let policy = postproc::RankPolicy::default();
                let previous = postproc::rank_frame(&frame_for(&runs[runs.len() - 2])?, &policy)
                    .map_err(|e| CliError(format!("bench-digest: --rank `{group}`: {e}")))?;
                let newest =
                    postproc::rank_frame(&frame_for(runs.last().expect("nonempty"))?, &policy)
                        .map_err(|e| CliError(format!("bench-digest: --rank `{group}`: {e}")))?;
                let render = |r: &postproc::Ranking| r.order().join(" > ");
                if previous.order() == newest.order() {
                    writeln!(out, "rank {group}: stable ({})", render(&newest))?;
                } else {
                    rank_flips += 1;
                    writeln!(
                        out,
                        "rank {group}: RANK FLIP ({} -> {})",
                        render(&previous),
                        render(&newest)
                    )?;
                }
            }
            if regressions > 0 {
                return Err(CliError(format!(
                    "bench-digest: {regressions} benchmark(s) regressed"
                ))
                .into());
            }
            if floors_missed > 0 {
                return Err(CliError(format!(
                    "bench-digest: {floors_missed} speedup floor(s) missed"
                ))
                .into());
            }
            if rank_flips > 0 {
                return Err(CliError(format!(
                    "bench-digest: {rank_flips} benchmark ranking(s) flipped"
                ))
                .into());
            }
        }
        Command::Spec { spec, system } => {
            let (sys, part_name) = simhpc::catalog::resolve(&system)
                .ok_or_else(|| CliError(format!("unknown system `{system}`")))?;
            let partition = sys.partition(&part_name).expect("resolved partition");
            let ctx = spackle::context_for(&sys, partition);
            let parsed = spackle::Spec::parse(&spec)?;
            let concrete = spackle::concretize(&parsed, &spackle::Repo::builtin(), &ctx)?;
            writeln!(
                out,
                "concretized on {system} (dag hash {}):",
                concrete.dag_hash()
            )?;
            write!(out, "{concrete}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parse_run() {
        let cmd = parse(&argv("run -c babelstream_omp --system csd3 --seed 7")).unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                benchmark: "babelstream_omp".into(),
                system: "csd3".into(),
                seed: 7,
                repeats: 1
            }
        );
        assert!(parse(&argv("run --system csd3")).is_err(), "missing -c");
        assert!(parse(&argv("run -c x")).is_err(), "missing --system");
        assert!(parse(&argv("run -c x --seed nope --system csd3")).is_err());
    }

    #[test]
    fn parse_survey_and_equals_form() {
        let cmd = parse(&argv(
            "survey -c hpgmg -c babelstream_omp --system=archer2 --system csd3",
        ))
        .unwrap();
        match cmd {
            Command::Survey {
                benchmarks,
                systems,
                seed,
                jobs,
                warm_store,
                fault_profile,
                fault_overrides,
                max_retries,
                fail_fast,
                quarantine,
                heal,
                checkpoint,
                resume,
                interrupt_after,
                store,
                perflog,
                engine,
                engine_overrides,
            } => {
                assert_eq!(benchmarks, vec!["hpgmg", "babelstream_omp"]);
                assert_eq!(systems, vec!["archer2", "csd3"]);
                assert_eq!(seed, 42);
                assert_eq!(jobs, 1, "serial by default");
                assert!(!warm_store, "cold by default");
                assert_eq!(fault_profile, "none", "no faults by default");
                assert!(fault_overrides.is_empty(), "no overrides by default");
                assert_eq!(max_retries, 2);
                assert!(!fail_fast);
                assert_eq!(quarantine, 0, "quarantine off by default");
                assert!(!heal, "healing off by default");
                assert_eq!(checkpoint, None, "no checkpointing by default");
                assert_eq!(resume, None);
                assert_eq!(interrupt_after, None);
                assert_eq!(store, None, "no persistent store by default");
                assert_eq!(perflog, None, "no perflog export by default");
                assert_eq!(engine, None, "in-process run stage by default");
                assert!(engine_overrides.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_survey_warm_store() {
        let cmd = parse(&argv(
            "survey -c hpgmg --system archer2 --warm-store --jobs 2",
        ))
        .unwrap();
        match cmd {
            Command::Survey {
                warm_store, jobs, ..
            } => {
                assert!(warm_store);
                assert_eq!(jobs, 2);
            }
            other => panic!("{other:?}"),
        }
        // Only survey takes it.
        assert!(parse(&argv("run -c hpgmg --system archer2 --warm-store")).is_err());
    }

    #[test]
    fn parse_survey_jobs() {
        let cmd = parse(&argv("survey -c hpgmg --system archer2 --jobs 4")).unwrap();
        match cmd {
            Command::Survey { jobs, .. } => assert_eq!(jobs, 4),
            other => panic!("{other:?}"),
        }
        let cmd = parse(&argv("survey -c hpgmg --system archer2 -j 0")).unwrap();
        match cmd {
            Command::Survey { jobs, .. } => assert_eq!(jobs, 0, "0 = auto"),
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("survey -c hpgmg --system archer2 --jobs nope")).is_err());
    }

    #[test]
    fn parse_survey_engine_flags() {
        // argv() splits on whitespace, so engine specs with embedded
        // spaces are built as explicit vectors here.
        let args = |tail: &[&str]| -> Vec<String> {
            ["survey", "-c", "hpgmg", "--system", "archer2"]
                .iter()
                .copied()
                .chain(tail.iter().copied())
                .map(str::to_string)
                .collect()
        };
        let cmd = parse(&args(&["--engine", "./stub --ok"])).unwrap();
        match cmd {
            Command::Survey {
                engine,
                engine_overrides,
                ..
            } => {
                let spec = engine.expect("base engine parsed");
                assert_eq!(spec.cmd, vec!["./stub", "--ok"]);
                assert_eq!(spec.timeout_s, engine::DEFAULT_TIMEOUT_S);
                assert!(engine_overrides.is_empty());
            }
            other => panic!("{other:?}"),
        }
        // --engine-timeout applies to specs that don't pin their own.
        let cmd = parse(&args(&["--engine", "./stub", "--engine-timeout", "30"])).unwrap();
        match cmd {
            Command::Survey { engine, .. } => {
                assert_eq!(engine.unwrap().timeout_s, 30.0);
            }
            other => panic!("{other:?}"),
        }
        // A `=` inside the command is not a per-case override: the text
        // left of it is not shaped like a benchmark name.
        let cmd = parse(&args(&["--engine", "./eng --mode=fast"])).unwrap();
        match cmd {
            Command::Survey {
                engine,
                engine_overrides,
                ..
            } => {
                assert_eq!(engine.unwrap().cmd, vec!["./eng", "--mode=fast"]);
                assert!(engine_overrides.is_empty());
            }
            other => panic!("{other:?}"),
        }
        // CASE=SPEC is an override when CASE is a surveyed benchmark.
        let cmd = parse(&args(&["--engine", "hpgmg=./special --hpgmg"])).unwrap();
        match cmd {
            Command::Survey {
                engine,
                engine_overrides,
                ..
            } => {
                assert_eq!(engine, None, "override only, no base engine");
                assert_eq!(engine_overrides.len(), 1);
                assert_eq!(engine_overrides[0].0, "hpgmg");
                assert_eq!(engine_overrides[0].1.cmd, vec!["./special", "--hpgmg"]);
            }
            other => panic!("{other:?}"),
        }
        // Overrides must name a surveyed case; duplicates are rejected.
        assert!(parse(&args(&["--engine", "babelstream_omp=./x"])).is_err());
        assert!(parse(&args(&["--engine", "./a", "--engine", "./b"])).is_err());
        assert!(parse(&args(&["--engine", "hpgmg=./a", "--engine", "hpgmg=./b"])).is_err());
        // The deadline is validated at parse time, not at first launch.
        for bad in ["0", "-1", "nan", "inf", "nope", ""] {
            assert!(
                parse(&args(&["--engine", "./stub", "--engine-timeout", bad])).is_err(),
                "engine-timeout `{bad}` must be a parse error"
            );
        }
        // --engine-timeout is meaningless without an engine.
        assert!(parse(&args(&["--engine-timeout", "30"])).is_err());
        // An empty spec has no command to run.
        assert!(parse(&args(&["--engine", ""])).is_err());
        // Only survey takes engine flags.
        assert!(parse(&argv("run -c hpgmg --system archer2 --engine ./stub")).is_err());
        assert!(parse(&argv("run -c hpgmg --system archer2 --engine-timeout 5")).is_err());
    }

    #[test]
    fn parse_survey_fault_flags() {
        let cmd = parse(&argv(
            "survey -c hpgmg --system archer2 --fault-profile flaky --max-retries 5 \
             --fail-fast --quarantine 3",
        ))
        .unwrap();
        match cmd {
            Command::Survey {
                fault_profile,
                max_retries,
                fail_fast,
                quarantine,
                ..
            } => {
                assert_eq!(fault_profile, "flaky");
                assert_eq!(max_retries, 5);
                assert!(fail_fast);
                assert_eq!(quarantine, 3);
            }
            other => panic!("{other:?}"),
        }
        // Unknown profiles are rejected at parse time, with the catalog.
        let err = parse(&argv(
            "survey -c hpgmg --system archer2 --fault-profile wat",
        ))
        .unwrap_err()
        .to_string();
        assert!(err.contains("unknown fault profile"), "{err}");
        assert!(err.contains("flaky"), "{err}");
        assert!(parse(&argv("survey -c x --system y --max-retries nope")).is_err());
        assert!(parse(&argv("survey -c x --system y --quarantine nope")).is_err());
        // Fault flags apply to survey only.
        for flags in [
            "--fault-profile flaky",
            "--max-retries 1",
            "--fail-fast",
            "--quarantine 2",
        ] {
            assert!(
                parse(&argv(&format!("run -c hpgmg --system archer2 {flags}"))).is_err(),
                "run should reject {flags}"
            );
        }
    }

    #[test]
    fn parse_fault_profile_overrides() {
        let cmd = parse(&argv(
            "survey -c hpgmg --system archer2 --system csd3 \
             --fault-profile flaky --fault-profile csd3=brutal",
        ))
        .unwrap();
        match cmd {
            Command::Survey {
                fault_profile,
                fault_overrides,
                ..
            } => {
                assert_eq!(fault_profile, "flaky");
                assert_eq!(
                    fault_overrides,
                    vec![("csd3".to_string(), "brutal".to_string())]
                );
            }
            other => panic!("{other:?}"),
        }
        // Unknown profile inside an override is caught at parse time.
        let err = parse(&argv(
            "survey -c hpgmg --system csd3 --fault-profile csd3=wat",
        ))
        .unwrap_err()
        .to_string();
        assert!(err.contains("unknown fault profile `wat`"), "{err}");
        // Overriding a system that is not surveyed is an error.
        let err = parse(&argv(
            "survey -c hpgmg --system csd3 --fault-profile archer2=flaky",
        ))
        .unwrap_err()
        .to_string();
        assert!(err.contains("not in the surveyed"), "{err}");
        // Duplicate override for the same system is an error.
        let err = parse(&argv(
            "survey -c hpgmg --system csd3 \
             --fault-profile csd3=flaky --fault-profile csd3=brutal",
        ))
        .unwrap_err()
        .to_string();
        assert!(
            err.contains("duplicate `--fault-profile` override"),
            "{err}"
        );
        // So is a duplicate base profile.
        let err = parse(&argv(
            "survey -c hpgmg --system csd3 --fault-profile flaky --fault-profile brutal",
        ))
        .unwrap_err()
        .to_string();
        assert!(err.contains("duplicate base"), "{err}");
    }

    #[test]
    fn parse_checkpoint_heal_and_interrupt_flags() {
        let cmd = parse(&argv(
            "survey -c hpgmg --system csd3 --heal --checkpoint /tmp/ck --interrupt-after 3",
        ))
        .unwrap();
        match cmd {
            Command::Survey {
                heal,
                checkpoint,
                resume,
                interrupt_after,
                ..
            } => {
                assert!(heal);
                assert_eq!(checkpoint.as_deref(), Some("/tmp/ck"));
                assert_eq!(resume, None);
                assert_eq!(interrupt_after, Some(3));
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("survey -c hpgmg --system csd3 --resume /tmp/ck")).unwrap() {
            Command::Survey {
                checkpoint, resume, ..
            } => {
                assert_eq!(checkpoint, None);
                assert_eq!(resume.as_deref(), Some("/tmp/ck"));
            }
            other => panic!("{other:?}"),
        }
        // Checkpoint and resume are mutually exclusive.
        let err = parse(&argv(
            "survey -c hpgmg --system csd3 --checkpoint /a --resume /b",
        ))
        .unwrap_err()
        .to_string();
        assert!(err.contains("mutually exclusive"), "{err}");
        assert!(parse(&argv("survey -c x --system y --interrupt-after nope")).is_err());
        // All of them are survey-only.
        for flags in [
            "--heal",
            "--checkpoint /a",
            "--resume /a",
            "--interrupt-after 1",
        ] {
            assert!(
                parse(&argv(&format!("run -c hpgmg --system csd3 {flags}"))).is_err(),
                "run should reject {flags}"
            );
        }
    }

    #[test]
    fn parse_misc() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("list-systems")).unwrap(), Command::ListSystems);
        assert!(parse(&argv("frobnicate")).is_err());
        let cmd = parse(&argv("spec hpgmg%gcc --system archer2")).unwrap();
        assert_eq!(
            cmd,
            Command::Spec {
                spec: "hpgmg%gcc".into(),
                system: "archer2".into()
            }
        );
    }

    #[test]
    fn benchmark_name_registry() {
        let names = benchmark_names();
        assert!(names.contains(&"babelstream_omp".to_string()));
        assert!(names.contains(&"hpcg_matfree".to_string()));
        assert!(names.contains(&"hpgmg".to_string()));
        for name in &names {
            // hpcg_avx2 etc. must all be constructible.
            case_by_name(name).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        assert!(case_by_name("nope").is_err());
    }

    #[test]
    fn execute_list_and_run() {
        let mut buf = Vec::new();
        execute(Command::ListSystems, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("archer2:rome"));
        assert!(text.contains("isambard-macs:volta"));

        let mut buf = Vec::new();
        execute(
            Command::Run {
                benchmark: "babelstream_omp".into(),
                system: "csd3".into(),
                seed: 42,
                repeats: 2,
            },
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("Triad"));
        assert!(text.contains("perflog (2 records):"));
        assert!(text.contains("energy"));
    }

    #[test]
    fn execute_spec_prints_table3_row() {
        let mut buf = Vec::new();
        execute(
            Command::Spec {
                spec: "hpgmg%gcc".into(),
                system: "archer2".into(),
            },
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("cray-mpich@8.1.23"));
        assert!(text.contains("[external]"));
    }

    #[test]
    fn execute_survey_counts_and_streams() {
        let mut buf = Vec::new();
        execute(
            Command::Survey {
                benchmarks: vec!["babelstream_cuda".into()],
                systems: vec!["csd3".into(), "isambard-macs:volta".into()],
                seed: 42,
                jobs: 2,
                warm_store: false,
                fault_profile: "none".into(),
                fault_overrides: vec![],
                max_retries: 2,
                fail_fast: false,
                quarantine: 0,
                heal: false,
                checkpoint: None,
                resume: None,
                interrupt_after: None,
                store: None,
                perflog: None,
                engine: None,
                engine_overrides: Vec::new(),
            },
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("ran 1  skipped 1  failed 0"), "{text}");
        // One streamed line per grid cell, in canonical order.
        assert!(
            text.contains("[1/2] babelstream_cuda on csd3: skip"),
            "{text}"
        );
        assert!(
            text.contains("[2/2] babelstream_cuda on isambard-macs:volta: ok"),
            "{text}"
        );
    }

    #[test]
    fn warm_survey_is_byte_identical_for_any_jobs_count() {
        // The acceptance criterion: `benchkit survey --warm-store --jobs N`
        // produces a byte-identical report for N ∈ {1, 2, 8}, with
        // packages reused on multi-case systems.
        let run_at = |jobs: usize| {
            let mut buf = Vec::new();
            execute(
                Command::Survey {
                    benchmarks: vec![
                        "babelstream_omp".into(),
                        "babelstream_tbb".into(),
                        "hpgmg".into(),
                    ],
                    systems: vec!["csd3".into(), "archer2".into()],
                    seed: 7,
                    jobs,
                    warm_store: true,
                    fault_profile: "none".into(),
                    fault_overrides: vec![],
                    max_retries: 2,
                    fail_fast: false,
                    quarantine: 0,
                    heal: false,
                    checkpoint: None,
                    resume: None,
                    interrupt_after: None,
                    store: None,
                    perflog: None,
                    engine: None,
                    engine_overrides: Vec::new(),
                },
                &mut buf,
            )
            .unwrap();
            String::from_utf8(buf).unwrap()
        };
        let serial = run_at(1);
        assert!(
            serial.contains("[1/6] babelstream_omp on csd3: ok"),
            "{serial}"
        );
        assert!(
            !serial.contains("fault profile"),
            "no resilience line without faults: {serial}"
        );
        assert!(serial.contains("cached"), "{serial}");
        // Multi-case systems reuse dependency builds.
        let warm_line = serial
            .lines()
            .find(|l| l.starts_with("warm store:"))
            .expect("warm summary present");
        let reused: usize = warm_line
            .split(" built, ")
            .nth(1)
            .and_then(|s| s.split(" reused").next())
            .and_then(|s| s.parse().ok())
            .expect("reused count parses");
        assert!(reused > 0, "{warm_line}");
        for jobs in [2, 8] {
            assert_eq!(serial, run_at(jobs), "jobs={jobs}");
        }
    }

    #[test]
    fn faulty_survey_streams_retries_and_replays_byte_identically() {
        // A flaky survey replays byte-identically at any jobs count, and
        // the streamed `ok` lines surface retry counts when faults bit.
        let run_at = |seed: u64, jobs: usize| {
            let mut buf = Vec::new();
            let result = execute(
                Command::Survey {
                    benchmarks: vec!["babelstream_omp".into(), "hpgmg".into()],
                    systems: vec!["csd3".into(), "archer2".into()],
                    seed,
                    jobs,
                    warm_store: false,
                    fault_profile: "flaky".into(),
                    fault_overrides: vec![],
                    max_retries: 4,
                    fail_fast: false,
                    quarantine: 0,
                    heal: false,
                    checkpoint: None,
                    resume: None,
                    interrupt_after: None,
                    store: None,
                    perflog: None,
                    engine: None,
                    engine_overrides: Vec::new(),
                },
                &mut buf,
            );
            (
                String::from_utf8(buf).unwrap(),
                result.err().map(|e| e.to_string()),
            )
        };
        // Find a seed where faults were injected yet every cell recovered.
        let seed = (0..30)
            .find(|&s| {
                let (text, err) = run_at(s, 1);
                err.is_none() && text.contains(" retries")
            })
            .expect("some seed in 0..30 recovers from injected faults");
        let (serial, serial_err) = run_at(seed, 1);
        assert!(serial_err.is_none(), "all cells recovered");
        assert!(serial.contains("fault profile `flaky`:"), "{serial}");
        assert!(!serial.contains("0 faults injected"), "{serial}");
        for jobs in [2, 8] {
            let (text, err) = run_at(seed, jobs);
            assert_eq!(serial, text, "jobs={jobs}");
            assert_eq!(serial_err, err, "jobs={jobs}");
        }
    }

    #[test]
    fn survey_exits_nonzero_when_a_cell_fails() {
        // Under the brutal profile with no retries some seed fails a cell;
        // execute must return Err (→ exit 1) while still writing the
        // streamed lines, summary, and frame.
        let run_at = |seed: u64, jobs: usize| {
            let mut buf = Vec::new();
            let result = execute(
                Command::Survey {
                    benchmarks: vec!["babelstream_omp".into()],
                    systems: vec!["csd3".into(), "archer2".into()],
                    seed,
                    jobs,
                    warm_store: false,
                    fault_profile: "brutal".into(),
                    fault_overrides: vec![],
                    max_retries: 0,
                    fail_fast: false,
                    quarantine: 0,
                    heal: false,
                    checkpoint: None,
                    resume: None,
                    interrupt_after: None,
                    store: None,
                    perflog: None,
                    engine: None,
                    engine_overrides: Vec::new(),
                },
                &mut buf,
            );
            (
                String::from_utf8(buf).unwrap(),
                result.err().map(|e| e.to_string()),
            )
        };
        let seed = (0..30)
            .find(|&s| run_at(s, 1).1.is_some())
            .expect("some seed in 0..30 fails a cell under brutal/no-retries");
        let (text, err) = run_at(seed, 1);
        let err = err.unwrap();
        assert!(err.contains("cells failed"), "{err}");
        assert!(text.contains("FAIL:"), "{text}");
        assert!(text.contains("fault profile `brutal`:"), "{text}");
        // The failure exit is just as deterministic as the report.
        for jobs in [2, 8] {
            let (t, e) = run_at(seed, jobs);
            assert_eq!(text, t, "jobs={jobs}");
            assert_eq!(Some(err.clone()), e, "jobs={jobs}");
        }
    }

    #[test]
    fn execute_survey_with_engine_prints_config_and_replays() {
        // Scale retry backoff to zero so the crashing override retries
        // instantly; the nominal schedule is still charged to time-lost.
        std::env::set_var(simhpc::faults::BACKOFF_SCALE_ENV, "0");
        let sh = |script: &str| engine::EngineSpec {
            cmd: vec!["/bin/sh".into(), "-c".into(), script.into()],
            timeout_s: 10.0,
            grace_s: 0.5,
        };
        let ok = sh(r#"cat >/dev/null
out='Function    MBytes/sec
Copy        150000.0
Mul         151000.0
Add         152000.0
Triad       153000.0
Dot         154000.0'
printf 'wall:8:0.250000\n'
printf 'stdout:%d:%s\n' "$(printf %s "$out" | wc -c)" "$out"
printf 'done:0:\n'
"#);
        let crashing = sh("cat >/dev/null; echo kaput >&2; exit 11");
        let run_at = |jobs: usize| {
            let mut buf = Vec::new();
            let result = execute(
                Command::Survey {
                    benchmarks: vec!["babelstream_omp".into(), "babelstream_tbb".into()],
                    systems: vec!["csd3".into()],
                    seed: 42,
                    jobs,
                    warm_store: false,
                    fault_profile: "none".into(),
                    fault_overrides: vec![],
                    max_retries: 1,
                    fail_fast: false,
                    quarantine: 0,
                    heal: false,
                    checkpoint: None,
                    resume: None,
                    interrupt_after: None,
                    store: None,
                    perflog: None,
                    engine: Some(ok.clone()),
                    engine_overrides: vec![("babelstream_tbb".into(), crashing.clone())],
                },
                &mut buf,
            );
            (
                String::from_utf8(buf).unwrap(),
                result.err().map(|e| e.to_string()),
            )
        };
        let (text, err) = run_at(1);
        assert!(
            err.as_deref().unwrap_or("").contains("cells failed"),
            "{err:?}"
        );
        assert!(text.contains("[1/2] babelstream_omp on csd3: ok"), "{text}");
        assert!(text.contains("babelstream_tbb on csd3: FAIL:"), "{text}");
        assert!(text.contains("engine failure"), "{text}");
        // The engine configuration is echoed into the report so a reader
        // can tell a BYOB survey from an in-process one.
        assert!(text.contains(&format!("engine: {}", ok.render())), "{text}");
        assert!(
            text.contains(&format!(
                "engine override: babelstream_tbb={}",
                crashing.render()
            )),
            "{text}"
        );
        for jobs in [2, 8] {
            let (t, e) = run_at(jobs);
            assert_eq!(text, t, "jobs={jobs}");
            assert_eq!(err, e, "jobs={jobs}");
        }
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "benchkit-cli-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A Survey command with every knob at its default.
    fn survey(benchmarks: &[&str], systems: &[&str]) -> Command {
        Command::Survey {
            benchmarks: benchmarks.iter().map(|s| s.to_string()).collect(),
            systems: systems.iter().map(|s| s.to_string()).collect(),
            seed: 42,
            jobs: 1,
            warm_store: false,
            fault_profile: "none".into(),
            fault_overrides: vec![],
            max_retries: 2,
            fail_fast: false,
            quarantine: 0,
            heal: false,
            checkpoint: None,
            resume: None,
            interrupt_after: None,
            store: None,
            perflog: None,
            engine: None,
            engine_overrides: Vec::new(),
        }
    }

    fn run_cmd(cmd: Command) -> (String, Option<String>) {
        let mut buf = Vec::new();
        let result = execute(cmd, &mut buf);
        (
            String::from_utf8(buf).unwrap(),
            result.err().map(|e| e.to_string()),
        )
    }

    #[test]
    fn checkpointed_survey_resumes_byte_identically() {
        // The acceptance pin at the CLI layer: a survey interrupted after
        // k cells and resumed with --resume reproduces the uninterrupted
        // stdout byte for byte, at --jobs 1, 2 and 8. Interruption is
        // simulated by truncating the journal to k records.
        let base = tmpdir("resume-full");
        let make = |jobs: usize, dir: &std::path::Path, resume: bool| {
            let mut cmd = survey(&["babelstream_omp", "hpgmg"], &["csd3", "archer2"]);
            if let Command::Survey {
                seed,
                jobs: j,
                fault_profile,
                max_retries,
                checkpoint,
                resume: r,
                ..
            } = &mut cmd
            {
                *seed = 3;
                *j = jobs;
                *fault_profile = "flaky".into();
                *max_retries = 4;
                let d = Some(dir.to_string_lossy().into_owned());
                if resume {
                    *r = d;
                } else {
                    *checkpoint = d;
                }
            }
            cmd
        };
        let (full_text, full_err) = run_cmd(make(1, &base, false));
        let journal =
            std::fs::read_to_string(base.join(harness::checkpoint::JOURNAL_FILE)).unwrap();
        let lines: Vec<&str> = journal.lines().collect();
        assert_eq!(lines.len(), 5, "header + 4 cells");
        for k in [1, 3] {
            for jobs in [1, 2, 8] {
                let dir = tmpdir(&format!("resume-{k}-{jobs}"));
                std::fs::create_dir_all(&dir).unwrap();
                std::fs::write(
                    dir.join(harness::checkpoint::JOURNAL_FILE),
                    lines[..=k].join("\n") + "\n",
                )
                .unwrap();
                let (text, err) = run_cmd(make(jobs, &dir, true));
                assert_eq!(text, full_text, "k={k} jobs={jobs}");
                assert_eq!(err, full_err, "k={k} jobs={jobs}");
                std::fs::remove_dir_all(&dir).unwrap();
            }
        }
        // Resuming under a different seed is refused loudly.
        let dir = tmpdir("resume-mismatch");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(harness::checkpoint::JOURNAL_FILE), &journal).unwrap();
        let mut wrong = make(1, &dir, true);
        if let Command::Survey { seed, .. } = &mut wrong {
            *seed = 4;
        }
        let (_, err) = run_cmd(wrong);
        let err = err.expect("mismatched resume must fail");
        assert!(err.contains("does not match"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn canary_verdicts_and_override_lines_are_reported() {
        // Study 1 under brutal/no-retries fails a system and trips the
        // K=1 quarantine; study 2 against the same checkpoint directory
        // reports the canary decision on stdout.
        let scan = |seed: u64| {
            let dir = tmpdir(&format!("canary-{seed}"));
            let make = |s| {
                let mut cmd = survey(&["babelstream_omp"], &["csd3", "archer2"]);
                if let Command::Survey {
                    seed,
                    fault_profile,
                    max_retries,
                    quarantine,
                    heal,
                    checkpoint,
                    ..
                } = &mut cmd
                {
                    *seed = s;
                    *fault_profile = "brutal".into();
                    *max_retries = 0;
                    *quarantine = 1;
                    *heal = true;
                    *checkpoint = Some(dir.to_string_lossy().into_owned());
                }
                cmd
            };
            let (_, first_err) = run_cmd(make(seed));
            let second = run_cmd(make(seed));
            let _ = std::fs::remove_dir_all(&dir);
            (first_err, second.0)
        };
        let (_, second_text) = (0..30)
            .map(scan)
            .find(|(first_err, _)| first_err.is_some())
            .expect("some seed in 0..30 fails a cell under brutal/no-retries");
        assert!(second_text.contains("canary: "), "{second_text}");
        assert!(
            second_text.contains("still quarantined (canary failed)")
                || second_text.contains("readmitted after probe"),
            "{second_text}"
        );
        // Healing surveys extend the resilience line with repair counts.
        assert!(second_text.contains("nodes repaired"), "{second_text}");
        // Per-system overrides are echoed so reports are self-describing.
        let mut cmd = survey(&["babelstream_omp"], &["csd3", "archer2"]);
        if let Command::Survey {
            fault_profile,
            fault_overrides,
            max_retries,
            ..
        } = &mut cmd
        {
            *fault_profile = "flaky".into();
            *fault_overrides = vec![("archer2".to_string(), "none".to_string())];
            *max_retries = 6;
        }
        let (text, _) = run_cmd(cmd);
        assert!(text.contains("fault overrides: archer2=none"), "{text}");
        assert!(text.contains("fault profile `flaky`:"), "{text}");
    }

    #[test]
    fn parse_store_flag_and_subcommands() {
        match parse(&argv("survey -c hpgmg --system csd3 --store /tmp/st")).unwrap() {
            Command::Survey { store, .. } => assert_eq!(store.as_deref(), Some("/tmp/st")),
            other => panic!("{other:?}"),
        }
        // `run` does not take a persistent store.
        assert!(parse(&argv("run -c hpgmg --system csd3 --store /tmp/st")).is_err());

        assert_eq!(
            parse(&argv("store gc /tmp/st")).unwrap(),
            Command::StoreGc {
                dir: "/tmp/st".into(),
                keep: 5
            }
        );
        assert_eq!(
            parse(&argv("store gc /tmp/st --keep 2")).unwrap(),
            Command::StoreGc {
                dir: "/tmp/st".into(),
                keep: 2
            }
        );
        assert!(parse(&argv("store gc")).is_err(), "missing dir");
        assert!(parse(&argv("store")).is_err(), "missing subcommand");
        assert!(parse(&argv("store gc /tmp/st --keep nope")).is_err());

        assert_eq!(
            parse(&argv("store fsck /tmp/st")).unwrap(),
            Command::StoreFsck {
                dir: "/tmp/st".into(),
                json: false
            }
        );
        assert_eq!(
            parse(&argv("store fsck /tmp/st --json")).unwrap(),
            Command::StoreFsck {
                dir: "/tmp/st".into(),
                json: true
            }
        );
        assert!(parse(&argv("store fsck")).is_err(), "missing dir");
        assert!(parse(&argv("store fsck /tmp/st --wat")).is_err());

        assert_eq!(
            parse(&argv("checkpoint gc /tmp/ck")).unwrap(),
            Command::CheckpointGc {
                dir: "/tmp/ck".into(),
                force: false
            }
        );
        assert_eq!(
            parse(&argv("checkpoint gc /tmp/ck --force")).unwrap(),
            Command::CheckpointGc {
                dir: "/tmp/ck".into(),
                force: true
            }
        );
        assert!(parse(&argv("checkpoint gc")).is_err(), "missing dir");
        assert!(parse(&argv("checkpoint")).is_err(), "missing subcommand");

        assert_eq!(
            parse(&argv("bench-digest a.json b.json")).unwrap(),
            Command::BenchDigest {
                logs: vec!["a.json".into(), "b.json".into()],
                min_speedups: vec![],
                rank_groups: vec![]
            }
        );
        assert_eq!(
            parse(&argv(
                "bench-digest a.json --min-speedup g/base:g/fast:1.2 --min-speedup x/a:y/b:0.5"
            ))
            .unwrap(),
            Command::BenchDigest {
                logs: vec!["a.json".into()],
                min_speedups: vec!["g/base:g/fast:1.2".into(), "x/a:y/b:0.5".into()],
                rank_groups: vec![]
            }
        );
        assert!(parse(&argv("bench-digest")).is_err(), "missing logs");
        assert!(
            parse(&argv("bench-digest --min-speedup")).is_err(),
            "flag needs a value"
        );
        assert!(parse(&argv("bench-digest --wat")).is_err());
    }

    #[test]
    fn survey_with_store_reports_accounting_and_gc_runs() {
        // Cold study populates the store; a warm rerun hits it; the FOM
        // frame is byte-identical. Then both gc subcommands run against
        // the artifacts the surveys left behind.
        let store_dir = tmpdir("cli-store");
        let ck_dir = tmpdir("cli-store-ck");
        let make = |checkpoint: bool| {
            let mut cmd = survey(&["babelstream_omp", "babelstream_tbb"], &["csd3"]);
            if let Command::Survey {
                store,
                checkpoint: ck,
                ..
            } = &mut cmd
            {
                *store = Some(store_dir.to_string_lossy().into_owned());
                if checkpoint {
                    *ck = Some(ck_dir.to_string_lossy().into_owned());
                }
            }
            cmd
        };
        let (cold, cold_err) = run_cmd(make(false));
        assert!(cold_err.is_none(), "{cold_err:?}");
        assert!(
            cold.contains("store: 0 hits,"),
            "cold run misses everything: {cold}"
        );
        let (warm, warm_err) = run_cmd(make(true));
        assert!(warm_err.is_none(), "{warm_err:?}");
        let store_line = warm
            .lines()
            .find(|l| l.starts_with("store: "))
            .expect("accounting line present");
        let hits: usize = store_line
            .strip_prefix("store: ")
            .and_then(|s| s.split(" hits").next())
            .and_then(|s| s.parse().ok())
            .expect("hits count parses");
        assert!(hits > 0, "{store_line}");
        // Build accounting (the streamed per-cell `built/cached` lines and
        // the store line) legitimately differs between cold and warm runs;
        // the outcome counts and the FOM frame must not.
        let strip = |text: &str| {
            text.lines()
                .filter(|l| !l.starts_with("store: ") && !l.starts_with('['))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&cold), strip(&warm));

        // store gc keeps everything the last studies referenced.
        let (text, err) = run_cmd(Command::StoreGc {
            dir: store_dir.to_string_lossy().into_owned(),
            keep: 5,
        });
        assert!(err.is_none(), "{err:?}");
        assert!(text.contains("store gc: kept "), "{text}");
        assert!(text.contains("evicted 0"), "{text}");

        // checkpoint gc collects the completed journal, keeping memory.
        let (text, err) = run_cmd(Command::CheckpointGc {
            dir: ck_dir.to_string_lossy().into_owned(),
            force: false,
        });
        assert!(err.is_none(), "{err:?}");
        assert!(text.contains("collected journal"), "{text}");
        assert!(!ck_dir.join(harness::checkpoint::JOURNAL_FILE).exists());

        // The store the surveys left behind passes fsck.
        let (text, err) = run_cmd(Command::StoreFsck {
            dir: store_dir.to_string_lossy().into_owned(),
            json: false,
        });
        assert!(err.is_none(), "{err:?}");
        assert!(text.contains("store fsck: "), "{text}");
        assert!(text.contains(" 0 invalid"), "{text}");

        let _ = std::fs::remove_dir_all(&store_dir);
        let _ = std::fs::remove_dir_all(&ck_dir);
    }

    #[test]
    fn contended_store_survey_reports_identically_and_fsck_flags_corruption() {
        // A second *live* writer holding every shard lease must not change
        // a single byte of the survey report outside the store accounting
        // line — the contended run only skips its persists.
        let clean_dir = tmpdir("cli-store-clean");
        let busy_dir = tmpdir("cli-store-held");
        let make = |dir: &std::path::Path| {
            let mut cmd = survey(&["babelstream_omp"], &["csd3"]);
            if let Command::Survey { store, .. } = &mut cmd {
                *store = Some(dir.to_string_lossy().into_owned());
            }
            cmd
        };
        let (clean_text, err) = run_cmd(make(&clean_dir));
        assert!(err.is_none(), "{err:?}");

        let mut holder = spackle::DiskStore::open(&busy_dir).unwrap();
        assert_eq!(holder.acquire_all(), spackle::SHARD_COUNT);
        let (busy_text, err) = run_cmd(make(&busy_dir));
        assert!(
            err.is_none(),
            "contention must not fail the survey: {err:?}"
        );
        assert!(
            busy_text.contains("skipped (shard leased elsewhere)"),
            "{busy_text}"
        );
        assert!(
            busy_text.contains("shards held by a live writer"),
            "{busy_text}"
        );
        let strip = |text: &str| {
            text.lines()
                .filter(|l| !l.starts_with("store: "))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(
            strip(&clean_text),
            strip(&busy_text),
            "contended report byte-identical outside the store line"
        );
        drop(holder);

        // fsck: the populated store is clean; planting one unreadable
        // committed entry flips the exit to nonzero and names the file.
        let (text, err) = run_cmd(Command::StoreFsck {
            dir: clean_dir.to_string_lossy().into_owned(),
            json: false,
        });
        assert!(err.is_none(), "{err:?}");
        assert!(text.contains(" 0 invalid"), "{text}");
        // --json: one machine-readable object, same exit semantics.
        let (json_text, err) = run_cmd(Command::StoreFsck {
            dir: clean_dir.to_string_lossy().into_owned(),
            json: true,
        });
        assert!(err.is_none(), "{err:?}");
        let parsed = tinycfg::parse(json_text.trim()).expect("fsck --json parses");
        assert_eq!(
            parsed.get_path("clean").and_then(|v| v.as_bool()),
            Some(true),
            "{json_text}"
        );
        let shard = clean_dir.join(spackle::shard_name("deadbeef"));
        std::fs::create_dir_all(&shard).unwrap();
        std::fs::write(shard.join("deadbeef.json"), "{not an entry}\n").unwrap();
        let (text, err) = run_cmd(Command::StoreFsck {
            dir: clean_dir.to_string_lossy().into_owned(),
            json: false,
        });
        assert!(err.is_some(), "invalid committed entry must exit nonzero");
        assert!(text.contains("deadbeef.json:"), "{text}");
        let (json_text, err) = run_cmd(Command::StoreFsck {
            dir: clean_dir.to_string_lossy().into_owned(),
            json: true,
        });
        assert!(err.is_some(), "--json must keep the nonzero exit");
        let parsed = tinycfg::parse(json_text.trim()).expect("fsck --json parses");
        assert_eq!(
            parsed.get_path("clean").and_then(|v| v.as_bool()),
            Some(false),
            "{json_text}"
        );

        let _ = std::fs::remove_dir_all(&clean_dir);
        let _ = std::fs::remove_dir_all(&busy_dir);
    }

    #[test]
    fn bench_digest_renders_and_flags_regressions() {
        let dir = tmpdir("cli-digest");
        std::fs::create_dir_all(&dir).unwrap();
        let line = |median: f64| {
            format!(
                "{{\"criterion\": true, \"group\": \"suite\", \"id\": \"symgs\", \
                 \"min_ns\": {median}, \"median_ns\": {median}}}\n"
            )
        };
        let mut logs = Vec::new();
        for (i, median) in [100.0, 101.0, 99.0, 100.5, 100.2, 99.8, 100.1, 100.3]
            .iter()
            .enumerate()
        {
            let path = dir.join(format!("run-{i}.json"));
            std::fs::write(&path, line(*median)).unwrap();
            logs.push(path.to_string_lossy().into_owned());
        }
        // A healthy history digests cleanly.
        let (text, err) = run_cmd(Command::BenchDigest {
            logs: logs.clone(),
            min_speedups: vec![],
            rank_groups: vec![],
        });
        assert!(err.is_none(), "{err:?}");
        assert!(text.contains("suite/symgs: "), "{text}");
        assert!(text.contains("ok (z="), "{text}");
        // A 3x slowdown in the newest run is a regression (lower is
        // better for wall times) and a nonzero exit.
        let bad = dir.join("run-bad.json");
        std::fs::write(&bad, line(300.0)).unwrap();
        logs.push(bad.to_string_lossy().into_owned());
        let (text, err) = run_cmd(Command::BenchDigest {
            logs,
            min_speedups: vec![],
            rank_groups: vec![],
        });
        let err = err.expect("regression must fail the digest");
        assert!(err.contains("regressed"), "{err}");
        assert!(text.contains("REGRESSION"), "{text}");
        // Unreadable and empty inputs fail loudly, not silently.
        let (_, err) = run_cmd(Command::BenchDigest {
            logs: vec![dir.join("nope.json").to_string_lossy().into_owned()],
            min_speedups: vec![],
            rank_groups: vec![],
        });
        assert!(err.unwrap().contains("cannot read"), "unreadable log");
        let empty = dir.join("empty.json");
        std::fs::write(&empty, "no criterion lines here\n").unwrap();
        let (_, err) = run_cmd(Command::BenchDigest {
            logs: vec![empty.to_string_lossy().into_owned()],
            min_speedups: vec![],
            rank_groups: vec![],
        });
        assert!(err.unwrap().contains("no criterion records"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parse_serve_push_query() {
        assert_eq!(
            parse(&argv("serve /tmp/st --addr 127.0.0.1:0")).unwrap(),
            Command::Serve {
                dir: "/tmp/st".into(),
                addr: "127.0.0.1:0".into(),
                workers: 4,
                queue: 16,
                read_timeout_ms: 5_000,
                max_body: 4 * 1024 * 1024,
            }
        );
        assert_eq!(
            parse(&argv(
                "serve /tmp/st --addr 0.0.0.0:8080 --workers 2 --queue 0 \
                 --read-timeout-ms 250 --max-body 1024"
            ))
            .unwrap(),
            Command::Serve {
                dir: "/tmp/st".into(),
                addr: "0.0.0.0:8080".into(),
                workers: 2,
                queue: 0,
                read_timeout_ms: 250,
                max_body: 1024,
            }
        );
        assert!(parse(&argv("serve /tmp/st")).is_err(), "missing --addr");
        assert!(
            parse(&argv("serve --addr 127.0.0.1:0")).is_err(),
            "missing dir"
        );
        assert!(parse(&argv("serve /tmp/st --addr a:0 --workers 0")).is_err());
        assert!(parse(&argv("serve /tmp/st --addr a:0 --wat")).is_err());

        assert_eq!(
            parse(&argv("push study-a/ --to 127.0.0.1:8080")).unwrap(),
            Command::Push {
                dir: "study-a/".into(),
                to: "127.0.0.1:8080".into(),
                max_retries: 5,
            }
        );
        assert_eq!(
            parse(&argv("push a.jsonl --to h:1 --max-retries 0")).unwrap(),
            Command::Push {
                dir: "a.jsonl".into(),
                to: "h:1".into(),
                max_retries: 0,
            }
        );
        assert!(parse(&argv("push study-a/")).is_err(), "missing --to");
        assert!(parse(&argv("push --to h:1")).is_err(), "missing dir");

        assert_eq!(
            parse(&argv("query 127.0.0.1:8080 /v1/health")).unwrap(),
            Command::Query {
                addr: "127.0.0.1:8080".into(),
                path: "/v1/health".into(),
            }
        );
        assert!(
            parse(&argv("query 127.0.0.1:8080")).is_err(),
            "missing path"
        );
        assert!(
            parse(&argv("query 127.0.0.1:8080 v1/health")).is_err(),
            "path must start with /"
        );
    }

    #[test]
    fn parse_rank_and_cmp() {
        assert_eq!(
            parse(&argv("rank study-a/")).unwrap(),
            Command::Rank {
                inputs: vec!["study-a/".into()],
                lower_is_better: false,
                markdown: false,
                jobs: 1,
            }
        );
        assert_eq!(
            parse(&argv(
                "rank a.jsonl b.jsonl --lower-is-better --markdown -j 4"
            ))
            .unwrap(),
            Command::Rank {
                inputs: vec!["a.jsonl".into(), "b.jsonl".into()],
                lower_is_better: true,
                markdown: true,
                jobs: 4,
            }
        );
        assert!(parse(&argv("rank")).is_err(), "missing inputs");
        assert!(parse(&argv("rank a --wat")).is_err());
        assert!(parse(&argv("rank a --jobs nope")).is_err());

        assert_eq!(
            parse(&argv("cmp study-a study-b")).unwrap(),
            Command::Cmp {
                study_a: "study-a".into(),
                study_b: "study-b".into(),
                threshold_pct: 2.0,
                lower_is_better: false,
                markdown: false,
                jobs: 1,
            }
        );
        assert_eq!(
            parse(&argv(
                "cmp a b --threshold 7.5 --lower-is-better --markdown --jobs 2"
            ))
            .unwrap(),
            Command::Cmp {
                study_a: "a".into(),
                study_b: "b".into(),
                threshold_pct: 7.5,
                lower_is_better: true,
                markdown: true,
                jobs: 2,
            }
        );
        assert!(parse(&argv("cmp a")).is_err(), "needs two studies");
        assert!(parse(&argv("cmp a b c")).is_err(), "exactly two studies");
        // The threshold must be a usable percentage — a NaN threshold
        // would make every comparison silently "unchanged".
        for bad in ["nope", "-3", "NaN", "inf"] {
            assert!(
                parse(&argv(&format!("cmp a b --threshold {bad}"))).is_err(),
                "threshold `{bad}` must be rejected"
            );
        }

        // Survey grows --perflog; run rejects it.
        match parse(&argv("survey -c hpgmg --system csd3 --perflog out/")).unwrap() {
            Command::Survey { perflog, .. } => assert_eq!(perflog.as_deref(), Some("out/")),
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("run -c hpgmg --system csd3 --perflog out/")).is_err());

        // bench-digest grows --rank, which needs history to compare.
        match parse(&argv("bench-digest a.json b.json --rank stream")).unwrap() {
            Command::BenchDigest { rank_groups, .. } => {
                assert_eq!(rank_groups, vec!["stream"]);
            }
            other => panic!("{other:?}"),
        }
        let err = parse(&argv("bench-digest a.json --rank stream"))
            .unwrap_err()
            .to_string();
        assert!(err.contains("at least two logs"), "{err}");
    }

    #[test]
    fn survey_perflog_export_then_rank_end_to_end() {
        // The tentpole, end to end: survey two systems into a perflog
        // directory, then rank them — byte-identically at any --jobs.
        let dir = tmpdir("rank-e2e");
        let mut cmd = survey(&["babelstream_omp"], &["csd3", "archer2"]);
        if let Command::Survey { perflog, .. } = &mut cmd {
            *perflog = Some(dir.to_string_lossy().into_owned());
        }
        let (text, err) = run_cmd(cmd);
        assert!(err.is_none(), "{err:?}");
        assert!(text.contains("perflogs: 2 files written"), "{text}");
        assert!(dir.join("csd3-babelstream.jsonl").exists());
        assert!(dir.join("archer2-babelstream.jsonl").exists());

        let rank_at = |jobs: usize, markdown: bool| {
            run_cmd(Command::Rank {
                inputs: vec![dir.to_string_lossy().into_owned()],
                lower_is_better: false,
                markdown,
                jobs,
            })
        };
        let (serial, err) = rank_at(1, false);
        assert!(err.is_none(), "{err:?}");
        assert!(serial.contains("ranking 2 systems"), "{serial}");
        assert!(
            serial.contains("csd3") && serial.contains("archer2"),
            "{serial}"
        );
        assert!(serial.contains("1.0000"), "best system scores 1: {serial}");
        for jobs in [2, 8, 0] {
            assert_eq!(serial, rank_at(jobs, false).0, "jobs={jobs}");
        }
        let (md, err) = rank_at(1, true);
        assert!(err.is_none(), "{err:?}");
        assert!(md.contains("| rank | system |"), "{md}");

        // Self-comparison: every shared cell is unchanged at any jobs.
        let cmp_at = |jobs: usize| {
            run_cmd(Command::Cmp {
                study_a: dir.to_string_lossy().into_owned(),
                study_b: dir.to_string_lossy().into_owned(),
                threshold_pct: 2.0,
                lower_is_better: false,
                markdown: false,
                jobs,
            })
        };
        let (self_cmp, err) = cmp_at(1);
        assert!(err.is_none(), "{err:?}");
        assert!(self_cmp.contains(" 0 improved, 0 regressed,"), "{self_cmp}");
        assert!(!self_cmp.contains("missing in"), "{self_cmp}");
        for jobs in [2, 8] {
            assert_eq!(self_cmp, cmp_at(jobs).0, "jobs={jobs}");
        }

        // Unreadable input fails loudly.
        let (_, err) = run_cmd(Command::Rank {
            inputs: vec![dir.join("nope.jsonl").to_string_lossy().into_owned()],
            lower_is_better: false,
            markdown: false,
            jobs: 1,
        });
        assert!(err.unwrap().contains("cannot read"), "unreadable perflog");
        let empty = tmpdir("rank-empty");
        std::fs::create_dir_all(&empty).unwrap();
        let (_, err) = run_cmd(Command::Rank {
            inputs: vec![empty.to_string_lossy().into_owned()],
            lower_is_better: false,
            markdown: false,
            jobs: 1,
        });
        assert!(err.unwrap().contains("no .jsonl perflogs"), "empty dir");
        std::fs::remove_dir_all(&empty).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// One single-record perflog file per (system, value).
    fn write_study(dir: &std::path::Path, cells: &[(&str, &str, f64)]) {
        use perflogs::{Fom, Perflog, PerflogRecord};
        std::fs::create_dir_all(dir).unwrap();
        for (system, fom, value) in cells {
            let mut log = Perflog::new();
            log.append(PerflogRecord {
                sequence: 1,
                benchmark: "babelstream_omp".into(),
                system: (*system).into(),
                partition: "".into(),
                environ: "gcc".into(),
                spec: "babelstream +omp".into(),
                build_hash: "cafef00d".into(),
                job_id: Some(1),
                num_tasks: 1,
                num_tasks_per_node: 1,
                num_cpus_per_task: 1,
                foms: vec![Fom {
                    name: (*fom).into(),
                    value: *value,
                    unit: "MB/s".into(),
                }],
                extras: vec![],
            });
            std::fs::write(dir.join(format!("{system}-{fom}.jsonl")), log.to_jsonl()).unwrap();
        }
    }

    #[test]
    fn cmp_classifies_synthetic_studies_and_respects_threshold() {
        let a = tmpdir("cmp-a");
        let b = tmpdir("cmp-b");
        write_study(
            &a,
            &[
                ("up", "Triad", 100.0),
                ("down", "Triad", 100.0),
                ("flat", "Triad", 100.0),
                ("gone", "Triad", 100.0),
            ],
        );
        write_study(
            &b,
            &[
                ("up", "Triad", 110.0),
                ("down", "Triad", 90.0),
                ("flat", "Triad", 101.0),
                ("new", "Triad", 42.0),
            ],
        );
        let cmp_with = |threshold_pct: f64| {
            run_cmd(Command::Cmp {
                study_a: a.to_string_lossy().into_owned(),
                study_b: b.to_string_lossy().into_owned(),
                threshold_pct,
                lower_is_better: false,
                markdown: false,
                jobs: 1,
            })
        };
        let (text, err) = cmp_with(2.0);
        assert!(err.is_none(), "cmp is informational: {err:?}");
        assert!(text.contains("+10.00%"), "{text}");
        assert!(text.contains("-10.00%"), "{text}");
        assert!(text.contains("REGRESSED"), "{text}");
        assert!(text.contains("missing in A"), "{text}");
        assert!(text.contains("missing in B"), "{text}");
        assert!(
            text.contains("1 improved, 1 regressed, 1 unchanged, 2 missing"),
            "{text}"
        );
        // A wide threshold absorbs both the +10% and the -10%.
        let (text, _) = cmp_with(15.0);
        assert!(
            text.contains("0 improved, 0 regressed, 3 unchanged, 2 missing"),
            "{text}"
        );
        // Lower-is-better flips improved and regressed.
        let (text, _) = run_cmd(Command::Cmp {
            study_a: a.to_string_lossy().into_owned(),
            study_b: b.to_string_lossy().into_owned(),
            threshold_pct: 2.0,
            lower_is_better: true,
            markdown: false,
            jobs: 1,
        });
        assert!(
            text.contains("1 improved, 1 regressed, 1 unchanged, 2 missing"),
            "{text}"
        );
        let down_line = text.lines().find(|l| l.contains(" down ")).unwrap();
        assert!(down_line.contains("improved"), "{down_line}");
        std::fs::remove_dir_all(&a).unwrap();
        std::fs::remove_dir_all(&b).unwrap();
    }

    #[test]
    fn rank_surfaces_nan_and_missing_cells_from_perflogs() {
        // A NaN FOM in a study must appear as a reported skip in the CLI
        // output, not win the ranking (total_cmp would sort it first) nor
        // vanish (f64::min would drop it).
        let dir = tmpdir("rank-nan");
        write_study(
            &dir,
            &[
                ("good", "Triad", 100.0),
                ("better", "Triad", 200.0),
                ("broken", "Triad", f64::NAN),
            ],
        );
        let (text, err) = run_cmd(Command::Rank {
            inputs: vec![dir.to_string_lossy().into_owned()],
            lower_is_better: false,
            markdown: false,
            jobs: 1,
        });
        assert!(err.is_none(), "{err:?}");
        let lines: Vec<&str> = text.lines().collect();
        let pos = |s: &str| lines.iter().position(|l| l.contains(s)).unwrap();
        assert!(pos("better") < pos("good"), "{text}");
        assert!(pos("good") < pos("broken"), "NaN system ranks last: {text}");
        assert!(
            text.contains("skipped: broken lacks babelstream_omp/Triad (non-finite value NaN)"),
            "{text}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bench_digest_rank_flip_gate() {
        let dir = tmpdir("cli-digest-rank");
        std::fs::create_dir_all(&dir).unwrap();
        let log = |fast_ns: u32| {
            format!(
                "{{\"criterion\": 1, \"group\": \"spmv\", \"id\": \"sell\", \
                  \"min_ns\": {fast_ns}, \"median_ns\": {fast_ns}, \"elements\": 100}}\n\
                 {{\"criterion\": 1, \"group\": \"spmv\", \"id\": \"csr\", \
                  \"min_ns\": 10, \"median_ns\": 10, \"elements\": 100}}\n"
            )
        };
        let write = |name: &str, text: String| {
            let p = dir.join(name);
            std::fs::write(&p, text).unwrap();
            p.to_string_lossy().into_owned()
        };
        let old = write("old.json", log(5));
        let stable = write("stable.json", log(6));
        let flipped = write("flipped.json", log(50));
        let digest = |logs: Vec<String>, groups: &[&str]| {
            run_cmd(Command::BenchDigest {
                logs,
                min_speedups: vec![],
                rank_groups: groups.iter().map(|s| s.to_string()).collect(),
            })
        };
        // sell faster than csr in both logs: stable, exit 0.
        let (text, err) = digest(vec![old.clone(), stable], &["spmv"]);
        assert!(err.is_none(), "{err:?}");
        assert!(text.contains("rank spmv: stable (sell > csr)"), "{text}");
        // The newest log inverts the order: loud flip, exit nonzero.
        let (text, err) = digest(vec![old.clone(), flipped], &["spmv"]);
        assert!(
            text.contains("RANK FLIP (sell > csr -> csr > sell)"),
            "{text}"
        );
        assert!(err.unwrap().contains("ranking(s) flipped"));
        // A group absent from the logs fails loudly.
        let (_, err) = digest(vec![old.clone(), old], &["nope"]);
        assert!(err.unwrap().contains("no criterion records"), "bad group");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bench_digest_min_speedup_floors() {
        let dir = tmpdir("cli-digest-floor");
        std::fs::create_dir_all(&dir).unwrap();
        // One run: copy moves 16 bytes in 2 ns (8 bytes/ns), triad moves
        // 24 bytes in 4 ns (6 bytes/ns) → triad speed is 0.75x of copy.
        // The elements-only point exercises the other work unit, and the
        // bare point (no throughput) falls back to inverse time.
        let log = dir.join("run.json");
        std::fs::write(
            &log,
            "{\"criterion\": 1, \"group\": \"g\", \"id\": \"copy\", \
              \"min_ns\": 2, \"median_ns\": 2, \"bytes\": 16}\n\
             {\"criterion\": 1, \"group\": \"g\", \"id\": \"triad\", \
              \"min_ns\": 4, \"median_ns\": 4, \"bytes\": 24}\n\
             {\"criterion\": 1, \"group\": \"s\", \"id\": \"csr\", \
              \"min_ns\": 10, \"median_ns\": 10, \"elements\": 100}\n\
             {\"criterion\": 1, \"group\": \"s\", \"id\": \"sell\", \
              \"min_ns\": 5, \"median_ns\": 5, \"elements\": 100}\n",
        )
        .unwrap();
        let logs = vec![log.to_string_lossy().into_owned()];
        let digest = |specs: &[&str]| {
            run_cmd(Command::BenchDigest {
                logs: logs.clone(),
                min_speedups: specs.iter().map(|s| s.to_string()).collect(),
                rank_groups: vec![],
            })
        };
        // Both floors hold: triad ≥ 0.66× copy, sell ≥ 1.2× csr (it's 2x).
        let (text, err) = digest(&["g/copy:g/triad:0.66", "s/csr:s/sell:1.2"]);
        assert!(err.is_none(), "{err:?}");
        assert!(
            text.contains("g/triad vs g/copy: 0.75x (floor 0.66x) ok"),
            "{text}"
        );
        assert!(
            text.contains("s/sell vs s/csr: 2.00x (floor 1.2x) ok"),
            "{text}"
        );
        // A floor above the measured ratio fails the digest.
        let (text, err) = digest(&["g/copy:g/triad:0.9"]);
        assert!(text.contains("FLOOR MISSED"), "{text}");
        assert!(err.unwrap().contains("floor(s) missed"));
        // Malformed specs and absent benchmarks fail loudly.
        assert!(digest(&["nonsense"])
            .1
            .unwrap()
            .contains("bad --min-speedup"));
        assert!(digest(&["g/copy:g/triad:fast"])
            .1
            .unwrap()
            .contains("bad --min-speedup"));
        assert!(digest(&["g/copy:g/nope:1.0"])
            .1
            .unwrap()
            .contains("missing from the newest log"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
