//! The six Principles (§2 of the paper), as data and as checks.
//!
//! Beyond documentation, each principle carries an executable *audit*: a
//! predicate over a completed [`harness::CaseReport`] verifying the
//! pipeline actually upheld it for that run. The `principles_audit`
//! integration test runs all six audits against real pipeline runs.

use harness::CaseReport;

/// One of the paper's six guiding principles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Principle {
    /// P1: the benchmark has a Figure of Merit that measures efficiency.
    EfficiencyFom,
    /// P2: the build system knows how to build the benchmark per platform.
    TeachTheBuildSystem,
    /// P3: rebuild the benchmark every time it runs.
    RebuildEveryRun,
    /// P4: capture all build steps for replay in the default environment.
    CaptureBuildSteps,
    /// P5: capture all run steps likewise.
    CaptureRunSteps,
    /// P6: assimilate and post-process programmatically.
    ProgrammaticPostprocessing,
}

/// All six, in paper order.
pub const PRINCIPLES: [Principle; 6] = [
    Principle::EfficiencyFom,
    Principle::TeachTheBuildSystem,
    Principle::RebuildEveryRun,
    Principle::CaptureBuildSteps,
    Principle::CaptureRunSteps,
    Principle::ProgrammaticPostprocessing,
];

impl Principle {
    /// Paper numbering, 1-based.
    pub fn number(&self) -> u8 {
        match self {
            Principle::EfficiencyFom => 1,
            Principle::TeachTheBuildSystem => 2,
            Principle::RebuildEveryRun => 3,
            Principle::CaptureBuildSteps => 4,
            Principle::CaptureRunSteps => 5,
            Principle::ProgrammaticPostprocessing => 6,
        }
    }

    /// The paper's statement of the principle.
    pub fn statement(&self) -> &'static str {
        match self {
            Principle::EfficiencyFom => {
                "A benchmark application should have a Figure of Merit which can measure \
                 (directly or indirectly) the efficiency of the application on a given platform."
            }
            Principle::TeachTheBuildSystem => {
                "Teach the build system how to build the benchmark using the best known \
                 parameters on each platform."
            }
            Principle::RebuildEveryRun => {
                "Rebuild the benchmark every time it runs to guarantee the steps to reproduce \
                 the binary are known."
            }
            Principle::CaptureBuildSteps => {
                "Capture all steps taken to build the benchmark on a given platform so it can \
                 be reproduced by anyone else using the system default environment."
            }
            Principle::CaptureRunSteps => {
                "Capture all steps to run the built benchmark so it can be run by anyone on \
                 the same system using the default environment."
            }
            Principle::ProgrammaticPostprocessing => {
                "Assimilate and post-process the data in a programmable manner so as to make \
                 extraction and presentation of Figures of Merit transparent and error-free."
            }
        }
    }

    /// Audit a completed run against this principle. Returns `Err` with an
    /// explanation when the evidence is missing.
    pub fn audit(&self, report: &CaseReport) -> Result<(), String> {
        match self {
            Principle::EfficiencyFom => {
                if report.record.foms.is_empty() {
                    Err("run produced no Figures of Merit".into())
                } else if report.record.foms.iter().any(|f| f.unit.is_empty()) {
                    Err("FOM without a unit cannot express an efficiency".into())
                } else {
                    Ok(())
                }
            }
            Principle::TeachTheBuildSystem => {
                // Evidence: the run was built from a concrete spec produced
                // by the package manager, not an ad hoc command.
                if report.concrete_rendered.trim().is_empty() {
                    Err("no concretized build recorded".into())
                } else {
                    Ok(())
                }
            }
            Principle::RebuildEveryRun => {
                if report.packages_built == 0 {
                    Err("nothing was rebuilt for this run".into())
                } else {
                    Ok(())
                }
            }
            Principle::CaptureBuildSteps => {
                if report.dag_hash.len() != 7 {
                    Err("build DAG hash missing".into())
                } else if !report.record.spec.contains('@') {
                    Err("perflog does not pin the built version".into())
                } else {
                    Ok(())
                }
            }
            Principle::CaptureRunSteps => {
                if !report.job_script.starts_with("#!") {
                    Err("no replayable job script captured".into())
                } else {
                    Ok(())
                }
            }
            Principle::ProgrammaticPostprocessing => {
                // Evidence: the record round-trips through the machine
                // readable perflog format.
                let line = report.record.to_json_line();
                match perflogs::PerflogRecord::from_json_line(&line) {
                    Ok(back) if back == report.record => Ok(()),
                    Ok(_) => Err("perflog record does not round-trip faithfully".into()),
                    Err(e) => Err(format!("perflog record not machine-readable: {e}")),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbering_and_statements() {
        for (i, p) in PRINCIPLES.iter().enumerate() {
            assert_eq!(p.number() as usize, i + 1);
            assert!(p.statement().len() > 40);
        }
    }

    #[test]
    fn audits_pass_on_a_real_run() {
        use harness::{cases, Harness, RunOptions};
        let mut h = Harness::new(RunOptions::on_system("csd3"));
        let report = h
            .run_case(&cases::babelstream(parkern::Model::Omp, 1 << 22))
            .unwrap();
        for p in PRINCIPLES {
            p.audit(&report)
                .unwrap_or_else(|e| panic!("P{} violated: {e}", p.number()));
        }
    }

    #[test]
    fn p3_audit_catches_disabled_rebuilds() {
        use harness::{cases, Harness, RunOptions};
        let mut opts = RunOptions::on_system("csd3");
        opts.rebuild_every_run = false;
        let mut h = Harness::new(opts);
        let case = cases::babelstream(parkern::Model::Omp, 1 << 22);
        h.run_case(&case).unwrap();
        let second = h.run_case(&case).unwrap();
        assert!(Principle::RebuildEveryRun.audit(&second).is_err());
    }
}
