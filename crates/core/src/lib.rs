//! `benchkit` — principles for automated and reproducible benchmarking.
//!
//! This is the umbrella crate of the reproduction of Koskela et al.,
//! *Principles for Automated and Reproducible Benchmarking* (SC-W 2023).
//! It re-exports every subsystem and adds the paper's primary
//! contribution: the six **Principles** as a checked, executable workflow
//! (the benchmarking loop of the paper's Figure 1: code → build → run →
//! extract FOM → analyse).
//!
//! Subsystems (each its own crate):
//!
//! | crate | role |
//! |---|---|
//! | [`spackle`] | Spack-like package manager & concretizer (P2–P4) |
//! | [`harness`] | ReFrame-like test pipeline (P5) |
//! | [`batchsim`] | SLURM/PBS batch scheduler |
//! | [`benchapps`] | BabelStream, HPCG (4 variants), HPGMG-FV, STREAM |
//! | [`parkern`] | programming-model backends & kernels |
//! | [`simhpc`] | platform models of the paper's systems (Table 5) |
//! | [`perflogs`] | perflog records (P6) |
//! | [`postproc`] | assimilation, filtering, plotting (P6) |
//! | [`ppmetrics`] | efficiency & performance-portability metrics (P1) |
//! | [`mpisim`] | in-process message-passing runtime (the MPI substrate) |
//! | [`rexpr`] | regex engine for sanity/FOM extraction |
//! | [`tinycfg`] | YAML-subset configuration |
//! | [`dframe`] | data frames for analysis |
//!
//! # Quickstart
//!
//! ```
//! use benchkit::prelude::*;
//!
//! // Define a study: which benchmarks, which systems (Figure 1's loop).
//! let study = Study::new("triad-survey")
//!     .with_case(harness::cases::babelstream(parkern::Model::Omp, 1 << 22))
//!     .on_systems(&["archer2", "csd3"]);
//! let results = study.run();
//! assert_eq!(results.report.n_ran(), 2);
//! let frame = results.frame();
//! assert_eq!(frame.unique("system").unwrap().len(), 2);
//! ```

pub use batchsim;
pub use benchapps;
pub use dframe;
pub use harness;
pub use mpisim;
pub use parkern;
pub use perflogs;
pub use postproc;
pub use ppmetrics;
pub use rexpr;
pub use simhpc;
pub use spackle;
pub use tinycfg;

pub mod cli;
pub mod principles;
pub mod report;
pub mod study;

pub use principles::{Principle, PRINCIPLES};
pub use report::{markdown_report, regression_digest};
pub use study::{Study, StudyResults};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::principles::{Principle, PRINCIPLES};
    pub use crate::study::{Study, StudyResults};
    pub use crate::{
        batchsim, benchapps, dframe, harness, mpisim, parkern, perflogs, postproc, ppmetrics,
        rexpr, simhpc, spackle, tinycfg,
    };
    pub use harness::{cases, App, Harness, RunOptions, TestCase};
}
