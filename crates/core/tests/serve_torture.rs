//! Daemon torture: SIGKILL `benchkit serve` mid-ingest while deterministic
//! network faults (`BENCHKIT_NETFAULTS`) tear client traffic and I/O
//! faults (`BENCHKIT_IOFAULTS`) tear WAL appends, then restart over the
//! same directory and hold the acceptance criteria:
//!
//! * every record the daemon *acknowledged* (the client saw its `200`) is
//!   queryable after the restart — acks survive SIGKILL;
//! * no torn WAL record reaches the query surface — every served line is
//!   a valid perflog record;
//! * `store fsck --json` over the directory is clean (the daemon's state
//!   dir is not store residue);
//! * SIGTERM drains the restarted daemon gracefully: exit 0, lease
//!   released, drain summary printed.

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const BENCHKIT_BIN: &str = env!("CARGO_BIN_EXE_benchkit");

fn tmpdir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "serve-torture-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The canonical form the daemon serves (`to_json_line` adds optional
/// fields like `job_id: null`), for set comparisons against `/v1/fom`.
fn canonical(line: &str) -> String {
    perflogs::PerflogRecord::from_json_line(line)
        .expect("torture record parses")
        .to_json_line()
}

fn record_line(i: usize) -> String {
    // Unique (system, sequence) per record so dedup never collapses two
    // distinct torture records.
    format!(
        "{{\"sequence\":{seq},\"benchmark\":\"stream\",\"system\":\"sys{s}\",\
         \"partition\":\"compute\",\"environ\":\"gcc@11.2.0\",\
         \"spec\":\"stream%gcc\",\"build_hash\":\"h{i}\",\
         \"num_tasks\":1,\"num_tasks_per_node\":1,\"num_cpus_per_task\":1,\
         \"foms\":[{{\"name\":\"bw\",\"value\":{v}.5,\"unit\":\"GB/s\"}}]}}",
        seq = i / 4 + 1,
        s = i % 4,
        v = 100 + i,
    )
}

/// Kills the daemon when the test unwinds, so a failed assertion never
/// leaves an orphan holding the harness's output pipes open.
struct Daemon(Child);

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawn `benchkit serve` with torture fault env and wait for the
/// readiness line, returning the child and the bound address.
fn spawn_daemon(dir: &Path) -> (Daemon, String) {
    let mut child = Command::new(BENCHKIT_BIN)
        .args([
            "serve",
            dir.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--queue",
            "4",
            "--read-timeout-ms",
            "2000",
        ])
        // Mild, deterministic torture: tear some client-visible reads and
        // writes, and some WAL appends (scoped by match= so lease writes
        // at bind keep working and the daemon reliably comes up).
        .env(
            "BENCHKIT_NETFAULTS",
            "seed=7,torn=0.08,short=0.08,reset=0.04",
        )
        .env(
            "BENCHKIT_IOFAULTS",
            "seed=11,torn=0.10,fsync=0.05,match=wal.jsonl",
        )
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn benchkit serve");
    let stdout = child.stdout.take().expect("daemon stdout piped");
    let mut reader = BufReader::new(stdout);
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        assert!(Instant::now() < deadline, "daemon never printed readiness");
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read daemon stdout");
        assert!(n > 0, "daemon exited before readiness line");
        // "serving DIR on ADDR (N workers, queue Q)"
        if let Some(rest) = line.trim().strip_prefix("serving ") {
            let addr = rest
                .split(" on ")
                .nth(1)
                .and_then(|s| s.split_whitespace().next())
                .expect("readiness line names the bound address");
            break addr.to_string();
        }
    };
    // Keep draining the daemon's stdout so it never blocks on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
            sink.clear();
        }
    });
    (Daemon(child), addr)
}

/// POST one batch until the daemon acknowledges it; `None` when the
/// daemon is unreachable (killed) and stays so.
fn push_until_acked(addr: &str, batch: &str) -> Option<()> {
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut refused = 0u32;
    while Instant::now() < deadline {
        match servd::http_post(addr, "/v1/ingest", batch.as_bytes()) {
            Ok(resp) if resp.status == 200 => return Some(()),
            Ok(resp) if resp.status >= 500 => {
                // Saturated or a rolled-back WAL append: retry.
                std::thread::sleep(Duration::from_millis(20));
            }
            Ok(resp) => panic!("fatal daemon answer {}: {}", resp.status, resp.body_text()),
            Err(_) => {
                // Torn response / reset / daemon killed. A killed daemon
                // refuses repeatedly; torn traffic recovers quickly.
                refused += 1;
                if refused > 40 {
                    return None;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
    None
}

fn query_fom_lines(addr: &str) -> Vec<String> {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match servd::http_get(addr, "/v1/fom") {
            Ok(resp) if resp.status == 200 => {
                return resp.body_text().lines().map(|l| l.to_string()).collect()
            }
            _ if Instant::now() > deadline => panic!("/v1/fom never answered"),
            _ => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

#[test]
fn sigkill_mid_ingest_loses_no_acked_record_and_drains_cleanly() {
    let dir = tmpdir("sigkill");
    let (mut daemon, addr) = spawn_daemon(&dir);

    // Push 40 batches of 5 records from a client thread while the main
    // thread waits to SIGKILL the daemon mid-stream.
    let acked: Arc<Mutex<BTreeSet<String>>> = Arc::new(Mutex::new(BTreeSet::new()));
    let pusher = {
        let acked = Arc::clone(&acked);
        let addr = addr.clone();
        std::thread::spawn(move || {
            for batch_no in 0..40 {
                let records: Vec<String> =
                    (batch_no * 5..batch_no * 5 + 5).map(record_line).collect();
                let batch = records.join("\n") + "\n";
                if push_until_acked(&addr, &batch).is_none() {
                    return; // daemon gone — everything acked so far counts
                }
                acked
                    .lock()
                    .unwrap()
                    .extend(records.iter().map(|r| canonical(r)));
            }
        })
    };

    // Let a prefix land, then SIGKILL mid-ingest: no drain, no flush.
    let deadline = Instant::now() + Duration::from_secs(20);
    while acked.lock().unwrap().len() < 60 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    daemon.0.kill().expect("SIGKILL the daemon");
    daemon.0.wait().expect("reap the killed daemon");
    pusher.join().expect("pusher thread");
    let acked = Arc::try_unwrap(acked).unwrap().into_inner().unwrap();
    assert!(
        acked.len() >= 60,
        "torture needs a meaningful acked prefix, got {}",
        acked.len()
    );

    // Restart over the same directory (same fault env): the WAL replays,
    // the dead daemon's lease is taken over.
    let (mut daemon, addr) = spawn_daemon(&dir);
    let served = query_fom_lines(&addr);
    let served_set: BTreeSet<String> = served.iter().cloned().collect();
    assert_eq!(served.len(), served_set.len(), "served records are unique");
    for record in &acked {
        assert!(
            served_set.contains(record),
            "acknowledged record lost across SIGKILL: {record}"
        );
    }
    // No torn WAL line reaches the query surface.
    for line in &served {
        perflogs::PerflogRecord::from_json_line(line)
            .unwrap_or_else(|e| panic!("served a torn record: {e}: {line}"));
    }

    // The store directory is clean under fsck --json (the daemon's state
    // dir is its own, not store residue), even with the daemon running.
    let fsck = Command::new(BENCHKIT_BIN)
        .args(["store", "fsck", dir.to_str().unwrap(), "--json"])
        .env_remove("BENCHKIT_IOFAULTS")
        .output()
        .expect("run store fsck --json");
    assert!(
        fsck.status.success(),
        "fsck not clean: {}",
        String::from_utf8_lossy(&fsck.stdout)
    );
    let report = tinycfg::parse(String::from_utf8_lossy(&fsck.stdout).trim())
        .expect("fsck --json output parses");
    assert_eq!(
        report.get_path("clean").and_then(|v| v.as_bool()),
        Some(true)
    );

    // Re-pushing every record through the CLI client is pure dedup for
    // the acked prefix; afterwards all 200 records are served exactly once.
    let logs = tmpdir("sigkill-logs");
    let all: Vec<String> = (0..200).map(record_line).collect();
    std::fs::write(logs.join("all.jsonl"), all.join("\n") + "\n").unwrap();
    let push = Command::new(BENCHKIT_BIN)
        // Each attempt makes monotonic progress (acked records dedup), but
        // a 10% append fault rate over 200 records needs generous retries.
        .args([
            "push",
            logs.to_str().unwrap(),
            "--to",
            &addr,
            "--max-retries",
            "200",
        ])
        .env("BENCHKIT_ENGINE_BACKOFF_SCALE", "0.001")
        .env(
            "BENCHKIT_NETFAULTS",
            "seed=7,torn=0.08,short=0.08,reset=0.04",
        )
        .output()
        .expect("run benchkit push");
    assert!(
        push.status.success(),
        "push failed: {}{}",
        String::from_utf8_lossy(&push.stdout),
        String::from_utf8_lossy(&push.stderr)
    );
    let served = query_fom_lines(&addr);
    assert_eq!(served.len(), 200, "all records served exactly once");
    let served_set: BTreeSet<String> = served.into_iter().collect();
    for record in &all {
        let canon = canonical(record);
        assert!(served_set.contains(&canon), "record missing: {canon}");
    }

    // `benchkit query` sees the same health the library client does. One
    // shot can lose its connection to a daemon-side net fault; each retry
    // is a fresh connection with a fresh fault draw.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let query = Command::new(BENCHKIT_BIN)
            .args(["query", &addr, "/v1/health"])
            .output()
            .expect("run benchkit query");
        if query.status.success() {
            assert!(
                String::from_utf8_lossy(&query.stdout).contains("\"clean\":true"),
                "health: {}",
                String::from_utf8_lossy(&query.stdout)
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "query /v1/health never succeeded: {}",
            String::from_utf8_lossy(&query.stderr)
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // SIGTERM: graceful drain — exit 0 and the daemon lease released.
    let term = Command::new("kill")
        .args(["-TERM", &daemon.0.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    let deadline = Instant::now() + Duration::from_secs(20);
    let status = loop {
        match daemon.0.try_wait().expect("poll drained daemon") {
            Some(status) => break status,
            None if Instant::now() > deadline => panic!("daemon never drained on SIGTERM"),
            None => std::thread::sleep(Duration::from_millis(25)),
        }
    };
    assert!(status.success(), "drain must exit 0, got {status:?}");
    assert!(
        !dir.join("servd").join(".lease").exists(),
        "drain must release the daemon lease"
    );

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&logs);
}
