//! `mpisim` — an in-process message-passing runtime (the MPI substrate).
//!
//! The paper's benchmarks are MPI programs: HPCG runs "MPI only" on a
//! single node (Table 2), HPGMG-FV distributes boxes over ranks (Table 4),
//! and the run layouts are expressed as `num_tasks` / `num_tasks_per_node`.
//! This crate provides the message-passing substrate those codes are
//! written against: a *world* of ranks executed as threads, point-to-point
//! sends/receives with tag matching, and the collectives the benchmarks
//! need (barrier, broadcast, all-reduce, gather).
//!
//! Semantics follow MPI where it matters:
//!
//! * messages between a (source, destination) pair are non-overtaking per
//!   tag stream;
//! * `recv` blocks; out-of-order tags are stashed, not lost;
//! * collectives are synchronizing and must be called by every rank.
//!
//! # Example
//!
//! ```
//! // 4 ranks compute a distributed dot product.
//! let partials = mpisim::run(4, |comm| {
//!     let local: f64 = (0..10).map(|i| (comm.rank() * 10 + i) as f64).sum();
//!     comm.allreduce_sum(local)
//! });
//! let expect: f64 = (0..40).map(|i| i as f64).sum();
//! assert!(partials.iter().all(|&p| p == expect));
//! ```

mod comm;
mod world;

pub use comm::{Comm, Message};
pub use world::run;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_returns_per_rank_results() {
        let out = run(6, |c| c.rank() * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10]);
    }

    #[test]
    fn single_rank_world() {
        let out = run(1, |c| {
            assert_eq!(c.size(), 1);
            c.barrier();
            c.allreduce_sum(5.0)
        });
        assert_eq!(out, vec![5.0]);
    }

    #[test]
    fn ring_pass() {
        // Each rank sends its rank to the right; receives from the left.
        let out = run(5, |c| {
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            c.send(right, 0, vec![c.rank() as f64]);
            let got = c.recv(left, 0);
            got[0] as usize
        });
        assert_eq!(out, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn messages_non_overtaking_per_tag() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                for i in 0..50 {
                    c.send(1, 7, vec![i as f64]);
                }
                0.0
            } else {
                let mut last = -1.0;
                for _ in 0..50 {
                    let m = c.recv(0, 7);
                    assert!(m[0] > last, "overtaking: {} after {last}", m[0]);
                    last = m[0];
                }
                last
            }
        });
        assert_eq!(out[1], 49.0);
    }

    #[test]
    fn out_of_order_tags_are_stashed() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 1, vec![1.0]);
                c.send(1, 2, vec![2.0]);
                0.0
            } else {
                // Receive tag 2 first even though tag 1 arrived first.
                let b = c.recv(0, 2);
                let a = c.recv(0, 1);
                b[0] * 10.0 + a[0]
            }
        });
        assert_eq!(out[1], 21.0);
    }

    #[test]
    fn allreduce_variants() {
        let sums = run(4, |c| c.allreduce_sum((c.rank() + 1) as f64));
        assert!(sums.iter().all(|&s| s == 10.0));
        let maxes = run(4, |c| c.allreduce_max((c.rank() * 3) as f64));
        assert!(maxes.iter().all(|&m| m == 9.0));
    }

    #[test]
    fn broadcast_from_root() {
        let out = run(5, |c| {
            let data = if c.rank() == 0 {
                vec![42.0, 7.0]
            } else {
                Vec::new()
            };
            c.broadcast(0, data)
        });
        for v in out {
            assert_eq!(v, vec![42.0, 7.0]);
        }
    }

    #[test]
    fn gather_to_root() {
        let out = run(4, |c| c.gather(0, vec![c.rank() as f64]));
        assert_eq!(out[0], vec![0.0, 1.0, 2.0, 3.0]);
        assert!(out[1].is_empty() && out[3].is_empty());
    }

    #[test]
    fn sendrecv_exchanges_without_deadlock() {
        // Every rank exchanges with its neighbour simultaneously — the
        // classic halo pattern that deadlocks naive blocking sends.
        let out = run(8, |c| {
            let partner = c.rank() ^ 1; // pair 0-1, 2-3, ...
            let got = c.sendrecv(partner, 3, vec![c.rank() as f64]);
            got[0] as usize
        });
        assert_eq!(out, vec![1, 0, 3, 2, 5, 4, 7, 6]);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let before = Arc::new(AtomicUsize::new(0));
        let violations = Arc::new(AtomicUsize::new(0));
        let b2 = Arc::clone(&before);
        let v2 = Arc::clone(&violations);
        run(6, move |c| {
            b2.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            if b2.load(Ordering::SeqCst) != 6 {
                v2.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert_eq!(violations.load(std::sync::atomic::Ordering::SeqCst), 0);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        run(0, |_| ());
    }
}
