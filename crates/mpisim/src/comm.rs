//! The per-rank communicator.

use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::{Arc, Barrier};

/// A tagged message of doubles (the payload type every benchmark uses).
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    pub source: usize,
    pub tag: u32,
    pub data: Vec<f64>,
}

/// Shared collective state.
pub(crate) struct Collectives {
    pub barrier: Barrier,
    /// One slot per rank for reduction/broadcast staging.
    pub slots: Vec<Mutex<Vec<f64>>>,
}

/// The communicator handed to each rank's closure.
pub struct Comm {
    rank: usize,
    size: usize,
    /// `senders[d]` delivers to rank `d`'s inbox.
    senders: Vec<Sender<Message>>,
    /// This rank's inbox.
    inbox: Receiver<Message>,
    /// Messages received but not yet asked for (tag/source mismatch).
    stash: VecDeque<Message>,
    collectives: Arc<Collectives>,
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        senders: Vec<Sender<Message>>,
        inbox: Receiver<Message>,
        collectives: Arc<Collectives>,
    ) -> Comm {
        Comm {
            rank,
            size,
            senders,
            inbox,
            stash: VecDeque::new(),
            collectives,
        }
    }

    /// This rank's index, `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Asynchronous (buffered) send to `dest` with `tag`.
    pub fn send(&self, dest: usize, tag: u32, data: Vec<f64>) {
        assert!(dest < self.size, "send to rank {dest} of {}", self.size);
        self.senders[dest]
            .send(Message {
                source: self.rank,
                tag,
                data,
            })
            .expect("receiving rank has exited the world");
    }

    /// Blocking receive of the next message from `source` with `tag`
    /// (non-overtaking per (source, tag) stream).
    pub fn recv(&mut self, source: usize, tag: u32) -> Vec<f64> {
        // Check the stash first.
        if let Some(pos) = self
            .stash
            .iter()
            .position(|m| m.source == source && m.tag == tag)
        {
            return self.stash.remove(pos).expect("position valid").data;
        }
        loop {
            let msg = self.inbox.recv().expect("world torn down during recv");
            if msg.source == source && msg.tag == tag {
                return msg.data;
            }
            self.stash.push_back(msg);
        }
    }

    /// Simultaneous exchange with `partner` (deadlock-free halo pattern).
    pub fn sendrecv(&mut self, partner: usize, tag: u32, data: Vec<f64>) -> Vec<f64> {
        self.send(partner, tag, data);
        self.recv(partner, tag)
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        self.collectives.barrier.wait();
    }

    /// Sum a scalar across all ranks; every rank gets the total.
    pub fn allreduce_sum(&self, value: f64) -> f64 {
        self.allreduce_vec(vec![value], |acc, v| acc[0] += v[0])[0]
    }

    /// Maximum of a scalar across all ranks.
    pub fn allreduce_max(&self, value: f64) -> f64 {
        self.allreduce_vec(vec![value], |acc, v| acc[0] = acc[0].max(v[0]))[0]
    }

    /// Element-wise vector all-reduce with a custom combiner.
    pub fn allreduce_vec(
        &self,
        value: Vec<f64>,
        combine: impl Fn(&mut Vec<f64>, &Vec<f64>),
    ) -> Vec<f64> {
        // Stage every rank's contribution, synchronize, reduce locally.
        // (Deterministic: reduction order is rank order on every rank.)
        *self.collectives.slots[self.rank].lock() = value;
        self.barrier();
        let mut acc = self.collectives.slots[0].lock().clone();
        for r in 1..self.size {
            let v = self.collectives.slots[r].lock().clone();
            combine(&mut acc, &v);
        }
        // Second barrier: no rank may restage before everyone has read.
        self.barrier();
        acc
    }

    /// Broadcast `data` from `root` to every rank (non-roots pass anything).
    pub fn broadcast(&self, root: usize, data: Vec<f64>) -> Vec<f64> {
        assert!(root < self.size);
        if self.rank == root {
            *self.collectives.slots[root].lock() = data;
        }
        self.barrier();
        let out = self.collectives.slots[root].lock().clone();
        self.barrier();
        out
    }

    /// Gather each rank's vector at `root` (concatenated in rank order);
    /// other ranks receive an empty vector.
    pub fn gather(&self, root: usize, data: Vec<f64>) -> Vec<f64> {
        *self.collectives.slots[self.rank].lock() = data;
        self.barrier();
        let out = if self.rank == root {
            let mut all = Vec::new();
            for r in 0..self.size {
                all.extend(self.collectives.slots[r].lock().iter().copied());
            }
            all
        } else {
            Vec::new()
        };
        self.barrier();
        out
    }
}
