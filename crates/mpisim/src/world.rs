//! World construction: one thread per rank.

use crate::comm::{Collectives, Comm, Message};
use crossbeam::channel::unbounded;
use parking_lot::Mutex;
use std::sync::{Arc, Barrier};

/// Run `f` on `size` ranks concurrently; returns each rank's result in
/// rank order. Panics in any rank propagate (the world aborts, like an
/// MPI job).
pub fn run<F, R>(size: usize, f: F) -> Vec<R>
where
    F: Fn(&mut Comm) -> R + Send + Sync,
    R: Send,
{
    assert!(size > 0, "a world needs at least one rank");
    let (senders, receivers): (Vec<_>, Vec<_>) = (0..size).map(|_| unbounded::<Message>()).unzip();
    let collectives = Arc::new(Collectives {
        barrier: Barrier::new(size),
        slots: (0..size).map(|_| Mutex::new(Vec::new())).collect(),
    });

    let mut comms: Vec<Comm> = receivers
        .into_iter()
        .enumerate()
        .map(|(rank, inbox)| {
            Comm::new(rank, size, senders.clone(), inbox, Arc::clone(&collectives))
        })
        .collect();
    // The original sender handles must drop so recv() can detect teardown.
    drop(senders);

    std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .iter_mut()
            .map(|comm| {
                let f = &f;
                scope.spawn(move || f(comm))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("a rank panicked"))
            .collect()
    })
}
