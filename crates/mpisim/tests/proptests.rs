//! Property tests: collective semantics hold for arbitrary world sizes and
//! payloads.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// allreduce_sum equals the serial sum for every rank.
    #[test]
    fn allreduce_sum_correct(values in prop::collection::vec(-1e6f64..1e6, 1..9)) {
        let expect: f64 = values.iter().sum();
        let vals = values.clone();
        let out = mpisim::run(values.len(), move |c| c.allreduce_sum(vals[c.rank()]));
        for v in out {
            prop_assert!((v - expect).abs() <= 1e-9 * expect.abs().max(1.0));
        }
    }

    /// allreduce is deterministic: every rank gets the *identical* bits.
    #[test]
    fn allreduce_bitwise_identical(values in prop::collection::vec(-1e6f64..1e6, 2..9)) {
        let vals = values.clone();
        let out = mpisim::run(values.len(), move |c| c.allreduce_sum(vals[c.rank()]));
        for w in out.windows(2) {
            prop_assert_eq!(w[0].to_bits(), w[1].to_bits());
        }
    }

    /// gather at root concatenates in rank order, any payload sizes.
    #[test]
    fn gather_preserves_order(sizes in prop::collection::vec(0usize..5, 1..6)) {
        let sz = sizes.clone();
        let out = mpisim::run(sizes.len(), move |c| {
            let data: Vec<f64> =
                (0..sz[c.rank()]).map(|i| (c.rank() * 100 + i) as f64).collect();
            c.gather(0, data)
        });
        let mut expect = Vec::new();
        for (rank, &n) in sizes.iter().enumerate() {
            expect.extend((0..n).map(|i| (rank * 100 + i) as f64));
        }
        prop_assert_eq!(&out[0], &expect);
        for rest in &out[1..] {
            prop_assert!(rest.is_empty());
        }
    }

    /// A shifted ring of arbitrary payloads is delivered intact.
    #[test]
    fn ring_delivers_payloads(size in 2usize..8, payload in prop::collection::vec(-1e3f64..1e3, 1..20)) {
        let p = payload.clone();
        let out = mpisim::run(size, move |c| {
            let mut msg = p.clone();
            msg[0] = c.rank() as f64;
            c.send((c.rank() + 1) % c.size(), 5, msg);
            c.recv((c.rank() + c.size() - 1) % c.size(), 5)
        });
        for (rank, got) in out.iter().enumerate() {
            let from = (rank + size - 1) % size;
            prop_assert_eq!(got[0], from as f64);
            prop_assert_eq!(got.len(), payload.len());
        }
    }

    /// Broadcast delivers the root's payload to everyone, for any root.
    #[test]
    fn broadcast_any_root(size in 1usize..8, root_pick in any::<usize>(), payload in prop::collection::vec(-1e3f64..1e3, 0..10)) {
        let root = root_pick % size;
        let p = payload.clone();
        let out = mpisim::run(size, move |c| {
            let data = if c.rank() == root { p.clone() } else { vec![] };
            c.broadcast(root, data)
        });
        for got in out {
            prop_assert_eq!(&got, &payload);
        }
    }
}
