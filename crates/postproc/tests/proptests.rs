//! Property tests for the ranking/comparison layer: the ranking must be a
//! pure function of the *set* of measurements — invariant under row order
//! and under the worker-thread count — even when the values include the
//! full menagerie of numeric edge cases (NaN, ±inf, zero, negatives).

use dframe::{Cell, DataFrame};
use postproc::{cmp_frames, rank_frame, CmpPolicy, RankPolicy};
use proptest::prelude::*;

/// A FOM value drawn from both the happy path and the pathological one.
fn fom() -> impl Strategy<Value = f64> {
    prop_oneof![
        (1.0f64..1e6).prop_map(|v| v),
        Just(0.0),
        (-1e3f64..-1.0).prop_map(|v| v),
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
    ]
}

/// (benchmark, fom-name, system, value) rows over small label pools so
/// collisions (repeats, shared cells, missing cells) actually happen.
fn rows() -> impl Strategy<Value = Vec<(usize, usize, usize, f64)>> {
    prop::collection::vec((0usize..3, 0usize..2, 0usize..4, fom()), 1..24)
}

fn frame_of(rows: &[(usize, usize, usize, f64)]) -> DataFrame {
    let mut df = DataFrame::new(vec!["benchmark", "fom", "system", "partition", "value"]);
    for &(b, f, s, v) in rows {
        df.push_row(vec![
            Cell::from(format!("bench{b}")),
            Cell::from(format!("fom{f}")),
            Cell::from(format!("sys{s}")),
            Cell::Null,
            Cell::from(v),
        ])
        .unwrap();
    }
    df
}

/// Deterministic permutation of `0..n` keyed by `seed` (splitmix64 step).
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut keyed: Vec<(u64, usize)> = (0..n)
        .map(|i| {
            let mut z = seed.wrapping_add((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31), i)
        })
        .collect();
    keyed.sort();
    keyed.into_iter().map(|(_, i)| i).collect()
}

proptest! {
    /// Rank output (structure *and* rendered bytes) is invariant under any
    /// permutation of the input rows and any jobs count.
    #[test]
    fn rank_invariant_under_row_order_and_jobs(rows in rows(), seed in any::<u64>()) {
        let df = frame_of(&rows);
        let baseline = rank_frame(&df, &RankPolicy::default()).unwrap();

        let perm = permutation(rows.len(), seed);
        let shuffled: Vec<_> = perm.iter().map(|&i| rows[i]).collect();
        let shuffled_df = frame_of(&shuffled);
        for jobs in [1, 2, 8] {
            let policy = RankPolicy { jobs, ..RankPolicy::default() };
            let r = rank_frame(&shuffled_df, &policy).unwrap();
            prop_assert_eq!(&baseline, &r, "jobs={}", jobs);
            prop_assert_eq!(baseline.render_text(), r.render_text(), "jobs={}", jobs);
            prop_assert_eq!(baseline.render_markdown(), r.render_markdown(), "jobs={}", jobs);
        }
    }

    /// Every (cell, system) pair in the input is accounted for in the
    /// ranking: either it contributed to a geomean or it is reported as
    /// skipped/degenerate. Nothing silently vanishes.
    #[test]
    fn rank_accounts_for_every_cell(rows in rows()) {
        let df = frame_of(&rows);
        let r = rank_frame(&df, &RankPolicy::default()).unwrap();
        let n_cells = r.cells.len() + r.degenerate_cells.len();
        for e in &r.entries {
            prop_assert_eq!(
                e.cells_used + e.skipped.len(),
                r.cells.len(),
                "entity {} must address every usable cell",
                e.entity
            );
        }
        // Every distinct (benchmark, fom) pair in the input appears.
        let mut labels: Vec<String> = rows
            .iter()
            .map(|&(b, f, _, _)| format!("bench{b}/fom{f}"))
            .collect();
        labels.sort();
        labels.dedup();
        prop_assert_eq!(n_cells, labels.len());
        // Geomeans are always finite and in (0, 1].
        for e in &r.entries {
            if let Some(g) = e.geomean {
                prop_assert!(g.is_finite() && g > 0.0 && g <= 1.0 + 1e-12, "{}", g);
            }
        }
    }

    /// cmp classifies the full union of cells, is order/jobs invariant,
    /// and never produces a non-finite percentage.
    #[test]
    fn cmp_invariant_and_total(a in rows(), b in rows(), seed in any::<u64>()) {
        let (fa, fb) = (frame_of(&a), frame_of(&b));
        let baseline = cmp_frames(&fa, &fb, &CmpPolicy::default()).unwrap();
        prop_assert_eq!(
            baseline.n_improved() + baseline.n_regressed() + baseline.n_unchanged()
                + baseline.n_missing() + baseline.n_incomparable(),
            baseline.cells.len(),
            "every cell classified exactly once"
        );
        for c in &baseline.cells {
            use postproc::Delta::*;
            if let Improved { pct, .. } | Regressed { pct, .. } | Unchanged { pct, .. } = c.delta {
                prop_assert!(pct.is_finite(), "{:?}", c);
            }
        }
        let perm = permutation(a.len(), seed);
        let shuffled: Vec<_> = perm.iter().map(|&i| a[i]).collect();
        for jobs in [1, 2, 8] {
            let policy = CmpPolicy { jobs, ..CmpPolicy::default() };
            let c = cmp_frames(&frame_of(&shuffled), &fb, &policy).unwrap();
            prop_assert_eq!(&baseline, &c, "jobs={}", jobs);
            prop_assert_eq!(baseline.render_text(), c.render_text(), "jobs={}", jobs);
        }
    }
}
