//! Failed runs must not pollute FOM statistics.
//!
//! The harness records failed/retried runs in the perflog (with
//! `result=fail` / `attempt=N` extras and no FOMs) instead of silently
//! dropping them — the archaeology principle. The postprocessing pipeline
//! consumes the assimilated frame, where a record contributes one row per
//! FOM, so failure records must contribute nothing to means, histories,
//! or regression verdicts.

use perflogs::{Fom, Perflog, PerflogRecord};
use postproc::{History, RegressionPolicy, Verdict};

fn ok_record(seq: u64, triad: f64) -> PerflogRecord {
    PerflogRecord {
        sequence: seq,
        benchmark: "babelstream_omp".into(),
        system: "csd3".into(),
        partition: "cclake".into(),
        environ: "gcc@9.2.0".into(),
        spec: "babelstream%gcc@9.2.0 +omp".into(),
        build_hash: "abcdefg".into(),
        job_id: Some(100 + seq),
        num_tasks: 1,
        num_tasks_per_node: 1,
        num_cpus_per_task: 56,
        foms: vec![Fom {
            name: "Triad".into(),
            value: triad,
            unit: "MB/s".into(),
        }],
        extras: vec![("attempt".into(), "1".into())],
    }
}

fn failed_record(seq: u64, attempt: u32) -> PerflogRecord {
    PerflogRecord {
        foms: Vec::new(),
        job_id: None,
        extras: vec![
            ("result".into(), "fail".into()),
            ("attempt".into(), attempt.to_string()),
            ("error".into(), "node failure on csd3 (job requeued)".into()),
        ],
        ..ok_record(seq, 0.0)
    }
}

/// Interleave failures into a healthy series: every statistic the
/// pipeline computes must match the failure-free series exactly.
#[test]
fn postproc_ignores_failed_records() {
    let mut clean = Perflog::new();
    let mut faulty = Perflog::new();
    let values = [100.0, 101.0, 99.5, 100.4, 100.1, 99.9];
    let mut seq = 0;
    for (i, &v) in values.iter().enumerate() {
        if i % 2 == 1 {
            faulty.append(failed_record(seq, 3));
            seq += 1;
        }
        clean.append(ok_record(seq, v));
        faulty.append(ok_record(seq, v));
        seq += 1;
    }
    assert_eq!(faulty.len(), clean.len() + 3, "failures are recorded");

    // Failure records flatten to zero frame rows (no FOMs).
    let clean_frame = clean.to_frame();
    let faulty_frame = faulty.to_frame();
    assert_eq!(clean_frame.n_rows(), values.len());
    assert_eq!(faulty_frame.n_rows(), clean_frame.n_rows());

    // Histories — and therefore regression verdicts — are identical.
    let hist = |frame| History::from_frame(frame, "babelstream_omp", "csd3", "Triad").unwrap();
    let clean_hist = hist(&clean_frame);
    let faulty_hist = hist(&faulty_frame);
    assert_eq!(clean_hist.points, faulty_hist.points);
    let policy = RegressionPolicy::default();
    assert!(matches!(
        faulty_hist.check_latest(&policy),
        Verdict::Ok { .. }
    ));

    // And the failure evidence survives the JSONL round trip for
    // archaeology, without growing any FOM rows.
    let reparsed = Perflog::from_jsonl(&faulty.to_jsonl()).unwrap();
    assert_eq!(reparsed.records(), faulty.records());
    let fails: Vec<_> = reparsed
        .records()
        .iter()
        .filter(|r| r.extras.iter().any(|(k, v)| k == "result" && v == "fail"))
        .collect();
    assert_eq!(fails.len(), 3);
    assert!(fails.iter().all(|r| r.foms.is_empty()));
    assert_eq!(reparsed.to_frame().n_rows(), clean_frame.n_rows());
}
