//! Chart rendering: aligned-text output for terminals and logs, and
//! standalone SVG for reports (the Bokeh substitute).

/// A grouped bar chart: categories on the x-axis, one or more series.
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    unit: String,
    categories: Vec<String>,
    /// (series label, values parallel to `categories`; NaN = missing).
    series: Vec<(String, Vec<f64>)>,
}

impl BarChart {
    pub fn new(title: &str, unit: &str) -> BarChart {
        BarChart {
            title: title.to_string(),
            unit: unit.to_string(),
            categories: Vec::new(),
            series: Vec::new(),
        }
    }

    pub fn with_categories<S: Into<String>>(mut self, cats: Vec<S>) -> BarChart {
        self.categories = cats.into_iter().map(Into::into).collect();
        self
    }

    /// Add a series; `values` must parallel the categories (NaN = missing).
    pub fn add_series(&mut self, label: &str, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.categories.len(),
            "series length must match category count"
        );
        self.series.push((label.to_string(), values));
    }

    pub fn categories(&self) -> &[String] {
        &self.categories
    }

    pub fn series(&self) -> &[(String, Vec<f64>)] {
        &self.series
    }

    fn max_value(&self) -> f64 {
        self.series
            .iter()
            .flat_map(|(_, v)| v.iter())
            .copied()
            .filter(|v| v.is_finite())
            .fold(0.0, f64::max)
    }

    /// Horizontal bars in plain text, scaled to 50 columns.
    pub fn render_text(&self) -> String {
        const WIDTH: usize = 50;
        let max = self.max_value().max(f64::MIN_POSITIVE);
        let label_w = self
            .categories
            .iter()
            .flat_map(|c| self.series.iter().map(move |(s, _)| c.len() + s.len() + 1))
            .max()
            .unwrap_or(8)
            .max(8);
        let mut out = format!("{} [{}]\n", self.title, self.unit);
        for (ci, cat) in self.categories.iter().enumerate() {
            for (label, values) in &self.series {
                let v = values[ci];
                let name = if self.series.len() == 1 {
                    cat.clone()
                } else {
                    format!("{cat}/{label}")
                };
                if v.is_finite() {
                    let bar = "#".repeat(((v / max) * WIDTH as f64).round() as usize);
                    out.push_str(&format!("{name:<label_w$} |{bar:<WIDTH$}| {v:.3}\n"));
                } else {
                    out.push_str(&format!("{name:<label_w$} |{:<WIDTH$}| n/a\n", ""));
                }
            }
        }
        out
    }

    /// A standalone SVG document.
    pub fn render_svg(&self) -> String {
        let n_cats = self.categories.len().max(1);
        let n_series = self.series.len().max(1);
        let bar_h = 18;
        let group_h = bar_h * n_series + 10;
        let margin_left = 160;
        let plot_w = 600;
        let height = 50 + group_h * n_cats;
        let width = margin_left + plot_w + 120;
        let max = self.max_value().max(f64::MIN_POSITIVE);
        let palette = [
            "#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4", "#8c613c",
        ];

        let mut svg = format!(
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" font-family="sans-serif" font-size="12">"#
        );
        svg.push_str(&format!(
            r#"<text x="{}" y="20" font-size="15" font-weight="bold">{} [{}]</text>"#,
            margin_left,
            escape(&self.title),
            escape(&self.unit)
        ));
        for (ci, cat) in self.categories.iter().enumerate() {
            let y0 = 40 + ci * group_h;
            svg.push_str(&format!(
                r#"<text x="{}" y="{}" text-anchor="end">{}</text>"#,
                margin_left - 8,
                y0 + group_h / 2,
                escape(cat)
            ));
            for (si, (label, values)) in self.series.iter().enumerate() {
                let v = values[ci];
                let y = y0 + si * bar_h;
                if v.is_finite() {
                    let w = ((v / max) * plot_w as f64).max(1.0);
                    svg.push_str(&format!(
                        r#"<rect x="{margin_left}" y="{y}" width="{w:.1}" height="{}" fill="{}"><title>{}: {v}</title></rect>"#,
                        bar_h - 4,
                        palette[si % palette.len()],
                        escape(label),
                    ));
                    svg.push_str(&format!(
                        r#"<text x="{:.1}" y="{}" font-size="10">{v:.3}</text>"#,
                        margin_left as f64 + w + 4.0,
                        y + bar_h - 8,
                    ));
                } else {
                    svg.push_str(&format!(
                        r##"<text x="{margin_left}" y="{}" font-size="10" fill="#999">n/a</text>"##,
                        y + bar_h - 8,
                    ));
                }
            }
        }
        svg.push_str("</svg>");
        svg
    }
}

/// A matrix heat map: rows × columns of optional values — the layout of the
/// paper's Figure 2 (programming models × platforms, starred gaps).
#[derive(Debug, Clone)]
pub struct Heatmap {
    title: String,
    rows: Vec<String>,
    cols: Vec<String>,
    /// cells[r][c]; None renders as the paper's `*` box.
    cells: Vec<Vec<Option<f64>>>,
}

impl Heatmap {
    pub fn new<S: Into<String>>(title: &str, rows: Vec<S>, cols: Vec<S>) -> Heatmap {
        let rows: Vec<String> = rows.into_iter().map(Into::into).collect();
        let cols: Vec<String> = cols.into_iter().map(Into::into).collect();
        let cells = vec![vec![None; cols.len()]; rows.len()];
        Heatmap {
            title: title.to_string(),
            rows,
            cols,
            cells,
        }
    }

    pub fn set(&mut self, row: &str, col: &str, value: f64) {
        let r = self
            .rows
            .iter()
            .position(|x| x == row)
            .expect("unknown heatmap row");
        let c = self
            .cols
            .iter()
            .position(|x| x == col)
            .expect("unknown heatmap column");
        self.cells[r][c] = Some(value);
    }

    pub fn get(&self, row: &str, col: &str) -> Option<f64> {
        let r = self.rows.iter().position(|x| x == row)?;
        let c = self.cols.iter().position(|x| x == col)?;
        self.cells[r][c]
    }

    /// Aligned text matrix; missing cells print `*` like Figure 2.
    pub fn render_text(&self) -> String {
        let row_w = self.rows.iter().map(String::len).max().unwrap_or(4).max(4);
        let col_w = self.cols.iter().map(|c| c.len().max(6)).collect::<Vec<_>>();
        let mut out = format!("{}\n", self.title);
        out.push_str(&format!("{:<row_w$}", ""));
        for (c, w) in self.cols.iter().zip(&col_w) {
            out.push_str(&format!("  {c:>w$}"));
        }
        out.push('\n');
        for (r, row) in self.rows.iter().enumerate() {
            out.push_str(&format!("{row:<row_w$}"));
            for (ci, w) in col_w.iter().enumerate() {
                match self.cells[r][ci] {
                    Some(v) => out.push_str(&format!("  {v:>w$.3}")),
                    None => out.push_str(&format!("  {:>w$}", "*")),
                }
            }
            out.push('\n');
        }
        out
    }

    /// SVG with a blue-to-red ramp; missing cells are white with a `*`.
    pub fn render_svg(&self) -> String {
        let cell = 64;
        let left = 140;
        let top = 60;
        let width = left + cell * self.cols.len() + 40;
        let height = top + cell * self.rows.len() + 20;
        let max = self
            .cells
            .iter()
            .flatten()
            .filter_map(|v| *v)
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE);
        let mut svg = format!(
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" font-family="sans-serif" font-size="11">"#
        );
        svg.push_str(&format!(
            r#"<text x="{left}" y="20" font-size="15" font-weight="bold">{}</text>"#,
            escape(&self.title)
        ));
        for (ci, col) in self.cols.iter().enumerate() {
            svg.push_str(&format!(
                r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
                left + ci * cell + cell / 2,
                top - 8,
                escape(col)
            ));
        }
        for (ri, row) in self.rows.iter().enumerate() {
            svg.push_str(&format!(
                r#"<text x="{}" y="{}" text-anchor="end">{}</text>"#,
                left - 8,
                top + ri * cell + cell / 2 + 4,
                escape(row)
            ));
            for ci in 0..self.cols.len() {
                let x = left + ci * cell;
                let y = top + ri * cell;
                match self.cells[ri][ci] {
                    Some(v) => {
                        let frac = (v / max).clamp(0.0, 1.0);
                        let r = (255.0 * frac) as u8;
                        let b = (255.0 * (1.0 - frac)) as u8;
                        svg.push_str(&format!(
                            r##"<rect x="{x}" y="{y}" width="{cell}" height="{cell}" fill="rgb({r},80,{b})" stroke="#fff"/>"##
                        ));
                        svg.push_str(&format!(
                            r##"<text x="{}" y="{}" text-anchor="middle" fill="#fff">{v:.2}</text>"##,
                            x + cell / 2,
                            y + cell / 2 + 4,
                        ));
                    }
                    None => {
                        svg.push_str(&format!(
                            r##"<rect x="{x}" y="{y}" width="{cell}" height="{cell}" fill="#fff" stroke="#ccc"/>"##
                        ));
                        svg.push_str(&format!(
                            r##"<text x="{}" y="{}" text-anchor="middle" fill="#888">*</text>"##,
                            x + cell / 2,
                            y + cell / 2 + 4,
                        ));
                    }
                }
            }
        }
        svg.push_str("</svg>");
        svg
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_text_scales_to_max() {
        let mut c = BarChart::new("t", "GB/s").with_categories(vec!["a", "b"]);
        c.add_series("s", vec![100.0, 50.0]);
        let text = c.render_text();
        let bars: Vec<usize> = text
            .lines()
            .skip(1)
            .map(|l| l.matches('#').count())
            .collect();
        assert_eq!(bars[0], 50, "max bar fills the width");
        assert_eq!(bars[1], 25);
    }

    #[test]
    fn bar_chart_missing_values() {
        let mut c = BarChart::new("t", "u").with_categories(vec!["a", "b"]);
        c.add_series("s", vec![1.0, f64::NAN]);
        assert!(c.render_text().contains("n/a"));
        assert!(c.render_svg().contains("n/a"));
    }

    #[test]
    #[should_panic(expected = "series length")]
    fn mismatched_series_rejected() {
        let mut c = BarChart::new("t", "u").with_categories(vec!["a", "b"]);
        c.add_series("s", vec![1.0]);
    }

    #[test]
    fn heatmap_stars_missing_cells() {
        let mut h = Heatmap::new("fig2", vec!["omp", "cuda"], vec!["cl", "v100"]);
        h.set("omp", "cl", 0.75);
        h.set("cuda", "v100", 0.93);
        let text = h.render_text();
        assert!(text.contains('*'), "unset cells are starred: {text}");
        assert!(text.contains("0.750"));
        assert_eq!(h.get("omp", "cl"), Some(0.75));
        assert_eq!(h.get("omp", "v100"), None);
        let svg = h.render_svg();
        assert!(svg.contains("</svg>"));
        assert!(svg.contains("0.93"));
    }

    #[test]
    fn svg_escapes_markup() {
        let c = BarChart::new("<b>&", "u").with_categories(vec!["x"]);
        let svg = c.render_svg();
        assert!(svg.contains("&lt;b&gt;&amp;"));
    }
}
