//! Scaling plots — the paper's "ongoing work to provide simplified
//! configurations that can be used to produce scaling and time-series
//! regression plots" (§2.4), implemented.
//!
//! A [`SeriesPlot`] holds numeric x/y series (e.g. MPI ranks vs DOF/s per
//! system); helpers compute parallel efficiency for strong-scaling studies.

/// A numeric multi-series plot (x shared per series, lines per label).
#[derive(Debug, Clone, Default)]
pub struct SeriesPlot {
    title: String,
    x_label: String,
    y_label: String,
    /// (label, points sorted by x)
    series: Vec<(String, Vec<(f64, f64)>)>,
}

impl SeriesPlot {
    pub fn new(title: &str, x_label: &str, y_label: &str) -> SeriesPlot {
        SeriesPlot {
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            series: Vec::new(),
        }
    }

    pub fn add_series(&mut self, label: &str, mut points: Vec<(f64, f64)>) {
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        self.series.push((label.to_string(), points));
    }

    pub fn series(&self) -> &[(String, Vec<(f64, f64)>)] {
        &self.series
    }

    /// Strong-scaling parallel efficiency of one series:
    /// `E(x) = (y(x) / y(x0)) / (x / x0)` for a throughput-like y.
    pub fn parallel_efficiency(&self, label: &str) -> Option<Vec<(f64, f64)>> {
        let (_, points) = self.series.iter().find(|(l, _)| l == label)?;
        let &(x0, y0) = points.first()?;
        if x0 <= 0.0 || y0 <= 0.0 {
            return None;
        }
        Some(
            points
                .iter()
                .map(|&(x, y)| (x, (y / y0) / (x / x0)))
                .collect(),
        )
    }

    /// Aligned-text rendering: one row per x, one column per series.
    pub fn render_text(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|(_, pts)| pts.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

        let mut out = format!("{} ({} vs {})\n", self.title, self.y_label, self.x_label);
        out.push_str(&format!("{:>12}", self.x_label));
        for (label, _) in &self.series {
            out.push_str(&format!("  {label:>14}"));
        }
        out.push('\n');
        for x in &xs {
            out.push_str(&format!("{x:>12.0}"));
            for (_, pts) in &self.series {
                match pts.iter().find(|(px, _)| (px - x).abs() < 1e-12) {
                    Some((_, y)) => out.push_str(&format!("  {y:>14.3}")),
                    None => out.push_str(&format!("  {:>14}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Standalone SVG line chart (linear axes).
    pub fn render_svg(&self) -> String {
        let (w, h) = (640.0f64, 400.0f64);
        let (ml, mr, mt, mb) = (70.0, 130.0, 40.0, 50.0);
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|(_, p)| p.iter().copied())
            .collect();
        let (x_min, x_max) = bounds(all.iter().map(|p| p.0));
        let (_, y_max) = bounds(all.iter().map(|p| p.1));
        let y_min = 0.0;
        let sx = |x: f64| ml + (x - x_min) / (x_max - x_min).max(1e-12) * (w - ml - mr);
        let sy = |y: f64| h - mb - (y - y_min) / (y_max - y_min).max(1e-12) * (h - mt - mb);
        let palette = [
            "#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4", "#8c613c",
        ];

        let mut svg = format!(
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" font-family="sans-serif" font-size="12">"#
        );
        svg.push_str(&format!(
            r#"<text x="{ml}" y="22" font-size="15" font-weight="bold">{}</text>"#,
            escape(&self.title)
        ));
        // Axes.
        svg.push_str(&format!(
            r##"<line x1="{ml}" y1="{}" x2="{}" y2="{}" stroke="#444"/>"##,
            h - mb,
            w - mr,
            h - mb
        ));
        svg.push_str(&format!(
            r##"<line x1="{ml}" y1="{mt}" x2="{ml}" y2="{}" stroke="#444"/>"##,
            h - mb
        ));
        svg.push_str(&format!(
            r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
            (ml + w - mr) / 2.0,
            h - 12.0,
            escape(&self.x_label)
        ));
        svg.push_str(&format!(
            r#"<text x="14" y="{}" transform="rotate(-90 14 {})">{}</text>"#,
            (mt + h - mb) / 2.0,
            (mt + h - mb) / 2.0,
            escape(&self.y_label)
        ));
        for (si, (label, pts)) in self.series.iter().enumerate() {
            let color = palette[si % palette.len()];
            let path: Vec<String> = pts
                .iter()
                .map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y)))
                .collect();
            if !path.is_empty() {
                svg.push_str(&format!(
                    r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
                    path.join(" ")
                ));
                for &(x, y) in pts {
                    svg.push_str(&format!(
                        r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"><title>{label}: ({x}, {y})</title></circle>"#,
                        sx(x),
                        sy(y),
                    ));
                }
            }
            svg.push_str(&format!(
                r#"<text x="{}" y="{}" fill="{color}">{}</text>"#,
                w - mr + 8.0,
                mt + 16.0 * si as f64 + 10.0,
                escape(label)
            ));
        }
        svg.push_str("</svg>");
        svg
    }
}

fn bounds(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for v in values {
        min = min.min(v);
        max = max.max(v);
    }
    if min > max {
        (0.0, 1.0)
    } else {
        (min, max)
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plot() -> SeriesPlot {
        let mut p = SeriesPlot::new("strong scaling", "ranks", "MDOF/s");
        p.add_series(
            "archer2",
            vec![(1.0, 10.0), (2.0, 19.0), (4.0, 34.0), (8.0, 52.0)],
        );
        p.add_series("csd3", vec![(1.0, 12.0), (4.0, 40.0)]);
        p
    }

    #[test]
    fn efficiency_from_first_point() {
        let p = plot();
        let eff = p.parallel_efficiency("archer2").unwrap();
        assert_eq!(eff[0], (1.0, 1.0));
        assert!((eff[1].1 - 0.95).abs() < 1e-12); // 19/10 over 2x
        assert!((eff[3].1 - 0.65).abs() < 1e-12); // 52/10 over 8x
        assert!(p.parallel_efficiency("nowhere").is_none());
    }

    #[test]
    fn text_render_aligns_missing_points() {
        let text = plot().render_text();
        assert!(text.contains("archer2"));
        // csd3 has no rank-2 point: a dash appears.
        let rank2_line = text
            .lines()
            .find(|l| l.trim_start().starts_with('2'))
            .unwrap();
        assert!(rank2_line.contains('-'), "{rank2_line}");
    }

    #[test]
    fn svg_contains_polylines_and_legend() {
        let svg = plot().render_svg();
        assert!(svg.matches("<polyline").count() == 2);
        assert!(svg.contains("archer2"));
        assert!(svg.ends_with("</svg>"));
    }

    #[test]
    fn points_sorted_on_insert() {
        let mut p = SeriesPlot::new("t", "x", "y");
        p.add_series("s", vec![(4.0, 1.0), (1.0, 2.0), (2.0, 3.0)]);
        let xs: Vec<f64> = p.series()[0].1.iter().map(|&(x, _)| x).collect();
        assert_eq!(xs, vec![1.0, 2.0, 4.0]);
    }

    #[test]
    fn empty_plot_renders() {
        let p = SeriesPlot::new("empty", "x", "y");
        assert!(p.render_text().contains("empty"));
        assert!(p.render_svg().ends_with("</svg>"));
    }
}
