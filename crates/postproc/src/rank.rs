//! Cross-system ranking and comparison — the paper's P6 (programmatic
//! assimilation of results) pushed to `rebar rank` / `rebar cmp` polish.
//!
//! [`rank_frame`] reduces an assimilated FOM frame to a geometric-mean
//! speedup ranking of systems: every (benchmark, fom) pair is a *cell*,
//! each system's cell value is compared against the best value for that
//! cell, and a system's score is the geometric mean of its per-cell
//! speedups. [`cmp_frames`] compares the same cells across two studies and
//! classifies each as improved / regressed / unchanged / missing under a
//! configurable noise threshold, so CI flags real movement instead of
//! every wobble.
//!
//! Numeric policy, stated once and enforced everywhere:
//!
//! * **Missing cells are reported, never silently dropped.** A system
//!   absent from a cell gets an explicit skip entry; a cell with no usable
//!   value on *any* system is listed as degenerate.
//! * **Non-finite FOMs never enter an aggregate.** The per-cell reduction
//!   propagates NaN/±inf loudly into a skip entry instead of letting
//!   `f64::min`-style reductions discard them, and rank partitions those
//!   values out *before* sorting — `total_cmp` would otherwise float a
//!   single NaN to the top of a descending sort.
//! * **Zero and negative FOMs are skips, not zeros.** A geometric mean
//!   over a non-positive factor is undefined; the cell is excluded from
//!   the mean and reported.

use crate::regression::Direction;
use dframe::{Cell, DataFrame, FrameError};
use std::collections::BTreeMap;

/// How to rank: which direction is good, and how many worker threads to
/// use for the per-system reduction (0 = one per available core). The
/// output is byte-identical at any `jobs` count: parallelism only chunks
/// independent per-system reductions, each of which visits its cells in
/// canonical order.
#[derive(Debug, Clone)]
pub struct RankPolicy {
    pub direction: Direction,
    pub jobs: usize,
}

impl Default for RankPolicy {
    fn default() -> RankPolicy {
        RankPolicy {
            direction: Direction::HigherIsBetter,
            jobs: 1,
        }
    }
}

/// Why a (system, cell) pair did not contribute to the geometric mean.
#[derive(Debug, Clone)]
pub enum Skip {
    /// The system has no measurement for this cell.
    Missing,
    /// The measurement is NaN or ±inf.
    NonFinite(f64),
    /// The measurement is zero or negative; a geometric mean over it is
    /// undefined.
    NonPositive(f64),
}

/// Payload equality uses `total_cmp`, so `NonFinite(NaN) == NonFinite(NaN)`
/// holds — skip reports must be comparable in tests and digests even when
/// the offending value is NaN.
impl PartialEq for Skip {
    fn eq(&self, other: &Skip) -> bool {
        match (self, other) {
            (Skip::Missing, Skip::Missing) => true,
            (Skip::NonFinite(a), Skip::NonFinite(b))
            | (Skip::NonPositive(a), Skip::NonPositive(b)) => a.total_cmp(b).is_eq(),
            _ => false,
        }
    }
}

impl std::fmt::Display for Skip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Skip::Missing => write!(f, "missing"),
            Skip::NonFinite(v) => write!(f, "non-finite value {v}"),
            Skip::NonPositive(v) => write!(f, "non-positive value {v}"),
        }
    }
}

/// One ranked system.
#[derive(Debug, Clone, PartialEq)]
pub struct RankEntry {
    /// `system` or `system:partition`.
    pub entity: String,
    /// Geometric mean of per-cell speedups vs the best system, in (0, 1];
    /// `None` when no cell was usable.
    pub geomean: Option<f64>,
    /// Cells that contributed to the mean.
    pub cells_used: usize,
    /// (cell label, reason) for every cell that did not contribute.
    pub skipped: Vec<(String, Skip)>,
}

/// The ranking of every system in a frame, best first.
#[derive(Debug, Clone, PartialEq)]
pub struct Ranking {
    pub entries: Vec<RankEntry>,
    /// Usable cell labels (`benchmark/fom`), canonical order.
    pub cells: Vec<String>,
    /// Cells with no usable value on any system — excluded for everyone,
    /// but reported so a survey-wide outage cannot hide.
    pub degenerate_cells: Vec<String>,
    pub direction: Direction,
}

impl Ranking {
    /// Entity names in rank order (ties and no-data systems by name).
    pub fn order(&self) -> Vec<String> {
        self.entries.iter().map(|e| e.entity.clone()).collect()
    }

    fn table(&self) -> DataFrame {
        let mut df = DataFrame::new(vec!["rank", "system", "geomean-speedup", "cells"]);
        for (i, e) in self.entries.iter().enumerate() {
            let (rank, score) = match e.geomean {
                Some(g) => (format!("{}", i + 1), format!("{g:.4}")),
                None => ("-".to_string(), "-".to_string()),
            };
            df.push_row(vec![
                Cell::from(rank),
                Cell::from(e.entity.as_str()),
                Cell::from(score),
                Cell::from(format!("{}/{}", e.cells_used, self.cells.len())),
            ])
            .expect("fixed schema");
        }
        df
    }

    fn notes(&self) -> Vec<String> {
        let mut notes = Vec::new();
        for e in &self.entries {
            for (cell, reason) in &e.skipped {
                notes.push(format!("skipped: {} lacks {cell} ({reason})", e.entity));
            }
        }
        if !self.degenerate_cells.is_empty() {
            notes.push(format!(
                "degenerate cells (no usable value on any system): {}",
                self.degenerate_cells.join(", ")
            ));
        }
        notes
    }

    /// Aligned-text report.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "ranking {} systems over {} cells ({}, geometric mean of per-cell speedup vs best)\n",
            self.entries.len(),
            self.cells.len(),
            direction_label(self.direction),
        );
        out.push_str(&self.table().to_string());
        for note in self.notes() {
            out.push_str(&note);
            out.push('\n');
        }
        out
    }

    /// GitHub-flavoured-Markdown report.
    pub fn render_markdown(&self) -> String {
        let mut out = format!(
            "## Ranking\n\n{} systems, {} cells, {}; score = geometric mean of per-cell speedup vs best.\n\n",
            self.entries.len(),
            self.cells.len(),
            direction_label(self.direction),
        );
        out.push_str(&self.table().to_markdown());
        let notes = self.notes();
        if !notes.is_empty() {
            out.push('\n');
            for note in notes {
                out.push_str(&format!("- {note}\n"));
            }
        }
        out
    }
}

fn direction_label(d: Direction) -> &'static str {
    match d {
        Direction::HigherIsBetter => "higher is better",
        Direction::LowerIsBetter => "lower is better",
    }
}

/// Aggregate a FOM frame to `cell label → entity → value`, where a cell is
/// one (benchmark, fom) pair and an entity is `system[:partition]`.
///
/// Repeats reduce to their mean — but *only* over finite samples, and any
/// non-finite sample poisons the aggregate (it comes back verbatim) rather
/// than being filtered away like `GroupBy::mean` would. `None` means every
/// sample was null.
fn aggregate_cells(
    df: &DataFrame,
) -> Result<BTreeMap<String, BTreeMap<String, Option<f64>>>, FrameError> {
    for required in ["benchmark", "fom", "system", "value"] {
        if df.column(required).is_none() {
            return Err(FrameError::NoSuchColumn(required.to_string()));
        }
    }
    let agg = df
        .group_by(&["benchmark", "fom", "system", "partition"])
        .aggregate("value", Some("value"), |members, frame| {
            let col = frame.column("value").expect("checked above");
            let mut sum = 0.0;
            let mut n = 0usize;
            // A non-finite sample must not vanish into the mean; it
            // poisons the aggregate. Chosen canonically (NaN dominates,
            // then `total_cmp`-least) so the result cannot depend on row
            // order.
            let mut poison: Option<f64> = None;
            for &i in members {
                match col.get(i).as_float() {
                    Some(v) if v.is_finite() => {
                        sum += v;
                        n += 1;
                    }
                    Some(v) => {
                        poison = Some(match poison {
                            None => v,
                            Some(p) if p.is_nan() || v.is_nan() => f64::NAN,
                            Some(p) if v.total_cmp(&p).is_lt() => v,
                            Some(p) => p,
                        });
                    }
                    None => {}
                }
            }
            match poison {
                Some(p) => Cell::Float(p),
                None if n == 0 => Cell::Null,
                None => Cell::Float(sum / n as f64),
            }
        })?;
    let mut cells: BTreeMap<String, BTreeMap<String, Option<f64>>> = BTreeMap::new();
    for row in agg.rows() {
        let text = |col: &str| row.get(col).map(|c| c.to_string()).unwrap_or_default();
        let (benchmark, fom, system, partition) = (
            text("benchmark"),
            text("fom"),
            text("system"),
            text("partition"),
        );
        let entity = if partition.is_empty() {
            system
        } else {
            format!("{system}:{partition}")
        };
        let value = row.get("value").and_then(Cell::as_float);
        cells
            .entry(format!("{benchmark}/{fom}"))
            .or_default()
            .insert(entity, value);
    }
    Ok(cells)
}

fn usable(v: Option<f64>) -> Option<f64> {
    v.filter(|v| v.is_finite() && *v > 0.0)
}

/// Run `f` over `items` with up to `jobs` threads (0 = one per core),
/// returning results in item order regardless of the thread count.
fn par_map<T: Sync, R: Send, F: Fn(&T) -> R + Sync>(items: &[T], jobs: usize, f: F) -> Vec<R> {
    let jobs = match jobs {
        0 => std::thread::available_parallelism().map_or(1, usize::from),
        n => n,
    }
    .min(items.len())
    .max(1);
    if jobs == 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(jobs);
    let mut chunks: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(|| part.iter().map(&f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            chunks.push(h.join().expect("rank worker panicked"));
        }
    });
    chunks.into_iter().flatten().collect()
}

/// Rank the systems of an assimilated FOM frame (see module docs for the
/// aggregation rule and the skip policy).
pub fn rank_frame(df: &DataFrame, policy: &RankPolicy) -> Result<Ranking, FrameError> {
    // Quarantine rows whose value is present but non-finite *before* any
    // sorting or reduction touches them; they re-enter only as explicit
    // skip reports. (`sort_by` would otherwise rank NaN above everything.)
    let (clean, poisoned) = df.partition(|row| {
        row.get("value")
            .and_then(Cell::as_float)
            .is_none_or(f64::is_finite)
    });
    let mut cells = aggregate_cells(&clean)?;
    // Re-attach the poisoned rows as non-finite aggregates so every skip
    // is attributed to the system that produced it.
    for (cell, by_entity) in aggregate_cells(&poisoned)? {
        for (entity, value) in by_entity {
            cells.entry(cell.clone()).or_default().insert(entity, value);
        }
    }

    let mut entities: Vec<String> = Vec::new();
    for by_entity in cells.values() {
        for entity in by_entity.keys() {
            if !entities.contains(entity) {
                entities.push(entity.clone());
            }
        }
    }
    entities.sort();

    // Per cell: the best usable value, or None for a degenerate cell.
    let mut usable_cells: Vec<(String, f64)> = Vec::new();
    let mut degenerate_cells: Vec<String> = Vec::new();
    for (cell, by_entity) in &cells {
        let best = by_entity
            .values()
            .filter_map(|v| usable(*v))
            .reduce(|a, b| match policy.direction {
                Direction::HigherIsBetter => a.max(b),
                Direction::LowerIsBetter => a.min(b),
            });
        match best {
            Some(best) => usable_cells.push((cell.clone(), best)),
            None => degenerate_cells.push(cell.clone()),
        }
    }

    let score = |entity: &String| -> RankEntry {
        let mut log_sum = 0.0;
        let mut used = 0usize;
        let mut skipped = Vec::new();
        for (cell, best) in &usable_cells {
            match cells[cell].get(entity) {
                Some(&v) => match usable(v) {
                    Some(v) => {
                        let speedup = match policy.direction {
                            Direction::HigherIsBetter => v / best,
                            Direction::LowerIsBetter => best / v,
                        };
                        log_sum += speedup.ln();
                        used += 1;
                    }
                    None => {
                        let reason = match v {
                            None => Skip::Missing,
                            Some(v) if !v.is_finite() => Skip::NonFinite(v),
                            Some(v) => Skip::NonPositive(v),
                        };
                        skipped.push((cell.clone(), reason));
                    }
                },
                None => skipped.push((cell.clone(), Skip::Missing)),
            }
        }
        RankEntry {
            entity: entity.clone(),
            geomean: (used > 0).then(|| (log_sum / used as f64).exp()),
            cells_used: used,
            skipped,
        }
    };
    let mut entries = par_map(&entities, policy.jobs, score);

    // All geomeans are finite and positive by construction, so this sort
    // cannot meet a NaN; no-data systems go last, ties break by name.
    entries.sort_by(|a, b| match (a.geomean, b.geomean) {
        (Some(x), Some(y)) => y
            .partial_cmp(&x)
            .expect("geomeans are finite")
            .then_with(|| a.entity.cmp(&b.entity)),
        (Some(_), None) => std::cmp::Ordering::Less,
        (None, Some(_)) => std::cmp::Ordering::Greater,
        (None, None) => a.entity.cmp(&b.entity),
    });
    Ok(Ranking {
        entries,
        cells: usable_cells.into_iter().map(|(c, _)| c).collect(),
        degenerate_cells,
        direction: policy.direction,
    })
}

/// How to compare two studies: the noise threshold (percent change below
/// which a cell is "unchanged"), the good direction, and worker threads
/// for the per-cell classification (0 = one per core; output identical at
/// any count).
#[derive(Debug, Clone)]
pub struct CmpPolicy {
    pub threshold_pct: f64,
    pub direction: Direction,
    pub jobs: usize,
}

impl Default for CmpPolicy {
    fn default() -> CmpPolicy {
        CmpPolicy {
            threshold_pct: 2.0,
            direction: Direction::HigherIsBetter,
            jobs: 1,
        }
    }
}

/// The classified change of one (cell, system) pair between two studies.
/// `pct` is the raw percent change `(b - a) / a * 100`.
#[derive(Debug, Clone)]
pub enum Delta {
    Improved {
        a: f64,
        b: f64,
        pct: f64,
    },
    Regressed {
        a: f64,
        b: f64,
        pct: f64,
    },
    Unchanged {
        a: f64,
        b: f64,
        pct: f64,
    },
    /// Present only in study B.
    MissingInA {
        b: f64,
    },
    /// Present only in study A.
    MissingInB {
        a: f64,
    },
    /// Present in both, but a relative change is undefined (non-finite
    /// value, or a non-positive baseline).
    Incomparable {
        a: Option<f64>,
        b: Option<f64>,
    },
}

/// Payload equality uses `total_cmp` (see [`Skip`]): two deltas carrying
/// the same NaN measurement compare equal.
impl PartialEq for Delta {
    fn eq(&self, other: &Delta) -> bool {
        fn eq(a: f64, b: f64) -> bool {
            a.total_cmp(&b).is_eq()
        }
        fn eq_opt(a: Option<f64>, b: Option<f64>) -> bool {
            match (a, b) {
                (None, None) => true,
                (Some(a), Some(b)) => eq(a, b),
                _ => false,
            }
        }
        use Delta::*;
        match (self, other) {
            (
                Improved { a, b, pct },
                Improved {
                    a: a2,
                    b: b2,
                    pct: p2,
                },
            )
            | (
                Regressed { a, b, pct },
                Regressed {
                    a: a2,
                    b: b2,
                    pct: p2,
                },
            )
            | (
                Unchanged { a, b, pct },
                Unchanged {
                    a: a2,
                    b: b2,
                    pct: p2,
                },
            ) => eq(*a, *a2) && eq(*b, *b2) && eq(*pct, *p2),
            (MissingInA { b }, MissingInA { b: b2 }) => eq(*b, *b2),
            (MissingInB { a }, MissingInB { a: a2 }) => eq(*a, *a2),
            (Incomparable { a, b }, Incomparable { a: a2, b: b2 }) => {
                eq_opt(*a, *a2) && eq_opt(*b, *b2)
            }
            _ => false,
        }
    }
}

/// One compared cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CmpCell {
    /// `benchmark/fom`.
    pub cell: String,
    pub entity: String,
    pub delta: Delta,
}

/// Cell-by-cell deltas between two studies.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Canonical (cell, entity) order.
    pub cells: Vec<CmpCell>,
    pub threshold_pct: f64,
    pub direction: Direction,
}

impl Comparison {
    fn count(&self, f: impl Fn(&Delta) -> bool) -> usize {
        self.cells.iter().filter(|c| f(&c.delta)).count()
    }

    pub fn n_improved(&self) -> usize {
        self.count(|d| matches!(d, Delta::Improved { .. }))
    }

    pub fn n_regressed(&self) -> usize {
        self.count(|d| matches!(d, Delta::Regressed { .. }))
    }

    pub fn n_unchanged(&self) -> usize {
        self.count(|d| matches!(d, Delta::Unchanged { .. }))
    }

    pub fn n_missing(&self) -> usize {
        self.count(|d| matches!(d, Delta::MissingInA { .. } | Delta::MissingInB { .. }))
    }

    pub fn n_incomparable(&self) -> usize {
        self.count(|d| matches!(d, Delta::Incomparable { .. }))
    }

    fn table(&self) -> DataFrame {
        let fmt = |v: f64| format!("{v:.4}");
        let opt = |v: Option<f64>| v.map(fmt).unwrap_or_else(|| "-".to_string());
        let mut df = DataFrame::new(vec!["cell", "system", "A", "B", "delta", "verdict"]);
        for c in &self.cells {
            let (a, b, delta, verdict) = match &c.delta {
                Delta::Improved { a, b, pct } => {
                    (fmt(*a), fmt(*b), format!("{pct:+.2}%"), "improved")
                }
                Delta::Regressed { a, b, pct } => {
                    (fmt(*a), fmt(*b), format!("{pct:+.2}%"), "REGRESSED")
                }
                Delta::Unchanged { a, b, pct } => {
                    (fmt(*a), fmt(*b), format!("{pct:+.2}%"), "unchanged")
                }
                Delta::MissingInA { b } => ("-".into(), fmt(*b), "-".into(), "missing in A"),
                Delta::MissingInB { a } => (fmt(*a), "-".into(), "-".into(), "missing in B"),
                Delta::Incomparable { a, b } => (opt(*a), opt(*b), "-".into(), "incomparable"),
            };
            df.push_row(vec![
                Cell::from(c.cell.as_str()),
                Cell::from(c.entity.as_str()),
                Cell::from(a),
                Cell::from(b),
                Cell::from(delta),
                Cell::from(verdict),
            ])
            .expect("fixed schema");
        }
        df
    }

    fn summary(&self) -> String {
        format!(
            "summary: {} improved, {} regressed, {} unchanged, {} missing, {} incomparable (threshold {}%, {})",
            self.n_improved(),
            self.n_regressed(),
            self.n_unchanged(),
            self.n_missing(),
            self.n_incomparable(),
            self.threshold_pct,
            direction_label(self.direction),
        )
    }

    /// Aligned-text report.
    pub fn render_text(&self) -> String {
        let mut out = self.table().to_string();
        out.push_str(&self.summary());
        out.push('\n');
        out
    }

    /// GitHub-flavoured-Markdown report.
    pub fn render_markdown(&self) -> String {
        let mut out = String::from("## Comparison\n\n");
        out.push_str(&self.table().to_markdown());
        out.push('\n');
        out.push_str(&self.summary());
        out.push('\n');
        out
    }
}

/// Compare two assimilated FOM frames cell by cell (see module docs). The
/// union of (cell, entity) pairs is classified; nothing is dropped.
pub fn cmp_frames(
    a: &DataFrame,
    b: &DataFrame,
    policy: &CmpPolicy,
) -> Result<Comparison, FrameError> {
    assert!(
        policy.threshold_pct >= 0.0 && policy.threshold_pct.is_finite(),
        "threshold must be a finite non-negative percentage"
    );
    let cells_a = aggregate_cells(a)?;
    let cells_b = aggregate_cells(b)?;
    let mut keys: Vec<(String, String)> = Vec::new();
    for cells in [&cells_a, &cells_b] {
        for (cell, by_entity) in cells {
            for entity in by_entity.keys() {
                let key = (cell.clone(), entity.clone());
                if !keys.contains(&key) {
                    keys.push(key);
                }
            }
        }
    }
    keys.sort();

    let classify = |(cell, entity): &(String, String)| -> CmpCell {
        let side = |cells: &BTreeMap<String, BTreeMap<String, Option<f64>>>| {
            cells
                .get(cell)
                .and_then(|m| m.get(entity))
                .copied()
                .flatten()
        };
        let (va, vb) = (side(&cells_a), side(&cells_b));
        let delta = match (va, vb) {
            (None, None) => Delta::Incomparable { a: None, b: None },
            (None, Some(b)) => Delta::MissingInA { b },
            (Some(a), None) => Delta::MissingInB { a },
            (Some(a), Some(b)) => {
                if !a.is_finite() || !b.is_finite() || a <= 0.0 {
                    Delta::Incomparable {
                        a: Some(a),
                        b: Some(b),
                    }
                } else {
                    let pct = (b - a) / a * 100.0;
                    let good = match policy.direction {
                        Direction::HigherIsBetter => pct,
                        Direction::LowerIsBetter => -pct,
                    };
                    if good > policy.threshold_pct {
                        Delta::Improved { a, b, pct }
                    } else if good < -policy.threshold_pct {
                        Delta::Regressed { a, b, pct }
                    } else {
                        Delta::Unchanged { a, b, pct }
                    }
                }
            }
        };
        CmpCell {
            cell: cell.clone(),
            entity: entity.clone(),
            delta,
        }
    };
    Ok(Comparison {
        cells: par_map(&keys, policy.jobs, classify),
        threshold_pct: policy.threshold_pct,
        direction: policy.direction,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// rows: (benchmark, fom, system, value)
    fn frame(rows: &[(&str, &str, &str, f64)]) -> DataFrame {
        let mut df = DataFrame::new(vec!["benchmark", "fom", "system", "partition", "value"]);
        for (b, f, s, v) in rows {
            df.push_row(vec![
                Cell::from(*b),
                Cell::from(*f),
                Cell::from(*s),
                Cell::Null,
                Cell::from(*v),
            ])
            .unwrap();
        }
        df
    }

    #[test]
    fn rank_orders_by_geomean_speedup() {
        // Two cells; a is best at both, b at half speed on each →
        // geomean(0.5, 0.5) = 0.5; c at 1.0 and 0.25 → geomean 0.5 too,
        // tie broken by name.
        let df = frame(&[
            ("s1", "Triad", "a", 200.0),
            ("s1", "Triad", "b", 100.0),
            ("s1", "Triad", "c", 200.0),
            ("s2", "Triad", "a", 400.0),
            ("s2", "Triad", "b", 200.0),
            ("s2", "Triad", "c", 100.0),
        ]);
        let r = rank_frame(&df, &RankPolicy::default()).unwrap();
        assert_eq!(r.order(), vec!["a", "b", "c"]);
        assert_eq!(r.entries[0].geomean, Some(1.0));
        let b = &r.entries[1];
        assert!((b.geomean.unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(b.cells_used, 2);
        assert!(b.skipped.is_empty());
        let c = &r.entries[2];
        assert!((c.geomean.unwrap() - 0.5).abs() < 1e-12);
        // Rendering is deterministic and carries the rank table.
        let text = r.render_text();
        assert!(text.contains("ranking 3 systems over 2 cells"), "{text}");
        assert!(text.contains("1.0000"), "{text}");
        let md = r.render_markdown();
        assert!(md.contains("| rank | system |"), "{md}");
    }

    #[test]
    fn rank_lower_is_better_inverts_speedup() {
        // Runtimes: smaller wins. a twice as fast as b.
        let df = frame(&[("s", "time", "a", 5.0), ("s", "time", "b", 10.0)]);
        let policy = RankPolicy {
            direction: Direction::LowerIsBetter,
            ..RankPolicy::default()
        };
        let r = rank_frame(&df, &policy).unwrap();
        assert_eq!(r.order(), vec!["a", "b"]);
        assert!((r.entries[1].geomean.unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rank_reports_missing_cells_instead_of_dropping() {
        // b lacks the second cell: its geomean uses one cell and the gap
        // is reported explicitly.
        let df = frame(&[
            ("s1", "Triad", "a", 100.0),
            ("s1", "Triad", "b", 50.0),
            ("s2", "Triad", "a", 100.0),
        ]);
        let r = rank_frame(&df, &RankPolicy::default()).unwrap();
        let b = r.entries.iter().find(|e| e.entity == "b").unwrap();
        assert_eq!(b.cells_used, 1);
        assert_eq!(b.skipped, vec![("s2/Triad".to_string(), Skip::Missing)]);
        assert!(r
            .render_text()
            .contains("skipped: b lacks s2/Triad (missing)"));
    }

    #[test]
    fn rank_empty_intersection_of_cells() {
        // Disjoint cells: each system is trivially best at its own cell
        // and reported missing from the other's. No cell is shared, yet
        // nothing is silently dropped.
        let df = frame(&[("s1", "Triad", "a", 100.0), ("s2", "Triad", "b", 50.0)]);
        let r = rank_frame(&df, &RankPolicy::default()).unwrap();
        assert_eq!(r.cells.len(), 2);
        for e in &r.entries {
            assert_eq!(e.geomean, Some(1.0), "{e:?}");
            assert_eq!(e.cells_used, 1);
            assert_eq!(e.skipped.len(), 1, "the other cell is reported missing");
        }
        assert_eq!(r.order(), vec!["a", "b"], "tie broken by name");
    }

    #[test]
    fn rank_zero_and_negative_foms_are_skips() {
        let df = frame(&[
            ("s1", "Triad", "a", 100.0),
            ("s1", "Triad", "b", 0.0),
            ("s1", "Triad", "c", -3.0),
        ]);
        let r = rank_frame(&df, &RankPolicy::default()).unwrap();
        assert_eq!(r.order()[0], "a");
        let b = r.entries.iter().find(|e| e.entity == "b").unwrap();
        assert_eq!(b.geomean, None, "no usable cell");
        assert_eq!(
            b.skipped,
            vec![("s1/Triad".to_string(), Skip::NonPositive(0.0))]
        );
        let c = r.entries.iter().find(|e| e.entity == "c").unwrap();
        assert_eq!(
            c.skipped,
            vec![("s1/Triad".to_string(), Skip::NonPositive(-3.0))]
        );
        // No-data systems rank last, by name, with a `-` score.
        assert_eq!(r.order(), vec!["a", "b", "c"]);
        assert!(r.render_text().contains("non-positive value -3"));
    }

    #[test]
    fn rank_single_system_study() {
        let df = frame(&[("s1", "Triad", "a", 100.0), ("s2", "Triad", "a", 5.0)]);
        let r = rank_frame(&df, &RankPolicy::default()).unwrap();
        assert_eq!(r.entries.len(), 1);
        assert_eq!(r.entries[0].geomean, Some(1.0), "alone ⇒ best everywhere");
        assert_eq!(r.entries[0].cells_used, 2);
    }

    #[test]
    fn rank_nonfinite_foms_are_partitioned_out_not_sorted_in() {
        // The dframe satellite in action: a NaN FOM would win a naive
        // descending sort (total_cmp puts NaN above +inf). Rank must
        // instead report it as a skip and rank the finite systems.
        let df = frame(&[
            ("s1", "Triad", "a", 100.0),
            ("s1", "Triad", "b", f64::NAN),
            ("s1", "Triad", "c", f64::INFINITY),
            ("s1", "Triad", "d", 200.0),
        ]);
        let r = rank_frame(&df, &RankPolicy::default()).unwrap();
        assert_eq!(r.order(), vec!["d", "a", "b", "c"], "finite systems first");
        let b = r.entries.iter().find(|e| e.entity == "b").unwrap();
        assert!(matches!(b.skipped[0].1, Skip::NonFinite(v) if v.is_nan()));
        let c = r.entries.iter().find(|e| e.entity == "c").unwrap();
        assert_eq!(c.skipped[0].1, Skip::NonFinite(f64::INFINITY));
        // A NaN among repeats poisons that cell's aggregate rather than
        // being averaged away.
        let mut df = frame(&[("s1", "Triad", "a", 100.0), ("s1", "Triad", "b", 90.0)]);
        df.push_row(vec![
            Cell::from("s1"),
            Cell::from("Triad"),
            Cell::from("b"),
            Cell::Null,
            Cell::from(f64::NAN),
        ])
        .unwrap();
        let r = rank_frame(&df, &RankPolicy::default()).unwrap();
        let b = r.entries.iter().find(|e| e.entity == "b").unwrap();
        assert_eq!(b.cells_used, 0, "poisoned aggregate must not contribute");
        assert!(matches!(b.skipped[0].1, Skip::NonFinite(v) if v.is_nan()));
    }

    #[test]
    fn rank_degenerate_cell_is_reported() {
        let df = frame(&[
            ("s1", "Triad", "a", 100.0),
            ("s2", "Triad", "a", f64::NAN),
            ("s2", "Triad", "b", 0.0),
        ]);
        let r = rank_frame(&df, &RankPolicy::default()).unwrap();
        assert_eq!(r.cells, vec!["s1/Triad"]);
        assert_eq!(r.degenerate_cells, vec!["s2/Triad"]);
        assert!(
            r.render_text().contains("degenerate cells"),
            "{}",
            r.render_text()
        );
    }

    #[test]
    fn rank_entities_split_by_partition() {
        let mut df = DataFrame::new(vec!["benchmark", "fom", "system", "partition", "value"]);
        for (p, v) in [("cascadelake", 100.0), ("icelake", 150.0)] {
            df.push_row(vec![
                Cell::from("s"),
                Cell::from("Triad"),
                Cell::from("csd3"),
                Cell::from(p),
                Cell::from(v),
            ])
            .unwrap();
        }
        let r = rank_frame(&df, &RankPolicy::default()).unwrap();
        assert_eq!(r.order(), vec!["csd3:icelake", "csd3:cascadelake"]);
    }

    #[test]
    fn rank_missing_column_is_an_error() {
        let df = DataFrame::new(vec!["benchmark", "fom", "system"]);
        assert_eq!(
            rank_frame(&df, &RankPolicy::default()).unwrap_err(),
            FrameError::NoSuchColumn("value".to_string())
        );
    }

    #[test]
    fn rank_byte_identical_across_jobs() {
        let mut rows = Vec::new();
        for s in ["a", "b", "c", "d", "e"] {
            for (bench, base) in [("s1", 100.0), ("s2", 50.0), ("s3", 75.0)] {
                rows.push((bench, "Triad", s, base * (1.0 + (s.len() as f64))));
            }
        }
        let rows: Vec<(&str, &str, &str, f64)> = rows;
        let df = frame(&rows);
        let serial = rank_frame(&df, &RankPolicy::default()).unwrap();
        for jobs in [2, 8, 0] {
            let policy = RankPolicy {
                jobs,
                ..RankPolicy::default()
            };
            let r = rank_frame(&df, &policy).unwrap();
            assert_eq!(serial, r, "jobs={jobs}");
            assert_eq!(serial.render_text(), r.render_text(), "jobs={jobs}");
        }
    }

    #[test]
    fn cmp_classifies_with_threshold() {
        let a = frame(&[
            ("s1", "Triad", "x", 100.0),
            ("s2", "Triad", "x", 100.0),
            ("s3", "Triad", "x", 100.0),
            ("s4", "Triad", "x", 100.0),
        ]);
        let b = frame(&[
            ("s1", "Triad", "x", 110.0), // +10% improved
            ("s2", "Triad", "x", 95.0),  // -5% regressed
            ("s3", "Triad", "x", 101.0), // +1% within noise
            ("s5", "Triad", "x", 50.0),  // new cell
        ]);
        let c = cmp_frames(&a, &b, &CmpPolicy::default()).unwrap();
        assert_eq!(
            (
                c.n_improved(),
                c.n_regressed(),
                c.n_unchanged(),
                c.n_missing()
            ),
            (1, 1, 1, 2),
            "{c:?}"
        );
        let by_cell = |cell: &str| {
            c.cells
                .iter()
                .find(|x| x.cell == cell)
                .map(|x| x.delta.clone())
                .unwrap()
        };
        assert!(
            matches!(by_cell("s1/Triad"), Delta::Improved { pct, .. } if (pct - 10.0).abs() < 1e-9)
        );
        assert!(
            matches!(by_cell("s2/Triad"), Delta::Regressed { pct, .. } if (pct + 5.0).abs() < 1e-9)
        );
        assert!(matches!(by_cell("s3/Triad"), Delta::Unchanged { .. }));
        assert!(matches!(by_cell("s4/Triad"), Delta::MissingInB { a } if a == 100.0));
        assert!(matches!(by_cell("s5/Triad"), Delta::MissingInA { b } if b == 50.0));
        // A wider threshold absorbs the 5% drop.
        let wide = CmpPolicy {
            threshold_pct: 10.0,
            ..CmpPolicy::default()
        };
        let c = cmp_frames(&a, &b, &wide).unwrap();
        assert_eq!(
            (c.n_improved(), c.n_regressed(), c.n_unchanged()),
            (0, 0, 3)
        );
        // Lower-is-better flips the verdicts.
        let lower = CmpPolicy {
            direction: Direction::LowerIsBetter,
            ..CmpPolicy::default()
        };
        let c = cmp_frames(&a, &b, &lower).unwrap();
        assert!(matches!(
            by_cell_of(&c, "s1/Triad"),
            Delta::Regressed { .. }
        ));
        assert!(matches!(by_cell_of(&c, "s2/Triad"), Delta::Improved { .. }));
    }

    fn by_cell_of(c: &Comparison, cell: &str) -> Delta {
        c.cells
            .iter()
            .find(|x| x.cell == cell)
            .map(|x| x.delta.clone())
            .unwrap()
    }

    #[test]
    fn cmp_nonfinite_and_nonpositive_are_incomparable() {
        let a = frame(&[
            ("s1", "Triad", "x", f64::NAN),
            ("s2", "Triad", "x", 0.0),
            ("s3", "Triad", "x", 100.0),
        ]);
        let b = frame(&[
            ("s1", "Triad", "x", 100.0),
            ("s2", "Triad", "x", 100.0),
            ("s3", "Triad", "x", f64::INFINITY),
        ]);
        let c = cmp_frames(&a, &b, &CmpPolicy::default()).unwrap();
        assert_eq!(c.n_incomparable(), 3, "{c:?}");
        let text = c.render_text();
        assert!(text.contains("incomparable"), "{text}");
        assert!(
            text.contains(
                "summary: 0 improved, 0 regressed, 0 unchanged, 0 missing, 3 incomparable"
            ),
            "{text}"
        );
    }

    #[test]
    fn cmp_renders_table_and_markdown() {
        let a = frame(&[("s1", "Triad", "x", 100.0)]);
        let b = frame(&[("s1", "Triad", "x", 120.0)]);
        let c = cmp_frames(&a, &b, &CmpPolicy::default()).unwrap();
        let text = c.render_text();
        assert!(text.contains("+20.00%"), "{text}");
        assert!(text.contains("improved"), "{text}");
        assert!(text.contains("threshold 2%"), "{text}");
        let md = c.render_markdown();
        assert!(md.contains("| cell | system |"), "{md}");
    }

    #[test]
    fn cmp_byte_identical_across_jobs() {
        let mut rows_a = Vec::new();
        let mut rows_b = Vec::new();
        for (i, s) in ["a", "b", "c", "d"].iter().enumerate() {
            for bench in ["s1", "s2", "s3"] {
                rows_a.push((bench, "Triad", *s, 100.0 + i as f64));
                rows_b.push((bench, "Triad", *s, 100.0 + 3.0 * i as f64));
            }
        }
        let (a, b) = (frame(&rows_a), frame(&rows_b));
        let serial = cmp_frames(&a, &b, &CmpPolicy::default()).unwrap();
        for jobs in [2, 8, 0] {
            let policy = CmpPolicy {
                jobs,
                ..CmpPolicy::default()
            };
            let c = cmp_frames(&a, &b, &policy).unwrap();
            assert_eq!(serial, c, "jobs={jobs}");
            assert_eq!(serial.render_text(), c.render_text(), "jobs={jobs}");
        }
    }

    #[test]
    fn repeats_reduce_to_their_mean() {
        // Two repeats for system a: mean 150 beats b's 120.
        let df = frame(&[
            ("s1", "Triad", "a", 100.0),
            ("s1", "Triad", "a", 200.0),
            ("s1", "Triad", "b", 120.0),
        ]);
        let r = rank_frame(&df, &RankPolicy::default()).unwrap();
        assert_eq!(r.order(), vec!["a", "b"]);
        assert!((r.entries[1].geomean.unwrap() - 0.8).abs() < 1e-12);
    }
}
