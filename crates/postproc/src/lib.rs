//! `postproc` — perflog assimilation, filtering, and plotting (§2.4, P6).
//!
//! The paper's post-processing scripts parse ReFrame perflogs into a pandas
//! DataFrame, concatenate frames from isolated systems, filter them via a
//! YAML configuration, and render bar charts (Bokeh). This crate is that
//! pipeline: [`assimilate`] merges JSONL perflogs into one `dframe`
//! DataFrame, [`PlotConfig`] is the YAML-driven filter/series selection,
//! and [`BarChart`]/[`Heatmap`] render to aligned text and standalone SVG.
//!
//! # Example
//!
//! ```
//! use perflogs::{Fom, Perflog, PerflogRecord};
//!
//! let mut log = Perflog::new();
//! log.append(PerflogRecord {
//!     sequence: 1,
//!     benchmark: "babelstream_omp".into(),
//!     system: "csd3".into(),
//!     partition: "cascadelake".into(),
//!     environ: "gcc@11.2.0".into(),
//!     spec: "babelstream +omp".into(),
//!     build_hash: "abcdefg".into(),
//!     job_id: Some(1),
//!     num_tasks: 1,
//!     num_tasks_per_node: 1,
//!     num_cpus_per_task: 56,
//!     foms: vec![Fom { name: "Triad".into(), value: 212000.0, unit: "MB/s".into() }],
//!     extras: vec![],
//! });
//! let df = postproc::assimilate(&[log.to_jsonl()]).unwrap();
//! let cfg = postproc::PlotConfig::from_yaml(r#"
//! title: Triad bandwidth
//! x_axis: system
//! value: value
//! filters: {fom: Triad}
//! "#).unwrap();
//! let chart = cfg.bar_chart(&df).unwrap();
//! assert!(chart.render_text().contains("csd3"));
//! assert!(chart.render_svg().starts_with("<svg"));
//! ```

mod chart;
mod config;
pub mod rank;
pub mod regression;
pub mod scaling;

pub use chart::{BarChart, Heatmap};
pub use config::{ConfigError, PlotConfig};
pub use rank::{
    cmp_frames, rank_frame, CmpPolicy, Comparison, Delta, RankEntry, RankPolicy, Ranking, Skip,
};
pub use regression::{
    criterion_history, parse_criterion_log, CriterionPoint, Direction, History, HistoryError,
    RegressionPolicy, Verdict,
};
pub use scaling::SeriesPlot;

use dframe::DataFrame;
use perflogs::{Perflog, PerflogError};

/// Parse several JSONL perflogs (typically one per system) and concatenate
/// them into a single analysis frame.
pub fn assimilate(jsonl_logs: &[String]) -> Result<DataFrame, PerflogError> {
    let mut frames = Vec::with_capacity(jsonl_logs.len());
    for text in jsonl_logs {
        frames.push(Perflog::from_jsonl(text)?.to_frame());
    }
    Ok(DataFrame::concat(&frames))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dframe::Cell;
    use perflogs::{Fom, PerflogRecord};

    fn log_for(system: &str, triad: f64) -> String {
        let mut log = Perflog::new();
        log.append(PerflogRecord {
            sequence: 1,
            benchmark: "babelstream_omp".into(),
            system: system.into(),
            partition: "p".into(),
            environ: "gcc@11.2.0".into(),
            spec: "babelstream +omp".into(),
            build_hash: "abcdefg".into(),
            job_id: Some(1),
            num_tasks: 1,
            num_tasks_per_node: 1,
            num_cpus_per_task: 16,
            foms: vec![
                Fom {
                    name: "Triad".into(),
                    value: triad,
                    unit: "MB/s".into(),
                },
                Fom {
                    name: "Copy".into(),
                    value: triad * 0.8,
                    unit: "MB/s".into(),
                },
            ],
            extras: vec![],
        });
        log.to_jsonl()
    }

    #[test]
    fn assimilation_merges_systems() {
        let df = assimilate(&[log_for("archer2", 300_000.0), log_for("csd3", 210_000.0)]).unwrap();
        assert_eq!(df.n_rows(), 4);
        assert_eq!(df.unique("system").unwrap().len(), 2);
    }

    #[test]
    fn bad_log_is_an_error() {
        assert!(assimilate(&["not json at all {".to_string()]).is_err());
    }

    #[test]
    fn end_to_end_yaml_to_chart() {
        let df = assimilate(&[log_for("archer2", 300_000.0), log_for("csd3", 210_000.0)]).unwrap();
        let cfg = PlotConfig::from_yaml(
            "title: Triad\nx_axis: system\nvalue: value\nfilters: {fom: Triad}\n",
        )
        .unwrap();
        let chart = cfg.bar_chart(&df).unwrap();
        let text = chart.render_text();
        assert!(text.contains("archer2"));
        assert!(text.contains("csd3"));
        // Filtering dropped the Copy rows.
        assert_eq!(chart.categories().len(), 2);
        // Scaled value appears.
        let svg = chart.render_svg();
        assert!(svg.contains("</svg>"));
        assert!(svg.contains("archer2"));
    }

    #[test]
    fn filters_can_empty_the_frame() {
        let df = assimilate(&[log_for("archer2", 1.0)]).unwrap();
        let filtered = df.filter_eq("system", &Cell::from("nowhere")).unwrap();
        assert_eq!(filtered.n_rows(), 0);
    }
}
