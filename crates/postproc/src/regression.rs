//! Performance-regression tracking over time — the paper's §4 goal of
//! running the framework "as part of a CI pipeline, and enable researchers
//! to measure and track the performance portability of their applications
//! over time", making "changes in performance as important as changes in
//! answers".
//!
//! A [`History`] is the time-ordered series of one FOM on one system,
//! extracted from assimilated perflog frames; [`RegressionPolicy::check`]
//! classifies a new measurement against it.

use dframe::{Cell, DataFrame};
use std::fmt;

/// Error building a [`History`] from an assimilated frame.
#[derive(Debug, Clone, PartialEq)]
pub enum HistoryError {
    /// The underlying frame operation failed (missing column, ...).
    Frame(dframe::FrameError),
    /// A `sequence` cell was negative. Sequences are monotone run
    /// counters; a negative one means the log is corrupt, and casting it
    /// to `u64` would wrap it to a huge value that silently reorders the
    /// history (the same failure mode the perflog parser rejects).
    NegativeSequence { benchmark: String, sequence: i64 },
}

impl fmt::Display for HistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryError::Frame(e) => write!(f, "{e}"),
            HistoryError::NegativeSequence {
                benchmark,
                sequence,
            } => write!(
                f,
                "history for `{benchmark}`: sequence must be non-negative, got {sequence}"
            ),
        }
    }
}

impl std::error::Error for HistoryError {}

impl From<dframe::FrameError> for HistoryError {
    fn from(e: dframe::FrameError) -> HistoryError {
        HistoryError::Frame(e)
    }
}

/// Which direction is good for this FOM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bandwidths, GFLOP/s, DOF/s, ...
    HigherIsBetter,
    /// Runtimes, queue waits, energy.
    LowerIsBetter,
}

/// Verdict for one new measurement against its history.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Within the expected band.
    Ok { z_score: f64 },
    /// Significantly worse than history.
    Regression { z_score: f64, mean: f64, std: f64 },
    /// Significantly better than history (worth a look too — the paper's
    /// point about secretly-optimized platforms cuts both ways).
    Improvement { z_score: f64, mean: f64, std: f64 },
    /// Not enough history to judge.
    InsufficientHistory { have: usize, need: usize },
}

impl Verdict {
    pub fn is_regression(&self) -> bool {
        matches!(self, Verdict::Regression { .. })
    }
}

/// How strictly to judge.
#[derive(Debug, Clone, Copy)]
pub struct RegressionPolicy {
    /// Minimum history length before judging.
    pub min_history: usize,
    /// |z| beyond which a change is significant.
    pub sigma_threshold: f64,
    pub direction: Direction,
}

impl Default for RegressionPolicy {
    fn default() -> RegressionPolicy {
        RegressionPolicy {
            min_history: 5,
            sigma_threshold: 3.0,
            direction: Direction::HigherIsBetter,
        }
    }
}

impl RegressionPolicy {
    pub fn lower_is_better(mut self) -> RegressionPolicy {
        self.direction = Direction::LowerIsBetter;
        self
    }

    /// Judge `new` against `history` (time-ordered, oldest first).
    pub fn check(&self, history: &[f64], new: f64) -> Verdict {
        if history.len() < self.min_history {
            return Verdict::InsufficientHistory {
                have: history.len(),
                need: self.min_history,
            };
        }
        let n = history.len() as f64;
        let mean = history.iter().sum::<f64>() / n;
        let var = history.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
        // Floor the deviation so a perfectly flat history still tolerates
        // sub-percent wobble rather than flagging everything.
        let std = var.sqrt().max(mean.abs() * 1e-3).max(f64::MIN_POSITIVE);
        let z = (new - mean) / std;
        let worse = match self.direction {
            Direction::HigherIsBetter => z < -self.sigma_threshold,
            Direction::LowerIsBetter => z > self.sigma_threshold,
        };
        let better = match self.direction {
            Direction::HigherIsBetter => z > self.sigma_threshold,
            Direction::LowerIsBetter => z < -self.sigma_threshold,
        };
        if worse {
            Verdict::Regression {
                z_score: z,
                mean,
                std,
            }
        } else if better {
            Verdict::Improvement {
                z_score: z,
                mean,
                std,
            }
        } else {
            Verdict::Ok { z_score: z }
        }
    }
}

/// The time series of one (benchmark, system, fom) triple.
#[derive(Debug, Clone)]
pub struct History {
    pub benchmark: String,
    pub system: String,
    pub fom: String,
    /// (sequence, value), sorted by sequence.
    pub points: Vec<(u64, f64)>,
}

impl History {
    /// Extract a history from an assimilated perflog frame.
    pub fn from_frame(
        frame: &DataFrame,
        benchmark: &str,
        system: &str,
        fom: &str,
    ) -> Result<History, HistoryError> {
        let filtered = frame
            .filter_eq("benchmark", &Cell::from(benchmark))?
            .filter_eq("system", &Cell::from(system))?
            .filter_eq("fom", &Cell::from(fom))?
            .sort_by("sequence", true)?;
        let mut points = Vec::with_capacity(filtered.n_rows());
        for row in filtered.rows() {
            let seq = row.get("sequence").and_then(Cell::as_int).unwrap_or(0);
            let seq = u64::try_from(seq).map_err(|_| HistoryError::NegativeSequence {
                benchmark: benchmark.to_string(),
                sequence: seq,
            })?;
            if let Some(v) = row.get("value").and_then(Cell::as_float) {
                points.push((seq, v));
            }
        }
        Ok(History {
            benchmark: benchmark.to_string(),
            system: system.to_string(),
            fom: fom.to_string(),
            points,
        })
    }

    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, v)| v).collect()
    }

    /// Judge the latest point against everything before it.
    pub fn check_latest(&self, policy: &RegressionPolicy) -> Verdict {
        match self.points.split_last() {
            None => Verdict::InsufficientHistory {
                have: 0,
                need: policy.min_history,
            },
            Some((&(_, latest), rest)) => {
                let history: Vec<f64> = rest.iter().map(|&(_, v)| v).collect();
                policy.check(&history, latest)
            }
        }
    }

    /// A one-line unicode sparkline of the series (CI log friendly).
    pub fn sparkline(&self) -> String {
        const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let vals = self.values();
        if vals.is_empty() {
            return String::new();
        }
        let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let span = (max - min).max(f64::MIN_POSITIVE);
        vals.iter()
            .map(|v| BARS[(((v - min) / span) * 7.0).round() as usize])
            .collect()
    }
}

/// One measurement recovered from a criterion machine line (the bench
/// harness emits one JSON object per benchmark, marked by the
/// `"criterion"` version key, alongside its human-readable report).
#[derive(Debug, Clone, PartialEq)]
pub struct CriterionPoint {
    pub group: String,
    pub id: String,
    pub min_ns: f64,
    pub median_ns: f64,
    /// Work per iteration, when the bench declared a throughput: bytes
    /// moved or elements processed. Lets consumers compare *speeds*
    /// (work/time) across benchmarks whose per-iteration work differs.
    pub work: Option<f64>,
}

impl CriterionPoint {
    /// Best-case speed in work units per nanosecond (1.0/ns when no
    /// throughput was declared, i.e. plain inverse time).
    pub fn speed(&self) -> f64 {
        self.work.unwrap_or(1.0) / self.min_ns
    }
}

/// Parse criterion's machine-readable lines out of mixed bench output.
/// Human-readable lines, malformed JSON, and null (degenerate) timings are
/// skipped rather than treated as errors — bench logs are advisory input.
pub fn parse_criterion_log(text: &str) -> Vec<CriterionPoint> {
    let mut points = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with("{\"criterion\"") {
            continue;
        }
        let Ok(v) = tinycfg::parse(line) else {
            continue;
        };
        let float = |key: &str| v.get(key).and_then(tinycfg::Value::as_float);
        let string = |key: &str| Some(v.get(key)?.as_str()?.to_string());
        let (Some(group), Some(id)) = (string("group"), string("id")) else {
            continue;
        };
        let (Some(min_ns), Some(median_ns)) = (float("min_ns"), float("median_ns")) else {
            continue;
        };
        points.push(CriterionPoint {
            group,
            id,
            min_ns,
            median_ns,
            work: float("bytes").or_else(|| float("elements")),
        });
    }
    points
}

/// Assemble a regression [`History`] for one benchmark from successive
/// bench-run logs (oldest first): the run index becomes the sequence, the
/// median time the tracked value. Judge it with a lower-is-better policy —
/// these are times, not rates.
pub fn criterion_history<S: AsRef<str>>(runs: &[S], group: &str, id: &str) -> History {
    let points = runs
        .iter()
        .enumerate()
        .flat_map(|(seq, run)| {
            parse_criterion_log(run.as_ref())
                .into_iter()
                .filter(|p| p.group == group && p.id == id)
                .map(move |p| (seq as u64, p.median_ns))
        })
        .collect();
    History {
        benchmark: group.to_string(),
        system: "bench".to_string(),
        fom: id.to_string(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RegressionPolicy {
        RegressionPolicy::default()
    }

    #[test]
    fn stable_series_is_ok() {
        let history = [100.0, 101.0, 99.5, 100.2, 100.8];
        assert!(matches!(
            policy().check(&history, 100.3),
            Verdict::Ok { .. }
        ));
    }

    #[test]
    fn drop_is_a_regression_for_higher_is_better() {
        let history = [100.0, 101.0, 99.5, 100.2, 100.8];
        let v = policy().check(&history, 80.0);
        assert!(v.is_regression(), "{v:?}");
        // And a jump is an improvement.
        assert!(matches!(
            policy().check(&history, 120.0),
            Verdict::Improvement { .. }
        ));
    }

    #[test]
    fn direction_flips_for_runtimes() {
        let history = [10.0, 10.1, 9.9, 10.05, 10.0];
        let p = policy().lower_is_better();
        assert!(
            p.check(&history, 14.0).is_regression(),
            "slower runtime regresses"
        );
        assert!(matches!(
            p.check(&history, 7.0),
            Verdict::Improvement { .. }
        ));
    }

    #[test]
    fn short_history_refuses_to_judge() {
        let v = policy().check(&[100.0, 101.0], 50.0);
        assert!(matches!(
            v,
            Verdict::InsufficientHistory { have: 2, need: 5 }
        ));
    }

    #[test]
    fn flat_history_does_not_flag_noise() {
        let history = [100.0; 10];
        assert!(matches!(
            policy().check(&history, 100.05),
            Verdict::Ok { .. }
        ));
        assert!(policy().check(&history, 90.0).is_regression());
    }

    #[test]
    fn history_from_frame_and_latest_check() {
        let mut df = DataFrame::new(vec!["sequence", "benchmark", "system", "fom", "value"]);
        for (i, v) in [100.0, 101.0, 99.0, 100.5, 100.2, 70.0].iter().enumerate() {
            df.push_row(vec![
                Cell::from(i as i64),
                Cell::from("babelstream_omp"),
                Cell::from("csd3"),
                Cell::from("Triad"),
                Cell::from(*v),
            ])
            .unwrap();
        }
        // Noise rows that must be filtered out.
        df.push_row(vec![
            Cell::from(99i64),
            Cell::from("other"),
            Cell::from("csd3"),
            Cell::from("Triad"),
            Cell::from(9999.0),
        ])
        .unwrap();
        let h = History::from_frame(&df, "babelstream_omp", "csd3", "Triad").unwrap();
        assert_eq!(h.points.len(), 6);
        assert!(h.check_latest(&RegressionPolicy::default()).is_regression());
        assert_eq!(h.sparkline().chars().count(), 6);
    }

    #[test]
    fn criterion_machine_lines_feed_the_regression_tracker() {
        // Fabricate a bench log per run with the real emitter, so this test
        // pins the producer and the loader to the same format.
        let run_log = |median: f64| {
            let samples = criterion::Samples::from_ns(vec![median - 1.0, median, median + 2.0]);
            format!(
                "kernels/sgemm/128   min 9.0 ns  med 10.0 ns /iter\n{}\n",
                criterion::machine_line(
                    "kernels",
                    "sgemm/128",
                    &samples,
                    Some(criterion::Throughput::Elements(128)),
                )
            )
        };
        let pts = parse_criterion_log(&run_log(10.0));
        assert_eq!(pts.len(), 1, "human-readable lines are skipped");
        assert_eq!(pts[0].group, "kernels");
        assert_eq!(pts[0].id, "sgemm/128");
        assert!((pts[0].median_ns - 10.0).abs() < 1e-9);
        assert!((pts[0].min_ns - 9.0).abs() < 1e-9);
        // The declared throughput (elements here, bytes alike) comes back
        // as per-iteration work, so speeds are comparable across benches.
        assert_eq!(pts[0].work, Some(128.0));
        assert!((pts[0].speed() - 128.0 / 9.0).abs() < 1e-9);
        let bytes_line = criterion::machine_line(
            "kernels",
            "copy",
            &criterion::Samples::from_ns(vec![4.0]),
            Some(criterion::Throughput::Bytes(64)),
        );
        assert_eq!(parse_criterion_log(&bytes_line)[0].work, Some(64.0));
        let plain = criterion::machine_line(
            "kernels",
            "plain",
            &criterion::Samples::from_ns(vec![4.0]),
            None,
        );
        let plain_pt = &parse_criterion_log(&plain)[0];
        assert_eq!(plain_pt.work, None);
        assert!((plain_pt.speed() - 0.25).abs() < 1e-9);
        // Degenerate (empty-sample) lines drop out instead of erroring.
        let null_line =
            criterion::machine_line("kernels", "empty", &criterion::Samples::default(), None);
        assert!(parse_criterion_log(&null_line).is_empty());
        assert!(parse_criterion_log("{\"criterion\" not json").is_empty());

        // Six nightly runs, the last one 50% slower: a lower-is-better
        // policy flags it.
        let runs: Vec<String> = [10.0, 10.2, 9.9, 10.1, 10.0, 15.0]
            .iter()
            .map(|&m| run_log(m))
            .collect();
        let h = criterion_history(&runs, "kernels", "sgemm/128");
        assert_eq!(h.points.len(), 6);
        assert_eq!(h.points[5], (5, 15.0));
        let v = h.check_latest(&RegressionPolicy::default().lower_is_better());
        assert!(v.is_regression(), "{v:?}");
        // The wrong id yields an empty series, not a panic.
        assert!(criterion_history(&runs, "kernels", "other")
            .points
            .is_empty());
    }

    #[test]
    fn negative_sequence_is_rejected_not_wrapped() {
        // Before the fix, sequence -1 was cast `as u64` into 2^64-1, so a
        // corrupt record silently sorted itself to the end of the history
        // and became "the latest run" for regression judging.
        let mut df = DataFrame::new(vec!["sequence", "benchmark", "system", "fom", "value"]);
        for (seq, v) in [(1i64, 100.0), (-1, 9999.0), (2, 101.0)] {
            df.push_row(vec![
                Cell::from(seq),
                Cell::from("babelstream_omp"),
                Cell::from("csd3"),
                Cell::from("Triad"),
                Cell::from(v),
            ])
            .unwrap();
        }
        let err = History::from_frame(&df, "babelstream_omp", "csd3", "Triad").unwrap_err();
        assert_eq!(
            err,
            HistoryError::NegativeSequence {
                benchmark: "babelstream_omp".into(),
                sequence: -1
            }
        );
        assert!(err.to_string().contains("non-negative"), "{err}");
        // A frame error still comes through the same result type.
        let empty = DataFrame::new(vec!["benchmark"]);
        assert!(matches!(
            History::from_frame(&empty, "x", "y", "z"),
            Err(HistoryError::Frame(_))
        ));
    }

    #[test]
    fn empty_history_cases() {
        let df = DataFrame::new(vec!["sequence", "benchmark", "system", "fom", "value"]);
        let h = History::from_frame(&df, "x", "y", "z").unwrap();
        assert!(h.points.is_empty());
        assert!(matches!(
            h.check_latest(&RegressionPolicy::default()),
            Verdict::InsufficientHistory { .. }
        ));
        assert_eq!(h.sparkline(), "");
    }
}
