//! YAML-driven plot configuration — the user-facing face of Principle 6.
//!
//! Mirrors the paper's post-processing scripts: a YAML file selects rows
//! from the assimilated frame (`filters`), names the category axis
//! (`x_axis`), optionally a series-splitting column (`series`), the value
//! column, and a scale factor.

use crate::chart::BarChart;
use dframe::{Cell, DataFrame, FrameError};
use tinycfg::Value;

/// Errors raised while loading or applying a plot configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    Parse(String),
    MissingField(&'static str),
    Frame(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Parse(m) => write!(f, "plot config parse error: {m}"),
            ConfigError::MissingField(name) => write!(f, "plot config missing field `{name}`"),
            ConfigError::Frame(m) => write!(f, "plot config frame error: {m}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<FrameError> for ConfigError {
    fn from(e: FrameError) -> ConfigError {
        ConfigError::Frame(e.to_string())
    }
}

/// A declarative plot description.
#[derive(Debug, Clone)]
pub struct PlotConfig {
    pub title: String,
    /// Column providing the x-axis categories.
    pub x_axis: String,
    /// Optional column splitting rows into series.
    pub series: Option<String>,
    /// Column holding the plotted value.
    pub value: String,
    /// Unit label.
    pub unit: String,
    /// Multiply values by this before plotting.
    pub scale: f64,
    /// Equality filters applied first: (column, value-as-text).
    pub filters: Vec<(String, String)>,
}

impl PlotConfig {
    /// Load from YAML text.
    pub fn from_yaml(yaml: &str) -> Result<PlotConfig, ConfigError> {
        let doc = tinycfg::parse(yaml).map_err(|e| ConfigError::Parse(e.to_string()))?;
        let str_field = |name: &'static str| -> Option<String> {
            doc.get_path(name)
                .and_then(Value::as_str)
                .map(str::to_string)
        };
        let x_axis = str_field("x_axis").ok_or(ConfigError::MissingField("x_axis"))?;
        let value = str_field("value").unwrap_or_else(|| "value".to_string());
        let mut filters = Vec::new();
        if let Some(m) = doc.get_path("filters").and_then(Value::as_map) {
            for (k, v) in m.iter() {
                filters.push((k.to_string(), v.scalar_string()));
            }
        }
        Ok(PlotConfig {
            title: str_field("title").unwrap_or_else(|| "benchmark results".to_string()),
            x_axis,
            series: str_field("series"),
            value,
            unit: str_field("unit").unwrap_or_default(),
            scale: doc
                .get_path("scale")
                .and_then(Value::as_float)
                .unwrap_or(1.0),
            filters,
        })
    }

    /// Apply the filters to a frame.
    pub fn filtered(&self, df: &DataFrame) -> Result<DataFrame, ConfigError> {
        let mut out = df.clone();
        for (col, want) in &self.filters {
            let want_cell = Cell::infer(want);
            out = out.filter_eq(col, &want_cell)?;
        }
        Ok(out)
    }

    /// Build the configured bar chart from an assimilated frame.
    pub fn bar_chart(&self, df: &DataFrame) -> Result<BarChart, ConfigError> {
        let filtered = self.filtered(df)?;
        let categories: Vec<String> = filtered
            .unique(&self.x_axis)?
            .iter()
            .map(|c| c.to_string())
            .collect();
        let mut chart = BarChart::new(&self.title, &self.unit)
            .with_categories(categories.iter().map(String::as_str).collect::<Vec<_>>());

        let series_keys: Vec<Cell> = match &self.series {
            Some(col) => filtered.unique(col)?,
            None => vec![Cell::Str("value".into())],
        };
        for key in &series_keys {
            let sub = match &self.series {
                Some(col) => filtered.filter_eq(col, key)?,
                None => filtered.clone(),
            };
            // Mean per category (repetitions average out, like the paper's
            // scripts).
            let means = sub.group_by(&[self.x_axis.as_str()]).mean(&self.value)?;
            let mean_col = format!("mean_{}", self.value);
            let values: Vec<f64> = categories
                .iter()
                .map(|cat| {
                    means
                        .filter_eq(&self.x_axis, &Cell::infer(cat))
                        .ok()
                        .and_then(|rows| {
                            if rows.n_rows() == 0 {
                                None
                            } else {
                                rows.column(&mean_col).and_then(|c| c.get(0).as_float())
                            }
                        })
                        .map(|v| v * self.scale)
                        .unwrap_or(f64::NAN)
                })
                .collect();
            chart.add_series(&key.to_string(), values);
        }
        Ok(chart)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> DataFrame {
        let mut df = DataFrame::new(vec!["system", "fom", "value", "environ"]);
        for (s, f, v, e) in [
            ("archer2", "Triad", 300.0, "gcc"),
            ("archer2", "Triad", 310.0, "gcc"),
            ("archer2", "Copy", 250.0, "gcc"),
            ("csd3", "Triad", 210.0, "gcc"),
            ("csd3", "Triad", 200.0, "icc"),
        ] {
            df.push_row(vec![
                Cell::from(s),
                Cell::from(f),
                Cell::from(v),
                Cell::from(e),
            ])
            .unwrap();
        }
        df
    }

    #[test]
    fn yaml_parsing_defaults() {
        let cfg = PlotConfig::from_yaml("x_axis: system").unwrap();
        assert_eq!(cfg.value, "value");
        assert_eq!(cfg.scale, 1.0);
        assert!(cfg.filters.is_empty());
        assert!(PlotConfig::from_yaml("title: no axis").is_err());
        assert!(PlotConfig::from_yaml("x_axis: [bad").is_err());
    }

    #[test]
    fn filters_and_mean() {
        let cfg = PlotConfig::from_yaml(
            "title: T\nx_axis: system\nvalue: value\nfilters: {fom: Triad}\n",
        )
        .unwrap();
        let chart = cfg.bar_chart(&frame()).unwrap();
        assert_eq!(chart.categories(), ["archer2", "csd3"]);
        let (_, values) = &chart.series()[0];
        assert!((values[0] - 305.0).abs() < 1e-9, "mean of repetitions");
        assert!((values[1] - 205.0).abs() < 1e-9);
    }

    #[test]
    fn series_split() {
        let cfg = PlotConfig::from_yaml("x_axis: system\nseries: environ\nfilters: {fom: Triad}\n")
            .unwrap();
        let chart = cfg.bar_chart(&frame()).unwrap();
        assert_eq!(chart.series().len(), 2);
        // icc has no archer2 data → NaN hole.
        let icc = chart.series().iter().find(|(l, _)| l == "icc").unwrap();
        assert!(icc.1[0].is_nan());
        assert!((icc.1[1] - 200.0).abs() < 1e-9);
    }

    #[test]
    fn scale_applied() {
        let cfg =
            PlotConfig::from_yaml("x_axis: system\nscale: 0.001\nfilters: {fom: Copy}\n").unwrap();
        let chart = cfg.bar_chart(&frame()).unwrap();
        let (_, values) = &chart.series()[0];
        assert!((values[0] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn unknown_filter_column_is_error() {
        let cfg = PlotConfig::from_yaml("x_axis: system\nfilters: {nope: 1}\n").unwrap();
        assert!(matches!(
            cfg.bar_chart(&frame()),
            Err(ConfigError::Frame(_))
        ));
    }
}
