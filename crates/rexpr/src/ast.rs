//! Abstract syntax tree for parsed patterns.

/// A single range of characters in a class, inclusive on both ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassRange {
    pub lo: char,
    pub hi: char,
}

impl ClassRange {
    pub fn single(c: char) -> ClassRange {
        ClassRange { lo: c, hi: c }
    }

    pub fn contains(&self, c: char) -> bool {
        self.lo <= c && c <= self.hi
    }
}

/// A character class: a set of ranges, possibly negated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharClass {
    pub ranges: Vec<ClassRange>,
    pub negated: bool,
}

impl CharClass {
    pub fn matches(&self, c: char) -> bool {
        let inside = self.ranges.iter().any(|r| r.contains(c));
        inside != self.negated
    }

    /// `\d`
    pub fn digit() -> CharClass {
        CharClass {
            ranges: vec![ClassRange { lo: '0', hi: '9' }],
            negated: false,
        }
    }

    /// `\w` (ASCII word characters)
    pub fn word() -> CharClass {
        CharClass {
            ranges: vec![
                ClassRange { lo: 'a', hi: 'z' },
                ClassRange { lo: 'A', hi: 'Z' },
                ClassRange { lo: '0', hi: '9' },
                ClassRange::single('_'),
            ],
            negated: false,
        }
    }

    /// `\s`
    pub fn space() -> CharClass {
        CharClass {
            ranges: vec![
                ClassRange::single(' '),
                ClassRange::single('\t'),
                ClassRange::single('\n'),
                ClassRange::single('\r'),
                ClassRange::single('\x0b'),
                ClassRange::single('\x0c'),
            ],
            negated: false,
        }
    }

    pub fn negate(mut self) -> CharClass {
        self.negated = !self.negated;
        self
    }
}

/// Greediness of a quantifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Greed {
    Greedy,
    Lazy,
}

/// Pattern AST. Matching is defined over a haystack of `char`s.
#[derive(Debug, Clone, PartialEq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// A single literal character.
    Literal(char),
    /// `.` — any character except `\n`.
    AnyChar,
    /// A character class.
    Class(CharClass),
    /// `^`
    StartAnchor,
    /// `$`
    EndAnchor,
    /// `\b`
    WordBoundary,
    /// `\B`
    NotWordBoundary,
    /// Concatenation of sub-patterns.
    Concat(Vec<Ast>),
    /// Alternation between sub-patterns, tried left to right.
    Alternate(Vec<Ast>),
    /// Repetition: `min..=max` copies (`max == usize::MAX` for unbounded).
    Repeat {
        node: Box<Ast>,
        min: usize,
        max: usize,
        greed: Greed,
    },
    /// Capturing group with 1-based index.
    Group { index: usize, node: Box<Ast> },
    /// Non-capturing group.
    NonCapturing(Box<Ast>),
}

/// Is `c` a word character for `\b` purposes?
pub fn is_word_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}
