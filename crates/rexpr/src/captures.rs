//! Match and capture-group results.

/// A single match region within a haystack, in byte offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match<'h> {
    haystack: &'h str,
    start: usize,
    end: usize,
}

impl<'h> Match<'h> {
    pub(crate) fn new(haystack: &'h str, start: usize, end: usize) -> Match<'h> {
        Match {
            haystack,
            start,
            end,
        }
    }

    /// Start byte offset, inclusive.
    pub fn start(&self) -> usize {
        self.start
    }

    /// End byte offset, exclusive.
    pub fn end(&self) -> usize {
        self.end
    }

    /// Length of the matched text, in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Is the match empty?
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The matched text.
    pub fn as_str(&self) -> &'h str {
        &self.haystack[self.start..self.end]
    }
}

/// All capture groups for one successful match.
#[derive(Debug, Clone)]
pub struct Captures<'h> {
    haystack: &'h str,
    /// Byte spans per group; `None` for groups that did not participate.
    spans: Vec<Option<(usize, usize)>>,
    names: Vec<(String, usize)>,
}

impl<'h> Captures<'h> {
    /// Build byte-offset captures from char-index slots.
    pub(crate) fn from_slots(
        haystack: &'h str,
        chars: &[(usize, char)],
        slots: &[Option<usize>],
        names: Vec<(String, usize)>,
    ) -> Captures<'h> {
        let to_byte = |ci: usize| -> usize {
            if ci == chars.len() {
                haystack.len()
            } else {
                chars[ci].0
            }
        };
        let spans = slots
            .chunks(2)
            .map(|pair| match (pair[0], pair.get(1).copied().flatten()) {
                (Some(s), Some(e)) => Some((to_byte(s), to_byte(e))),
                _ => None,
            })
            .collect();
        Captures {
            haystack,
            spans,
            names,
        }
    }

    /// Group `i` (0 is the whole match), if it participated in the match.
    pub fn get(&self, i: usize) -> Option<Match<'h>> {
        self.spans
            .get(i)
            .copied()
            .flatten()
            .map(|(s, e)| Match::new(self.haystack, s, e))
    }

    /// Named group, if declared and matched.
    pub fn name(&self, name: &str) -> Option<Match<'h>> {
        let &(_, idx) = self.names.iter().find(|(n, _)| n == name)?;
        self.get(idx)
    }

    /// Number of groups (including group 0).
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Always false: a `Captures` implies at least group 0 matched.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use crate::Regex;

    #[test]
    fn optional_group_absent_is_none() {
        let re = Regex::new(r"a(b)?c").unwrap();
        let caps = re.captures("ac").unwrap();
        assert!(caps.get(0).is_some());
        assert!(caps.get(1).is_none());
        let caps = re.captures("abc").unwrap();
        assert_eq!(caps.get(1).unwrap().as_str(), "b");
    }

    #[test]
    fn match_accessors() {
        let re = Regex::new("bc").unwrap();
        let m = re.find("abcd").unwrap();
        assert_eq!(m.start(), 1);
        assert_eq!(m.end(), 3);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn out_of_range_group_is_none() {
        let re = Regex::new("a").unwrap();
        let caps = re.captures("a").unwrap();
        assert!(caps.get(5).is_none());
        assert_eq!(caps.len(), 1);
    }
}
