//! Backtracking matcher.
//!
//! Matching walks the AST with an explicit continuation linked list, so
//! sequencing, repetition and group-end bookkeeping all share one recursion.
//! Capture slots are char-index pairs `[start0, end0, start1, end1, ...]`
//! recorded on the successful path only (failed branches restore what they
//! clobbered).

use crate::ast::{is_word_char, Ast, Greed};

/// Try to match `ast` at char index `at`. On success returns `true` with
/// `slots` populated (slot 1 = end of the whole match).
pub fn match_at(
    ast: &Ast,
    chars: &[(usize, char)],
    at: usize,
    slots: &mut [Option<usize>],
) -> bool {
    m(ast, chars, at, slots, &Cont::Done)
}

/// Continuation: what still has to match after the current node.
enum Cont<'a> {
    /// Nothing left; the overall match succeeds here.
    Done,
    /// The given node sequence, then the next continuation.
    Seq(&'a [Ast], &'a Cont<'a>),
    /// Record the end of capture group `usize`, then continue.
    EndGroup(usize, &'a Cont<'a>),
    /// One iteration of a repeat just finished (it started at `start`);
    /// `min`/`max` are the *remaining* bounds.
    Rep {
        node: &'a Ast,
        min: usize,
        max: usize,
        greed: Greed,
        start: usize,
        cont: &'a Cont<'a>,
    },
}

fn run_cont(
    cont: &Cont<'_>,
    chars: &[(usize, char)],
    at: usize,
    slots: &mut [Option<usize>],
) -> bool {
    match cont {
        Cont::Done => {
            slots[1] = Some(at);
            true
        }
        Cont::Seq(nodes, next) => {
            if nodes.is_empty() {
                run_cont(next, chars, at, slots)
            } else {
                m(&nodes[0], chars, at, slots, &Cont::Seq(&nodes[1..], next))
            }
        }
        Cont::EndGroup(i, next) => {
            let old = slots[2 * i + 1];
            slots[2 * i + 1] = Some(at);
            if run_cont(next, chars, at, slots) {
                true
            } else {
                slots[2 * i + 1] = old;
                false
            }
        }
        Cont::Rep {
            node,
            min,
            max,
            greed,
            start,
            cont,
        } => {
            if *min == 0 && at == *start {
                // The iteration that just completed consumed nothing; more
                // iterations would loop forever, so stop repeating here.
                run_cont(cont, chars, at, slots)
            } else {
                rep(node, *min, *max, *greed, chars, at, slots, cont)
            }
        }
    }
}

/// Match `min..=max` further copies of `node` starting at `at`, then `cont`.
#[allow(clippy::too_many_arguments)]
fn rep(
    node: &Ast,
    min: usize,
    max: usize,
    greed: Greed,
    chars: &[(usize, char)],
    at: usize,
    slots: &mut [Option<usize>],
    cont: &Cont<'_>,
) -> bool {
    if min > 0 {
        let next = Cont::Rep {
            node,
            min: min - 1,
            max: max.saturating_sub(1),
            greed,
            start: at,
            cont,
        };
        return m(node, chars, at, slots, &next);
    }
    if max == 0 {
        return run_cont(cont, chars, at, slots);
    }
    let next = Cont::Rep {
        node,
        min: 0,
        max: max.saturating_sub(1),
        greed,
        start: at,
        cont,
    };
    match greed {
        Greed::Greedy => m(node, chars, at, slots, &next) || run_cont(cont, chars, at, slots),
        Greed::Lazy => run_cont(cont, chars, at, slots) || m(node, chars, at, slots, &next),
    }
}

fn m(
    node: &Ast,
    chars: &[(usize, char)],
    at: usize,
    slots: &mut [Option<usize>],
    cont: &Cont<'_>,
) -> bool {
    match node {
        Ast::Empty => run_cont(cont, chars, at, slots),
        Ast::Literal(c) => {
            at < chars.len() && chars[at].1 == *c && run_cont(cont, chars, at + 1, slots)
        }
        Ast::AnyChar => {
            at < chars.len() && chars[at].1 != '\n' && run_cont(cont, chars, at + 1, slots)
        }
        Ast::Class(cc) => {
            at < chars.len() && cc.matches(chars[at].1) && run_cont(cont, chars, at + 1, slots)
        }
        Ast::StartAnchor => at == 0 && run_cont(cont, chars, at, slots),
        Ast::EndAnchor => at == chars.len() && run_cont(cont, chars, at, slots),
        Ast::WordBoundary => at_word_boundary(chars, at) && run_cont(cont, chars, at, slots),
        Ast::NotWordBoundary => !at_word_boundary(chars, at) && run_cont(cont, chars, at, slots),
        Ast::Concat(nodes) => run_cont(&Cont::Seq(nodes, cont), chars, at, slots),
        Ast::Alternate(branches) => branches.iter().any(|b| m(b, chars, at, slots, cont)),
        Ast::Repeat {
            node,
            min,
            max,
            greed,
        } => rep(node, *min, *max, *greed, chars, at, slots, cont),
        Ast::Group { index, node } => {
            let i = *index;
            let (old_s, old_e) = (slots[2 * i], slots[2 * i + 1]);
            slots[2 * i] = Some(at);
            if m(node, chars, at, slots, &Cont::EndGroup(i, cont)) {
                true
            } else {
                slots[2 * i] = old_s;
                slots[2 * i + 1] = old_e;
                false
            }
        }
        Ast::NonCapturing(node) => m(node, chars, at, slots, cont),
    }
}

fn at_word_boundary(chars: &[(usize, char)], at: usize) -> bool {
    let before = at
        .checked_sub(1)
        .and_then(|i| chars.get(i))
        .map(|&(_, c)| is_word_char(c));
    let after = chars.get(at).map(|&(_, c)| is_word_char(c));
    matches!(
        (before, after),
        (None, Some(true))
            | (Some(true), None)
            | (Some(false), Some(true))
            | (Some(true), Some(false))
    )
}
