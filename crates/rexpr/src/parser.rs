//! Recursive-descent parser from pattern text to [`Ast`].

use crate::ast::{Ast, CharClass, ClassRange, Greed};
use std::fmt;

/// Error produced when a pattern fails to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte position in the pattern where the error was detected.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "regex parse error at {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Result of a successful parse.
#[derive(Debug)]
pub struct Parsed {
    pub ast: Ast,
    pub n_groups: usize,
    pub names: Vec<(String, usize)>,
}

/// Parse `pattern` into an AST, counting capture groups.
pub fn parse(pattern: &str) -> Result<Parsed, ParseError> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut p = Parser {
        chars,
        pos: 0,
        next_group: 1,
        names: Vec::new(),
    };
    let ast = p.parse_alternation()?;
    if p.pos < p.chars.len() {
        return Err(p.err(format!("unexpected character `{}`", p.chars[p.pos])));
    }
    // Normalize to a Concat at the top so the engine can cheaply detect a
    // leading `^` for anchored-search short-circuiting.
    let ast = match ast {
        Ast::Concat(v) => Ast::Concat(v),
        other => Ast::Concat(vec![other]),
    };
    Ok(Parsed {
        ast,
        n_groups: p.next_group,
        names: p.names,
    })
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
    next_group: usize,
    names: Vec<(String, usize)>,
}

impl Parser {
    fn err(&self, message: String) -> ParseError {
        ParseError {
            position: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn eat(&mut self, want: char) -> bool {
        if self.peek() == Some(want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_alternation(&mut self) -> Result<Ast, ParseError> {
        let mut branches = vec![self.parse_concat()?];
        while self.eat('|') {
            branches.push(self.parse_concat()?);
        }
        if branches.len() == 1 {
            Ok(branches.pop().expect("one branch"))
        } else {
            Ok(Ast::Alternate(branches))
        }
    }

    fn parse_concat(&mut self) -> Result<Ast, ParseError> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.parse_repeat()?);
        }
        match items.len() {
            0 => Ok(Ast::Empty),
            1 => Ok(items.pop().expect("one item")),
            _ => Ok(Ast::Concat(items)),
        }
    }

    fn parse_repeat(&mut self) -> Result<Ast, ParseError> {
        let atom = self.parse_atom()?;
        let (min, max) = match self.peek() {
            Some('*') => {
                self.bump();
                (0, usize::MAX)
            }
            Some('+') => {
                self.bump();
                (1, usize::MAX)
            }
            Some('?') => {
                self.bump();
                (0, 1)
            }
            Some('{') => {
                // `{` only acts as a quantifier when it parses as one;
                // otherwise (Python behaviour) it's a literal.
                if let Some((lo, hi, consumed)) = self.try_parse_bounds()? {
                    self.pos += consumed;
                    (lo, hi)
                } else {
                    return Ok(atom);
                }
            }
            _ => return Ok(atom),
        };
        if matches!(
            atom,
            Ast::StartAnchor | Ast::EndAnchor | Ast::WordBoundary | Ast::NotWordBoundary
        ) {
            return Err(self.err("quantifier applied to an anchor".to_string()));
        }
        let greed = if self.eat('?') {
            Greed::Lazy
        } else {
            Greed::Greedy
        };
        Ok(Ast::Repeat {
            node: Box::new(atom),
            min,
            max,
            greed,
        })
    }

    /// Attempt to read `{n}`, `{n,}`, `{n,m}` starting at the current `{`.
    /// Returns (min, max, chars consumed including both braces) or None if
    /// the braces don't form a valid quantifier.
    fn try_parse_bounds(&self) -> Result<Option<(usize, usize, usize)>, ParseError> {
        debug_assert_eq!(self.peek(), Some('{'));
        let mut i = self.pos + 1;
        let mut lo_digits = String::new();
        while let Some(&c) = self.chars.get(i) {
            if c.is_ascii_digit() {
                lo_digits.push(c);
                i += 1;
            } else {
                break;
            }
        }
        if lo_digits.is_empty() {
            return Ok(None);
        }
        let lo: usize = lo_digits
            .parse()
            .map_err(|_| self.err("repeat count too large".into()))?;
        match self.chars.get(i) {
            Some('}') => Ok(Some((lo, lo, i + 1 - self.pos))),
            Some(',') => {
                i += 1;
                let mut hi_digits = String::new();
                while let Some(&c) = self.chars.get(i) {
                    if c.is_ascii_digit() {
                        hi_digits.push(c);
                        i += 1;
                    } else {
                        break;
                    }
                }
                if self.chars.get(i) != Some(&'}') {
                    return Ok(None);
                }
                let hi = if hi_digits.is_empty() {
                    usize::MAX
                } else {
                    let hi: usize = hi_digits
                        .parse()
                        .map_err(|_| self.err("repeat count too large".into()))?;
                    if hi < lo {
                        return Err(ParseError {
                            position: self.pos,
                            message: format!("invalid repeat bounds {{{lo},{hi}}}"),
                        });
                    }
                    hi
                };
                Ok(Some((lo, hi, i + 1 - self.pos)))
            }
            _ => Ok(None),
        }
    }

    fn parse_atom(&mut self) -> Result<Ast, ParseError> {
        match self.peek() {
            None => Ok(Ast::Empty),
            Some('(') => {
                self.bump();
                self.parse_group()
            }
            Some(')') => Err(self.err("unmatched `)`".into())),
            Some('[') => {
                self.bump();
                self.parse_class()
            }
            Some('.') => {
                self.bump();
                Ok(Ast::AnyChar)
            }
            Some('^') => {
                self.bump();
                Ok(Ast::StartAnchor)
            }
            Some('$') => {
                self.bump();
                Ok(Ast::EndAnchor)
            }
            Some('\\') => {
                self.bump();
                self.parse_escape()
            }
            Some(c @ ('*' | '+' | '?')) => {
                Err(self.err(format!("quantifier `{c}` with nothing to repeat")))
            }
            Some(c) => {
                self.bump();
                Ok(Ast::Literal(c))
            }
        }
    }

    fn parse_group(&mut self) -> Result<Ast, ParseError> {
        // Already past `(`. Check for `(?...` extensions.
        let mut capture_name: Option<String> = None;
        let mut capturing = true;
        if self.eat('?') {
            match self.peek() {
                Some(':') => {
                    self.bump();
                    capturing = false;
                }
                Some('P') => {
                    self.bump();
                    if !self.eat('<') {
                        return Err(self.err("expected `<` after `(?P`".into()));
                    }
                    capture_name = Some(self.parse_group_name()?);
                }
                Some('<') => {
                    self.bump();
                    capture_name = Some(self.parse_group_name()?);
                }
                other => {
                    return Err(self.err(format!("unsupported group extension `(?{:?}`", other)));
                }
            }
        }
        let node = if capturing {
            let index = self.next_group;
            self.next_group += 1;
            if let Some(name) = capture_name {
                if self.names.iter().any(|(n, _)| *n == name) {
                    return Err(self.err(format!("duplicate group name `{name}`")));
                }
                self.names.push((name, index));
            }
            let inner = self.parse_alternation()?;
            Ast::Group {
                index,
                node: Box::new(inner),
            }
        } else {
            let inner = self.parse_alternation()?;
            Ast::NonCapturing(Box::new(inner))
        };
        if !self.eat(')') {
            return Err(self.err("missing closing `)`".into()));
        }
        Ok(node)
    }

    fn parse_group_name(&mut self) -> Result<String, ParseError> {
        let mut name = String::new();
        loop {
            match self.bump() {
                Some('>') => break,
                Some(c) if c.is_ascii_alphanumeric() || c == '_' => name.push(c),
                Some(c) => return Err(self.err(format!("invalid character `{c}` in group name"))),
                None => return Err(self.err("unterminated group name".into())),
            }
        }
        if name.is_empty() {
            return Err(self.err("empty group name".into()));
        }
        Ok(name)
    }

    fn parse_class(&mut self) -> Result<Ast, ParseError> {
        // Already past `[`.
        let negated = self.eat('^');
        let mut ranges: Vec<ClassRange> = Vec::new();
        let mut first = true;
        loop {
            let c = match self.peek() {
                None => return Err(self.err("unterminated character class".into())),
                Some(']') if !first => {
                    self.bump();
                    break;
                }
                Some(c) => c,
            };
            first = false;
            self.bump();
            let lo = if c == '\\' {
                match self.parse_class_escape()? {
                    ClassItem::Char(c) => c,
                    ClassItem::Class(cls) => {
                        // Embedded predefined class: splice its ranges.
                        if cls.negated {
                            return Err(self.err("negated class escape inside a class".to_string()));
                        }
                        ranges.extend(cls.ranges);
                        continue;
                    }
                }
            } else {
                c
            };
            // Range `lo-hi`? A trailing `-` before `]` is a literal dash.
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.bump(); // consume `-`
                let hi_c = match self.bump() {
                    None => return Err(self.err("unterminated character class range".into())),
                    Some('\\') => match self.parse_class_escape()? {
                        ClassItem::Char(c) => c,
                        ClassItem::Class(_) => {
                            return Err(self.err("class escape as range endpoint".into()))
                        }
                    },
                    Some(c) => c,
                };
                if hi_c < lo {
                    return Err(self.err(format!("invalid class range `{lo}-{hi_c}`")));
                }
                ranges.push(ClassRange { lo, hi: hi_c });
            } else {
                ranges.push(ClassRange::single(lo));
            }
        }
        Ok(Ast::Class(CharClass { ranges, negated }))
    }

    fn parse_class_escape(&mut self) -> Result<ClassItem, ParseError> {
        // The `\` is already consumed.
        let c = self
            .bump()
            .ok_or_else(|| self.err("trailing backslash in class".into()))?;
        Ok(match c {
            'd' => ClassItem::Class(CharClass::digit()),
            'w' => ClassItem::Class(CharClass::word()),
            's' => ClassItem::Class(CharClass::space()),
            'n' => ClassItem::Char('\n'),
            't' => ClassItem::Char('\t'),
            'r' => ClassItem::Char('\r'),
            '0' => ClassItem::Char('\0'),
            'x' => ClassItem::Char(self.parse_hex_escape()?),
            c => ClassItem::Char(c),
        })
    }

    fn parse_hex_escape(&mut self) -> Result<char, ParseError> {
        let h1 = self
            .bump()
            .ok_or_else(|| self.err("truncated \\x escape".into()))?;
        let h2 = self
            .bump()
            .ok_or_else(|| self.err("truncated \\x escape".into()))?;
        let hex: String = [h1, h2].iter().collect();
        let v = u8::from_str_radix(&hex, 16)
            .map_err(|_| self.err(format!("invalid hex escape \\x{hex}")))?;
        Ok(v as char)
    }

    fn parse_escape(&mut self) -> Result<Ast, ParseError> {
        // The `\` is already consumed.
        let c = self
            .bump()
            .ok_or_else(|| self.err("trailing backslash".into()))?;
        Ok(match c {
            'd' => Ast::Class(CharClass::digit()),
            'D' => Ast::Class(CharClass::digit().negate()),
            'w' => Ast::Class(CharClass::word()),
            'W' => Ast::Class(CharClass::word().negate()),
            's' => Ast::Class(CharClass::space()),
            'S' => Ast::Class(CharClass::space().negate()),
            'b' => Ast::WordBoundary,
            'B' => Ast::NotWordBoundary,
            'n' => Ast::Literal('\n'),
            't' => Ast::Literal('\t'),
            'r' => Ast::Literal('\r'),
            '0' => Ast::Literal('\0'),
            'x' => Ast::Literal(self.parse_hex_escape()?),
            c if c.is_ascii_alphanumeric() => {
                return Err(self.err(format!("unsupported escape `\\{c}`")));
            }
            c => Ast::Literal(c),
        })
    }
}

enum ClassItem {
    Char(char),
    Class(CharClass),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_groups() {
        let p = parse(r"(a)(?:b)(?P<x>c)").unwrap();
        assert_eq!(p.n_groups, 3); // group 0 + 2 capturing
        assert_eq!(p.names, vec![("x".to_string(), 2)]);
    }

    #[test]
    fn literal_brace_is_allowed() {
        // `{` not followed by a valid bound spec is a literal, like Python.
        let p = parse("a{b}").unwrap();
        assert_eq!(p.n_groups, 1);
        let re = crate::Regex::new("a{b}").unwrap();
        assert!(re.is_match("xa{b}x"));
    }

    #[test]
    fn bad_bounds_rejected() {
        assert!(parse("a{3,2}").is_err());
    }

    #[test]
    fn quantified_anchor_rejected() {
        assert!(parse("^*").is_err());
        assert!(parse(r"\b+").is_err());
    }

    #[test]
    fn class_with_trailing_dash() {
        let re = crate::Regex::new("[a-]").unwrap();
        assert!(re.is_match("-"));
        assert!(re.is_match("a"));
        assert!(!re.is_match("b"));
    }

    #[test]
    fn class_leading_close_bracket() {
        let re = crate::Regex::new("[]a]").unwrap();
        assert!(re.is_match("]"));
        assert!(re.is_match("a"));
    }

    #[test]
    fn error_position_is_reported() {
        let e = parse("ab(cd").unwrap_err();
        assert!(e.position >= 2);
        assert!(e.to_string().contains("regex parse error"));
    }
}
