//! `rexpr` — a small, dependency-free regular-expression engine.
//!
//! The benchmarking harness extracts Figures of Merit and runs sanity checks
//! by matching user-supplied patterns against benchmark output (Principle 6
//! of the paper). This crate provides the pattern engine: a classic
//! recursive-descent parser producing an AST, executed by a backtracking
//! matcher with capture slots.
//!
//! Supported syntax (a practical subset of Python's `re`, which ReFrame uses):
//!
//! * literals, `.` (any char except newline)
//! * character classes `[a-z0-9_]`, negated classes `[^...]`
//! * predefined classes `\d \D \w \W \s \S`
//! * anchors `^ $` and word boundaries `\b \B`
//! * quantifiers `* + ?` and bounded `{n}`, `{n,}`, `{n,m}`, each with a
//!   lazy variant (`*?`, `+?`, ...)
//! * alternation `|`, grouping `(...)`, non-capturing `(?:...)`,
//!   named captures `(?P<name>...)` / `(?<name>...)`
//! * escapes for metacharacters and `\n \t \r \0 \xHH`
//!
//! Backreferences and look-around are intentionally not supported; the
//! harness does not need them and their absence keeps worst-case behaviour
//! understandable.
//!
//! # Example
//!
//! ```
//! let re = rexpr::Regex::new(r"Triad\s+(?P<rate>\d+\.\d+)\s+GB/s").unwrap();
//! let caps = re.captures("Triad  812.55 GB/s").unwrap();
//! assert_eq!(caps.name("rate").unwrap().as_str(), "812.55");
//! ```

mod ast;
mod captures;
mod matcher;
mod parser;

pub use captures::{Captures, Match};
pub use parser::ParseError;

use ast::Ast;

/// A compiled regular expression.
///
/// Construction parses and validates the pattern once; matching never fails.
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    ast: Ast,
    /// Number of capture groups, including the implicit group 0.
    n_groups: usize,
    /// Names of named groups, as (name, group index).
    names: Vec<(String, usize)>,
    /// ASCII case-insensitive matching (`(?i)` prefix).
    case_insensitive: bool,
}

impl Regex {
    /// Compile `pattern` into a [`Regex`]. A leading `(?i)` makes matching
    /// ASCII-case-insensitive (like Python's `re.IGNORECASE` for ASCII).
    pub fn new(pattern: &str) -> Result<Regex, ParseError> {
        let (body, case_insensitive) = match pattern.strip_prefix("(?i)") {
            Some(rest) => (rest.to_string(), true),
            None => (pattern.to_string(), false),
        };
        // Case folding: lowercase the pattern's chars; haystacks fold at
        // match time. ASCII folding never changes byte lengths, so the
        // reported offsets stay valid for the original haystack.
        let effective: String = if case_insensitive {
            body.to_ascii_lowercase()
        } else {
            body.clone()
        };
        let parsed = parser::parse(&effective)?;
        Ok(Regex {
            pattern: pattern.to_string(),
            ast: parsed.ast,
            n_groups: parsed.n_groups,
            names: parsed.names,
            case_insensitive,
        })
    }

    /// The source pattern this regex was compiled from.
    pub fn as_str(&self) -> &str {
        &self.pattern
    }

    /// Number of capture groups, including the whole-match group 0.
    pub fn group_count(&self) -> usize {
        self.n_groups
    }

    /// Index of the named capture group `name`, if declared in the pattern.
    pub fn group_index(&self, name: &str) -> Option<usize> {
        self.names.iter().find(|(n, _)| n == name).map(|&(_, i)| i)
    }

    /// Does `haystack` contain a match anywhere?
    pub fn is_match(&self, haystack: &str) -> bool {
        self.find(haystack).is_some()
    }

    /// Leftmost match, if any.
    pub fn find<'h>(&self, haystack: &'h str) -> Option<Match<'h>> {
        self.captures(haystack)
            .map(|c| c.get(0).expect("group 0 always set on a match"))
    }

    /// Leftmost match with all capture groups.
    pub fn captures<'h>(&self, haystack: &'h str) -> Option<Captures<'h>> {
        self.captures_at(haystack, 0)
    }

    /// Leftmost match with captures, starting the search at byte offset
    /// `start` (which must lie on a char boundary).
    pub fn captures_at<'h>(&self, haystack: &'h str, start: usize) -> Option<Captures<'h>> {
        let chars: Vec<(usize, char)> = if self.case_insensitive {
            haystack
                .char_indices()
                .map(|(i, c)| (i, c.to_ascii_lowercase()))
                .collect()
        } else {
            haystack.char_indices().collect()
        };
        // Index in `chars` of the first char at or past byte offset `start`.
        let mut begin = chars.len();
        for (i, &(off, _)) in chars.iter().enumerate() {
            if off >= start {
                begin = i;
                break;
            }
        }
        if start == 0 {
            begin = 0;
        }
        let anchored_start =
            matches!(self.ast, Ast::Concat(ref v) if v.first() == Some(&Ast::StartAnchor));
        for at in begin..=chars.len() {
            let mut slots = vec![None; self.n_groups * 2];
            slots[0] = Some(at);
            if matcher::match_at(&self.ast, &chars, at, &mut slots) {
                return Some(Captures::from_slots(
                    haystack,
                    &chars,
                    &slots,
                    self.names.clone(),
                ));
            }
            if anchored_start && at == begin {
                // `^...` can only match at the start position.
                break;
            }
        }
        None
    }

    /// Iterator over all non-overlapping matches in `haystack`.
    pub fn find_iter<'r, 'h>(&'r self, haystack: &'h str) -> FindIter<'r, 'h> {
        FindIter {
            re: self,
            haystack,
            at: 0,
            done: false,
        }
    }

    /// Iterator over captures of all non-overlapping matches.
    pub fn captures_iter<'r, 'h>(&'r self, haystack: &'h str) -> CapturesIter<'r, 'h> {
        CapturesIter {
            re: self,
            haystack,
            at: 0,
            done: false,
        }
    }

    /// Replace the first match with `replacement` (no `$n` expansion).
    pub fn replace(&self, haystack: &str, replacement: &str) -> String {
        match self.find(haystack) {
            None => haystack.to_string(),
            Some(m) => {
                let mut out = String::with_capacity(haystack.len());
                out.push_str(&haystack[..m.start()]);
                out.push_str(replacement);
                out.push_str(&haystack[m.end()..]);
                out
            }
        }
    }

    /// Replace every non-overlapping match with `replacement`.
    pub fn replace_all(&self, haystack: &str, replacement: &str) -> String {
        let mut out = String::with_capacity(haystack.len());
        let mut last = 0;
        for m in self.find_iter(haystack) {
            out.push_str(&haystack[last..m.start()]);
            out.push_str(replacement);
            last = m.end();
        }
        out.push_str(&haystack[last..]);
        out
    }

    /// Split `haystack` on every match, returning the separated pieces.
    pub fn split<'h>(&self, haystack: &'h str) -> Vec<&'h str> {
        let mut out = Vec::new();
        let mut last = 0;
        for m in self.find_iter(haystack) {
            out.push(&haystack[last..m.start()]);
            last = m.end();
        }
        out.push(&haystack[last..]);
        out
    }
}

/// Iterator returned by [`Regex::find_iter`].
pub struct FindIter<'r, 'h> {
    re: &'r Regex,
    haystack: &'h str,
    at: usize,
    done: bool,
}

impl<'h> Iterator for FindIter<'_, 'h> {
    type Item = Match<'h>;

    fn next(&mut self) -> Option<Match<'h>> {
        if self.done || self.at > self.haystack.len() {
            return None;
        }
        let caps = self.re.captures_at(self.haystack, self.at)?;
        let m = caps.get(0).expect("group 0 always set on a match");
        if m.end() == m.start() {
            // Empty match: advance one char to avoid an infinite loop.
            match self.haystack[m.end()..].chars().next() {
                Some(c) => self.at = m.end() + c.len_utf8(),
                None => self.done = true,
            }
        } else {
            self.at = m.end();
        }
        Some(m)
    }
}

/// Iterator returned by [`Regex::captures_iter`].
pub struct CapturesIter<'r, 'h> {
    re: &'r Regex,
    haystack: &'h str,
    at: usize,
    done: bool,
}

impl<'h> Iterator for CapturesIter<'_, 'h> {
    type Item = Captures<'h>;

    fn next(&mut self) -> Option<Captures<'h>> {
        if self.done || self.at > self.haystack.len() {
            return None;
        }
        let caps = self.re.captures_at(self.haystack, self.at)?;
        let m = caps.get(0).expect("group 0 always set on a match");
        if m.end() == m.start() {
            match self.haystack[m.end()..].chars().next() {
                Some(c) => self.at = m.end() + c.len_utf8(),
                None => self.done = true,
            }
        } else {
            self.at = m.end();
        }
        Some(caps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_match() {
        let re = Regex::new("abc").unwrap();
        assert!(re.is_match("xxabcxx"));
        assert!(!re.is_match("ab c"));
        let m = re.find("xxabcxx").unwrap();
        assert_eq!((m.start(), m.end()), (2, 5));
        assert_eq!(m.as_str(), "abc");
    }

    #[test]
    fn dot_does_not_match_newline() {
        let re = Regex::new("a.c").unwrap();
        assert!(re.is_match("abc"));
        assert!(re.is_match("a-c"));
        assert!(!re.is_match("a\nc"));
    }

    #[test]
    fn star_greedy_and_lazy() {
        let re = Regex::new("a.*c").unwrap();
        assert_eq!(re.find("abcbc").unwrap().as_str(), "abcbc");
        let re = Regex::new("a.*?c").unwrap();
        assert_eq!(re.find("abcbc").unwrap().as_str(), "abc");
    }

    #[test]
    fn plus_and_question() {
        let re = Regex::new("ab+c").unwrap();
        assert!(re.is_match("abbbc"));
        assert!(!re.is_match("ac"));
        let re = Regex::new("ab?c").unwrap();
        assert!(re.is_match("ac"));
        assert!(re.is_match("abc"));
        assert!(!re.is_match("abbc"));
    }

    #[test]
    fn bounded_repeats() {
        let re = Regex::new("a{2,3}").unwrap();
        assert!(!re.is_match("a"));
        assert!(re.is_match("aa"));
        assert_eq!(re.find("aaaa").unwrap().as_str(), "aaa");
        let re = Regex::new("a{3}").unwrap();
        assert!(re.is_match("aaa"));
        assert!(!re.is_match("aa"));
        let re = Regex::new("a{2,}").unwrap();
        assert_eq!(re.find("aaaa").unwrap().as_str(), "aaaa");
    }

    #[test]
    fn classes() {
        let re = Regex::new("[a-c]+").unwrap();
        assert_eq!(re.find("zzabcaz").unwrap().as_str(), "abca");
        let re = Regex::new("[^0-9]+").unwrap();
        assert_eq!(re.find("12ab34").unwrap().as_str(), "ab");
        let re = Regex::new(r"[\d.]+").unwrap();
        assert_eq!(re.find("t=12.5s").unwrap().as_str(), "12.5");
    }

    #[test]
    fn predefined_classes() {
        let re = Regex::new(r"\d+\.\d+").unwrap();
        assert_eq!(re.find("rate 123.456 GB/s").unwrap().as_str(), "123.456");
        let re = Regex::new(r"\w+").unwrap();
        assert_eq!(re.find("  hpcg_bench ").unwrap().as_str(), "hpcg_bench");
        let re = Regex::new(r"\s+").unwrap();
        assert_eq!(re.find("a \t b").unwrap().as_str(), " \t ");
        let re = Regex::new(r"\S+").unwrap();
        assert_eq!(re.find("  x=1 ").unwrap().as_str(), "x=1");
    }

    #[test]
    fn anchors() {
        let re = Regex::new("^abc").unwrap();
        assert!(re.is_match("abcdef"));
        assert!(!re.is_match("xabc"));
        let re = Regex::new("abc$").unwrap();
        assert!(re.is_match("xxabc"));
        assert!(!re.is_match("abcx"));
        let re = Regex::new("^abc$").unwrap();
        assert!(re.is_match("abc"));
        assert!(!re.is_match("aabc"));
    }

    #[test]
    fn word_boundary() {
        let re = Regex::new(r"\bGB/s").unwrap();
        assert!(re.is_match("12 GB/s"));
        let re = Regex::new(r"\bcat\b").unwrap();
        assert!(re.is_match("the cat sat"));
        assert!(!re.is_match("concatenate"));
    }

    #[test]
    fn alternation() {
        let re = Regex::new("cat|dog|bird").unwrap();
        assert_eq!(re.find("hotdog").unwrap().as_str(), "dog");
        assert!(!re.is_match("cow"));
    }

    #[test]
    fn groups_and_captures() {
        let re = Regex::new(r"(\d+)-(\d+)").unwrap();
        let caps = re.captures("range 10-25 ok").unwrap();
        assert_eq!(caps.get(0).unwrap().as_str(), "10-25");
        assert_eq!(caps.get(1).unwrap().as_str(), "10");
        assert_eq!(caps.get(2).unwrap().as_str(), "25");
    }

    #[test]
    fn named_captures() {
        let re = Regex::new(r"(?P<key>\w+)=(?P<val>\S+)").unwrap();
        let caps = re.captures("num_tasks=8").unwrap();
        assert_eq!(caps.name("key").unwrap().as_str(), "num_tasks");
        assert_eq!(caps.name("val").unwrap().as_str(), "8");
        assert!(caps.name("missing").is_none());
    }

    #[test]
    fn non_capturing_group() {
        let re = Regex::new(r"(?:ab)+(c)").unwrap();
        let caps = re.captures("ababc").unwrap();
        assert_eq!(caps.get(0).unwrap().as_str(), "ababc");
        assert_eq!(caps.get(1).unwrap().as_str(), "c");
        assert_eq!(re.group_count(), 2);
    }

    #[test]
    fn nested_groups() {
        let re = Regex::new(r"((a)(b))c").unwrap();
        let caps = re.captures("abc").unwrap();
        assert_eq!(caps.get(1).unwrap().as_str(), "ab");
        assert_eq!(caps.get(2).unwrap().as_str(), "a");
        assert_eq!(caps.get(3).unwrap().as_str(), "b");
    }

    #[test]
    fn group_under_quantifier_reports_last_iteration() {
        let re = Regex::new(r"(a|b)+").unwrap();
        let caps = re.captures("abab").unwrap();
        assert_eq!(caps.get(0).unwrap().as_str(), "abab");
        assert_eq!(caps.get(1).unwrap().as_str(), "b");
    }

    #[test]
    fn find_iter_non_overlapping() {
        let re = Regex::new(r"\d+").unwrap();
        let all: Vec<&str> = re.find_iter("a1 b22 c333").map(|m| m.as_str()).collect();
        assert_eq!(all, vec!["1", "22", "333"]);
    }

    #[test]
    fn find_iter_empty_match_advances() {
        let re = Regex::new(r"x*").unwrap();
        let n = re.find_iter("abc").count();
        assert_eq!(n, 4); // empty match at each of the 4 positions
    }

    #[test]
    fn escapes() {
        let re = Regex::new(r"\(\d+\)").unwrap();
        assert_eq!(re.find("f(42)").unwrap().as_str(), "(42)");
        let re = Regex::new(r"a\tb").unwrap();
        assert!(re.is_match("a\tb"));
        let re = Regex::new(r"\x41").unwrap();
        assert!(re.is_match("A"));
    }

    #[test]
    fn unicode_haystack() {
        let re = Regex::new(r"\w+").unwrap();
        // Word chars are ASCII-word by our definition; ensure no panic on
        // multi-byte chars and that byte offsets stay on boundaries.
        let m = re.find("héllo wörld abc").unwrap();
        assert!(!m.as_str().is_empty());
        let re = Regex::new("ö").unwrap();
        assert_eq!(re.find("wörld").unwrap().as_str(), "ö");
    }

    #[test]
    fn split() {
        let re = Regex::new(r",\s*").unwrap();
        assert_eq!(re.split("a, b,c ,d"), vec!["a", "b", "c ", "d"]);
    }

    #[test]
    fn replace() {
        let re = Regex::new(r"\d+").unwrap();
        assert_eq!(re.replace("n=42 m=3", "N"), "n=N m=3");
        assert_eq!(re.replace("none", "N"), "none");
    }

    #[test]
    fn parse_errors() {
        assert!(Regex::new("a(b").is_err());
        assert!(Regex::new("a)b").is_err());
        assert!(Regex::new("[a-").is_err());
        assert!(Regex::new("a{2,1}").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new(r"a\").is_err());
        assert!(Regex::new("(?P<dup>a)(?P<dup>b)").is_err());
    }

    #[test]
    fn realistic_fom_patterns() {
        // The patterns the harness actually uses.
        let re = Regex::new(r"Triad\s+([\d.]+)\s+").unwrap();
        let caps = re.captures("Triad        812.554     0.00132").unwrap();
        assert_eq!(caps.get(1).unwrap().as_str(), "812.554");

        let re = Regex::new(r"GFLOP/s rating of:\s*(?P<gf>[\d.]+)").unwrap();
        let caps = re
            .captures("Final summary: GFLOP/s rating of: 24.01")
            .unwrap();
        assert_eq!(caps.name("gf").unwrap().as_str(), "24.01");

        let re = Regex::new(r"average\s+(\d+\.\d+e?[-+]?\d*)").unwrap();
        assert!(re.is_match("average 1.25e-03 seconds"));
    }

    #[test]
    fn case_insensitive_flag() {
        let re = Regex::new("(?i)triad").unwrap();
        assert!(re.is_match("TRIAD"));
        assert!(re.is_match("Triad"));
        assert!(re.is_match("triad"));
        let m = re.find("xx TRIAD yy").unwrap();
        assert_eq!(m.as_str(), "TRIAD", "offsets index the original text");
        // Classes fold too.
        let re = Regex::new(r"(?i)[a-f]+").unwrap();
        assert_eq!(re.find("zzCAFEzz").unwrap().as_str(), "CAFE");
        // Without the flag, matching stays exact.
        assert!(!Regex::new("triad").unwrap().is_match("TRIAD"));
    }

    #[test]
    fn replace_all_every_match() {
        let re = Regex::new(r"\d+").unwrap();
        assert_eq!(re.replace_all("a1b22c333", "#"), "a#b#c#");
        assert_eq!(re.replace_all("none", "#"), "none");
        // Empty matches don't loop forever.
        let re = Regex::new("x*").unwrap();
        assert_eq!(re.replace_all("ab", "-"), "-a-b-");
    }

    #[test]
    fn alternation_is_first_match_like_python() {
        let re = Regex::new("ab|abc").unwrap();
        assert_eq!(re.find("abc").unwrap().as_str(), "ab");
    }

    #[test]
    fn anchored_search_does_not_scan() {
        let re = Regex::new("^x").unwrap();
        assert!(!re.is_match("ax"));
        assert!(re.is_match("x"));
    }
}
