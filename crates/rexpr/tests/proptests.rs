//! Property-based tests for the regex engine.

use proptest::prelude::*;
use rexpr::Regex;

/// Escape a string so it matches itself literally.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() * 2);
    for c in s.chars() {
        if "\\.^$|?*+()[]{}".contains(c) {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

proptest! {
    /// A quoted literal always matches itself, anywhere in a haystack.
    #[test]
    fn quoted_literal_matches_itself(s in "[ -~]{1,24}", pre in "[ -~]{0,8}", post in "[ -~]{0,8}") {
        let re = Regex::new(&quote(&s)).unwrap();
        let hay = format!("{pre}{s}{post}");
        prop_assert!(re.is_match(&hay), "pattern {:?} should match {:?}", quote(&s), hay);
        prop_assert!(re.is_match(&s));
    }

    /// find() returns offsets that slice to the reported text.
    #[test]
    fn find_offsets_are_consistent(hay in "[a-z0-9 .]{0,60}") {
        let re = Regex::new(r"\d+").unwrap();
        if let Some(m) = re.find(&hay) {
            prop_assert_eq!(&hay[m.start()..m.end()], m.as_str());
            prop_assert!(m.as_str().chars().all(|c| c.is_ascii_digit()));
            // Leftmost: no digit appears before the match start.
            prop_assert!(hay[..m.start()].chars().all(|c| !c.is_ascii_digit()));
        } else {
            prop_assert!(hay.chars().all(|c| !c.is_ascii_digit()));
        }
    }

    /// find_iter segments cover every digit in the haystack exactly once.
    #[test]
    fn find_iter_covers_all_digits(hay in "[a-z0-9]{0,60}") {
        let re = Regex::new(r"\d+").unwrap();
        let matched: usize = re.find_iter(&hay).map(|m| m.len()).sum();
        let digits = hay.chars().filter(|c| c.is_ascii_digit()).count();
        prop_assert_eq!(matched, digits);
    }

    /// Splitting and rejoining on a fixed separator is lossless.
    #[test]
    fn split_roundtrip(parts in prop::collection::vec("[a-z]{0,6}", 1..6)) {
        let joined = parts.join(",");
        let re = Regex::new(",").unwrap();
        prop_assert_eq!(re.split(&joined), parts);
    }

    /// An anchored full match `^p$` agrees with equality for literals.
    #[test]
    fn full_anchor_is_equality(s in "[a-z]{0,12}", t in "[a-z]{0,12}") {
        let re = Regex::new(&format!("^{}$", quote(&s))).unwrap();
        prop_assert_eq!(re.is_match(&t), s == t);
    }

    /// Greedy star consumes maximal runs.
    #[test]
    fn greedy_star_is_maximal(n in 0usize..20, m in 1usize..5) {
        let hay = format!("{}{}", "a".repeat(n), "b".repeat(m));
        let re = Regex::new("a*").unwrap();
        let found = re.find(&hay).unwrap();
        prop_assert_eq!(found.len(), n);
        prop_assert_eq!(found.start(), 0);
    }

    /// Bounded repetition `a{lo,hi}` matches iff the run is long enough,
    /// and never consumes more than `hi`.
    #[test]
    fn bounded_repeat_respects_bounds(n in 0usize..12, lo in 0usize..6, width in 0usize..6) {
        let hi = lo + width;
        let pat = format!("^a{{{lo},{hi}}}");
        let re = Regex::new(&pat).unwrap();
        let hay = "a".repeat(n);
        match re.find(&hay) {
            Some(m) => {
                prop_assert!(n >= lo);
                prop_assert_eq!(m.len(), n.min(hi));
            }
            None => prop_assert!(n < lo),
        }
    }

    /// Captures lie within the whole match.
    #[test]
    fn captures_nested_within_group0(hay in "[a-z0-9=;]{0,50}") {
        let re = Regex::new(r"([a-z]+)=(\d+)").unwrap();
        for caps in re.captures_iter(&hay) {
            let whole = caps.get(0).unwrap();
            for i in 1..=2 {
                if let Some(g) = caps.get(i) {
                    prop_assert!(g.start() >= whole.start());
                    prop_assert!(g.end() <= whole.end());
                }
            }
        }
    }

    /// The engine never panics on arbitrary (possibly invalid) patterns.
    #[test]
    fn parser_total_on_arbitrary_input(pat in "[ -~]{0,20}", hay in "[ -~]{0,20}") {
        if let Ok(re) = Regex::new(&pat) {
            let _ = re.is_match(&hay);
        }
    }

    /// Alternation of literals behaves like string containment (first-match).
    #[test]
    fn alternation_matches_any_branch(a in "[a-c]{1,4}", b in "[d-f]{1,4}", hay in "[a-f]{0,20}") {
        let re = Regex::new(&format!("{}|{}", quote(&a), quote(&b))).unwrap();
        let expect = hay.contains(&a) || hay.contains(&b);
        prop_assert_eq!(re.is_match(&hay), expect);
    }
}
