//! `perflogs` — the performance-log format (§2.4, Principle 6).
//!
//! Every benchmark run appends one structured record to a performance log
//! ("perflog") associated with the benchmark on each system. Perflogs from
//! isolated systems are later assimilated into a single data frame for
//! filtering and plotting. The on-disk format is JSON Lines: one
//! self-describing JSON object per run, written and parsed by `tinycfg`'s
//! value model (no external serialization dependency).

use dframe::{Cell, DataFrame};
use tinycfg::{Map, Value};

/// One Figure of Merit extracted from a run.
#[derive(Debug, Clone, PartialEq)]
pub struct Fom {
    pub name: String,
    pub value: f64,
    pub unit: String,
}

/// One benchmark run's perflog record.
#[derive(Debug, Clone, PartialEq)]
pub struct PerflogRecord {
    /// Monotonic run counter (stands in for a wall-clock timestamp so that
    /// records — and the experiments built on them — stay reproducible).
    pub sequence: u64,
    pub benchmark: String,
    pub system: String,
    pub partition: String,
    /// Programming environment / compiler (e.g. `gcc@9.2.0`).
    pub environ: String,
    /// The concretized spec that was built (P4: archaeology).
    pub spec: String,
    /// Content hash of the build DAG.
    pub build_hash: String,
    pub job_id: Option<u64>,
    pub num_tasks: u32,
    pub num_tasks_per_node: u32,
    pub num_cpus_per_task: u32,
    pub foms: Vec<Fom>,
    /// Free-form extra fields (queue wait, array size, variant, ...).
    pub extras: Vec<(String, String)>,
}

impl PerflogRecord {
    /// Look up a FOM by name.
    pub fn fom(&self, name: &str) -> Option<&Fom> {
        self.foms.iter().find(|f| f.name == name)
    }

    /// Look up an extra field by key.
    pub fn extra(&self, key: &str) -> Option<&str> {
        self.extras
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Look up an extra field and parse it as a signed integer.
    ///
    /// Extras are stored as strings; subprocess facts like `exit_code`
    /// can legitimately be negative, so this parses through `i64` — never
    /// an unsigned cast that would wrap `-11` into 18446744073709551605.
    pub fn int_extra(&self, key: &str) -> Option<i64> {
        self.extra(key)?.parse().ok()
    }

    /// Serialize as a single JSON line.
    pub fn to_json_line(&self) -> String {
        self.to_value().to_json()
    }

    /// The record as a `tinycfg` value tree — the building block both for
    /// [`PerflogRecord::to_json_line`] and for containers that embed
    /// records in larger documents (the harness checkpoint journal).
    pub fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("sequence", Value::Int(self.sequence as i64));
        m.insert("benchmark", Value::from(self.benchmark.as_str()));
        m.insert("system", Value::from(self.system.as_str()));
        m.insert("partition", Value::from(self.partition.as_str()));
        m.insert("environ", Value::from(self.environ.as_str()));
        m.insert("spec", Value::from(self.spec.as_str()));
        m.insert("build_hash", Value::from(self.build_hash.as_str()));
        m.insert(
            "job_id",
            self.job_id
                .map(|j| Value::Int(j as i64))
                .unwrap_or(Value::Null),
        );
        m.insert("num_tasks", Value::Int(self.num_tasks as i64));
        m.insert(
            "num_tasks_per_node",
            Value::Int(self.num_tasks_per_node as i64),
        );
        m.insert(
            "num_cpus_per_task",
            Value::Int(self.num_cpus_per_task as i64),
        );
        let foms: Vec<Value> = self
            .foms
            .iter()
            .map(|f| {
                let mut fm = Map::new();
                fm.insert("name", Value::from(f.name.as_str()));
                // JSON has no NaN/Inf, and the emitter would write `null`
                // — which reparses as a *missing* value, silently erasing
                // a bad measurement. Encode non-finite FOMs as strings so
                // they round-trip and stay loud in the analysis layer.
                let value = if f.value.is_finite() {
                    Value::Float(f.value)
                } else {
                    Value::Str(format!("{}", f.value))
                };
                fm.insert("value", value);
                fm.insert("unit", Value::from(f.unit.as_str()));
                Value::Map(fm)
            })
            .collect();
        m.insert("foms", Value::List(foms));
        let mut extras = Map::new();
        for (k, v) in &self.extras {
            extras.insert(k.clone(), Value::from(v.as_str()));
        }
        m.insert("extras", Value::Map(extras));
        Value::Map(m)
    }

    /// Parse one JSON line back into a record.
    pub fn from_json_line(line: &str) -> Result<PerflogRecord, PerflogError> {
        Self::from_value(&parse_json(line)?)
    }

    /// Reconstruct a record from a `tinycfg` value tree (inverse of
    /// [`PerflogRecord::to_value`]), with the same strict counter
    /// validation as [`PerflogRecord::from_json_line`].
    pub fn from_value(doc: &Value) -> Result<PerflogRecord, PerflogError> {
        let str_at = |key: &str| -> Result<String, PerflogError> {
            doc.get_path(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| PerflogError(format!("missing string field `{key}`")))
        };
        let int_at = |key: &str| -> Result<i64, PerflogError> {
            doc.get_path(key)
                .and_then(Value::as_int)
                .ok_or_else(|| PerflogError(format!("missing integer field `{key}`")))
        };
        // Counters must not wrap: `"num_tasks": -1` is a malformed record,
        // not 4294967295 tasks.
        let uint_at = |key: &str| -> Result<u64, PerflogError> {
            let v = int_at(key)?;
            u64::try_from(v)
                .map_err(|_| PerflogError(format!("field `{key}` must be non-negative, got {v}")))
        };
        let u32_at = |key: &str| -> Result<u32, PerflogError> {
            let v = int_at(key)?;
            u32::try_from(v).map_err(|_| {
                PerflogError(format!("field `{key}` out of range for a count, got {v}"))
            })
        };
        let mut foms = Vec::new();
        for f in doc
            .get_path("foms")
            .and_then(Value::as_list)
            .ok_or_else(|| PerflogError("missing `foms` list".into()))?
        {
            foms.push(Fom {
                name: f
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| PerflogError("fom missing name".into()))?
                    .to_string(),
                value: {
                    let v = f
                        .get("value")
                        .ok_or_else(|| PerflogError("fom missing value".into()))?;
                    // Non-finite values arrive as the strings to_value
                    // wrote ("NaN", "inf", "-inf"); finite ones as floats.
                    v.as_float()
                        .or_else(|| {
                            v.as_str()
                                .and_then(|s| s.parse::<f64>().ok())
                                .filter(|p| !p.is_finite())
                        })
                        .ok_or_else(|| PerflogError("fom missing value".into()))?
                },
                unit: f
                    .get("unit")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string(),
            });
        }
        let mut extras = Vec::new();
        if let Some(m) = doc.get_path("extras").and_then(Value::as_map) {
            for (k, v) in m.iter() {
                extras.push((k.to_string(), v.scalar_string()));
            }
        }
        let job_id = match doc.get_path("job_id").and_then(Value::as_int) {
            Some(j) => Some(u64::try_from(j).map_err(|_| {
                PerflogError(format!("field `job_id` must be non-negative, got {j}"))
            })?),
            None => None,
        };
        Ok(PerflogRecord {
            sequence: uint_at("sequence")?,
            benchmark: str_at("benchmark")?,
            system: str_at("system")?,
            partition: str_at("partition")?,
            environ: str_at("environ")?,
            spec: str_at("spec")?,
            build_hash: str_at("build_hash")?,
            job_id,
            num_tasks: u32_at("num_tasks")?,
            num_tasks_per_node: u32_at("num_tasks_per_node")?,
            num_cpus_per_task: u32_at("num_cpus_per_task")?,
            foms,
            extras,
        })
    }
}

/// JSON is a subset of the flow syntax `tinycfg` already parses.
fn parse_json(line: &str) -> Result<Value, PerflogError> {
    tinycfg::parse(line).map_err(|e| PerflogError(format!("bad perflog line: {e}")))
}

/// Perflog parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerflogError(pub String);

impl std::fmt::Display for PerflogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "perflog error: {}", self.0)
    }
}

impl std::error::Error for PerflogError {}

/// An in-memory perflog: an append-only sequence of records, one per run,
/// with JSONL serialization. One `Perflog` corresponds to one benchmark on
/// one system — exactly ReFrame's layout.
#[derive(Debug, Clone, Default)]
pub struct Perflog {
    records: Vec<PerflogRecord>,
}

impl Perflog {
    pub fn new() -> Perflog {
        Perflog::default()
    }

    pub fn append(&mut self, record: PerflogRecord) {
        self.records.push(record);
    }

    pub fn records(&self) -> &[PerflogRecord] {
        &self.records
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serialize as JSON Lines.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Parse a JSONL perflog.
    pub fn from_jsonl(text: &str) -> Result<Perflog, PerflogError> {
        let mut log = Perflog::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            log.append(PerflogRecord::from_json_line(line)?);
        }
        Ok(log)
    }

    /// Flatten into a data frame: one row per (record, FOM) pair. This is
    /// the representation the postprocessing pipeline consumes; frames from
    /// several perflogs concatenate cleanly (P6).
    pub fn to_frame(&self) -> DataFrame {
        let mut df = DataFrame::new(vec![
            "sequence",
            "benchmark",
            "system",
            "partition",
            "environ",
            "spec",
            "build_hash",
            "num_tasks",
            "num_tasks_per_node",
            "num_cpus_per_task",
            "fom",
            "value",
            "unit",
        ]);
        for r in &self.records {
            for f in &r.foms {
                df.push_row(vec![
                    Cell::from(r.sequence as i64),
                    Cell::from(r.benchmark.as_str()),
                    Cell::from(r.system.as_str()),
                    Cell::from(r.partition.as_str()),
                    Cell::from(r.environ.as_str()),
                    Cell::from(r.spec.as_str()),
                    Cell::from(r.build_hash.as_str()),
                    Cell::from(r.num_tasks as i64),
                    Cell::from(r.num_tasks_per_node as i64),
                    Cell::from(r.num_cpus_per_task as i64),
                    Cell::from(f.name.as_str()),
                    Cell::from(f.value),
                    Cell::from(f.unit.as_str()),
                ])
                .expect("fixed schema");
            }
        }
        df
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seq: u64, system: &str, fom: f64) -> PerflogRecord {
        PerflogRecord {
            sequence: seq,
            benchmark: "babelstream".into(),
            system: system.into(),
            partition: "cascadelake".into(),
            environ: "gcc@9.2.0".into(),
            spec: "babelstream%gcc@9.2.0 +omp".into(),
            build_hash: "abcdefg".into(),
            job_id: Some(41 + seq),
            num_tasks: 1,
            num_tasks_per_node: 1,
            num_cpus_per_task: 40,
            foms: vec![
                Fom {
                    name: "Triad".into(),
                    value: fom,
                    unit: "MB/s".into(),
                },
                Fom {
                    name: "Copy".into(),
                    value: fom * 0.9,
                    unit: "MB/s".into(),
                },
            ],
            extras: vec![("array_size".into(), "33554432".into())],
        }
    }

    #[test]
    fn json_roundtrip() {
        let r = record(3, "isambard-macs", 212000.0);
        let line = r.to_json_line();
        let back = PerflogRecord::from_json_line(&line).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn jsonl_roundtrip_multiple() {
        let mut log = Perflog::new();
        for i in 0..5 {
            log.append(record(i, "archer2", 1000.0 * i as f64 + 5.0));
        }
        let text = log.to_jsonl();
        assert_eq!(text.lines().count(), 5);
        let back = Perflog::from_jsonl(&text).unwrap();
        assert_eq!(back.records(), log.records());
    }

    #[test]
    fn nonfinite_fom_round_trips_loudly() {
        // JSON cannot carry NaN/Inf, and emitting `null` used to make the
        // whole record unreadable ("fom missing value") — a bad
        // measurement silently killed its perflog. Non-finite FOMs now
        // round-trip as quoted strings and stay visible downstream.
        for (value, check) in [
            (f64::NAN, (|v: f64| v.is_nan()) as fn(f64) -> bool),
            (f64::INFINITY, |v| v == f64::INFINITY),
            (f64::NEG_INFINITY, |v| v == f64::NEG_INFINITY),
        ] {
            let r = record(1, "archer2", value);
            let line = r.to_json_line();
            let back =
                PerflogRecord::from_json_line(&line).unwrap_or_else(|e| panic!("{value}: {e}"));
            assert!(check(back.fom("Triad").unwrap().value), "{line}");
        }
        // A finite string value is still rejected: only the emitter's
        // non-finite encodings are accepted, not stringly-typed floats.
        let sneaky = record(1, "archer2", 1.0)
            .to_json_line()
            .replace("\"value\":1.0", "\"value\":\"1.5\"");
        assert!(PerflogRecord::from_json_line(&sneaky).is_err());
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(Perflog::from_jsonl("{not json").is_err());
        assert!(PerflogRecord::from_json_line("{}").is_err());
        assert!(PerflogRecord::from_json_line(r#"{"sequence": 1}"#).is_err());
    }

    #[test]
    fn negative_counters_rejected_not_wrapped() {
        // The bug: `as u64` / `as u32` casts silently turned -1 into
        // 4294967295. Every integer field must instead fail to parse.
        let good = record(3, "archer2", 1000.0).to_json_line();
        for field in [
            "sequence",
            "num_tasks",
            "num_tasks_per_node",
            "num_cpus_per_task",
            "job_id",
        ] {
            let bad = regex_free_set_int(&good, field, -1);
            let err = PerflogRecord::from_json_line(&bad).unwrap_err();
            assert!(
                err.0.contains(field),
                "field `{field}`: expected validation error, got {err:?}"
            );
        }
        // A record with every counter non-negative still parses.
        assert!(PerflogRecord::from_json_line(&good).is_ok());
    }

    /// Set `"key":<int>` to `value` in a compact JSON line (test helper).
    fn regex_free_set_int(line: &str, key: &str, value: i64) -> String {
        let marker = format!("\"{key}\":");
        let start = line.find(&marker).expect("key present") + marker.len();
        let end = start + line[start..].find([',', '}']).expect("value terminated");
        format!("{}{}{}", &line[..start], value, &line[end..])
    }

    #[test]
    fn empty_lines_skipped() {
        let mut log = Perflog::new();
        log.append(record(0, "csd3", 1.0));
        let text = format!("\n{}\n\n", log.to_jsonl());
        assert_eq!(Perflog::from_jsonl(&text).unwrap().len(), 1);
    }

    #[test]
    fn frame_flattening() {
        let mut log = Perflog::new();
        log.append(record(0, "archer2", 100.0));
        log.append(record(1, "csd3", 200.0));
        let df = log.to_frame();
        assert_eq!(df.n_rows(), 4); // 2 records × 2 FOMs
        let triads = df.filter_eq("fom", &Cell::from("Triad")).unwrap();
        assert_eq!(triads.n_rows(), 2);
        let csd3 = triads.filter_eq("system", &Cell::from("csd3")).unwrap();
        assert_eq!(csd3.column("value").unwrap().get(0).as_float(), Some(200.0));
    }

    #[test]
    fn cross_system_assimilation() {
        // The paper's key P6 workflow: concatenate per-system perflogs.
        let mut a = Perflog::new();
        a.append(record(0, "archer2", 100.0));
        let mut b = Perflog::new();
        b.append(record(0, "cosma8", 150.0));
        let combined = dframe::DataFrame::concat(&[a.to_frame(), b.to_frame()]);
        assert_eq!(combined.n_rows(), 4);
        assert_eq!(combined.unique("system").unwrap().len(), 2);
    }

    #[test]
    fn engine_extras_round_trip_losslessly() {
        // The engine runner records subprocess facts as extras. Exit codes
        // may be negative, and stderr from a crashing engine is captured
        // lossily — non-UTF8 bytes become U+FFFD — so both must survive a
        // JSONL round-trip byte-for-byte.
        let lossy_stderr = String::from_utf8_lossy(b"kap\xff\xfeut: seg\xc3").into_owned();
        assert!(lossy_stderr.contains('\u{FFFD}'), "{lossy_stderr:?}");
        let mut r = record(7, "archer2", 1000.0);
        r.extras = vec![
            ("error".into(), "engine failure: engine exited".into()),
            ("exit_code".into(), "-11".into()),
            ("signal".into(), "15".into()),
            ("timed_out".into(), "true".into()),
            ("stderr".into(), lossy_stderr.clone()),
        ];
        let back = PerflogRecord::from_json_line(&r.to_json_line()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.int_extra("exit_code"), Some(-11), "no wraparound");
        assert_eq!(back.int_extra("signal"), Some(15));
        assert_eq!(back.extra("timed_out"), Some("true"));
        assert_eq!(back.extra("stderr"), Some(lossy_stderr.as_str()));
        assert_eq!(back.extra("nope"), None);
        assert_eq!(back.int_extra("error"), None, "non-numeric extra");
    }

    #[test]
    fn fom_lookup() {
        let r = record(0, "x", 42.0);
        assert_eq!(r.fom("Triad").unwrap().value, 42.0);
        assert!(r.fom("Nope").is_none());
    }
}
