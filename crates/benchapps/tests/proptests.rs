//! Property tests for the benchmark numerics: the solvers must converge
//! and the operators must stay symmetric positive definite for *any* valid
//! problem size — not just the sizes the examples happen to use.

use benchapps::hpcg::{build_operator, pcg, HpcgVariant, Problem};
use benchapps::hpgmg::Multigrid;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CG + SymGS converges on the Poisson problem for any small cube and
    /// any variant.
    #[test]
    fn cg_converges_for_any_size(dim in 3usize..10, variant_idx in 0usize..4) {
        let variant = HpcgVariant::all()[variant_idx % 4];
        let problem = Problem::cube(dim);
        let op = build_operator(variant, &problem);
        let stats = pcg(op.as_ref(), &problem.rhs, 120, 1e-8);
        prop_assert!(stats.converging(), "{variant:?} at {dim}^3 did not converge");
        prop_assert!(
            stats.final_relative_residual() < 1e-8,
            "{variant:?} at {dim}^3: residual {}",
            stats.final_relative_residual()
        );
    }

    /// Operators are symmetric on random probes for any (possibly
    /// anisotropic) grid shape.
    #[test]
    fn operators_symmetric(nx in 2usize..7, ny in 2usize..7, nz in 2usize..7, seed in any::<u64>()) {
        let problem = Problem::new(nx, ny, nz);
        let n = problem.n();
        let mut rng = simhpc::noise::SplitMix64::new(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64() - 0.5).collect();
        let y: Vec<f64> = (0..n).map(|_| rng.next_f64() - 0.5).collect();
        for variant in HpcgVariant::all() {
            let op = build_operator(*variant, &problem);
            let mut ax = vec![0.0; n];
            let mut ay = vec![0.0; n];
            op.apply(&x, &mut ax);
            op.apply(&y, &mut ay);
            let axy: f64 = ax.iter().zip(&y).map(|(a, b)| a * b).sum();
            let xay: f64 = x.iter().zip(&ay).map(|(a, b)| a * b).sum();
            prop_assert!(
                (axy - xay).abs() <= 1e-8 * axy.abs().max(1.0),
                "{variant:?} not symmetric on {nx}x{ny}x{nz}"
            );
        }
    }

    /// Operators are positive definite on random non-zero probes.
    #[test]
    fn operators_positive_definite(dim in 2usize..7, seed in any::<u64>()) {
        let problem = Problem::cube(dim);
        let n = problem.n();
        let mut rng = simhpc::noise::SplitMix64::new(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64() - 0.5).collect();
        prop_assume!(x.iter().any(|v| v.abs() > 1e-9));
        for variant in HpcgVariant::all() {
            let op = build_operator(*variant, &problem);
            let mut ax = vec![0.0; n];
            op.apply(&x, &mut ax);
            let xax: f64 = x.iter().zip(&ax).map(|(a, b)| a * b).sum();
            prop_assert!(xax > 0.0, "{variant:?} not PD at {dim}^3");
        }
    }

    /// Multigrid converges for every power-of-two grid, with a cycle count
    /// that does not blow up with size (mesh independence).
    #[test]
    fn multigrid_mesh_independent(log_n in 2u32..6) {
        let n = 1usize << log_n;
        let mut mg = Multigrid::new(n).expect("valid grid");
        mg.set_rhs_sine();
        let (r0, r, cycles) = mg.solve(25, 1e-8);
        prop_assert!(r < r0 * 1e-7, "n={n}: only reached {:.2e} in {cycles} cycles", r / r0);
        prop_assert!(cycles <= 20, "n={n}: {cycles} cycles");
    }

    /// The BabelStream validation math holds for any rep count: running the
    /// kernels really does evolve the arrays as the closed form predicts.
    #[test]
    fn babelstream_validates_for_any_reps(reps in 1usize..20, log_n in 6usize..12) {
        let cfg = benchapps::babelstream::BabelStreamConfig {
            array_size: 1 << log_n,
            reps,
            model: parkern::Model::Serial,
            threads: Some(1),
        };
        let out = benchapps::babelstream::run(&cfg, &benchapps::ExecutionMode::Native);
        prop_assert!(out.is_ok(), "validation failed: {:?}", out.err());
    }

    /// Simulated FOMs are deterministic per seed and never exceed physical
    /// ceilings (triad below LLC bandwidth even when cache-resident).
    #[test]
    fn simulated_triad_bounded(seed in any::<u64>(), log_n in 14usize..26) {
        let mode = benchapps::ExecutionMode::simulated("csd3", seed).expect("catalog");
        let cfg = benchapps::babelstream::BabelStreamConfig {
            array_size: 1 << log_n,
            reps: 3,
            model: parkern::Model::Omp,
            threads: None,
        };
        let out = benchapps::babelstream::run(&cfg, &mode).expect("runs");
        let triad: f64 = out
            .stdout
            .lines()
            .find(|l| l.starts_with("Triad"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .expect("triad row");
        // LLC bandwidth is the absolute ceiling (1200 GB/s on CSD3).
        prop_assert!(triad > 0.0 && triad < 1_200_000.0, "triad {triad}");
        let out2 = benchapps::babelstream::run(&cfg, &mode).expect("runs");
        prop_assert_eq!(out.stdout, out2.stdout, "same seed, same output");
    }
}
