//! Reusable scratch buffers for benchmark hot paths.
//!
//! The harness runs each cell's benchmark repeatedly (repetitions, retry
//! attempts, survey cells), and every run used to allocate its working
//! vectors afresh — page faults and allocator traffic that the timed
//! kernels then measured. An [`Arena`] keeps returned buffers and hands
//! them back zero-initialised, so steady-state iterations are
//! allocation-free while producing exactly the values `vec![fill; n]`
//! would: results are byte-identical with or without reuse.

/// A pool of `Vec<f64>` buffers reused across benchmark iterations.
///
/// Not thread-safe by design: each harness worker owns one arena (cells
/// already run on independent harnesses).
#[derive(Debug, Default)]
pub struct Arena {
    pool: Vec<Vec<f64>>,
}

impl Arena {
    pub fn new() -> Arena {
        Arena::default()
    }

    /// A buffer of length `n` filled with `fill` — identical contents to a
    /// fresh `vec![fill; n]`, but reusing pooled capacity when available.
    pub fn take(&mut self, n: usize, fill: f64) -> Vec<f64> {
        match self.pool.pop() {
            Some(mut v) => {
                v.clear();
                v.resize(n, fill);
                v
            }
            None => vec![fill; n],
        }
    }

    /// A buffer of length `n` initialised from `src`.
    pub fn take_copy(&mut self, src: &[f64]) -> Vec<f64> {
        match self.pool.pop() {
            Some(mut v) => {
                v.clear();
                v.extend_from_slice(src);
                v
            }
            None => src.to_vec(),
        }
    }

    /// Return a buffer to the pool for later reuse.
    pub fn give(&mut self, v: Vec<f64>) {
        // Keep the pool bounded: tiny buffers are cheaper to reallocate
        // than to track, and an unbounded pool would pin peak memory.
        if v.capacity() > 0 && self.pool.len() < 16 {
            self.pool.push(v);
        }
    }

    /// Buffers currently pooled (for tests and diagnostics).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_matches_fresh_allocation() {
        let mut arena = Arena::new();
        let mut v = arena.take(100, 1.5);
        assert_eq!(v, vec![1.5; 100]);
        v[0] = 42.0;
        arena.give(v);
        // Reused buffer must be indistinguishable from a fresh one.
        let v2 = arena.take(64, 0.0);
        assert_eq!(v2, vec![0.0; 64]);
        let v3 = arena.take(200, -1.0);
        assert_eq!(v3, vec![-1.0; 200]);
    }

    #[test]
    fn take_copy_matches_to_vec() {
        let mut arena = Arena::new();
        let src: Vec<f64> = (0..50).map(|i| i as f64).collect();
        arena.give(vec![9.0; 1000]);
        let v = arena.take_copy(&src);
        assert_eq!(v, src);
    }

    #[test]
    fn pool_is_bounded() {
        let mut arena = Arena::new();
        for _ in 0..100 {
            arena.give(vec![0.0; 8]);
        }
        assert!(arena.pooled() <= 16);
    }

    #[test]
    fn buffers_round_trip() {
        let mut arena = Arena::new();
        let a = arena.take(10, 0.0);
        let b = arena.take(10, 0.0);
        arena.give(a);
        arena.give(b);
        assert_eq!(arena.pooled(), 2);
        let _ = arena.take(5, 0.0);
        assert_eq!(arena.pooled(), 1);
    }
}
