//! `benchapps` — the benchmark applications of the paper's case studies.
//!
//! Three benchmarks drive the evaluation (§3):
//!
//! * [`babelstream`] — the memory-bandwidth benchmark behind Figure 2, in
//!   all nine programming models;
//! * [`hpcg`] — the sparse conjugate-gradient benchmark of Table 2, with
//!   the paper's four algorithm/implementation variants (CSR,
//!   vendor-optimized CSR, matrix-free, and the LFRic Helmholtz operator);
//! * [`hpgmg`] — the finite-volume full-multigrid proxy of Tables 3 & 4;
//!
//! plus [`stream`], the classic STREAM kernel set used as a reference.
//!
//! Every benchmark runs in one of two [`ExecutionMode`]s:
//!
//! * **Native** — kernels run at full size on this machine, timed with the
//!   wall clock. This is what a user without the paper's systems gets.
//! * **Simulated** — kernels still run (on capped problem sizes, so the
//!   numerics and sanity checks are genuine) but reported times come from
//!   the `simhpc` platform cost model for a named system/partition, with
//!   deterministic noise. This regenerates the paper's tables and figure.
//!
//! Each run returns a [`RunOutput`]: the benchmark's textual stdout —
//! formatted like the real tools so the harness's regex-based FOM
//! extraction is honest — plus its wall time.

pub mod babelstream;
pub mod hpcg;
pub mod hpgmg;
pub mod scratch;
pub mod stream;

use simhpc::Partition;

/// Where (and how) a benchmark executes.
#[derive(Debug, Clone)]
pub enum ExecutionMode {
    /// Run at full size on the local machine with real timing.
    Native,
    /// Run numerics at reduced size; report timings from the platform
    /// model for this partition, perturbed by seeded noise.
    Simulated {
        partition: Box<Partition>,
        /// System name (seeds the noise stream and labels output).
        system: String,
        /// Run seed: same seed → identical simulated measurements.
        seed: u64,
    },
}

impl ExecutionMode {
    /// Simulated mode for a `system:partition` spec from the catalog.
    pub fn simulated(spec: &str, seed: u64) -> Option<ExecutionMode> {
        let (sys, part_name) = simhpc::catalog::resolve(spec)?;
        let partition = Box::new(sys.partition(&part_name)?.clone());
        Some(ExecutionMode::Simulated {
            partition,
            system: sys.name().to_string(),
            seed,
        })
    }

    /// The partition this mode targets, if simulated.
    pub fn partition(&self) -> Option<&Partition> {
        match self {
            ExecutionMode::Native => None,
            ExecutionMode::Simulated { partition, .. } => Some(partition),
        }
    }
}

/// The outcome of one benchmark run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Benchmark stdout, formatted like the real tool.
    pub stdout: String,
    /// Wall time of the (possibly simulated) run, seconds.
    pub wall_time_s: f64,
}

/// Errors from benchmark execution.
#[derive(Debug, Clone, PartialEq)]
pub enum BenchError {
    /// The requested configuration cannot run on the target.
    Unsupported(String),
    /// Numerical validation failed — the run must not produce a FOM.
    ValidationFailed(String),
    /// Bad configuration.
    BadConfig(String),
}

impl std::fmt::Display for BenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchError::Unsupported(m) => write!(f, "unsupported configuration: {m}"),
            BenchError::ValidationFailed(m) => write!(f, "validation failed: {m}"),
            BenchError::BadConfig(m) => write!(f, "bad configuration: {m}"),
        }
    }
}

impl std::error::Error for BenchError {}

/// Cap used in simulated mode so the *real* numerical work stays laptop
/// sized while costs are computed for the full requested size.
pub(crate) const SIM_EXECUTION_CAP: usize = 1 << 16;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_mode_resolves_catalog_specs() {
        assert!(ExecutionMode::simulated("archer2", 1).is_some());
        assert!(ExecutionMode::simulated("isambard-macs:volta", 1).is_some());
        assert!(ExecutionMode::simulated("no-such-system", 1).is_none());
        let m = ExecutionMode::simulated("csd3", 7).unwrap();
        assert_eq!(m.partition().unwrap().name(), "cascadelake");
        assert!(ExecutionMode::Native.partition().is_none());
    }
}
