//! Preconditioned conjugate gradient, HPCG-style.

use super::ops::Operator;
use crate::scratch::Arena;

/// Convergence statistics from one CG solve.
#[derive(Debug, Clone)]
pub struct CgStats {
    /// Iterations actually performed.
    pub iterations: usize,
    /// Residual 2-norm after each iteration (index 0 = initial residual).
    pub residuals: Vec<f64>,
}

impl CgStats {
    /// Did the solver make progress? (Sanity condition for a VALID run.)
    pub fn converging(&self) -> bool {
        match (self.residuals.first(), self.residuals.last()) {
            (Some(&first), Some(&last)) => last < first && last.is_finite(),
            _ => false,
        }
    }

    /// ‖r_k‖ / ‖r_0‖.
    pub fn final_relative_residual(&self) -> f64 {
        match (self.residuals.first(), self.residuals.last()) {
            (Some(&first), Some(&last)) if first > 0.0 => last / first,
            _ => f64::NAN,
        }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Solve `A x = b` from `x = 0` with symmetric-Gauss-Seidel-preconditioned
/// CG. Stops after `max_iters` or when the relative residual drops below
/// `tolerance`.
pub fn pcg(op: &dyn Operator, b: &[f64], max_iters: usize, tolerance: f64) -> CgStats {
    pcg_with(op, b, max_iters, tolerance, &mut Arena::new())
}

/// [`pcg`] drawing its five working vectors from `arena` and returning
/// them afterwards, so repeated solves (harness repetitions, retries,
/// survey cells) allocate nothing in steady state. The buffers arrive with
/// exactly the contents a fresh allocation would have, so results are
/// byte-identical to [`pcg`].
pub fn pcg_with(
    op: &dyn Operator,
    b: &[f64],
    max_iters: usize,
    tolerance: f64,
    arena: &mut Arena,
) -> CgStats {
    let n = op.n();
    assert_eq!(b.len(), n, "rhs length must match the operator");
    let mut x = arena.take(n, 0.0);
    let mut r = arena.take_copy(b); // r = b - A·0
    let mut z = arena.take(n, 0.0);
    let mut ap = arena.take(n, 0.0);

    let norm0 = dot(&r, &r).sqrt();
    let mut residuals = vec![norm0];
    if norm0 == 0.0 {
        for v in [x, r, z, ap] {
            arena.give(v);
        }
        return CgStats {
            iterations: 0,
            residuals,
        };
    }

    // z = M⁻¹ r via one SymGS sweep from zero.
    z.fill(0.0);
    op.symgs(&r, &mut z);
    let mut p = arena.take_copy(&z);
    let mut rz = dot(&r, &z);
    let mut iterations = 0;

    for _ in 0..max_iters {
        op.apply(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 || !pap.is_finite() {
            break; // operator not PD along p — stop rather than diverge
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        iterations += 1;
        let norm = dot(&r, &r).sqrt();
        residuals.push(norm);
        if norm / norm0 < tolerance {
            break;
        }
        z.fill(0.0);
        op.symgs(&r, &mut z);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    for v in [x, r, z, ap, p] {
        arena.give(v);
    }
    CgStats {
        iterations,
        residuals,
    }
}

#[cfg(test)]
mod tests {
    use super::super::ops::{build, CsrOperator};
    use super::super::problem::Problem;
    use super::super::HpcgVariant;
    use super::*;

    #[test]
    fn cg_converges_on_poisson() {
        let p = Problem::cube(8);
        let op = CsrOperator::poisson27(&p);
        let stats = pcg(&op, &p.rhs, 100, 1e-9);
        assert!(stats.converging());
        assert!(
            stats.final_relative_residual() < 1e-9,
            "relative residual {} after {} iters",
            stats.final_relative_residual(),
            stats.iterations
        );
        // SymGS-preconditioned CG on this problem converges fast.
        assert!(stats.iterations < 30);
    }

    #[test]
    fn cg_solution_is_ones() {
        // rhs = A·1, so the solve should recover the ones vector; verify
        // through the residual by applying A to a ones probe.
        let p = Problem::cube(6);
        let op = CsrOperator::poisson27(&p);
        let stats = pcg(&op, &p.rhs, 200, 1e-12);
        assert!(stats.final_relative_residual() < 1e-10);
    }

    #[test]
    fn all_variants_converge() {
        let p = Problem::cube(6);
        for v in HpcgVariant::all() {
            let op = build(*v, &p);
            let stats = pcg(op.as_ref(), &p.rhs, 100, 1e-8);
            assert!(
                stats.converging() && stats.final_relative_residual() < 1e-8,
                "{v:?}: rel residual {}",
                stats.final_relative_residual()
            );
        }
    }

    #[test]
    fn arena_reuse_is_byte_identical() {
        // Solving repeatedly from one arena must give exactly the bits a
        // fresh-allocation solve gives (buffers arrive re-zeroed).
        let p = Problem::cube(6);
        let op = CsrOperator::poisson27(&p);
        let fresh = pcg(&op, &p.rhs, 30, 1e-10);
        let mut arena = Arena::new();
        for round in 0..3 {
            let again = pcg_with(&op, &p.rhs, 30, 1e-10, &mut arena);
            assert_eq!(again.iterations, fresh.iterations, "round {round}");
            for (a, b) in again.residuals.iter().zip(&fresh.residuals) {
                assert_eq!(a.to_bits(), b.to_bits(), "round {round}");
            }
        }
        assert!(arena.pooled() > 0, "solve buffers should be pooled");
    }

    #[test]
    fn zero_rhs_is_trivial() {
        let p = Problem::cube(4);
        let op = CsrOperator::poisson27(&p);
        let b = vec![0.0; p.n()];
        let stats = pcg(&op, &b, 10, 1e-9);
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn residuals_monotone_enough() {
        // PCG residuals aren't strictly monotone in the 2-norm, but for
        // this SPD problem they should trend firmly downward.
        let p = Problem::cube(7);
        let op = CsrOperator::poisson27(&p);
        let stats = pcg(&op, &p.rhs, 25, 0.0);
        let first = stats.residuals[0];
        let last = *stats.residuals.last().unwrap();
        assert!(last < first * 1e-3);
    }
}
