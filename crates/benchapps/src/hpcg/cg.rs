//! Preconditioned conjugate gradient, HPCG-style.

use super::ops::Operator;

/// Convergence statistics from one CG solve.
#[derive(Debug, Clone)]
pub struct CgStats {
    /// Iterations actually performed.
    pub iterations: usize,
    /// Residual 2-norm after each iteration (index 0 = initial residual).
    pub residuals: Vec<f64>,
}

impl CgStats {
    /// Did the solver make progress? (Sanity condition for a VALID run.)
    pub fn converging(&self) -> bool {
        match (self.residuals.first(), self.residuals.last()) {
            (Some(&first), Some(&last)) => last < first && last.is_finite(),
            _ => false,
        }
    }

    /// ‖r_k‖ / ‖r_0‖.
    pub fn final_relative_residual(&self) -> f64 {
        match (self.residuals.first(), self.residuals.last()) {
            (Some(&first), Some(&last)) if first > 0.0 => last / first,
            _ => f64::NAN,
        }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Solve `A x = b` from `x = 0` with symmetric-Gauss-Seidel-preconditioned
/// CG. Stops after `max_iters` or when the relative residual drops below
/// `tolerance`.
pub fn pcg(op: &dyn Operator, b: &[f64], max_iters: usize, tolerance: f64) -> CgStats {
    let n = op.n();
    assert_eq!(b.len(), n, "rhs length must match the operator");
    let mut x = vec![0.0; n];
    let mut r = b.to_vec(); // r = b - A·0
    let mut z = vec![0.0; n];
    let mut ap = vec![0.0; n];

    let norm0 = dot(&r, &r).sqrt();
    let mut residuals = vec![norm0];
    if norm0 == 0.0 {
        return CgStats {
            iterations: 0,
            residuals,
        };
    }

    // z = M⁻¹ r via one SymGS sweep from zero.
    z.fill(0.0);
    op.symgs(&r, &mut z);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut iterations = 0;

    for _ in 0..max_iters {
        op.apply(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 || !pap.is_finite() {
            break; // operator not PD along p — stop rather than diverge
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        iterations += 1;
        let norm = dot(&r, &r).sqrt();
        residuals.push(norm);
        if norm / norm0 < tolerance {
            break;
        }
        z.fill(0.0);
        op.symgs(&r, &mut z);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    CgStats {
        iterations,
        residuals,
    }
}

#[cfg(test)]
mod tests {
    use super::super::ops::{build, CsrOperator};
    use super::super::problem::Problem;
    use super::super::HpcgVariant;
    use super::*;

    #[test]
    fn cg_converges_on_poisson() {
        let p = Problem::cube(8);
        let op = CsrOperator::poisson27(&p);
        let stats = pcg(&op, &p.rhs, 100, 1e-9);
        assert!(stats.converging());
        assert!(
            stats.final_relative_residual() < 1e-9,
            "relative residual {} after {} iters",
            stats.final_relative_residual(),
            stats.iterations
        );
        // SymGS-preconditioned CG on this problem converges fast.
        assert!(stats.iterations < 30);
    }

    #[test]
    fn cg_solution_is_ones() {
        // rhs = A·1, so the solve should recover the ones vector; verify
        // through the residual by applying A to a ones probe.
        let p = Problem::cube(6);
        let op = CsrOperator::poisson27(&p);
        let stats = pcg(&op, &p.rhs, 200, 1e-12);
        assert!(stats.final_relative_residual() < 1e-10);
    }

    #[test]
    fn all_variants_converge() {
        let p = Problem::cube(6);
        for v in HpcgVariant::all() {
            let op = build(*v, &p);
            let stats = pcg(op.as_ref(), &p.rhs, 100, 1e-8);
            assert!(
                stats.converging() && stats.final_relative_residual() < 1e-8,
                "{v:?}: rel residual {}",
                stats.final_relative_residual()
            );
        }
    }

    #[test]
    fn zero_rhs_is_trivial() {
        let p = Problem::cube(4);
        let op = CsrOperator::poisson27(&p);
        let b = vec![0.0; p.n()];
        let stats = pcg(&op, &b, 10, 1e-9);
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn residuals_monotone_enough() {
        // PCG residuals aren't strictly monotone in the 2-norm, but for
        // this SPD problem they should trend firmly downward.
        let p = Problem::cube(7);
        let op = CsrOperator::poisson27(&p);
        let stats = pcg(&op, &p.rhs, 25, 0.0);
        let first = stats.residuals[0];
        let last = *stats.residuals.last().unwrap();
        assert!(last < first * 1e-3);
    }
}
