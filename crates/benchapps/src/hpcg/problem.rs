//! The HPCG model problem: 3D Poisson, 27-point stencil, Dirichlet
//! boundaries, synthetic right-hand side with known exact solution.

/// A cube-shaped local problem.
#[derive(Debug, Clone)]
pub struct Problem {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    /// Right-hand side chosen so the exact solution is the ones vector
    /// (`b = A·1`), exactly like the real HPCG generator.
    pub rhs: Vec<f64>,
}

impl Problem {
    /// An `n × n × n` local grid.
    pub fn cube(n: usize) -> Problem {
        Problem::new(n, n, n)
    }

    pub fn new(nx: usize, ny: usize, nz: usize) -> Problem {
        assert!(nx >= 2 && ny >= 2 && nz >= 2, "grid too small");
        let n = nx * ny * nz;
        // Row sum of the 27-point operator: 26 - (number of neighbours),
        // since diag = 26 and each in-bounds neighbour contributes -1.
        let mut rhs = vec![0.0; n];
        for iz in 0..nz {
            for iy in 0..ny {
                for ix in 0..nx {
                    let neighbours = span(ix, nx) * span(iy, ny) * span(iz, nz) - 1;
                    rhs[(iz * ny + iy) * nx + ix] = 26.0 - neighbours as f64;
                }
            }
        }
        Problem { nx, ny, nz, rhs }
    }

    pub fn n(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Linear index of grid point (ix, iy, iz).
    pub fn index(&self, ix: usize, iy: usize, iz: usize) -> usize {
        (iz * self.ny + iy) * self.nx + ix
    }
}

/// Number of in-bounds positions in {i-1, i, i+1} for a dimension of size n.
fn span(i: usize, n: usize) -> usize {
    let mut s = 1;
    if i > 0 {
        s += 1;
    }
    if i + 1 < n {
        s += 1;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rhs_is_row_sums() {
        let p = Problem::cube(4);
        // Interior point: 26 neighbours → rhs = 0.
        assert_eq!(p.rhs[p.index(1, 1, 1)], 0.0);
        // Corner: 7 neighbours → rhs = 19.
        assert_eq!(p.rhs[p.index(0, 0, 0)], 19.0);
        // Face centre: 17 neighbours → rhs = 9.
        assert_eq!(p.rhs[p.index(1, 1, 0)], 9.0);
    }

    #[test]
    fn index_is_row_major() {
        let p = Problem::new(3, 4, 5);
        assert_eq!(p.index(0, 0, 0), 0);
        assert_eq!(p.index(1, 0, 0), 1);
        assert_eq!(p.index(0, 1, 0), 3);
        assert_eq!(p.index(0, 0, 1), 12);
        assert_eq!(p.n(), 60);
    }

    #[test]
    #[should_panic(expected = "grid too small")]
    fn rejects_degenerate_grid() {
        Problem::new(1, 4, 4);
    }
}
