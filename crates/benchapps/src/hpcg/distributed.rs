//! Distributed HPCG: the MPI-only execution of Table 2, for real.
//!
//! The global grid is decomposed into z-slabs over the ranks of an
//! [`mpisim`] world. Each CG iteration performs the communication pattern
//! of the real benchmark: a halo exchange of boundary z-planes before every
//! operator application, and an all-reduce for every dot product. The
//! preconditioner is block-Jacobi SymGS (each rank smooths its own slab) —
//! the standard distributed-memory adaptation.
//!
//! The tests pin the distributed solver to the serial one: the distributed
//! operator application matches the serial `MatrixFreeOperator` exactly,
//! and the solve converges to the same solution.

use mpisim::Comm;

/// Tags for the halo exchange.
const TAG_UP: u32 = 11; // data travelling to higher z
const TAG_DOWN: u32 = 12; // data travelling to lower z

/// One rank's slab of the global cube, plus ghost planes.
pub struct Slab {
    pub nx: usize,
    pub ny: usize,
    /// Local z-extent (without ghosts).
    pub nz_local: usize,
    /// Global z-offset of the first local plane.
    pub z0: usize,
    /// Global z-extent.
    pub nz_global: usize,
}

impl Slab {
    /// Partition `nz_global` planes over `size` ranks (remainder spread
    /// over the first ranks, like HPCG's generator).
    pub fn decompose(nx: usize, ny: usize, nz_global: usize, rank: usize, size: usize) -> Slab {
        assert!(nz_global >= size, "fewer planes than ranks");
        let base = nz_global / size;
        let extra = nz_global % size;
        let nz_local = base + usize::from(rank < extra);
        let z0 = rank * base + rank.min(extra);
        Slab {
            nx,
            ny,
            nz_local,
            z0,
            nz_global,
        }
    }

    pub fn plane_len(&self) -> usize {
        self.nx * self.ny
    }

    pub fn local_len(&self) -> usize {
        self.plane_len() * self.nz_local
    }

    /// Index into a local array (no ghosts).
    fn idx(&self, ix: usize, iy: usize, iz_local: usize) -> usize {
        (iz_local * self.ny + iy) * self.nx + ix
    }
}

/// Exchange boundary planes with z-neighbours; returns (below, above)
/// ghost planes (empty when at the global boundary).
pub fn halo_exchange(comm: &mut Comm, slab: &Slab, x: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let plane = slab.plane_len();
    let rank = comm.rank();
    let size = comm.size();
    let mut below = Vec::new();
    let mut above = Vec::new();
    // Send own top plane up / bottom plane down, receive ghosts.
    // Ordering avoids deadlock: everyone sends first (buffered sends).
    if rank + 1 < size {
        let top = x[(slab.nz_local - 1) * plane..].to_vec();
        comm.send(rank + 1, TAG_UP, top);
    }
    if rank > 0 {
        let bottom = x[..plane].to_vec();
        comm.send(rank - 1, TAG_DOWN, bottom);
    }
    if rank > 0 {
        below = comm.recv(rank - 1, TAG_UP);
        assert_eq!(below.len(), plane);
    }
    if rank + 1 < size {
        above = comm.recv(rank + 1, TAG_DOWN);
        assert_eq!(above.len(), plane);
    }
    (below, above)
}

/// `x` value at global plane offset `dz` relative to local plane `iz`,
/// honouring ghosts and the global Dirichlet boundary (0 outside).
#[inline]
#[allow(clippy::too_many_arguments)]
fn sample(
    slab: &Slab,
    x: &[f64],
    below: &[f64],
    above: &[f64],
    ix: i64,
    iy: i64,
    iz_local: i64,
) -> f64 {
    if ix < 0 || iy < 0 || ix >= slab.nx as i64 || iy >= slab.ny as i64 {
        return 0.0;
    }
    let plane_idx = (iy as usize) * slab.nx + ix as usize;
    if iz_local < 0 {
        if below.is_empty() {
            0.0
        } else {
            below[plane_idx]
        }
    } else if iz_local >= slab.nz_local as i64 {
        if above.is_empty() {
            0.0
        } else {
            above[plane_idx]
        }
    } else {
        x[slab.idx(ix as usize, iy as usize, iz_local as usize)]
    }
}

/// Distributed 27-point operator: `y = A x` on this rank's slab, using
/// freshly exchanged ghost planes.
pub fn apply(comm: &mut Comm, slab: &Slab, x: &[f64], y: &mut [f64]) {
    let (below, above) = halo_exchange(comm, slab, x);
    for iz in 0..slab.nz_local as i64 {
        for iy in 0..slab.ny as i64 {
            for ix in 0..slab.nx as i64 {
                // Accumulate the neighbour sum first, then subtract once:
                // the exact operation order of the serial operator, so the
                // distributed result is bitwise identical.
                let mut neighbours = 0.0;
                for dz in -1i64..=1 {
                    for dy in -1i64..=1 {
                        for dx in -1i64..=1 {
                            if dx == 0 && dy == 0 && dz == 0 {
                                continue;
                            }
                            neighbours +=
                                sample(slab, x, &below, &above, ix + dx, iy + dy, iz + dz);
                        }
                    }
                }
                let centre = sample(slab, x, &below, &above, ix, iy, iz);
                y[slab.idx(ix as usize, iy as usize, iz as usize)] = 26.0 * centre - neighbours;
            }
        }
    }
}

/// Block-Jacobi SymGS: one symmetric sweep within the local slab, ghosts
/// frozen at their exchanged values.
fn block_symgs(comm: &mut Comm, slab: &Slab, r: &[f64], z: &mut [f64]) {
    let (below, above) = halo_exchange(comm, slab, z);
    let ns = |z: &[f64], ix: i64, iy: i64, iz: i64| -> f64 {
        let mut s = 0.0;
        for dz in -1i64..=1 {
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    s += sample(slab, z, &below, &above, ix + dx, iy + dy, iz + dz);
                }
            }
        }
        s
    };

    for iz in 0..slab.nz_local as i64 {
        for iy in 0..slab.ny as i64 {
            for ix in 0..slab.nx as i64 {
                let i = slab.idx(ix as usize, iy as usize, iz as usize);
                z[i] = (r[i] + ns(z, ix, iy, iz)) / 26.0;
            }
        }
    }
    for iz in (0..slab.nz_local as i64).rev() {
        for iy in (0..slab.ny as i64).rev() {
            for ix in (0..slab.nx as i64).rev() {
                let i = slab.idx(ix as usize, iy as usize, iz as usize);
                z[i] = (r[i] + ns(z, ix, iy, iz)) / 26.0;
            }
        }
    }
}

/// Distributed dot product.
pub fn ddot(comm: &Comm, a: &[f64], b: &[f64]) -> f64 {
    let local: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    comm.allreduce_sum(local)
}

/// Result of a distributed CG solve on one rank.
#[derive(Debug, Clone)]
pub struct DistributedCgResult {
    pub iterations: usize,
    pub initial_residual: f64,
    pub final_residual: f64,
    /// This rank's piece of the solution.
    pub x_local: Vec<f64>,
}

/// Preconditioned CG over the slab decomposition. `rhs_local` is this
/// rank's slice of the global right-hand side.
pub fn pcg_distributed(
    comm: &mut Comm,
    slab: &Slab,
    rhs_local: &[f64],
    max_iters: usize,
    tolerance: f64,
) -> DistributedCgResult {
    let n = slab.local_len();
    assert_eq!(rhs_local.len(), n);
    let mut x = vec![0.0; n];
    let mut r = rhs_local.to_vec();
    let mut z = vec![0.0; n];
    let mut ap = vec![0.0; n];

    let norm0 = ddot(comm, &r, &r).sqrt();
    if norm0 == 0.0 {
        return DistributedCgResult {
            iterations: 0,
            initial_residual: 0.0,
            final_residual: 0.0,
            x_local: x,
        };
    }
    z.fill(0.0);
    block_symgs(comm, slab, &r, &mut z);
    let mut p = z.clone();
    let mut rz = ddot(comm, &r, &z);
    let mut iterations = 0;
    let mut norm = norm0;

    for _ in 0..max_iters {
        apply(comm, slab, &p, &mut ap);
        let pap = ddot(comm, &p, &ap);
        if pap <= 0.0 || !pap.is_finite() {
            break;
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        iterations += 1;
        norm = ddot(comm, &r, &r).sqrt();
        if norm / norm0 < tolerance {
            break;
        }
        z.fill(0.0);
        block_symgs(comm, slab, &r, &mut z);
        let rz_new = ddot(comm, &r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    DistributedCgResult {
        iterations,
        initial_residual: norm0,
        final_residual: norm,
        x_local: x,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hpcg::{MatrixFreeOperator, Operator, Problem};

    /// Build the slice of the global RHS owned by `slab`.
    fn local_rhs(problem: &Problem, slab: &Slab) -> Vec<f64> {
        let plane = slab.plane_len();
        problem.rhs[slab.z0 * plane..(slab.z0 + slab.nz_local) * plane].to_vec()
    }

    #[test]
    fn decomposition_covers_global_grid() {
        for size in [1usize, 2, 3, 5, 8] {
            let mut total = 0;
            let mut next_z0 = 0;
            for rank in 0..size {
                let s = Slab::decompose(4, 5, 16, rank, size);
                assert_eq!(s.z0, next_z0, "slabs must be contiguous");
                next_z0 += s.nz_local;
                total += s.nz_local;
            }
            assert_eq!(total, 16);
        }
    }

    #[test]
    fn distributed_apply_matches_serial_exactly() {
        let (nx, ny, nz) = (5, 4, 12);
        let problem = Problem::new(nx, ny, nz);
        let serial_op = MatrixFreeOperator::new(&problem);
        let x_global: Vec<f64> = (0..problem.n())
            .map(|i| ((i * 37) % 101) as f64 * 0.01)
            .collect();
        let mut y_serial = vec![0.0; problem.n()];
        serial_op.apply(&x_global, &mut y_serial);

        for size in [1usize, 2, 3, 4] {
            let pieces = mpisim::run(size, |comm| {
                let slab = Slab::decompose(nx, ny, nz, comm.rank(), comm.size());
                let plane = slab.plane_len();
                let x_local = x_global[slab.z0 * plane..(slab.z0 + slab.nz_local) * plane].to_vec();
                let mut y_local = vec![0.0; slab.local_len()];
                apply(comm, &slab, &x_local, &mut y_local);
                y_local
            });
            let y_dist: Vec<f64> = pieces.into_iter().flatten().collect();
            assert_eq!(y_dist, y_serial, "size={size} mismatch");
        }
    }

    #[test]
    fn distributed_dot_matches_serial() {
        let n_global = 96;
        let data: Vec<f64> = (0..n_global).map(|i| (i as f64).sin()).collect();
        let expect: f64 = data.iter().map(|v| v * v).sum();
        let out = mpisim::run(4, |comm| {
            let chunk = n_global / comm.size();
            let lo = comm.rank() * chunk;
            let local = &data[lo..lo + chunk];
            ddot(comm, local, local)
        });
        for v in out {
            assert!((v - expect).abs() < 1e-9 * expect);
        }
    }

    #[test]
    fn distributed_cg_converges_and_matches_serial_solution() {
        let (nx, ny, nz) = (6, 6, 12);
        let problem = Problem::new(nx, ny, nz);
        // Serial reference.
        let op = MatrixFreeOperator::new(&problem);
        let serial = crate::hpcg::pcg(&op, &problem.rhs, 200, 1e-10);
        assert!(serial.final_relative_residual() < 1e-10);

        for size in [2usize, 3] {
            let results = mpisim::run(size, |comm| {
                let slab = Slab::decompose(nx, ny, nz, comm.rank(), comm.size());
                let rhs = local_rhs(&problem, &slab);
                pcg_distributed(comm, &slab, &rhs, 300, 1e-10)
            });
            // Converged everywhere (block-Jacobi may take a few more
            // iterations than the serial SymGS preconditioner).
            for r in &results {
                assert!(
                    r.final_residual < r.initial_residual * 1e-10,
                    "size={size}: {} -> {}",
                    r.initial_residual,
                    r.final_residual
                );
            }
            // The assembled global solution solves the same system: both
            // solutions are the ones vector (rhs = A·1).
            let x_global: Vec<f64> = results.into_iter().flat_map(|r| r.x_local).collect();
            for (i, v) in x_global.iter().enumerate() {
                assert!((v - 1.0).abs() < 1e-7, "x[{i}] = {v}");
            }
        }
    }

    #[test]
    fn single_rank_matches_serial_iteration_count() {
        // With one rank, block-Jacobi SymGS *is* the serial preconditioner.
        let problem = Problem::cube(8);
        let op = MatrixFreeOperator::new(&problem);
        let serial = crate::hpcg::pcg(&op, &problem.rhs, 60, 1e-9);
        let dist = mpisim::run(1, |comm| {
            let slab = Slab::decompose(8, 8, 8, 0, 1);
            pcg_distributed(comm, &slab, &problem.rhs, 60, 1e-9)
        });
        assert_eq!(dist[0].iterations, serial.iterations);
    }
}
