//! The HPCG cost model for simulated platforms.
//!
//! HPCG is memory-bandwidth bound on every system in the study, so a
//! variant's GFLOP/s rating is, to first order,
//!
//! ```text
//!   GF/s ≈ delivered_bandwidth(GB/s) × flops_per_byte(variant, arch)
//! ```
//!
//! `flops_per_byte` differs by variant (CSR drags matrix values + indices
//! through memory on every pass; matrix-free touches only vectors) and by
//! microarchitecture (indirect gathers cost differently; a 512 MB L3 keeps
//! matrix-free working vectors resident). The constants below are
//! calibrated against the paper's own Table 2 measurements — see DESIGN.md
//! — and the calibration is *checked*, not assumed, by the tests in
//! `hpcg::tests` and the Table 2 bench.

use super::{HpcgConfig, HpcgVariant};
use simhpc::{Partition, Processor};

/// Floating-point work per matrix row per CG iteration.
///
/// One SpMV + one SymGS (two sweeps) over ~27 nonzeros at 2 flops each,
/// plus the CG vector updates; the LFRic operator has 7 nonzeros.
pub fn flops_per_row(variant: HpcgVariant) -> f64 {
    match variant {
        HpcgVariant::Csr | HpcgVariant::IntelAvx2 | HpcgVariant::Sell | HpcgVariant::MatrixFree => {
            3.0 * 2.0 * 27.0 + 12.0
        }
        HpcgVariant::Lfric => 3.0 * 2.0 * 7.0 + 12.0,
    }
}

/// Total flops for a run.
pub fn flops_for(variant: HpcgVariant, n_rows: usize, iterations: usize) -> f64 {
    flops_per_row(variant) * n_rows as f64 * iterations as f64
}

/// Delivered flops per byte of memory traffic, calibrated per
/// variant × microarchitecture from the paper's Table 2.
pub fn flops_per_byte(variant: HpcgVariant, proc: &Processor) -> f64 {
    let vendor = proc.vendor().to_lowercase();
    // Rome/Milan carry 256 MB of L3 per socket; matrix-free vector sets
    // become cache-resident there, which is where the paper's outsized
    // algorithmic gain on AMD (E_A = 3.168) comes from.
    let big_llc = proc.llc_bytes() >= 256 * 1024 * 1024;
    match variant {
        HpcgVariant::Csr => match vendor.as_str() {
            "amd" => 0.1196,
            "intel" => 0.112,
            _ => 0.105,
        },
        HpcgVariant::IntelAvx2 => 0.182,
        // SELL-C-σ moves the same bytes as CSR but retires them faster in
        // the SpMV (lane-parallel rows); the SymGS half of the iteration is
        // unchanged, so the end-to-end gain over CSR is modest (~1.1×).
        HpcgVariant::Sell => match vendor.as_str() {
            "amd" => 0.132,
            "intel" => 0.123,
            _ => 0.116,
        },
        HpcgVariant::MatrixFree => {
            if big_llc {
                0.379
            } else if vendor == "intel" {
                0.238
            } else {
                0.22
            }
        }
        HpcgVariant::Lfric => {
            if big_llc {
                0.1709
            } else if vendor == "intel" {
                0.0863
            } else {
                0.09
            }
        }
    }
}

/// Simulated GFLOP/s rating for a single-node MPI run (Table 2's setup).
pub fn simulated_gflops(config: &HpcgConfig, partition: &Partition) -> f64 {
    let proc = partition.processor();
    let threads = config.ranks.min(proc.total_cores());
    // The working set is far larger than any cache for the vector data the
    // bandwidth bound applies to.
    let bw = proc.effective_bandwidth_gbs(threads, u64::MAX);
    bw * flops_per_byte(config.variant, proc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proc(spec: &str) -> Processor {
        let (sys, part) = simhpc::catalog::resolve(spec).unwrap();
        sys.partition(&part).unwrap().processor().clone()
    }

    #[test]
    fn variant_ordering_per_arch() {
        let cl = proc("isambard-macs:cascadelake");
        assert!(
            flops_per_byte(HpcgVariant::MatrixFree, &cl)
                > flops_per_byte(HpcgVariant::IntelAvx2, &cl)
        );
        assert!(
            flops_per_byte(HpcgVariant::IntelAvx2, &cl) > flops_per_byte(HpcgVariant::Csr, &cl)
        );
        assert!(flops_per_byte(HpcgVariant::Csr, &cl) > flops_per_byte(HpcgVariant::Lfric, &cl));
    }

    #[test]
    fn amd_algorithmic_gain_larger() {
        let cl = proc("isambard-macs:cascadelake");
        let rome = proc("archer2");
        let gain = |p: &Processor| {
            flops_per_byte(HpcgVariant::MatrixFree, p) / flops_per_byte(HpcgVariant::Csr, p)
        };
        assert!(
            gain(&rome) > gain(&cl),
            "paper: E_A 3.168 on Rome vs 2.125 on CL"
        );
    }

    #[test]
    fn flop_counts_scale_linearly() {
        let a = flops_for(HpcgVariant::Csr, 1000, 10);
        let b = flops_for(HpcgVariant::Csr, 2000, 10);
        let c = flops_for(HpcgVariant::Csr, 1000, 20);
        assert_eq!(b, 2.0 * a);
        assert_eq!(c, 2.0 * a);
        assert!(
            flops_for(HpcgVariant::Lfric, 1000, 10) < a,
            "7-point does fewer flops"
        );
    }
}
