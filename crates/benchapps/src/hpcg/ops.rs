//! The linear operators behind the four HPCG variants.
//!
//! Every operator owns an execution [`Backend`]: `apply` always routes
//! through the shared `parkern` kernels, and the Poisson operators carry an
//! 8-colour decomposition of the grid so their symmetric Gauss-Seidel
//! smoother can run same-colour rows in parallel. With the default serial
//! backend the operators behave exactly like the original sequential code
//! (lexicographic sweeps, identical arithmetic order), which keeps the
//! cross-variant parity tests bitwise meaningful.

use parkern::{kernels, Backend, SerialBackend};

use super::problem::Problem;
use super::HpcgVariant;

/// A symmetric positive-definite operator with a symmetric Gauss-Seidel
/// smoother — the two ingredients HPCG's preconditioned CG needs.
pub trait Operator: Send + Sync {
    fn n(&self) -> usize;

    /// `y = A x`.
    fn apply(&self, x: &[f64], y: &mut [f64]);

    /// One symmetric Gauss-Seidel sweep applied to `z` for the system
    /// `A z = r`, starting from the current contents of `z`.
    fn symgs(&self, r: &[f64], z: &mut [f64]);
}

/// Build the operator for a variant over the given problem (serial backend).
pub fn build(variant: HpcgVariant, problem: &Problem) -> Box<dyn Operator> {
    build_with_backend(variant, problem, Box::new(SerialBackend))
}

/// Build the operator for a variant with an explicit execution backend.
///
/// With more than one worker the Poisson operators switch their SymGS sweep
/// from lexicographic to the 8-colour ordering: a *different* (but equally
/// valid) preconditioner whose CG iteration counts match the serial sweep to
/// within a couple of iterations, and whose results are deterministic for
/// any worker count.
pub fn build_with_backend(
    variant: HpcgVariant,
    problem: &Problem,
    backend: Box<dyn Backend>,
) -> Box<dyn Operator> {
    match variant {
        // The vendor-optimized variant runs the same assembled-matrix
        // algorithm; its difference is implementation cost, not math.
        HpcgVariant::Csr | HpcgVariant::IntelAvx2 => {
            Box::new(CsrOperator::poisson27_with_backend(problem, backend))
        }
        HpcgVariant::Sell => Box::new(SellOperator::poisson27_with_backend(problem, backend)),
        HpcgVariant::MatrixFree => Box::new(MatrixFreeOperator::with_backend(problem, backend)),
        HpcgVariant::Lfric => Box::new(LfricOperator::with_backend(problem, backend)),
    }
}

/// Minimum rows per parallel chunk inside one colour sweep; below this the
/// per-region dispatch overhead outweighs the row updates.
const SYMGS_GRAIN: usize = 256;

/// Partition grid rows into 8 parity classes by `(ix mod 2, iy mod 2,
/// iz mod 2)`. In a 27-point (or any ±1-offset) stencil, two cells of the
/// same class differ by an even, non-zero amount in some axis, so they are
/// never neighbours: every class is an independent set, and rows within a
/// class can be smoothed concurrently.
fn parity_color_sets(nx: usize, ny: usize, nz: usize) -> Vec<Vec<u32>> {
    let mut sets: Vec<Vec<u32>> = (0..8).map(|_| Vec::new()).collect();
    for iz in 0..nz {
        for iy in 0..ny {
            for ix in 0..nx {
                let color = (ix & 1) | ((iy & 1) << 1) | ((iz & 1) << 2);
                sets[color].push(((iz * ny + iy) * nx + ix) as u32);
            }
        }
    }
    sets
}

/// Shared-mutable access to the iterate `z` during a coloured sweep.
///
/// Safety contract: within one colour phase, each worker writes only rows of
/// that colour assigned to its chunk; all rows it *reads* belong either to
/// other colours (not written this phase) or are its own row. Phases are
/// separated by the backend's fork-join, which orders the writes.
#[derive(Clone, Copy)]
struct ZPtr(*mut f64);
unsafe impl Send for ZPtr {}
unsafe impl Sync for ZPtr {}

impl ZPtr {
    /// # Safety
    /// `i` in bounds; no concurrent write to `i` (see type-level contract).
    unsafe fn read(self, i: usize) -> f64 {
        unsafe { *self.0.add(i) }
    }

    /// # Safety
    /// `i` in bounds; this worker is the only writer of `i` this phase.
    unsafe fn write(self, i: usize, v: f64) {
        unsafe { *self.0.add(i) = v };
    }
}

/// Assembled 27-point Poisson operator in CSR.
pub struct CsrOperator {
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
    diag: Vec<f64>,
    color_sets: Vec<Vec<u32>>,
    backend: Box<dyn Backend>,
}

impl CsrOperator {
    /// Assemble the 27-point operator (diag 26, off-diag −1, Dirichlet
    /// truncation at the boundary) on the serial backend.
    pub fn poisson27(p: &Problem) -> CsrOperator {
        CsrOperator::poisson27_with_backend(p, Box::new(SerialBackend))
    }

    /// Assemble with an explicit execution backend.
    pub fn poisson27_with_backend(p: &Problem, backend: Box<dyn Backend>) -> CsrOperator {
        let n = p.n();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        let mut diag = Vec::with_capacity(n);
        row_ptr.push(0);
        for iz in 0..p.nz {
            for iy in 0..p.ny {
                for ix in 0..p.nx {
                    let row = p.index(ix, iy, iz);
                    for dz in -1i64..=1 {
                        for dy in -1i64..=1 {
                            for dx in -1i64..=1 {
                                let jx = ix as i64 + dx;
                                let jy = iy as i64 + dy;
                                let jz = iz as i64 + dz;
                                if jx < 0
                                    || jy < 0
                                    || jz < 0
                                    || jx >= p.nx as i64
                                    || jy >= p.ny as i64
                                    || jz >= p.nz as i64
                                {
                                    continue;
                                }
                                let col = p.index(jx as usize, jy as usize, jz as usize);
                                let v = if col == row { 26.0 } else { -1.0 };
                                col_idx.push(col as u32);
                                values.push(v);
                            }
                        }
                    }
                    diag.push(26.0);
                    row_ptr.push(col_idx.len());
                }
            }
        }
        let color_sets = parity_color_sets(p.nx, p.ny, p.nz);
        CsrOperator {
            row_ptr,
            col_idx,
            values,
            diag,
            color_sets,
            backend,
        }
    }

    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// One Gauss-Seidel update of `row`, reading and writing through `z`.
    ///
    /// # Safety
    /// Callers must uphold the [`ZPtr`] contract: no other worker writes any
    /// row this call reads, and this worker is the sole writer of `row`.
    unsafe fn gs_row(&self, row: usize, r: &[f64], z: ZPtr) {
        let mut sum = r[row];
        for k in self.row_ptr[row]..self.row_ptr[row + 1] {
            sum -= self.values[k] * unsafe { z.read(self.col_idx[k] as usize) };
        }
        sum += self.diag[row] * unsafe { z.read(row) };
        unsafe { z.write(row, sum / self.diag[row]) };
    }

    /// The original lexicographic sweep (forward then backward). Kept as the
    /// serial reference: cross-variant parity tests compare against it.
    pub fn symgs_lex(&self, r: &[f64], z: &mut [f64]) {
        let n = self.n();
        // Forward sweep.
        for row in 0..n {
            let mut sum = r[row];
            for k in self.row_ptr[row]..self.row_ptr[row + 1] {
                sum -= self.values[k] * z[self.col_idx[k] as usize];
            }
            sum += self.diag[row] * z[row];
            z[row] = sum / self.diag[row];
        }
        // Backward sweep.
        for row in (0..n).rev() {
            let mut sum = r[row];
            for k in self.row_ptr[row]..self.row_ptr[row + 1] {
                sum -= self.values[k] * z[self.col_idx[k] as usize];
            }
            sum += self.diag[row] * z[row];
            z[row] = sum / self.diag[row];
        }
    }

    /// The multicoloured sweep: colours in order forward, reversed backward;
    /// rows within a colour update in parallel. Deterministic for any worker
    /// count (each row depends only on rows of other colours, whose values
    /// are fixed for the whole phase).
    pub fn symgs_colored(&self, r: &[f64], z: &mut [f64]) {
        let zp = ZPtr(z.as_mut_ptr());
        for set in &self.color_sets {
            self.color_phase(set, r, zp);
        }
        for set in self.color_sets.iter().rev() {
            self.color_phase(set, r, zp);
        }
    }

    fn color_phase(&self, set: &[u32], r: &[f64], zp: ZPtr) {
        self.backend
            .par_for_grained(set.len(), SYMGS_GRAIN, &|range| {
                let p = zp;
                for &row in &set[range] {
                    // SAFETY: rows in `set` share a colour, so no row in this
                    // phase is a neighbour of (reads) another; chunks make each
                    // row's write exclusive to one worker.
                    unsafe { self.gs_row(row as usize, r, p) };
                }
            });
    }
}

impl Operator for CsrOperator {
    fn n(&self) -> usize {
        self.diag.len()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        kernels::spmv_csr(
            &*self.backend,
            &self.row_ptr,
            &self.col_idx,
            &self.values,
            x,
            y,
        );
    }

    fn symgs(&self, r: &[f64], z: &mut [f64]) {
        if self.backend.workers() > 1 {
            self.symgs_colored(r, z);
        } else {
            self.symgs_lex(r, z);
        }
    }
}

/// The assembled 27-point operator with its SpMV in SELL-C-σ layout
/// (`kernels::SellMatrix`): the layout conversion happens once at
/// construction, and `apply` runs rows as independent SIMD/ILP lanes
/// instead of CSR's serial per-row FMA chain. SymGS sweeps delegate to the
/// embedded CSR operator — same arrays, same arithmetic order — and the
/// SELL lanes accumulate each row in CSR's k-ascending order, so the whole
/// CG trajectory is bitwise identical to [`CsrOperator`]'s.
pub struct SellOperator {
    csr: CsrOperator,
    sell: kernels::SellMatrix,
}

impl SellOperator {
    /// σ sorting window for the SELL conversion: large enough to pack
    /// equal-length boundary rows into uniform slices, small enough that
    /// the gather pattern stays close to the natural row order.
    pub const SIGMA: usize = 64;

    /// Assemble on the serial backend.
    pub fn poisson27(p: &Problem) -> SellOperator {
        SellOperator::poisson27_with_backend(p, Box::new(SerialBackend))
    }

    /// Assemble with an explicit execution backend.
    pub fn poisson27_with_backend(p: &Problem, backend: Box<dyn Backend>) -> SellOperator {
        let csr = CsrOperator::poisson27_with_backend(p, backend);
        let sell =
            kernels::SellMatrix::from_csr(&csr.row_ptr, &csr.col_idx, &csr.values, Self::SIGMA);
        SellOperator { csr, sell }
    }

    /// Stored entries including slice padding (layout overhead measure).
    pub fn stored_entries(&self) -> usize {
        self.sell.stored_entries()
    }
}

impl Operator for SellOperator {
    fn n(&self) -> usize {
        self.csr.n()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        kernels::spmv_sell(&*self.csr.backend, &self.sell, x, y);
    }

    fn symgs(&self, r: &[f64], z: &mut [f64]) {
        self.csr.symgs(r, z);
    }
}

/// The same 27-point operator applied matrix-free: neighbours are
/// enumerated on the fly, coefficients are compile-time constants.
pub struct MatrixFreeOperator {
    nx: usize,
    ny: usize,
    nz: usize,
    color_sets: Vec<Vec<u32>>,
    backend: Box<dyn Backend>,
}

impl MatrixFreeOperator {
    pub fn new(p: &Problem) -> MatrixFreeOperator {
        MatrixFreeOperator::with_backend(p, Box::new(SerialBackend))
    }

    pub fn with_backend(p: &Problem, backend: Box<dyn Backend>) -> MatrixFreeOperator {
        MatrixFreeOperator {
            nx: p.nx,
            ny: p.ny,
            nz: p.nz,
            color_sets: parity_color_sets(p.nx, p.ny, p.nz),
            backend,
        }
    }

    /// Σ over in-bounds neighbours of `x`, excluding the centre.
    fn neighbour_sum(&self, x: &[f64], ix: usize, iy: usize, iz: usize) -> f64 {
        // SAFETY: exclusive slice access; the raw-pointer reads stay in
        // bounds by the same boundary checks the safe path uses.
        unsafe { self.neighbour_sum_raw(x.as_ptr(), ix, iy, iz) }
    }

    /// # Safety
    /// `x` must point at `n()` readable elements, none concurrently written
    /// at the neighbour offsets of `(ix, iy, iz)`.
    unsafe fn neighbour_sum_raw(&self, x: *const f64, ix: usize, iy: usize, iz: usize) -> f64 {
        // Interior points (the bulk) take a branch-free path: the 26
        // neighbour offsets become compile-time constants, so the triple
        // loop fully unrolls. The accumulation order is the same
        // (dz, dy, dx)-ascending order as the boundary path, so both round
        // identically.
        if ix >= 1 && ix + 1 < self.nx && iy >= 1 && iy + 1 < self.ny && iz >= 1 && iz + 1 < self.nz
        {
            let i = ((iz * self.ny + iy) * self.nx + ix) as i64;
            let mut s = 0.0;
            for dz in -1i64..=1 {
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        if dx == 0 && dy == 0 && dz == 0 {
                            continue;
                        }
                        let j = (i + (dz * self.ny as i64 + dy) * self.nx as i64 + dx) as usize;
                        // SAFETY: interior ⇒ all 26 neighbours in bounds.
                        s += unsafe { *x.add(j) };
                    }
                }
            }
            return s;
        }
        let mut s = 0.0;
        for dz in -1i64..=1 {
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    let jx = ix as i64 + dx;
                    let jy = iy as i64 + dy;
                    let jz = iz as i64 + dz;
                    if jx < 0
                        || jy < 0
                        || jz < 0
                        || jx >= self.nx as i64
                        || jy >= self.ny as i64
                        || jz >= self.nz as i64
                    {
                        continue;
                    }
                    s += unsafe {
                        *x.add((jz as usize * self.ny + jy as usize) * self.nx + jx as usize)
                    };
                }
            }
        }
        s
    }

    fn coords(&self, i: usize) -> (usize, usize, usize) {
        (
            i % self.nx,
            (i / self.nx) % self.ny,
            i / (self.nx * self.ny),
        )
    }

    /// Lexicographic reference sweep (forward then backward).
    pub fn symgs_lex(&self, r: &[f64], z: &mut [f64]) {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        // Forward sweep in lexicographic order (matches CSR ordering, so
        // the two variants produce bitwise-comparable trajectories).
        for iz in 0..nz {
            for iy in 0..ny {
                for ix in 0..nx {
                    let i = (iz * ny + iy) * nx + ix;
                    z[i] = (r[i] + self.neighbour_sum(z, ix, iy, iz)) / 26.0;
                }
            }
        }
        // Backward sweep.
        for iz in (0..nz).rev() {
            for iy in (0..ny).rev() {
                for ix in (0..nx).rev() {
                    let i = (iz * ny + iy) * nx + ix;
                    z[i] = (r[i] + self.neighbour_sum(z, ix, iy, iz)) / 26.0;
                }
            }
        }
    }

    /// Multicoloured sweep; see [`CsrOperator::symgs_colored`].
    pub fn symgs_colored(&self, r: &[f64], z: &mut [f64]) {
        let zp = ZPtr(z.as_mut_ptr());
        for set in &self.color_sets {
            self.color_phase(set, r, zp);
        }
        for set in self.color_sets.iter().rev() {
            self.color_phase(set, r, zp);
        }
    }

    fn color_phase(&self, set: &[u32], r: &[f64], zp: ZPtr) {
        self.backend
            .par_for_grained(set.len(), SYMGS_GRAIN, &|range| {
                let p = zp;
                for &row in &set[range] {
                    let i = row as usize;
                    let (ix, iy, iz) = self.coords(i);
                    // SAFETY: same-colour rows are never stencil neighbours, so
                    // the reads under this sum are not written this phase; `i`
                    // itself is written only by this worker.
                    unsafe {
                        let v =
                            (r[i] + self.neighbour_sum_raw(p.0 as *const f64, ix, iy, iz)) / 26.0;
                        p.write(i, v);
                    }
                }
            });
    }
}

impl Operator for MatrixFreeOperator {
    fn n(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        // Accumulate the neighbour sum first, then one subtraction: rows are
        // independent, so chunking cannot change the result, and the
        // operation order stays bitwise identical to the serial original
        // (the distributed solver pins itself to exactly this order).
        let out = ZPtr(y.as_mut_ptr());
        self.backend
            .par_for_grained(self.n(), SYMGS_GRAIN, &|range| {
                let p = out;
                for i in range {
                    let (ix, iy, iz) = self.coords(i);
                    let v = 26.0 * x[i] - self.neighbour_sum(x, ix, iy, iz);
                    // SAFETY: chunks are disjoint; `i` is written exactly once.
                    unsafe { p.write(i, v) };
                }
            });
    }

    fn symgs(&self, r: &[f64], z: &mut [f64]) {
        if self.backend.workers() > 1 {
            self.symgs_colored(r, z);
        } else {
            self.symgs_lex(r, z);
        }
    }
}

/// A symmetrized Helmholtz operator in the style of the LFRic dynamical
/// core: strong vertical coupling, a mass (λ) term, 7-point structure.
pub struct LfricOperator {
    nx: usize,
    ny: usize,
    nz: usize,
    /// Horizontal coupling.
    ch: f64,
    /// Vertical coupling (atmospheric columns couple more strongly).
    cv: f64,
    /// Helmholtz λ (mass) term — keeps the operator positive definite.
    lambda: f64,
    backend: Box<dyn Backend>,
}

impl LfricOperator {
    pub fn new(p: &Problem) -> LfricOperator {
        LfricOperator::with_backend(p, Box::new(SerialBackend))
    }

    pub fn with_backend(p: &Problem, backend: Box<dyn Backend>) -> LfricOperator {
        LfricOperator {
            nx: p.nx,
            ny: p.ny,
            nz: p.nz,
            ch: 1.0,
            cv: 4.0,
            lambda: 1.0,
            backend,
        }
    }

    fn diag_at(&self, ix: usize, iy: usize, iz: usize) -> f64 {
        // Row diagonal = Σ|off-diagonals| + λ: strictly diagonally dominant.
        let mut d = self.lambda;
        if ix > 0 {
            d += self.ch;
        }
        if ix + 1 < self.nx {
            d += self.ch;
        }
        if iy > 0 {
            d += self.ch;
        }
        if iy + 1 < self.ny {
            d += self.ch;
        }
        if iz > 0 {
            d += self.cv;
        }
        if iz + 1 < self.nz {
            d += self.cv;
        }
        d
    }

    fn off_sum(&self, x: &[f64], ix: usize, iy: usize, iz: usize) -> f64 {
        let (nx, ny) = (self.nx, self.ny);
        let i = (iz * ny + iy) * nx + ix;
        let mut s = 0.0;
        if ix > 0 {
            s += self.ch * x[i - 1];
        }
        if ix + 1 < self.nx {
            s += self.ch * x[i + 1];
        }
        if iy > 0 {
            s += self.ch * x[i - nx];
        }
        if iy + 1 < self.ny {
            s += self.ch * x[i + nx];
        }
        if iz > 0 {
            s += self.cv * x[i - nx * ny];
        }
        if iz + 1 < self.nz {
            s += self.cv * x[i + nx * ny];
        }
        s
    }
}

impl Operator for LfricOperator {
    fn n(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let out = ZPtr(y.as_mut_ptr());
        self.backend
            .par_for_grained(self.n(), SYMGS_GRAIN, &|range| {
                let p = out;
                for i in range {
                    let ix = i % self.nx;
                    let iy = (i / self.nx) % self.ny;
                    let iz = i / (self.nx * self.ny);
                    let v = self.diag_at(ix, iy, iz) * x[i] - self.off_sum(x, ix, iy, iz);
                    // SAFETY: chunks are disjoint; `i` is written exactly once.
                    unsafe { p.write(i, v) };
                }
            });
    }

    fn symgs(&self, r: &[f64], z: &mut [f64]) {
        for iz in 0..self.nz {
            for iy in 0..self.ny {
                for ix in 0..self.nx {
                    let i = (iz * self.ny + iy) * self.nx + ix;
                    z[i] = (r[i] + self.off_sum(z, ix, iy, iz)) / self.diag_at(ix, iy, iz);
                }
            }
        }
        for iz in (0..self.nz).rev() {
            for iy in (0..self.ny).rev() {
                for ix in (0..self.nx).rev() {
                    let i = (iz * self.ny + iy) * self.nx + ix;
                    z[i] = (r[i] + self.off_sum(z, ix, iy, iz)) / self.diag_at(ix, iy, iz);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hpcg::cg::pcg;
    use crate::hpcg::HpcgVariant;
    use parkern::{CrossbeamBackend, PoolBackend, ThreadsBackend};

    #[test]
    fn parallel_apply_matches_serial_bitwise_on_all_backends() {
        // `apply` computes each row independently, so chunking must not
        // change a single bit of the output on any backend.
        let p = Problem::cube(7);
        let x: Vec<f64> = (0..p.n()).map(|i| (i as f64 * 0.37).sin()).collect();
        for variant in HpcgVariant::all() {
            let serial = build(*variant, &p);
            let mut want = vec![0.0; p.n()];
            serial.apply(&x, &mut want);
            let backends: Vec<Box<dyn Backend>> = vec![
                Box::new(ThreadsBackend::new(4)),
                Box::new(CrossbeamBackend::new(4)),
                Box::new(PoolBackend::new(3)),
            ];
            for backend in backends {
                let label = backend.label();
                let op = build_with_backend(*variant, &p, backend);
                let mut got = vec![0.0; p.n()];
                op.apply(&x, &mut got);
                assert_eq!(want, got, "{variant:?} apply diverged on {label}");
            }
        }
    }

    #[test]
    fn colored_preconditioner_matches_serial_cg_iterations() {
        // The multicolored sweep is a different (but equally strong)
        // preconditioner than the lexicographic one: CG must converge in
        // the same number of iterations, give or take two.
        let p = Problem::cube(16);
        for variant in [HpcgVariant::Csr, HpcgVariant::MatrixFree] {
            let serial = build(variant, &p);
            let colored = build_with_backend(variant, &p, Box::new(PoolBackend::new(4)));
            let a = pcg(serial.as_ref(), &p.rhs, 50, 1e-10);
            let b = pcg(colored.as_ref(), &p.rhs, 50, 1e-10);
            assert!(
                a.iterations.abs_diff(b.iterations) <= 2,
                "{variant:?}: serial {} vs colored {} iterations",
                a.iterations,
                b.iterations
            );
            assert!(b.converging());
        }
    }

    #[test]
    fn csr_and_matrix_free_agree_exactly() {
        let p = Problem::cube(6);
        let csr = CsrOperator::poisson27(&p);
        let mf = MatrixFreeOperator::new(&p);
        let x: Vec<f64> = (0..p.n()).map(|i| ((i * 31) % 17) as f64 * 0.125).collect();
        let mut y1 = vec![0.0; p.n()];
        let mut y2 = vec![0.0; p.n()];
        csr.apply(&x, &mut y1);
        mf.apply(&x, &mut y2);
        assert_eq!(y1, y2, "assembled and matrix-free operators must agree");
        // SymGS sweeps agree too (same ordering).
        let r = p.rhs.clone();
        let mut z1 = vec![0.0; p.n()];
        let mut z2 = vec![0.0; p.n()];
        csr.symgs(&r, &mut z1);
        mf.symgs(&r, &mut z2);
        for (a, b) in z1.iter().zip(&z2) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn sell_apply_matches_csr_bitwise() {
        let p = Problem::cube(9);
        let csr = CsrOperator::poisson27(&p);
        let sell = SellOperator::poisson27(&p);
        // Padding exists (boundary rows are shorter) but is bounded.
        assert!(sell.stored_entries() >= csr.nnz());
        let x: Vec<f64> = (0..p.n()).map(|i| (i as f64 * 0.11).cos() * 2.0).collect();
        let mut y_csr = vec![0.0; p.n()];
        let mut y_sell = vec![f64::NAN; p.n()];
        csr.apply(&x, &mut y_csr);
        sell.apply(&x, &mut y_sell);
        for i in 0..p.n() {
            assert_eq!(y_sell[i].to_bits(), y_csr[i].to_bits(), "row {i}");
        }
    }

    #[test]
    fn cg_residuals_bitwise_identical_across_backends_and_worker_counts() {
        // Wrappers pinning the SymGS sweep to the coloured ordering, so the
        // whole CG trajectory is worker-count independent (the production
        // `symgs` picks lexicographic at one worker — a different, equally
        // valid preconditioner).
        struct Colored<O>(O);
        impl Operator for Colored<CsrOperator> {
            fn n(&self) -> usize {
                self.0.n()
            }
            fn apply(&self, x: &[f64], y: &mut [f64]) {
                self.0.apply(x, y)
            }
            fn symgs(&self, r: &[f64], z: &mut [f64]) {
                self.0.symgs_colored(r, z)
            }
        }
        impl Operator for Colored<SellOperator> {
            fn n(&self) -> usize {
                self.0.n()
            }
            fn apply(&self, x: &[f64], y: &mut [f64]) {
                self.0.apply(x, y)
            }
            fn symgs(&self, r: &[f64], z: &mut [f64]) {
                self.0.csr.symgs_colored(r, z)
            }
        }

        let p = Problem::cube(12);
        let reference = pcg(&Colored(CsrOperator::poisson27(&p)), &p.rhs, 25, 1e-10);
        assert!(reference.iterations > 0);
        for workers in [1usize, 2, 8] {
            let backends: Vec<Box<dyn Backend>> = vec![
                Box::new(ThreadsBackend::new(workers)),
                Box::new(CrossbeamBackend::new(workers)),
                Box::new(PoolBackend::new(workers)),
            ];
            for backend in backends {
                let label = backend.label();
                let stats = pcg(
                    &Colored(CsrOperator::poisson27_with_backend(&p, backend)),
                    &p.rhs,
                    25,
                    1e-10,
                );
                assert_eq!(stats.iterations, reference.iterations, "{label}");
                for (i, (a, b)) in stats.residuals.iter().zip(&reference.residuals).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "residual {i} diverged on {label} at {workers} workers"
                    );
                }
            }
            // SELL follows the same trajectory bit-for-bit: same matrix
            // arrays, same per-row summation order, same sweeps.
            let sell = pcg(
                &Colored(SellOperator::poisson27_with_backend(
                    &p,
                    Box::new(PoolBackend::new(workers)),
                )),
                &p.rhs,
                25,
                1e-10,
            );
            assert_eq!(sell.iterations, reference.iterations);
            for (a, b) in sell.residuals.iter().zip(&reference.residuals) {
                assert_eq!(a.to_bits(), b.to_bits(), "sell at {workers} workers");
            }
        }
    }

    #[test]
    fn csr_nnz_count() {
        let p = Problem::cube(4);
        let csr = CsrOperator::poisson27(&p);
        // 64 rows; interior rows have 27 entries, boundary fewer.
        assert_eq!(csr.n(), 64);
        // Corner rows have 8 entries (2×2×2 box).
        assert!(csr.nnz() < 64 * 27);
        assert!(csr.nnz() > 64 * 8);
    }

    #[test]
    fn parity_colors_partition_and_are_independent() {
        let (nx, ny, nz) = (6, 5, 4);
        let sets = parity_color_sets(nx, ny, nz);
        assert_eq!(sets.len(), 8);
        let total: usize = sets.iter().map(Vec::len).sum();
        assert_eq!(total, nx * ny * nz, "colours must partition the grid");
        // No two cells of a colour are stencil neighbours (all offsets ≤1).
        for set in &sets {
            for &a in set {
                for &b in set {
                    if a == b {
                        continue;
                    }
                    let (a, b) = (a as usize, b as usize);
                    let (ax, ay, az) = (a % nx, (a / nx) % ny, a / (nx * ny));
                    let (bx, by, bz) = (b % nx, (b / nx) % ny, b / (nx * ny));
                    let adjacent =
                        ax.abs_diff(bx) <= 1 && ay.abs_diff(by) <= 1 && az.abs_diff(bz) <= 1;
                    assert!(!adjacent, "same-colour neighbours: {a} and {b}");
                }
            }
        }
    }

    #[test]
    fn colored_symgs_deterministic_across_worker_counts() {
        let p = Problem::cube(8);
        let reference = {
            let op = CsrOperator::poisson27_with_backend(&p, Box::new(ThreadsBackend::new(2)));
            let mut z = vec![0.0; p.n()];
            op.symgs_colored(&p.rhs, &mut z);
            z
        };
        for workers in [1usize, 3, 4, 8] {
            for op in [
                CsrOperator::poisson27_with_backend(&p, Box::new(ThreadsBackend::new(workers))),
                CsrOperator::poisson27_with_backend(&p, Box::new(PoolBackend::new(workers))),
            ] {
                let mut z = vec![0.0; p.n()];
                op.symgs_colored(&p.rhs, &mut z);
                assert_eq!(z, reference, "workers={workers}");
            }
        }
        // Matrix-free colored agrees with CSR colored to rounding.
        let mf = MatrixFreeOperator::with_backend(&p, Box::new(ThreadsBackend::new(4)));
        let mut z = vec![0.0; p.n()];
        mf.symgs_colored(&p.rhs, &mut z);
        for (a, b) in z.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn colored_symgs_reduces_residual() {
        let p = Problem::cube(8);
        let op = CsrOperator::poisson27_with_backend(&p, Box::new(ThreadsBackend::new(4)));
        let b = p.rhs.clone();
        let mut z = vec![0.0; p.n()];
        let res = |z: &[f64]| {
            let mut az = vec![0.0; p.n()];
            op.apply(z, &mut az);
            az.iter()
                .zip(&b)
                .map(|(a, bi)| (bi - a).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        let r0 = res(&z);
        op.symgs(&b, &mut z);
        let r1 = res(&z);
        op.symgs(&b, &mut z);
        let r2 = res(&z);
        assert!(r1 < r0, "one coloured sweep should reduce the residual");
        assert!(r2 < r1, "two coloured sweeps should reduce it further");
    }

    #[test]
    fn operators_are_symmetric() {
        // <Ax, y> == <x, Ay> for random x, y.
        let p = Problem::cube(5);
        let ops: Vec<Box<dyn Operator>> = vec![
            Box::new(CsrOperator::poisson27(&p)),
            Box::new(SellOperator::poisson27(&p)),
            Box::new(MatrixFreeOperator::new(&p)),
            Box::new(LfricOperator::new(&p)),
        ];
        let n = p.n();
        let x: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 13) as f64).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i * 5 + 1) % 11) as f64).collect();
        for op in &ops {
            let mut ax = vec![0.0; n];
            let mut ay = vec![0.0; n];
            op.apply(&x, &mut ax);
            op.apply(&y, &mut ay);
            let axy: f64 = ax.iter().zip(&y).map(|(a, b)| a * b).sum();
            let xay: f64 = x.iter().zip(&ay).map(|(a, b)| a * b).sum();
            assert!((axy - xay).abs() < 1e-8 * axy.abs().max(1.0));
        }
    }

    #[test]
    fn operators_are_positive_definite_on_probe() {
        let p = Problem::cube(5);
        let ops: Vec<Box<dyn Operator>> = vec![
            Box::new(CsrOperator::poisson27(&p)),
            Box::new(SellOperator::poisson27(&p)),
            Box::new(MatrixFreeOperator::new(&p)),
            Box::new(LfricOperator::new(&p)),
        ];
        let n = p.n();
        for probe in 0..5 {
            let x: Vec<f64> = (0..n)
                .map(|i| (((i + probe) * 2654435761) % 1000) as f64 / 500.0 - 1.0)
                .collect();
            for op in &ops {
                let mut ax = vec![0.0; n];
                op.apply(&x, &mut ax);
                let xax: f64 = x.iter().zip(&ax).map(|(a, b)| a * b).sum();
                assert!(xax > 0.0, "operator not PD on probe {probe}");
            }
        }
    }

    #[test]
    fn symgs_reduces_residual() {
        let p = Problem::cube(6);
        for op in [build(HpcgVariant::Csr, &p), build(HpcgVariant::Lfric, &p)] {
            let b = p.rhs.clone();
            let mut z = vec![0.0; p.n()];
            let res = |z: &[f64]| {
                let mut az = vec![0.0; p.n()];
                op.apply(z, &mut az);
                az.iter()
                    .zip(&b)
                    .map(|(a, bi)| (bi - a).powi(2))
                    .sum::<f64>()
                    .sqrt()
            };
            let r0 = res(&z);
            op.symgs(&b, &mut z);
            let r1 = res(&z);
            op.symgs(&b, &mut z);
            let r2 = res(&z);
            assert!(r1 < r0, "one sweep should reduce the residual");
            assert!(r2 < r1, "two sweeps should reduce it further");
        }
    }
}
