//! The linear operators behind the four HPCG variants.

use super::problem::Problem;
use super::HpcgVariant;

/// A symmetric positive-definite operator with a symmetric Gauss-Seidel
/// smoother — the two ingredients HPCG's preconditioned CG needs.
pub trait Operator: Send + Sync {
    fn n(&self) -> usize;

    /// `y = A x`.
    fn apply(&self, x: &[f64], y: &mut [f64]);

    /// One symmetric Gauss-Seidel sweep applied to `z` for the system
    /// `A z = r`, starting from the current contents of `z`.
    fn symgs(&self, r: &[f64], z: &mut [f64]);
}

/// Build the operator for a variant over the given problem.
pub fn build(variant: HpcgVariant, problem: &Problem) -> Box<dyn Operator> {
    match variant {
        // The vendor-optimized variant runs the same assembled-matrix
        // algorithm; its difference is implementation cost, not math.
        HpcgVariant::Csr | HpcgVariant::IntelAvx2 => Box::new(CsrOperator::poisson27(problem)),
        HpcgVariant::MatrixFree => Box::new(MatrixFreeOperator::new(problem)),
        HpcgVariant::Lfric => Box::new(LfricOperator::new(problem)),
    }
}

/// Assembled 27-point Poisson operator in CSR.
pub struct CsrOperator {
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
    diag: Vec<f64>,
}

impl CsrOperator {
    /// Assemble the 27-point operator (diag 26, off-diag −1, Dirichlet
    /// truncation at the boundary).
    pub fn poisson27(p: &Problem) -> CsrOperator {
        let n = p.n();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        let mut diag = Vec::with_capacity(n);
        row_ptr.push(0);
        for iz in 0..p.nz {
            for iy in 0..p.ny {
                for ix in 0..p.nx {
                    let row = p.index(ix, iy, iz);
                    for dz in -1i64..=1 {
                        for dy in -1i64..=1 {
                            for dx in -1i64..=1 {
                                let jx = ix as i64 + dx;
                                let jy = iy as i64 + dy;
                                let jz = iz as i64 + dz;
                                if jx < 0
                                    || jy < 0
                                    || jz < 0
                                    || jx >= p.nx as i64
                                    || jy >= p.ny as i64
                                    || jz >= p.nz as i64
                                {
                                    continue;
                                }
                                let col = p.index(jx as usize, jy as usize, jz as usize);
                                let v = if col == row { 26.0 } else { -1.0 };
                                col_idx.push(col as u32);
                                values.push(v);
                            }
                        }
                    }
                    diag.push(26.0);
                    row_ptr.push(col_idx.len());
                }
            }
        }
        CsrOperator { row_ptr, col_idx, values, diag }
    }

    pub fn nnz(&self) -> usize {
        self.values.len()
    }
}

impl Operator for CsrOperator {
    fn n(&self) -> usize {
        self.diag.len()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        for (row, out) in y.iter_mut().enumerate().take(self.n()) {
            let mut sum = 0.0;
            for k in self.row_ptr[row]..self.row_ptr[row + 1] {
                sum += self.values[k] * x[self.col_idx[k] as usize];
            }
            *out = sum;
        }
    }

    fn symgs(&self, r: &[f64], z: &mut [f64]) {
        let n = self.n();
        // Forward sweep.
        for row in 0..n {
            let mut sum = r[row];
            for k in self.row_ptr[row]..self.row_ptr[row + 1] {
                sum -= self.values[k] * z[self.col_idx[k] as usize];
            }
            sum += self.diag[row] * z[row];
            z[row] = sum / self.diag[row];
        }
        // Backward sweep.
        for row in (0..n).rev() {
            let mut sum = r[row];
            for k in self.row_ptr[row]..self.row_ptr[row + 1] {
                sum -= self.values[k] * z[self.col_idx[k] as usize];
            }
            sum += self.diag[row] * z[row];
            z[row] = sum / self.diag[row];
        }
    }
}

/// The same 27-point operator applied matrix-free: neighbours are
/// enumerated on the fly, coefficients are compile-time constants.
pub struct MatrixFreeOperator {
    nx: usize,
    ny: usize,
    nz: usize,
}

impl MatrixFreeOperator {
    pub fn new(p: &Problem) -> MatrixFreeOperator {
        MatrixFreeOperator { nx: p.nx, ny: p.ny, nz: p.nz }
    }

    /// Σ over in-bounds neighbours of `x`, excluding the centre.
    fn neighbour_sum(&self, x: &[f64], ix: usize, iy: usize, iz: usize) -> f64 {
        let mut s = 0.0;
        for dz in -1i64..=1 {
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    let jx = ix as i64 + dx;
                    let jy = iy as i64 + dy;
                    let jz = iz as i64 + dz;
                    if jx < 0
                        || jy < 0
                        || jz < 0
                        || jx >= self.nx as i64
                        || jy >= self.ny as i64
                        || jz >= self.nz as i64
                    {
                        continue;
                    }
                    s += x[(jz as usize * self.ny + jy as usize) * self.nx + jx as usize];
                }
            }
        }
        s
    }
}

impl Operator for MatrixFreeOperator {
    fn n(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        for iz in 0..self.nz {
            for iy in 0..self.ny {
                for ix in 0..self.nx {
                    let i = (iz * self.ny + iy) * self.nx + ix;
                    y[i] = 26.0 * x[i] - self.neighbour_sum(x, ix, iy, iz);
                }
            }
        }
    }

    fn symgs(&self, r: &[f64], z: &mut [f64]) {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        // Forward sweep in lexicographic order (matches CSR ordering, so
        // the two variants produce bitwise-comparable trajectories).
        for iz in 0..nz {
            for iy in 0..ny {
                for ix in 0..nx {
                    let i = (iz * ny + iy) * nx + ix;
                    z[i] = (r[i] + self.neighbour_sum(z, ix, iy, iz)) / 26.0;
                }
            }
        }
        // Backward sweep.
        for iz in (0..nz).rev() {
            for iy in (0..ny).rev() {
                for ix in (0..nx).rev() {
                    let i = (iz * ny + iy) * nx + ix;
                    z[i] = (r[i] + self.neighbour_sum(z, ix, iy, iz)) / 26.0;
                }
            }
        }
    }
}

/// A symmetrized Helmholtz operator in the style of the LFRic dynamical
/// core: strong vertical coupling, a mass (λ) term, 7-point structure.
pub struct LfricOperator {
    nx: usize,
    ny: usize,
    nz: usize,
    /// Horizontal coupling.
    ch: f64,
    /// Vertical coupling (atmospheric columns couple more strongly).
    cv: f64,
    /// Helmholtz λ (mass) term — keeps the operator positive definite.
    lambda: f64,
}

impl LfricOperator {
    pub fn new(p: &Problem) -> LfricOperator {
        LfricOperator { nx: p.nx, ny: p.ny, nz: p.nz, ch: 1.0, cv: 4.0, lambda: 1.0 }
    }

    fn diag_at(&self, ix: usize, iy: usize, iz: usize) -> f64 {
        // Row diagonal = Σ|off-diagonals| + λ: strictly diagonally dominant.
        let mut d = self.lambda;
        if ix > 0 {
            d += self.ch;
        }
        if ix + 1 < self.nx {
            d += self.ch;
        }
        if iy > 0 {
            d += self.ch;
        }
        if iy + 1 < self.ny {
            d += self.ch;
        }
        if iz > 0 {
            d += self.cv;
        }
        if iz + 1 < self.nz {
            d += self.cv;
        }
        d
    }

    fn off_sum(&self, x: &[f64], ix: usize, iy: usize, iz: usize) -> f64 {
        let (nx, ny) = (self.nx, self.ny);
        let i = (iz * ny + iy) * nx + ix;
        let mut s = 0.0;
        if ix > 0 {
            s += self.ch * x[i - 1];
        }
        if ix + 1 < self.nx {
            s += self.ch * x[i + 1];
        }
        if iy > 0 {
            s += self.ch * x[i - nx];
        }
        if iy + 1 < self.ny {
            s += self.ch * x[i + nx];
        }
        if iz > 0 {
            s += self.cv * x[i - nx * ny];
        }
        if iz + 1 < self.nz {
            s += self.cv * x[i + nx * ny];
        }
        s
    }
}

impl Operator for LfricOperator {
    fn n(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        for iz in 0..self.nz {
            for iy in 0..self.ny {
                for ix in 0..self.nx {
                    let i = (iz * self.ny + iy) * self.nx + ix;
                    y[i] = self.diag_at(ix, iy, iz) * x[i] - self.off_sum(x, ix, iy, iz);
                }
            }
        }
    }

    fn symgs(&self, r: &[f64], z: &mut [f64]) {
        for iz in 0..self.nz {
            for iy in 0..self.ny {
                for ix in 0..self.nx {
                    let i = (iz * self.ny + iy) * self.nx + ix;
                    z[i] = (r[i] + self.off_sum(z, ix, iy, iz)) / self.diag_at(ix, iy, iz);
                }
            }
        }
        for iz in (0..self.nz).rev() {
            for iy in (0..self.ny).rev() {
                for ix in (0..self.nx).rev() {
                    let i = (iz * self.ny + iy) * self.nx + ix;
                    z[i] = (r[i] + self.off_sum(z, ix, iy, iz)) / self.diag_at(ix, iy, iz);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_and_matrix_free_agree_exactly() {
        let p = Problem::cube(6);
        let csr = CsrOperator::poisson27(&p);
        let mf = MatrixFreeOperator::new(&p);
        let x: Vec<f64> = (0..p.n()).map(|i| ((i * 31) % 17) as f64 * 0.125).collect();
        let mut y1 = vec![0.0; p.n()];
        let mut y2 = vec![0.0; p.n()];
        csr.apply(&x, &mut y1);
        mf.apply(&x, &mut y2);
        assert_eq!(y1, y2, "assembled and matrix-free operators must agree");
        // SymGS sweeps agree too (same ordering).
        let r = p.rhs.clone();
        let mut z1 = vec![0.0; p.n()];
        let mut z2 = vec![0.0; p.n()];
        csr.symgs(&r, &mut z1);
        mf.symgs(&r, &mut z2);
        for (a, b) in z1.iter().zip(&z2) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn csr_nnz_count() {
        let p = Problem::cube(4);
        let csr = CsrOperator::poisson27(&p);
        // 64 rows; interior rows have 27 entries, boundary fewer.
        assert_eq!(csr.n(), 64);
        // Corner rows have 8 entries (2×2×2 box).
        assert!(csr.nnz() < 64 * 27);
        assert!(csr.nnz() > 64 * 8);
    }

    #[test]
    fn operators_are_symmetric() {
        // <Ax, y> == <x, Ay> for random x, y.
        let p = Problem::cube(5);
        let ops: Vec<Box<dyn Operator>> = vec![
            Box::new(CsrOperator::poisson27(&p)),
            Box::new(MatrixFreeOperator::new(&p)),
            Box::new(LfricOperator::new(&p)),
        ];
        let n = p.n();
        let x: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 13) as f64).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i * 5 + 1) % 11) as f64).collect();
        for op in &ops {
            let mut ax = vec![0.0; n];
            let mut ay = vec![0.0; n];
            op.apply(&x, &mut ax);
            op.apply(&y, &mut ay);
            let axy: f64 = ax.iter().zip(&y).map(|(a, b)| a * b).sum();
            let xay: f64 = x.iter().zip(&ay).map(|(a, b)| a * b).sum();
            assert!((axy - xay).abs() < 1e-8 * axy.abs().max(1.0));
        }
    }

    #[test]
    fn operators_are_positive_definite_on_probe() {
        let p = Problem::cube(5);
        let ops: Vec<Box<dyn Operator>> = vec![
            Box::new(CsrOperator::poisson27(&p)),
            Box::new(MatrixFreeOperator::new(&p)),
            Box::new(LfricOperator::new(&p)),
        ];
        let n = p.n();
        for probe in 0..5 {
            let x: Vec<f64> =
                (0..n).map(|i| (((i + probe) * 2654435761) % 1000) as f64 / 500.0 - 1.0).collect();
            for op in &ops {
                let mut ax = vec![0.0; n];
                op.apply(&x, &mut ax);
                let xax: f64 = x.iter().zip(&ax).map(|(a, b)| a * b).sum();
                assert!(xax > 0.0, "operator not PD on probe {probe}");
            }
        }
    }

    #[test]
    fn symgs_reduces_residual() {
        let p = Problem::cube(6);
        for op in [build(HpcgVariant::Csr, &p), build(HpcgVariant::Lfric, &p)] {
            let b = p.rhs.clone();
            let mut z = vec![0.0; p.n()];
            let res = |z: &[f64]| {
                let mut az = vec![0.0; p.n()];
                op.apply(z, &mut az);
                az.iter().zip(&b).map(|(a, bi)| (bi - a).powi(2)).sum::<f64>().sqrt()
            };
            let r0 = res(&z);
            op.symgs(&b, &mut z);
            let r1 = res(&z);
            op.symgs(&b, &mut z);
            let r2 = res(&z);
            assert!(r1 < r0, "one sweep should reduce the residual");
            assert!(r2 < r1, "two sweeps should reduce it further");
        }
    }
}
