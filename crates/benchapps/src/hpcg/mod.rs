//! HPCG: the high-performance conjugate-gradient benchmark (§3.2, Table 2).
//!
//! A preconditioned CG solver for a 3D Poisson problem discretized with a
//! 27-point finite-difference stencil, in the paper's four
//! algorithm/implementation variants:
//!
//! * **CSR** — the reference implementation: assembled sparse matrix in
//!   Compressed Sparse Row form, indirect addressing throughout;
//! * **Intel-avx2** — the vendor-optimized binary: same algorithm, blocked
//!   matrix layout that roughly halves index traffic (Intel CPUs only);
//! * **SELL-C-σ** — the assembled operator stored in sliced-ELLPACK form:
//!   bitwise the same CG trajectory as CSR, but the SpMV runs rows as
//!   independent SIMD lanes (see DESIGN.md "Roofline kernels");
//! * **Matrix-free** — the 27-point operator applied without assembling the
//!   matrix: coefficients are compile-time constants, no gather;
//! * **LFRic** — a symmetrized Helmholtz operator from the Met Office
//!   LFRic model, also matrix-free but with different structure and cost.
//!
//! All variants run the *same CG algorithm* on the *same problem*, so their
//! answers agree — exactly the property that makes the paper's efficiency
//! ratios (Eq. 1) meaningful.

mod cg;
mod cost;
pub mod distributed;
mod ops;
mod problem;

pub use cg::{pcg, pcg_with, CgStats};
pub use ops::{
    build as build_operator, build_with_backend as build_operator_with_backend, CsrOperator,
    LfricOperator, MatrixFreeOperator, Operator, SellOperator,
};
pub use problem::Problem;

use crate::{BenchError, ExecutionMode, RunOutput};
use simhpc::noise::NoiseModel;
use std::time::Instant;

/// The paper's four variants, plus the SELL-C-σ layout of the assembled
/// operator (same math as CSR — bitwise-identical CG — vector-friendly
/// storage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HpcgVariant {
    Csr,
    IntelAvx2,
    Sell,
    MatrixFree,
    Lfric,
}

impl HpcgVariant {
    pub fn all() -> &'static [HpcgVariant] {
        &[
            HpcgVariant::Csr,
            HpcgVariant::IntelAvx2,
            HpcgVariant::Sell,
            HpcgVariant::MatrixFree,
            HpcgVariant::Lfric,
        ]
    }

    /// Table-2 row label.
    pub fn label(&self) -> &'static str {
        match self {
            HpcgVariant::Csr => "Original (CSR)",
            HpcgVariant::IntelAvx2 => "Intel-avx2 (CSR)",
            HpcgVariant::Sell => "SELL-C-sigma",
            HpcgVariant::MatrixFree => "Matrix-free",
            HpcgVariant::Lfric => "LFRic",
        }
    }

    /// Spack variant value (`hpcg impl=...`).
    pub fn spec_name(&self) -> &'static str {
        match self {
            HpcgVariant::Csr => "csr",
            HpcgVariant::IntelAvx2 => "avx2",
            HpcgVariant::Sell => "sell",
            HpcgVariant::MatrixFree => "matfree",
            HpcgVariant::Lfric => "lfric",
        }
    }

    pub fn from_spec_name(s: &str) -> Option<HpcgVariant> {
        HpcgVariant::all()
            .iter()
            .copied()
            .find(|v| v.spec_name() == s)
    }

    /// Is the variant available on this processor? The vendor binary only
    /// targets Intel microarchitectures (Table 2 lists it N/A on AMD).
    pub fn available_on(&self, proc: &simhpc::Processor) -> bool {
        if proc.is_gpu() {
            return false;
        }
        match self {
            HpcgVariant::IntelAvx2 => proc.vendor().eq_ignore_ascii_case("intel"),
            _ => true,
        }
    }
}

/// Run configuration.
#[derive(Debug, Clone)]
pub struct HpcgConfig {
    /// Local grid dimension per rank (`nx = ny = nz`); HPCG's default 104,
    /// scaled down for laptop runs.
    pub local_dim: usize,
    /// MPI ranks (Table 2: 40 on Cascade Lake, 128 on Rome).
    pub ranks: u32,
    pub variant: HpcgVariant,
    /// CG iterations per set (HPCG runs sets of 50).
    pub iterations: usize,
    /// Host worker threads for the kernels. `None` (the default) keeps the
    /// serial backend and the lexicographic SymGS sweep — bit-identical to
    /// the original sequential solver. `Some(t)` with `t > 1` executes on a
    /// persistent worker pool with the multicoloured SymGS smoother.
    pub threads: Option<usize>,
}

impl Default for HpcgConfig {
    fn default() -> HpcgConfig {
        HpcgConfig {
            local_dim: 16,
            ranks: 1,
            variant: HpcgVariant::Csr,
            iterations: 50,
            threads: None,
        }
    }
}

/// Run HPCG and produce output in the real benchmark's summary format.
pub fn run(config: &HpcgConfig, mode: &ExecutionMode) -> Result<RunOutput, BenchError> {
    run_with(config, mode, &mut crate::scratch::Arena::new())
}

/// [`run`] drawing CG working vectors from a caller-owned arena, so the
/// harness can reuse buffers across repetitions and cells.
pub fn run_with(
    config: &HpcgConfig,
    mode: &ExecutionMode,
    arena: &mut crate::scratch::Arena,
) -> Result<RunOutput, BenchError> {
    if config.local_dim < 4 {
        return Err(BenchError::BadConfig(
            "local dimension must be at least 4".into(),
        ));
    }
    // Execute the real solver at a capped size: the numerics are genuine.
    let exec_dim = match mode {
        ExecutionMode::Native => config.local_dim,
        ExecutionMode::Simulated { .. } => config.local_dim.min(16),
    };
    let start = Instant::now();
    let problem = Problem::cube(exec_dim);
    let op = match config.threads {
        Some(t) if t > 1 => ops::build_with_backend(
            config.variant,
            &problem,
            Box::new(parkern::PoolBackend::new(t)),
        ),
        _ => ops::build(config.variant, &problem),
    };
    let stats = pcg_with(
        op.as_ref(),
        &problem.rhs,
        config.iterations.min(60),
        1e-10,
        arena,
    );
    let native_elapsed = start.elapsed().as_secs_f64();
    if !stats.converging() {
        return Err(BenchError::ValidationFailed(format!(
            "CG residual did not decrease: first {:.3e}, last {:.3e}",
            stats.residuals.first().copied().unwrap_or(0.0),
            stats.residuals.last().copied().unwrap_or(0.0),
        )));
    }

    let (gflops, valid_label, system, wall) = match mode {
        ExecutionMode::Native => {
            let flops = cost::flops_for(config.variant, problem.n(), stats.iterations);
            (
                flops / native_elapsed / 1e9,
                "VALID",
                "native".to_string(),
                native_elapsed,
            )
        }
        ExecutionMode::Simulated {
            partition,
            system,
            seed,
        } => {
            let proc = partition.processor();
            if !config.variant.available_on(proc) {
                return Err(BenchError::Unsupported(format!(
                    "{} is not available on {}",
                    config.variant.label(),
                    proc.model()
                )));
            }
            let mut noise = NoiseModel::for_run(
                system,
                &format!("hpcg-{}", config.variant.spec_name()),
                *seed,
            );
            let g = cost::simulated_gflops(config, partition);
            let rating = g / noise.perturb(1.0);
            // The wall time is the modeled work over the modeled rating —
            // never the host's measured time, so simulated runs (and the
            // telemetry derived from them) are deterministic per seed.
            let n_global = config.local_dim.pow(3) * config.ranks as usize;
            let flops = cost::flops_for(config.variant, n_global, stats.iterations);
            (rating, "VALID", system.clone(), flops / (rating * 1e9))
        }
    };

    let n_global = config.local_dim.pow(3) as u64 * config.ranks as u64;
    let mut out = String::new();
    out.push_str("HPCG-Benchmark version=3.1\n");
    out.push_str(&format!(
        "Machine Summary::Distributed Processes={}\n",
        config.ranks
    ));
    out.push_str(&format!(
        "Global Problem Dimensions::Global nx={}\n",
        config.local_dim
    ));
    out.push_str(&format!(
        "Global Problem Summary::Number of Equations={n_global}\n"
    ));
    out.push_str(&format!("Variant::{}\n", config.variant.label()));
    out.push_str(&format!("System::{system}\n"));
    out.push_str(&format!(
        "Iteration Count Information::Total number of optimized iterations={}\n",
        stats.iterations
    ));
    out.push_str(&format!(
        "Reproducibility Information::Scaled residual mean={:.4e}\n",
        stats.final_relative_residual()
    ));
    out.push_str(&format!(
        "Final Summary::HPCG result is {valid_label} with a GFLOP/s rating of={gflops:.4}\n"
    ));
    Ok(RunOutput {
        stdout: out,
        wall_time_s: wall,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extract_gflops(stdout: &str) -> f64 {
        stdout
            .lines()
            .find(|l| l.contains("GFLOP/s rating of="))
            .and_then(|l| l.rsplit('=').next())
            .and_then(|v| v.trim().parse().ok())
            .expect("rating present")
    }

    #[test]
    fn native_run_valid() {
        let cfg = HpcgConfig {
            local_dim: 8,
            iterations: 20,
            ..Default::default()
        };
        let out = run(&cfg, &ExecutionMode::Native).unwrap();
        assert!(out.stdout.contains("result is VALID"));
        assert!(extract_gflops(&out.stdout) > 0.0);
    }

    #[test]
    fn table2_shape_on_cascade_lake() {
        // Paper: 24.0 / 39.0 / 51.0 / 18.5 GF/s (40 ranks, dual-socket 6230).
        let mode = ExecutionMode::simulated("isambard-macs:cascadelake", 11).unwrap();
        let gf = |variant| {
            let cfg = HpcgConfig {
                local_dim: 64,
                ranks: 40,
                variant,
                iterations: 50,
                threads: None,
            };
            extract_gflops(&run(&cfg, &mode).unwrap().stdout)
        };
        let csr = gf(HpcgVariant::Csr);
        let avx2 = gf(HpcgVariant::IntelAvx2);
        let matfree = gf(HpcgVariant::MatrixFree);
        let lfric = gf(HpcgVariant::Lfric);
        assert!(
            matfree > avx2 && avx2 > csr && csr > lfric,
            "{csr} {avx2} {matfree} {lfric}"
        );
        // Within 25% of the paper's absolute numbers.
        for (got, want) in [(csr, 24.0), (avx2, 39.0), (matfree, 51.0), (lfric, 18.5)] {
            assert!(
                (got - want).abs() / want < 0.25,
                "expected ~{want} GF/s, got {got}"
            );
        }
        // Eq. 1: algorithmic gain beats implementation gain.
        let e_i = avx2 / csr;
        let e_a = matfree / csr;
        assert!((e_i - 1.625).abs() < 0.4, "E_I = {e_i}");
        assert!((e_a - 2.125).abs() < 0.5, "E_A = {e_a}");
        assert!(e_a > e_i);
    }

    #[test]
    fn table2_shape_on_rome() {
        // Paper: 39.2 / N/A / 124.2 / 56.0 GF/s (128 ranks, dual EPYC 7742).
        let mode = ExecutionMode::simulated("archer2", 11).unwrap();
        let gf = |variant| {
            let cfg = HpcgConfig {
                local_dim: 64,
                ranks: 128,
                variant,
                iterations: 50,
                threads: None,
            };
            extract_gflops(&run(&cfg, &mode).unwrap().stdout)
        };
        let csr = gf(HpcgVariant::Csr);
        let matfree = gf(HpcgVariant::MatrixFree);
        let lfric = gf(HpcgVariant::Lfric);
        for (got, want) in [(csr, 39.2), (matfree, 124.2), (lfric, 56.0)] {
            assert!(
                (got - want).abs() / want < 0.25,
                "expected ~{want} GF/s, got {got}"
            );
        }
        // The algorithmic gain is even larger on AMD (paper: 3.168).
        let e_a = matfree / csr;
        assert!(e_a > 2.5, "E_A on Rome = {e_a}");
        // Intel binary is N/A on AMD.
        let cfg = HpcgConfig {
            local_dim: 64,
            ranks: 128,
            variant: HpcgVariant::IntelAvx2,
            iterations: 50,
            threads: None,
        };
        assert!(matches!(run(&cfg, &mode), Err(BenchError::Unsupported(_))));
    }

    #[test]
    fn rome_beats_cascade_lake_absolute() {
        let gf = |spec: &str, ranks| {
            let mode = ExecutionMode::simulated(spec, 3).unwrap();
            let cfg = HpcgConfig {
                local_dim: 64,
                ranks,
                variant: HpcgVariant::Csr,
                iterations: 50,
                threads: None,
            };
            extract_gflops(&run(&cfg, &mode).unwrap().stdout)
        };
        assert!(gf("archer2", 128) > gf("isambard-macs:cascadelake", 40));
    }

    #[test]
    fn variants_agree_numerically() {
        // All variants solve the same problem: same iteration count and
        // residual trajectory on the Poisson operator variants.
        let problem = Problem::cube(8);
        let csr = ops::build(HpcgVariant::Csr, &problem);
        let mf = ops::build(HpcgVariant::MatrixFree, &problem);
        let s1 = pcg(csr.as_ref(), &problem.rhs, 25, 1e-12);
        let s2 = pcg(mf.as_ref(), &problem.rhs, 25, 1e-12);
        assert_eq!(s1.iterations, s2.iterations);
        for (a, b) in s1.residuals.iter().zip(&s2.residuals) {
            assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn tiny_problem_rejected() {
        let cfg = HpcgConfig {
            local_dim: 2,
            ..Default::default()
        };
        assert!(run(&cfg, &ExecutionMode::Native).is_err());
    }
}
