//! HPGMG-FV: the finite-volume full-multigrid benchmark (§3.3, Tables 3–4).
//!
//! A geometric multigrid solver for a 3D Poisson problem: V-cycles built
//! from red-black Gauss-Seidel smoothing (HPGMG's GSRB), 8-cell-average
//! restriction and cell-centred trilinear prolongation. The benchmark
//! reports a compute rate in DOF/s at the finest level (`l0`) and at two
//! successively 8× smaller problems (`l1`, `l2`) — exactly the three
//! Figures of Merit the paper's Table 4 lists per system.
//!
//! As with the other apps, the solver always runs for real (so the
//! residual checks are genuine); simulated platforms report times from a
//! cost model with volume (DRAM), surface (halo exchange) and fixed
//! (latency/coarse-chain) terms, whose constants are calibrated against
//! Table 4 and validated by the `table4` bench.

use crate::{BenchError, ExecutionMode, RunOutput};
use simhpc::noise::NoiseModel;
use simhpc::Partition;
use std::time::Instant;

/// Run configuration, mirroring `hpgmg-fv <log2_box_dim> <boxes_per_rank>`
/// plus the ReFrame task layout of the paper's appendix.
#[derive(Debug, Clone)]
pub struct HpgmgConfig {
    /// log2 of the box dimension (paper: 7 → 128³ cells per box).
    pub log2_box_dim: u32,
    /// Boxes per MPI rank (paper: 8).
    pub boxes_per_rank: u32,
    /// `num_tasks` (paper: 8).
    pub ranks: u32,
    /// `num_tasks_per_node` (paper: 2).
    pub tasks_per_node: u32,
    /// `num_cpus_per_task` (paper: 8).
    pub cpus_per_task: u32,
}

impl Default for HpgmgConfig {
    fn default() -> HpgmgConfig {
        HpgmgConfig {
            log2_box_dim: 5,
            boxes_per_rank: 8,
            ranks: 8,
            tasks_per_node: 2,
            cpus_per_task: 8,
        }
    }
}

impl HpgmgConfig {
    /// The paper's exact configuration (`7 8`, 8 ranks, 2 per node).
    pub fn paper() -> HpgmgConfig {
        HpgmgConfig {
            log2_box_dim: 7,
            ..HpgmgConfig::default()
        }
    }

    /// Degrees of freedom at reported level `l` (0 = finest).
    pub fn dof_at_level(&self, level: u32) -> u64 {
        let per_box = 1u64 << (3 * self.log2_box_dim);
        (per_box * self.boxes_per_rank as u64 * self.ranks as u64) >> (3 * level)
    }

    pub fn nodes(&self) -> u32 {
        self.ranks.div_ceil(self.tasks_per_node.max(1))
    }
}

// ---------------------------------------------------------------------------
// The real multigrid solver (periodically sized cube, 7-point FV Laplacian).
// ---------------------------------------------------------------------------

/// One grid level: an `n³` cell-centred cube with Dirichlet boundaries.
struct Level {
    n: usize,
    u: Vec<f64>,
    rhs: Vec<f64>,
    tmp: Vec<f64>,
}

impl Level {
    fn new(n: usize) -> Level {
        let len = n * n * n;
        Level {
            n,
            u: vec![0.0; len],
            rhs: vec![0.0; len],
            tmp: vec![0.0; len],
        }
    }

    #[inline]
    fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        (k * self.n + j) * self.n + i
    }

    /// Diagonal of the cell-centred Dirichlet Laplacian at (i,j,k):
    /// the boundary lies half a cell away, so the ghost-cell elimination
    /// (`u_ghost = −u_cell` for a zero boundary value) adds 1 per
    /// boundary face. Getting this right is what makes the coarse-grid
    /// correction consistent near the boundary (and the V-cycle converge
    /// at its textbook rate).
    fn diag_at(&self, i: usize, j: usize, k: usize) -> f64 {
        let n = self.n;
        let mut d = 6.0;
        d += f64::from(i == 0) + f64::from(i + 1 == n);
        d += f64::from(j == 0) + f64::from(j + 1 == n);
        d += f64::from(k == 0) + f64::from(k + 1 == n);
        d
    }

    /// 7-point cell-centred Laplacian `A u` at (i,j,k).
    fn apply_at(&self, u: &[f64], i: usize, j: usize, k: usize) -> f64 {
        let n = self.n;
        let mut s = self.diag_at(i, j, k) * u[self.idx(i, j, k)];
        if i > 0 {
            s -= u[self.idx(i - 1, j, k)];
        }
        if i + 1 < n {
            s -= u[self.idx(i + 1, j, k)];
        }
        if j > 0 {
            s -= u[self.idx(i, j - 1, k)];
        }
        if j + 1 < n {
            s -= u[self.idx(i, j + 1, k)];
        }
        if k > 0 {
            s -= u[self.idx(i, j, k - 1)];
        }
        if k + 1 < n {
            s -= u[self.idx(i, j, k + 1)];
        }
        s
    }

    /// Red-black Gauss-Seidel smoothing (HPGMG's GSRB smoother).
    fn smooth(&mut self, sweeps: usize) {
        for _ in 0..sweeps {
            for color in 0..2 {
                for k in 0..self.n {
                    for j in 0..self.n {
                        for i in 0..self.n {
                            if (i + j + k) % 2 != color {
                                continue;
                            }
                            let at = self.idx(i, j, k);
                            let r = self.rhs[at] - self.apply_at(&self.u, i, j, k);
                            self.u[at] += r / self.diag_at(i, j, k);
                        }
                    }
                }
            }
        }
    }

    /// Residual 2-norm.
    fn residual_norm(&self) -> f64 {
        let mut s = 0.0;
        for k in 0..self.n {
            for j in 0..self.n {
                for i in 0..self.n {
                    let r = self.rhs[self.idx(i, j, k)] - self.apply_at(&self.u, i, j, k);
                    s += r * r;
                }
            }
        }
        s.sqrt()
    }
}

/// For fine cell index `f`, the two nearest coarse cells and the trilinear
/// weight of the farther one: returns `(primary, secondary, w_secondary)`.
/// A fine cell's centre sits 1/4 of a coarse cell away from its parent's
/// centre, giving weights 3/4 / 1/4; at the domain edge the stencil clamps.
fn coarse_weights(f: usize, nc: usize) -> (usize, usize, f64) {
    let c = f / 2;
    match (f.is_multiple_of(2), c) {
        (true, 0) => (c, c, 0.0),
        (true, _) => (c, c - 1, 0.25),
        (false, _) if c + 1 >= nc => (c, c, 0.0),
        (false, _) => (c, c + 1, 0.25),
    }
}

/// A multigrid hierarchy over an `n³` cube (n a power of two ≥ 4).
pub struct Multigrid {
    levels: Vec<Level>,
}

impl Multigrid {
    pub fn new(n: usize) -> Result<Multigrid, BenchError> {
        if n < 4 || !n.is_power_of_two() {
            return Err(BenchError::BadConfig(format!(
                "grid dimension {n} must be a power of two ≥ 4"
            )));
        }
        let mut levels = Vec::new();
        let mut dim = n;
        while dim >= 2 {
            levels.push(Level::new(dim));
            if dim == 2 {
                break;
            }
            dim /= 2;
        }
        Ok(Multigrid { levels })
    }

    /// Set a synthetic right-hand side with a known smooth structure.
    pub fn set_rhs_sine(&mut self) {
        let fine = &mut self.levels[0];
        let n = fine.n;
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let x = (i as f64 + 0.5) / n as f64;
                    let y = (j as f64 + 0.5) / n as f64;
                    let z = (k as f64 + 0.5) / n as f64;
                    fine.rhs[(k * n + j) * n + i] = (std::f64::consts::PI * x).sin()
                        * (std::f64::consts::PI * y).sin()
                        * (std::f64::consts::PI * z).sin();
                }
            }
        }
        fine.u.fill(0.0);
    }

    /// Restrict the fine residual to the coarse RHS (8-cell average).
    fn restrict(&mut self, fine: usize) {
        // Compute residual on the fine level into tmp.
        {
            let lv = &mut self.levels[fine];
            for k in 0..lv.n {
                for j in 0..lv.n {
                    for i in 0..lv.n {
                        let at = lv.idx(i, j, k);
                        let r = lv.rhs[at] - lv.apply_at(&lv.u, i, j, k);
                        lv.tmp[at] = r;
                    }
                }
            }
        }
        let (head, tail) = self.levels.split_at_mut(fine + 1);
        let f = &head[fine];
        let c = &mut tail[0];
        for k in 0..c.n {
            for j in 0..c.n {
                for i in 0..c.n {
                    let mut s = 0.0;
                    for dk in 0..2 {
                        for dj in 0..2 {
                            for di in 0..2 {
                                s += f.tmp[f.idx(2 * i + di, 2 * j + dj, 2 * k + dk)];
                            }
                        }
                    }
                    let at = c.idx(i, j, k);
                    // Galerkin-consistent scaling for this cell-centred
                    // average/trilinear transfer pair: r_2h = 4 · avg(r_h).
                    c.rhs[at] = s * 0.5;
                }
            }
        }
        c.u.fill(0.0);
    }

    /// Prolong the coarse correction onto the fine solution with
    /// cell-centred trilinear interpolation (weights 3/4 and 1/4 per
    /// dimension, clamped at the boundary).
    fn prolong(&mut self, fine: usize) {
        let (head, tail) = self.levels.split_at_mut(fine + 1);
        let f = &mut head[fine];
        let c = &tail[0];
        let nc = c.n;
        for fk in 0..f.n {
            let (k0, k1, wk) = coarse_weights(fk, nc);
            for fj in 0..f.n {
                let (j0, j1, wj) = coarse_weights(fj, nc);
                for fi in 0..f.n {
                    let (i0, i1, wi) = coarse_weights(fi, nc);
                    let mut acc = 0.0;
                    for (kk, wkk) in [(k0, 1.0 - wk), (k1, wk)] {
                        if wkk == 0.0 {
                            continue;
                        }
                        for (jj, wjj) in [(j0, 1.0 - wj), (j1, wj)] {
                            if wjj == 0.0 {
                                continue;
                            }
                            for (ii, wii) in [(i0, 1.0 - wi), (i1, wi)] {
                                if wii == 0.0 {
                                    continue;
                                }
                                acc += wkk * wjj * wii * c.u[c.idx(ii, jj, kk)];
                            }
                        }
                    }
                    let at = f.idx(fi, fj, fk);
                    f.u[at] += acc;
                }
            }
        }
    }

    /// One V-cycle rooted at `level`.
    fn v_cycle(&mut self, level: usize) {
        if level + 1 == self.levels.len() {
            self.levels[level].smooth(16);
            return;
        }
        self.levels[level].smooth(2);
        self.restrict(level);
        self.v_cycle(level + 1);
        self.prolong(level);
        self.levels[level].smooth(2);
    }

    /// FMG-style solve: repeated V-cycles on the finest level.
    /// Returns (initial residual, final residual, cycles used).
    pub fn solve(&mut self, max_cycles: usize, tol: f64) -> (f64, f64, usize) {
        let r0 = self.levels[0].residual_norm();
        if r0 == 0.0 {
            return (0.0, 0.0, 0);
        }
        let mut r = r0;
        let mut cycles = 0;
        for _ in 0..max_cycles {
            self.v_cycle(0);
            cycles += 1;
            r = self.levels[0].residual_norm();
            if r / r0 < tol {
                break;
            }
        }
        (r0, r, cycles)
    }

    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }
}

// ---------------------------------------------------------------------------
// Cost model (simulated platforms) — calibrated to Table 4; see DESIGN.md.
// ---------------------------------------------------------------------------

/// DRAM traffic per fine-grid DOF for one full benchmark solve.
const BYTES_PER_DOF: f64 = 5200.0;
/// Residual/ghost exchange traffic coefficient (× DOF^(2/3) bytes).
const HALO_BYTES_COEFF: f64 = 1462.0 * 8.0;
/// Fixed latency-bound rounds per solve (coarse-grid chain).
const LATENCY_ROUNDS: f64 = 14950.0;
/// Vector copies resident during the solve (cache-residency check).
const RESIDENT_ARRAYS: f64 = 12.0;

/// Simulated solve time at one reported level.
fn simulated_time(config: &HpgmgConfig, level: u32, partition: &Partition) -> f64 {
    let proc = partition.processor();
    let dof = config.dof_at_level(level) as f64;
    let nodes = config.nodes() as f64;
    let threads_per_node = (config.tasks_per_node * config.cpus_per_task).min(proc.total_cores());
    let sf = partition.system_factor();

    // Volume term: DRAM traffic unless the per-node working set fits in
    // (half of) the LLC — on the 512 MB Rome caches the two coarse reported
    // problems go cache-resident, which is what produces COSMA8's l2 > l1
    // inversion in Table 4.
    let ws_per_node = dof / nodes * 8.0 * RESIDENT_ARRAYS;
    let cache_resident = ws_per_node <= proc.llc_bytes() as f64 * 0.5;
    let bw = if cache_resident {
        proc.llc_bandwidth_gbs()
    } else {
        proc.effective_bandwidth_gbs(threads_per_node, u64::MAX)
    };
    let volume = dof * BYTES_PER_DOF / (nodes * bw * 1e9 * sf);

    // Communication terms degrade with the software stack less sharply
    // than on-node streaming does (they are latency/injection bound), so
    // they divide by sqrt(system_factor).
    let comm_sf = sf.sqrt();

    // Surface term: ghost-zone exchange over the interconnect.
    let ic = partition.interconnect();
    let surface = HALO_BYTES_COEFF * dof.powf(2.0 / 3.0) / (ic.bandwidth_gbs * 1e9 * comm_sf);

    // Fixed term: latency-bound coarse-grid chain.
    let fixed = LATENCY_ROUNDS * ic.latency_s / comm_sf;

    volume + surface + fixed
}

/// Run HPGMG-FV.
pub fn run(config: &HpgmgConfig, mode: &ExecutionMode) -> Result<RunOutput, BenchError> {
    if config.log2_box_dim < 2 || config.boxes_per_rank == 0 || config.ranks == 0 {
        return Err(BenchError::BadConfig(
            "box dim ≥ 4 and nonzero boxes/ranks required".into(),
        ));
    }
    // Always run the real solver (capped size in simulated mode) and check
    // that multigrid actually converges — the sanity step of the pipeline.
    let exec_n: usize = 1usize << config.log2_box_dim.min(5);
    let start = Instant::now();
    let mut mg = Multigrid::new(exec_n)?;
    mg.set_rhs_sine();
    let (r0, r, cycles) = mg.solve(30, 1e-7);
    let native_elapsed = start.elapsed().as_secs_f64();
    if r >= r0 * 1e-6 || !r.is_finite() {
        return Err(BenchError::ValidationFailed(format!(
            "multigrid did not converge: {r0:.3e} -> {r:.3e} in {cycles} cycles"
        )));
    }

    let mut out = String::new();
    out.push_str("HPGMG-FV benchmark (reproduction)\n");
    out.push_str(&format!(
        "attempting to create a {}^3 box calculation on {} ranks ({} tasks/node, {} cpus/task)\n",
        1u64 << config.log2_box_dim,
        config.ranks,
        config.tasks_per_node,
        config.cpus_per_task
    ));
    out.push_str(&format!(
        "v-cycles used={cycles}  residual reduction={:.3e}\n",
        r / r0
    ));

    // Native mode reports the measured solve; simulated mode builds the
    // wall time purely from the cost model so it is deterministic per seed
    // (the host's measured time must never leak into simulated telemetry).
    let mut wall = match mode {
        ExecutionMode::Native => native_elapsed,
        ExecutionMode::Simulated { .. } => 0.0,
    };
    match mode {
        ExecutionMode::Native => {
            // Rate the real solve: DOF of the executed grid over the time.
            let dof = (exec_n as u64).pow(3) as f64 * cycles as f64;
            let rate = dof / native_elapsed;
            for level in 0..3u32 {
                out.push_str(&format!(
                    "  level {level} FMG solve averaged {:.6e} DOF/s\n",
                    rate / 8f64.powi(level as i32)
                ));
            }
        }
        ExecutionMode::Simulated {
            partition,
            system,
            seed,
        } => {
            if partition.processor().is_gpu() {
                return Err(BenchError::Unsupported("HPGMG-FV here targets CPUs".into()));
            }
            if config.nodes() > partition.nodes() {
                return Err(BenchError::Unsupported(format!(
                    "{} nodes requested but partition has {}",
                    config.nodes(),
                    partition.nodes()
                )));
            }
            let mut noise = NoiseModel::for_run(system, "hpgmg-fv", *seed);
            for level in 0..3u32 {
                let t = noise.perturb(simulated_time(config, level, partition));
                let rate = config.dof_at_level(level) as f64 / t;
                out.push_str(&format!(
                    "  level {level} FMG solve averaged {:.6e} DOF/s\n",
                    rate
                ));
                wall += t;
            }
        }
    }
    Ok(RunOutput {
        stdout: out,
        wall_time_s: wall,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rates(stdout: &str) -> Vec<f64> {
        stdout
            .lines()
            .filter(|l| l.contains("FMG solve averaged"))
            .map(|l| {
                l.split_whitespace()
                    .rev()
                    .nth(1)
                    .and_then(|v| v.parse().ok())
                    .expect("rate value")
            })
            .collect()
    }

    #[test]
    fn multigrid_converges_fast() {
        let mut mg = Multigrid::new(32).unwrap();
        mg.set_rhs_sine();
        let (r0, r, cycles) = mg.solve(40, 1e-9);
        assert!(r < r0 * 1e-8, "reduction {:.3e} in {cycles} cycles", r / r0);
        assert!(cycles <= 40);
        assert!(mg.n_levels() >= 4);
    }

    #[test]
    fn v_cycle_converges_mesh_independently() {
        // Multigrid's defining property: cycle counts don't grow with n.
        let cycles_for = |n: usize| {
            let mut mg = Multigrid::new(n).unwrap();
            mg.set_rhs_sine();
            let (_, _, cycles) = mg.solve(60, 1e-8);
            cycles
        };
        let c16 = cycles_for(16);
        let c32 = cycles_for(32);
        assert!(c32 <= c16 + 4, "cycles grew from {c16} to {c32}");
    }

    #[test]
    fn bad_grid_rejected() {
        assert!(Multigrid::new(3).is_err());
        assert!(Multigrid::new(0).is_err());
        assert!(Multigrid::new(24).is_err());
        assert!(Multigrid::new(4).is_ok());
    }

    #[test]
    fn dof_accounting() {
        let cfg = HpgmgConfig::paper();
        // 2^21 per box × 8 boxes × 8 ranks = 2^27.
        assert_eq!(cfg.dof_at_level(0), 1 << 27);
        assert_eq!(cfg.dof_at_level(1), 1 << 24);
        assert_eq!(cfg.dof_at_level(2), 1 << 21);
        assert_eq!(cfg.nodes(), 4);
    }

    #[test]
    fn native_run_reports_three_levels() {
        let cfg = HpgmgConfig {
            log2_box_dim: 4,
            ..HpgmgConfig::default()
        };
        let out = run(&cfg, &ExecutionMode::Native).unwrap();
        assert_eq!(rates(&out.stdout).len(), 3);
    }

    #[test]
    fn table4_csd3_fastest_isambard_slowest_at_l0() {
        let rate0 = |spec: &str| {
            let mode = ExecutionMode::simulated(spec, 9).unwrap();
            rates(&run(&HpgmgConfig::paper(), &mode).unwrap().stdout)[0]
        };
        let csd3 = rate0("csd3");
        let archer2 = rate0("archer2");
        let cosma8 = rate0("cosma8");
        let isambard = rate0("isambard-macs:cascadelake");
        assert!(
            csd3 > archer2,
            "paper: CSD3 126 > ARCHER2 95 ({csd3:.2e} vs {archer2:.2e})"
        );
        assert!(archer2 > cosma8, "paper: ARCHER2 95 > COSMA8 82");
        assert!(cosma8 > isambard, "paper: COSMA8 82 >> Isambard 31");
        assert!(
            csd3 / isambard > 2.5,
            "the paper's platform gap (~4x) must be visible: {:.1}",
            csd3 / isambard
        );
    }

    #[test]
    fn table4_cosma8_inversion_and_decreasing_levels() {
        let get = |spec: &str| {
            let mode = ExecutionMode::simulated(spec, 9).unwrap();
            rates(&run(&HpgmgConfig::paper(), &mode).unwrap().stdout)
        };
        // CSD3: strictly decreasing with level (126 → 94 → 49).
        let csd3 = get("csd3");
        assert!(csd3[0] > csd3[1] && csd3[1] > csd3[2]);
        // COSMA8 shows the paper's l2 ≥ l1 inversion (73 → 75).
        let cosma8 = get("cosma8");
        assert!(cosma8[0] > cosma8[1]);
        assert!(
            cosma8[2] > cosma8[1] * 0.95,
            "COSMA8 l2 should not collapse: {:?}",
            cosma8
        );
    }

    #[test]
    fn oversubscribed_partition_rejected() {
        // Isambard-MACS has 4 nodes; ask for more.
        let cfg = HpgmgConfig {
            ranks: 64,
            tasks_per_node: 2,
            ..HpgmgConfig::paper()
        };
        let mode = ExecutionMode::simulated("isambard-macs:cascadelake", 1).unwrap();
        assert!(matches!(run(&cfg, &mode), Err(BenchError::Unsupported(_))));
    }

    #[test]
    fn simulated_reproducible() {
        let mode = ExecutionMode::simulated("archer2", 4).unwrap();
        let a = run(&HpgmgConfig::default(), &mode).unwrap();
        let b = run(&HpgmgConfig::default(), &mode).unwrap();
        assert_eq!(a.stdout, b.stdout);
    }
}
