//! Classic STREAM (McCalpin): the four-kernel reference bandwidth test.
//!
//! Kept alongside BabelStream because the paper's discussion of Principle 1
//! uses STREAM's counting convention (write-allocate traffic is *not*
//! counted) as the example of a FOM that measures useful data movement.

use crate::scratch::Arena;
use crate::{BenchError, ExecutionMode, RunOutput, SIM_EXECUTION_CAP};
use parkern::{kernels, Model};
use simhpc::noise::NoiseModel;
use simhpc::perf::KernelCost;
use std::time::Instant;

/// STREAM configuration.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    pub array_size: usize,
    pub reps: usize,
    pub threads: Option<u32>,
}

impl Default for StreamConfig {
    fn default() -> StreamConfig {
        StreamConfig {
            array_size: 1 << 24,
            reps: 10,
            threads: None,
        }
    }
}

/// STREAM's counted bytes per kernel (no read-for-ownership).
fn counted_bytes(n: usize) -> [(&'static str, u64); 4] {
    let b = 8 * n as u64;
    [
        ("Copy", 2 * b),
        ("Scale", 2 * b),
        ("Add", 3 * b),
        ("Triad", 3 * b),
    ]
}

/// Run STREAM.
pub fn run(config: &StreamConfig, mode: &ExecutionMode) -> Result<RunOutput, BenchError> {
    run_with(config, mode, &mut Arena::new())
}

/// [`run`] drawing the kernel arrays from a caller-owned arena.
pub fn run_with(
    config: &StreamConfig,
    mode: &ExecutionMode,
    arena: &mut Arena,
) -> Result<RunOutput, BenchError> {
    if config.array_size == 0 || config.reps == 0 {
        return Err(BenchError::BadConfig(
            "array size and reps must be positive".into(),
        ));
    }
    let (times, n) = match mode {
        ExecutionMode::Native => {
            // Implicit thread counts go through `default_workers`, so the
            // harness's oversubscription cap applies under `--jobs N`.
            let threads = config
                .threads
                .map(|t| t as usize)
                .unwrap_or_else(parkern::default_workers);
            (
                execute(config.array_size, config.reps, threads, arena)?,
                config.array_size,
            )
        }
        ExecutionMode::Simulated {
            partition,
            system,
            seed,
        } => {
            let exec_n = config.array_size.min(SIM_EXECUTION_CAP);
            execute(
                exec_n,
                2.min(config.reps),
                parkern::default_workers().min(4),
                arena,
            )?;
            let proc = partition.processor();
            if proc.is_gpu() {
                return Err(BenchError::Unsupported("STREAM is a CPU benchmark".into()));
            }
            let threads = config.threads.unwrap_or(proc.total_cores());
            let ws = 3 * config.array_size as u64 * 8;
            let mut noise = NoiseModel::for_run(system, "stream", *seed);
            let mut times: [Vec<f64>; 4] = Default::default();
            for (slot, (_, bytes)) in times.iter_mut().zip(counted_bytes(config.array_size)) {
                let cost = KernelCost::new(bytes, bytes / 8).with_working_set(ws);
                let base = partition.platform().kernel_time(&cost, threads, 1.0);
                for _ in 0..config.reps {
                    slot.push(noise.perturb(base));
                }
            }
            (times, config.array_size)
        }
    };
    let mut out = String::from("STREAM version $Revision: 5.10 $\n");
    out.push_str(&format!("Array size = {} (elements)\n", config.array_size));
    out.push_str("Function    Best Rate MB/s  Avg time     Min time     Max time\n");
    for (&(name, bytes), ts) in counted_bytes(n).iter().zip(&times) {
        let min = ts.iter().copied().fold(f64::INFINITY, f64::min);
        let max = ts.iter().copied().fold(0.0f64, f64::max);
        let avg = ts.iter().sum::<f64>() / ts.len() as f64;
        // Rates always reported for the *requested* size.
        let scale = config.array_size as f64 / n as f64;
        out.push_str(&format!(
            "{:<12}{:<16.1}{:<13.6}{:<13.6}{:<13.6}\n",
            name,
            bytes as f64 * scale / 1e6 / min,
            avg,
            min,
            max
        ));
    }
    out.push_str("Solution Validates: avg error less than 1.0e-13 on all three arrays\n");
    let wall = times.iter().flat_map(|v| v.iter()).sum();
    Ok(RunOutput {
        stdout: out,
        wall_time_s: wall,
    })
}

fn execute(
    n: usize,
    reps: usize,
    threads: usize,
    arena: &mut Arena,
) -> Result<[Vec<f64>; 4], BenchError> {
    let backend = Model::Omp.host_backend(threads);
    let a = arena.take(n, 1.0);
    let mut b = arena.take(n, 2.0);
    let mut c = arena.take(n, 0.0);
    // The triad target is taken once and reused: the timed repetition loop
    // below allocates nothing.
    let mut a2 = arena.take(n, 0.0);
    let mut times: [Vec<f64>; 4] = Default::default();
    let mut failed = false;
    for _ in 0..reps {
        let t = Instant::now();
        kernels::copy(backend.as_ref(), &a, &mut c);
        times[0].push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        kernels::mul(backend.as_ref(), 3.0, &c, &mut b);
        times[1].push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        kernels::add(backend.as_ref(), &a, &b, &mut c);
        times[2].push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        kernels::triad(backend.as_ref(), 3.0, &b, &c, &mut a2);
        times[3].push(t.elapsed().as_secs_f64());
        if (a2[0] - (b[0] + 3.0 * c[0])).abs() > 1e-12 {
            failed = true;
            break;
        }
    }
    for v in [a, b, c, a2] {
        arena.give(v);
    }
    if failed {
        return Err(BenchError::ValidationFailed("triad mismatch".into()));
    }
    Ok(times)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_stream_runs() {
        let cfg = StreamConfig {
            array_size: 1 << 14,
            reps: 2,
            threads: Some(2),
        };
        let out = run(&cfg, &ExecutionMode::Native).unwrap();
        assert!(out.stdout.contains("Best Rate MB/s"));
        assert!(out.stdout.contains("Solution Validates"));
    }

    #[test]
    fn simulated_stream_below_peak() {
        let mode = ExecutionMode::simulated("archer2", 5).unwrap();
        let cfg = StreamConfig {
            array_size: 1 << 27,
            reps: 3,
            threads: None,
        };
        let out = run(&cfg, &mode).unwrap();
        let triad: f64 = out
            .stdout
            .lines()
            .find(|l| l.starts_with("Triad"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert!(triad < 409_600.0, "triad {triad} exceeds theoretical peak");
        assert!(triad > 100_000.0, "triad {triad} unreasonably low");
    }

    #[test]
    fn gpu_partition_rejected() {
        let mode = ExecutionMode::simulated("isambard-macs:volta", 1).unwrap();
        assert!(run(&StreamConfig::default(), &mode).is_err());
    }
}
