//! BabelStream: sustained memory bandwidth in nine programming models.
//!
//! Reproduces the benchmark of §3.1 / Figure 2. Five kernels (Copy, Mul,
//! Add, Triad, Dot) sweep three arrays; the headline Figure of Merit is the
//! Triad bandwidth in MBytes/sec, extracted by the harness from the output
//! table exactly as ReFrame does from the real BabelStream.

use crate::scratch::Arena;
use crate::{BenchError, ExecutionMode, RunOutput, SIM_EXECUTION_CAP};
use parkern::{kernels, Model};
use simhpc::noise::NoiseModel;
use simhpc::perf::KernelCost;
use std::time::Instant;

/// Configuration mirroring the real tool's command line.
#[derive(Debug, Clone)]
pub struct BabelStreamConfig {
    /// Elements per array (`--arraysize`); the paper uses 2^25, and 2^29 on
    /// Milan so the working set exceeds its 512 MB of L3.
    pub array_size: usize,
    /// Repetitions (`--numtimes`), default 100.
    pub reps: usize,
    pub model: Model,
    /// Threads to use; `None` = all cores of the target.
    pub threads: Option<u32>,
}

impl Default for BabelStreamConfig {
    fn default() -> BabelStreamConfig {
        BabelStreamConfig {
            array_size: 1 << 25,
            reps: 100,
            model: Model::Omp,
            threads: None,
        }
    }
}

const SCALAR: f64 = 0.4;
const INIT_A: f64 = 0.1;
const INIT_B: f64 = 0.2;
const INIT_C: f64 = 0.0;

/// Per-kernel measured rates.
#[derive(Debug, Clone)]
pub struct KernelRates {
    /// (name, mbytes_per_sec, min_s, max_s, avg_s)
    pub rows: Vec<(String, f64, f64, f64, f64)>,
}

impl KernelRates {
    pub fn rate_of(&self, kernel: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|(n, ..)| n == kernel)
            .map(|&(_, r, ..)| r)
    }
}

/// Bytes moved by one invocation of each kernel at size `n`.
fn kernel_bytes(n: usize) -> [(&'static str, u64); 5] {
    let b = 8 * n as u64;
    [
        ("Copy", 2 * b),
        ("Mul", 2 * b),
        ("Add", 3 * b),
        ("Triad", 3 * b),
        ("Dot", 2 * b),
    ]
}

/// Run BabelStream.
pub fn run(config: &BabelStreamConfig, mode: &ExecutionMode) -> Result<RunOutput, BenchError> {
    run_with(config, mode, &mut Arena::new())
}

/// [`run`] drawing the kernel arrays from a caller-owned arena.
pub fn run_with(
    config: &BabelStreamConfig,
    mode: &ExecutionMode,
    arena: &mut Arena,
) -> Result<RunOutput, BenchError> {
    if config.array_size == 0 || config.reps == 0 {
        return Err(BenchError::BadConfig(
            "array size and reps must be positive".into(),
        ));
    }
    match mode {
        ExecutionMode::Native => run_native(config, arena),
        ExecutionMode::Simulated {
            partition,
            system,
            seed,
        } => run_simulated(config, partition, system, *seed, arena),
    }
}

/// Execute the kernels for real and validate the arithmetic. Returns the
/// per-rep wall times (seconds) for each kernel, at problem size `n`.
fn execute_and_validate(
    config: &BabelStreamConfig,
    n: usize,
    reps: usize,
    threads: usize,
    arena: &mut Arena,
) -> Result<[Vec<f64>; 5], BenchError> {
    let backend = config.model.host_backend(threads);
    let mut a = arena.take(n, INIT_A);
    let mut b = arena.take(n, INIT_B);
    let mut c = arena.take(n, INIT_C);
    let mut times: [Vec<f64>; 5] = Default::default();
    let mut dot_sum = 0.0;
    for _ in 0..reps {
        let t = Instant::now();
        kernels::copy(backend.as_ref(), &a, &mut c);
        times[0].push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        kernels::mul(backend.as_ref(), SCALAR, &c, &mut b);
        times[1].push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        kernels::add(backend.as_ref(), &a, &b, &mut c);
        times[2].push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        kernels::triad(backend.as_ref(), SCALAR, &b, &c, &mut a);
        times[3].push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        dot_sum = kernels::dot(backend.as_ref(), &a, &b);
        times[4].push(t.elapsed().as_secs_f64());
    }
    // Validation, as the real BabelStream does: evolve scalars the same way.
    let (mut va, mut vb) = (INIT_A, INIT_B);
    let mut vc;
    for _ in 0..reps {
        vc = va;
        vb = SCALAR * vc;
        vc = va + vb;
        va = vb + SCALAR * vc;
    }
    let err_a = (a[0] - va).abs() / va.abs();
    let err_dot = (dot_sum - va * vb * n as f64).abs() / (va * vb * n as f64).abs();
    for v in [a, b, c] {
        arena.give(v);
    }
    if err_a > 1e-8 {
        return Err(BenchError::ValidationFailed(format!(
            "array a error {err_a:.3e}"
        )));
    }
    if err_dot > 1e-8 {
        return Err(BenchError::ValidationFailed(format!(
            "dot error {err_dot:.3e}"
        )));
    }
    Ok(times)
}

fn run_native(config: &BabelStreamConfig, arena: &mut Arena) -> Result<RunOutput, BenchError> {
    let host = simhpc::catalog::system("native").expect("native system always present");
    let cores = host.default_partition().processor().total_cores();
    let threads = config.threads.unwrap_or(
        config
            .model
            .threads_on(host.default_partition().processor())
            .min(cores),
    );
    // Implicit counts respect the harness's oversubscription cap.
    let threads = (threads as usize).min(match config.threads {
        Some(_) => usize::MAX,
        None => parkern::default_workers(),
    });
    let start = Instant::now();
    let times = execute_and_validate(config, config.array_size, config.reps, threads, arena)?;
    let rates = rates_from_times(config.array_size, &times);
    let wall = start.elapsed().as_secs_f64();
    Ok(RunOutput {
        stdout: render(config, "native", &rates),
        wall_time_s: wall,
    })
}

fn run_simulated(
    config: &BabelStreamConfig,
    partition: &simhpc::Partition,
    system: &str,
    seed: u64,
    arena: &mut Arena,
) -> Result<RunOutput, BenchError> {
    let proc = partition.processor();
    if !config.model.available_on(proc) {
        return Err(BenchError::Unsupported(format!(
            "model {} is not available on {}",
            config.model.name(),
            proc.model()
        )));
    }
    // Run the real numerics at a capped size for validation.
    let exec_n = config.array_size.min(SIM_EXECUTION_CAP);
    let host_threads = parkern::default_workers().min(8);
    execute_and_validate(config, exec_n, 3.min(config.reps), host_threads, arena)?;

    // Model the timing at the full requested size.
    let threads = config.threads.unwrap_or(config.model.threads_on(proc));
    let model_eff = config.model.efficiency_on(proc);
    let working_set = 3 * config.array_size as u64 * 8;
    let mut noise = NoiseModel::for_run(
        system,
        &format!("babelstream-{}", config.model.name()),
        seed,
    );
    let mut times: [Vec<f64>; 5] = Default::default();
    for (slot, (_, bytes)) in times.iter_mut().zip(kernel_bytes(config.array_size)) {
        let cost = KernelCost::new(bytes, bytes / 8).with_working_set(working_set);
        let base = partition.platform().kernel_time(&cost, threads, model_eff);
        for _ in 0..config.reps {
            slot.push(noise.perturb(base));
        }
    }
    let rates = rates_from_times(config.array_size, &times);
    let wall: f64 = times.iter().flat_map(|v| v.iter()).sum();
    Ok(RunOutput {
        stdout: render(config, system, &rates),
        wall_time_s: wall,
    })
}

fn rates_from_times(n: usize, times: &[Vec<f64>; 5]) -> KernelRates {
    let rows = kernel_bytes(n)
        .iter()
        .zip(times)
        .map(|(&(name, bytes), ts)| {
            // Like the real tool: rate from the fastest repetition.
            let min = ts.iter().copied().fold(f64::INFINITY, f64::min);
            let max = ts.iter().copied().fold(0.0f64, f64::max);
            let avg = ts.iter().sum::<f64>() / ts.len() as f64;
            let mbytes_per_sec = bytes as f64 / 1.0e6 / min;
            (name.to_string(), mbytes_per_sec, min, max, avg)
        })
        .collect();
    KernelRates { rows }
}

fn render(config: &BabelStreamConfig, system: &str, rates: &KernelRates) -> String {
    let n = config.array_size;
    let mb = (n * 8) as f64 / 1.0e6;
    let mut out = String::new();
    out.push_str("BabelStream\n");
    out.push_str("Version: 5.0\n");
    out.push_str(&format!("Implementation: {}\n", config.model.name()));
    out.push_str(&format!("Running kernels {} times\n", config.reps));
    out.push_str("Precision: double\n");
    out.push_str(&format!("System: {system}\n"));
    out.push_str(&format!(
        "Array size: {:.1} MB (={:.1} GB)\n",
        mb,
        mb / 1000.0
    ));
    out.push_str(&format!(
        "Total size: {:.1} MB (={:.1} GB)\n",
        3.0 * mb,
        3.0 * mb / 1000.0
    ));
    out.push_str(&format!(
        "{:<12}{:<14}{:<12}{:<12}{:<12}\n",
        "Function", "MBytes/sec", "Min (sec)", "Max", "Average"
    ));
    for (name, rate, min, max, avg) in &rates.rows {
        out.push_str(&format!(
            "{:<12}{:<14.3}{:<12.5}{:<12.5}{:<12.5}\n",
            name, rate, min, max, avg
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(model: Model) -> BabelStreamConfig {
        BabelStreamConfig {
            array_size: 1 << 14,
            reps: 3,
            model,
            threads: Some(2),
        }
    }

    #[test]
    fn native_run_produces_all_kernels() {
        let out = run(&small(Model::Omp), &ExecutionMode::Native).unwrap();
        for k in ["Copy", "Mul", "Add", "Triad", "Dot"] {
            assert!(out.stdout.contains(k), "missing kernel {k} in output");
        }
        assert!(out.wall_time_s > 0.0);
    }

    #[test]
    fn all_models_validate_natively() {
        for &m in Model::all() {
            let out = run(&small(m), &ExecutionMode::Native);
            assert!(out.is_ok(), "model {} failed: {:?}", m.name(), out.err());
        }
    }

    #[test]
    fn simulated_triad_near_v100_peak() {
        // Figure 2: CUDA on the V100 sits close to theoretical peak.
        let mode = ExecutionMode::simulated("isambard-macs:volta", 42).unwrap();
        let cfg = BabelStreamConfig {
            array_size: 1 << 25,
            reps: 10,
            model: Model::Cuda,
            threads: None,
        };
        let out = run(&cfg, &mode).unwrap();
        let triad = extract_triad(&out.stdout);
        let frac = triad / 900_000.0; // MBytes/s over 900 GB/s peak
        assert!(frac > 0.85 && frac < 1.0, "V100 CUDA triad fraction {frac}");
    }

    #[test]
    fn simulated_std_ranges_much_slower() {
        let mode = ExecutionMode::simulated("noctua2:milan", 42).unwrap();
        let big = |model| BabelStreamConfig {
            array_size: 1 << 29,
            reps: 5,
            model,
            threads: None,
        };
        let omp = extract_triad(&run(&big(Model::Omp), &mode).unwrap().stdout);
        let ranges = extract_triad(&run(&big(Model::StdRanges), &mode).unwrap().stdout);
        assert!(
            omp / ranges > 5.0,
            "std-ranges should be far slower (single thread): omp={omp} ranges={ranges}"
        );
    }

    #[test]
    fn unavailable_combination_rejected() {
        // CUDA on a CPU partition — the white boxes of Figure 2.
        let mode = ExecutionMode::simulated("csd3", 1).unwrap();
        let cfg = BabelStreamConfig {
            model: Model::Cuda,
            ..small(Model::Cuda)
        };
        assert!(matches!(run(&cfg, &mode), Err(BenchError::Unsupported(_))));
        // TBB on ThunderX2.
        let mode = ExecutionMode::simulated("isambard:xci", 1).unwrap();
        let cfg = BabelStreamConfig {
            model: Model::Tbb,
            ..small(Model::Tbb)
        };
        assert!(matches!(run(&cfg, &mode), Err(BenchError::Unsupported(_))));
    }

    #[test]
    fn simulated_runs_are_reproducible() {
        let mode = ExecutionMode::simulated("archer2", 7).unwrap();
        let cfg = BabelStreamConfig {
            array_size: 1 << 22,
            reps: 5,
            ..Default::default()
        };
        let a = run(&cfg, &mode).unwrap();
        let b = run(&cfg, &mode).unwrap();
        assert_eq!(a.stdout, b.stdout, "same seed must reproduce identically");
        let mode2 = ExecutionMode::simulated("archer2", 8).unwrap();
        let c = run(&cfg, &mode2).unwrap();
        assert_ne!(a.stdout, c.stdout, "different seed must differ");
    }

    #[test]
    fn milan_cache_inflation_shows_why_paper_used_2pow29() {
        // §3.1: with 2^25 elements on Milan the arrays fit in L3 and the
        // "bandwidth" exceeds DRAM's theoretical peak — the paper bumped the
        // size to 2^29 to avoid exactly this.
        let mode = ExecutionMode::simulated("noctua2:milan", 3).unwrap();
        let small_ws = BabelStreamConfig {
            array_size: 1 << 22, // 100 MB total: fits in 512 MB L3
            reps: 5,
            model: Model::Omp,
            threads: None,
        };
        let big_ws = BabelStreamConfig {
            array_size: 1 << 29,
            ..small_ws.clone()
        };
        let t_small = extract_triad(&run(&small_ws, &mode).unwrap().stdout);
        let t_big = extract_triad(&run(&big_ws, &mode).unwrap().stdout);
        assert!(
            t_small > 1.5 * t_big,
            "cache-resident run should inflate bandwidth: {t_small} vs {t_big}"
        );
        // And the honest (2^29) number stays below theoretical peak.
        assert!(t_big < 409_600.0);
    }

    #[test]
    fn zero_config_rejected() {
        let cfg = BabelStreamConfig {
            array_size: 0,
            ..Default::default()
        };
        assert!(run(&cfg, &ExecutionMode::Native).is_err());
    }

    fn extract_triad(stdout: &str) -> f64 {
        stdout
            .lines()
            .find(|l| l.starts_with("Triad"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .expect("Triad row present")
    }
}
