//! End-to-end tests of `run_attempt` against the real stub binary in all
//! of its adversarial modes. This is the hermetic proof that every engine
//! failure mode is contained as a structured error.

use std::time::{Duration, Instant};

use engine::process::run_attempt;
use engine::proto::EngineRequest;
use engine::spec::EngineSpec;

fn stub(extra: &[&str], timeout_s: f64) -> EngineSpec {
    let mut cmd = vec![env!("CARGO_BIN_EXE_benchkit-engine-stub").to_string()];
    cmd.extend(extra.iter().map(|s| s.to_string()));
    EngineSpec {
        cmd,
        timeout_s,
        grace_s: 0.3,
    }
}

fn request(case: &str, seed: u64) -> EngineRequest {
    EngineRequest {
        case: case.to_string(),
        system: "csd3".to_string(),
        partition: "cascadelake".to_string(),
        spec: format!("{case}%gcc"),
        seed,
        attempt: 1,
    }
}

#[test]
fn stub_replies_with_a_valid_deterministic_report() {
    let spec = stub(&[], 10.0);
    let a = run_attempt(&spec, &request("babelstream_omp", 7)).unwrap();
    let b = run_attempt(&spec, &request("babelstream_omp", 7)).unwrap();
    assert_eq!(a, b, "same request must produce a byte-identical report");
    assert!(a.stdout.contains("Function    MBytes/sec"));
    assert!(a.wall_time_s > 0.0);
    let other_seed = run_attempt(&spec, &request("babelstream_omp", 8)).unwrap();
    assert_ne!(a, other_seed);
}

#[test]
fn stub_crash_mode_is_contained_with_its_exit_code() {
    let err = run_attempt(&stub(&["--crash"], 10.0), &request("stream", 1)).unwrap_err();
    assert_eq!(err.exit_code, Some(42));
    assert!(!err.timed_out);
    assert!(err.stderr_head.contains("crashing deliberately"));

    let err = run_attempt(&stub(&["--crash", "7"], 10.0), &request("stream", 1)).unwrap_err();
    assert_eq!(err.exit_code, Some(7));
}

#[test]
fn stub_hang_mode_hits_the_deadline() {
    let started = Instant::now();
    let err = run_attempt(&stub(&["--hang"], 0.3), &request("stream", 1)).unwrap_err();
    assert!(err.timed_out);
    assert_eq!(err.signal, Some(15), "stub dies on the polite SIGTERM");
    assert!(started.elapsed() < Duration::from_secs(10));
}

#[test]
fn stub_sigterm_immune_hang_is_sigkilled() {
    let started = Instant::now();
    let err = run_attempt(
        &stub(&["--hang", "--ignore-term"], 0.3),
        &request("stream", 1),
    )
    .unwrap_err();
    assert!(err.timed_out);
    assert_eq!(err.signal, Some(9), "escalation must reach SIGKILL");
    assert!(started.elapsed() < Duration::from_secs(10));
}

#[test]
fn stub_garbage_mode_is_a_protocol_failure() {
    let err = run_attempt(&stub(&["--garbage"], 10.0), &request("stream", 1)).unwrap_err();
    assert_eq!(err.exit_code, Some(0));
    assert!(err.detail.contains("invalid frames"), "{}", err.detail);
}

#[test]
fn stub_partial_mode_is_a_truncation_failure() {
    let err = run_attempt(&stub(&["--partial"], 10.0), &request("stream", 1)).unwrap_err();
    assert_eq!(err.exit_code, Some(0));
    assert!(err.detail.contains("truncated"), "{}", err.detail);
}

#[test]
fn stub_no_done_mode_is_partial_output() {
    let err = run_attempt(&stub(&["--no-done"], 10.0), &request("stream", 1)).unwrap_err();
    assert!(err.detail.contains("missing `done`"), "{}", err.detail);
}

#[test]
fn stub_stderr_noise_is_captured_lossily() {
    let err = run_attempt(
        &stub(&["--stderr-noise", "--crash"], 10.0),
        &request("stream", 1),
    )
    .unwrap_err();
    assert_eq!(err.exit_code, Some(42));
    assert!(err.stderr_head.contains('\u{FFFD}'), "{}", err.stderr_head);
}

#[test]
fn every_benchmark_family_is_synthesized() {
    let spec = stub(&[], 10.0);
    for (case, marker) in [
        ("babelstream_omp", "Function    MBytes/sec"),
        ("hpcg_csr", "result is VALID"),
        ("hpgmg_fv", "residual reduction="),
        ("stream", "Solution Validates"),
        ("custom_workload", "custom_workload"),
    ] {
        let report = run_attempt(&spec, &request(case, 3)).unwrap();
        assert!(
            report.stdout.contains(marker),
            "case {case}: {}",
            report.stdout
        );
    }
}
