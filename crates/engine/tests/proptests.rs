//! Property tests for the KLV codec: totality (any byte stream decodes or
//! errors, never panics, never over-reads) and round-tripping under
//! arbitrary chunk splits.

use engine::klv::{decode_all, encode_all, Decoder, Frame, MAX_VALUE_LEN};
use proptest::prelude::*;

fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        "[a-z0-9_-]{1,32}",
        prop::collection::vec(any::<u8>(), 0..200),
    )
        .prop_map(|(key, value)| Frame::new(&key, value).expect("generated frames are valid"))
}

fn arb_frames() -> impl Strategy<Value = Vec<Frame>> {
    prop::collection::vec(arb_frame(), 0..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any byte stream decodes or returns a structured error — no panics.
    #[test]
    fn decoder_is_total_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = decode_all(&bytes);
    }

    /// Arbitrary bytes *around* valid framing still never panic, and a
    /// valid prefix is still decoded before the error point.
    #[test]
    fn decoder_is_total_on_corrupted_framing(
        frames in arb_frames(),
        junk in prop::collection::vec(any::<u8>(), 0..40),
    ) {
        let mut wire = encode_all(&frames);
        wire.extend_from_slice(&junk);
        // A structured rejection is fine; if the junk happened to extend
        // into valid frames, the original prefix must still be there.
        if let Ok(decoded) = decode_all(&wire) {
            prop_assert!(decoded.len() >= frames.len());
            prop_assert_eq!(&decoded[..frames.len()], &frames[..]);
        }
    }

    /// encode → decode is the identity, whole-stream.
    #[test]
    fn frames_round_trip(frames in arb_frames()) {
        let wire = encode_all(&frames);
        prop_assert_eq!(decode_all(&wire).unwrap(), frames);
    }

    /// The incremental decoder yields identical frames no matter how the
    /// stream is split into chunks.
    #[test]
    fn round_trip_survives_random_splits(
        frames in arb_frames(),
        cuts in prop::collection::vec(0usize..4096, 0..6),
    ) {
        let wire = encode_all(&frames);
        let mut cuts: Vec<usize> = cuts.into_iter().map(|c| c % (wire.len() + 1)).collect();
        cuts.sort_unstable();
        cuts.dedup();
        cuts.insert(0, 0);
        cuts.push(wire.len());

        let mut decoder = Decoder::new();
        let mut got = Vec::new();
        for pair in cuts.windows(2) {
            got.extend(decoder.push(&wire[pair[0]..pair[1]]).expect("valid stream"));
        }
        decoder.finish().expect("complete stream");
        prop_assert_eq!(got, frames);
    }

    /// Truncating a non-empty valid stream anywhere strictly inside its
    /// final frame yields Truncated, and the untouched leading frames
    /// still decode.
    #[test]
    fn truncation_is_detected_and_prefix_preserved(
        frames in prop::collection::vec(arb_frame(), 1..6),
        cut_back in 1usize..64,
    ) {
        let wire = encode_all(&frames);
        let last_len = frames.last().unwrap().encode().len();
        let cut = wire.len() - (cut_back % last_len).max(1);

        let mut decoder = Decoder::new();
        let got = decoder.push(&wire[..cut]).expect("prefix of a valid stream");
        prop_assert!(decoder.finish().is_err());
        prop_assert!(got.len() == frames.len() - 1);
        prop_assert_eq!(&got[..], &frames[..frames.len() - 1]);
    }

    /// The decoder never "over-reads": bytes after a complete stream are
    /// untouched by it (decoding the stream, then pushing trailing bytes
    /// of a new valid frame, yields exactly that frame).
    #[test]
    fn no_over_read_across_frame_boundaries(frames in arb_frames(), extra in arb_frame()) {
        let mut decoder = Decoder::new();
        let mut got = decoder.push(&encode_all(&frames)).unwrap();
        got.extend(decoder.push(&extra.encode()).unwrap());
        decoder.finish().unwrap();
        let mut want = frames;
        want.push(extra);
        prop_assert_eq!(got, want);
    }
}

#[test]
fn oversized_declaration_never_allocates_the_declared_size() {
    // A malicious engine declares the max length; the decoder must not
    // reserve MAX_VALUE_LEN bytes up front for it.
    let header = format!("huge:{MAX_VALUE_LEN}:");
    let mut decoder = Decoder::new();
    let frames = decoder.push(header.as_bytes()).unwrap();
    assert!(frames.is_empty());
    // Feeding a few real bytes keeps it pending, not exploding.
    let frames = decoder.push(b"tiny").unwrap();
    assert!(frames.is_empty());
    assert!(decoder.finish().is_err());
}
