//! `benchkit-engine-stub` — a reference engine for the benchkit KLV
//! protocol, plus deliberately adversarial variants for hardening tests.
//!
//! ```text
//! benchkit-engine-stub [FLAGS]
//!
//!   (no flags)       read a request, reply with a well-formed report
//!   --crash [CODE]   read the request, then exit CODE (default 42)
//!   --hang           read the request, then never reply
//!   --ignore-term    with --hang: ignore SIGTERM so only SIGKILL works
//!   --garbage        reply with non-KLV bytes (including invalid UTF-8)
//!   --partial        reply with a frame that declares more bytes than it
//!                    writes, then exit 0 (a truncated stream)
//!   --no-done        reply with valid frames but no `done` terminator
//!   --stderr-noise   also write invalid UTF-8 noise to stderr
//! ```
//!
//! The well-formed report is synthesized deterministically from the
//! request's `(seed, system, case)`, shaped like the named benchmark
//! family so the harness's stock regexes extract FOMs from it.

use std::io::{Read, Write};
use std::process::exit;

use engine::proto::EngineRequest;
use engine::stub::synthesize;

/// Ignore SIGTERM (no libc crate; declare the one function needed).
#[cfg(unix)]
fn ignore_sigterm() {
    extern "C" {
        fn signal(sig: i32, handler: usize) -> usize;
    }
    const SIGTERM: i32 = 15;
    const SIG_IGN: usize = 1;
    unsafe {
        signal(SIGTERM, SIG_IGN);
    }
}

#[cfg(not(unix))]
fn ignore_sigterm() {}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut crash: Option<i32> = None;
    let mut hang = false;
    let mut garbage = false;
    let mut partial = false;
    let mut no_done = false;
    let mut stderr_noise = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--crash" => {
                crash = Some(42);
                if let Some(code) = args.get(i + 1).and_then(|a| a.parse().ok()) {
                    crash = Some(code);
                    i += 1;
                }
            }
            "--hang" => hang = true,
            "--ignore-term" => ignore_sigterm(),
            "--garbage" => garbage = true,
            "--partial" => partial = true,
            "--no-done" => no_done = true,
            "--stderr-noise" => stderr_noise = true,
            other => {
                eprintln!("benchkit-engine-stub: unknown flag {other}");
                exit(2);
            }
        }
        i += 1;
    }

    if stderr_noise {
        let _ = std::io::stderr().write_all(b"stub stderr noise \xff\xfe\x00 end\n");
    }

    let mut stdin_bytes = Vec::new();
    if std::io::stdin().read_to_end(&mut stdin_bytes).is_err() {
        eprintln!("benchkit-engine-stub: failed reading stdin");
        exit(2);
    }
    let request = match EngineRequest::decode(&stdin_bytes) {
        Ok(request) => request,
        Err(err) => {
            eprintln!("benchkit-engine-stub: bad request: {err}");
            exit(2);
        }
    };

    if let Some(code) = crash {
        eprintln!(
            "benchkit-engine-stub: crashing deliberately (case {})",
            request.case
        );
        exit(code);
    }
    if hang {
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }

    let mut stdout = std::io::stdout();
    let wrote = if garbage {
        stdout.write_all(b"\xff\xfeTHIS IS NOT KLV\nrandom: noise ::\n")
    } else if partial {
        // Declare 4096 value bytes but write only a few, then stop.
        stdout.write_all(b"wall:8:0.100000\nstdout:4096:only this much")
    } else {
        let report = synthesize(&request);
        let mut wire = Vec::new();
        engine::klv::Frame::text("wall", &format!("{:.6}", report.wall_time_s))
            .expect("static key")
            .encode_into(&mut wire);
        engine::klv::Frame::new("stdout", report.stdout.into_bytes())
            .expect("static key")
            .encode_into(&mut wire);
        if !no_done {
            engine::klv::Frame::new("done", Vec::new())
                .expect("static key")
                .encode_into(&mut wire);
        }
        stdout.write_all(&wire)
    };
    if wrote.and_then(|()| stdout.flush()).is_err() {
        exit(3);
    }
}
