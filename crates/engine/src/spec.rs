//! How a user names an engine on the command line.
//!
//! Two forms, both accepted by [`EngineSpec::parse`]:
//!
//! * **Plain command** — whitespace-split, e.g.
//!   `./target/release/benchkit-engine-stub --crash 42`. The per-attempt
//!   deadline comes from `--engine-timeout` (or its default).
//! * **tinycfg map** — full control, e.g.
//!   `{cmd: ["/bin/sh", "-c", "exec my-engine"], timeout: 30, grace: 2}`.
//!   Use this form when an argument contains whitespace, or to set a
//!   per-case deadline/grace that differs from the survey-wide one.
//!
//! A spec renders canonically with [`EngineSpec::render`]; that string is
//! what the checkpoint header binds, so a resumed survey must name the
//! exact same engine configuration or resume is refused.

use tinycfg::Value;

/// Default per-attempt wall-clock deadline, seconds.
pub const DEFAULT_TIMEOUT_S: f64 = 60.0;
/// Default SIGTERM→SIGKILL grace window, seconds.
pub const DEFAULT_GRACE_S: f64 = 1.0;

/// A fully resolved external engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSpec {
    /// Argv of the engine process; `cmd[0]` is the executable.
    pub cmd: Vec<String>,
    /// Per-attempt wall-clock deadline, seconds. Finite and positive.
    pub timeout_s: f64,
    /// Grace between SIGTERM and SIGKILL, seconds. Finite, non-negative.
    pub grace_s: f64,
}

/// Why a spec string is not a valid engine configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad engine spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

/// Validate a deadline from any source (CLI flag or spec map). Zero,
/// negative, and non-finite deadlines are configuration errors — never
/// something to discover as a hang at run time.
pub fn validate_timeout(timeout_s: f64) -> Result<(), SpecError> {
    if !timeout_s.is_finite() || timeout_s <= 0.0 {
        return Err(SpecError(format!(
            "timeout must be a finite number of seconds > 0, got {timeout_s}"
        )));
    }
    Ok(())
}

fn validate_grace(grace_s: f64) -> Result<(), SpecError> {
    if !grace_s.is_finite() || grace_s < 0.0 {
        return Err(SpecError(format!(
            "grace must be a finite number of seconds >= 0, got {grace_s}"
        )));
    }
    Ok(())
}

impl EngineSpec {
    /// Parse a command-line engine spec. `default_timeout_s` supplies the
    /// deadline when the spec does not carry its own (plain form, or map
    /// form without `timeout`).
    pub fn parse(input: &str, default_timeout_s: f64) -> Result<EngineSpec, SpecError> {
        validate_timeout(default_timeout_s)?;
        let trimmed = input.trim();
        if trimmed.is_empty() {
            return Err(SpecError("empty engine command".to_string()));
        }
        let spec = if trimmed.starts_with('{') {
            Self::parse_map(trimmed, default_timeout_s)?
        } else {
            EngineSpec {
                cmd: trimmed.split_whitespace().map(str::to_string).collect(),
                timeout_s: default_timeout_s,
                grace_s: DEFAULT_GRACE_S,
            }
        };
        if spec.cmd.is_empty() {
            return Err(SpecError("empty engine command".to_string()));
        }
        validate_timeout(spec.timeout_s)?;
        validate_grace(spec.grace_s)?;
        Ok(spec)
    }

    fn parse_map(input: &str, default_timeout_s: f64) -> Result<EngineSpec, SpecError> {
        let value = tinycfg::parse(input).map_err(|e| SpecError(format!("tinycfg form: {e}")))?;
        let map = value
            .as_map()
            .ok_or_else(|| SpecError("tinycfg form must be a map".to_string()))?;
        let mut spec = EngineSpec {
            cmd: Vec::new(),
            timeout_s: default_timeout_s,
            grace_s: DEFAULT_GRACE_S,
        };
        for (key, value) in map.iter() {
            match key {
                "cmd" => {
                    let list = value
                        .as_list()
                        .ok_or_else(|| SpecError("`cmd` must be a list of strings".to_string()))?;
                    for item in list {
                        match item.as_str() {
                            Some(s) => spec.cmd.push(s.to_string()),
                            None => {
                                return Err(SpecError(
                                    "`cmd` must be a list of strings".to_string(),
                                ))
                            }
                        }
                    }
                }
                "timeout" => {
                    spec.timeout_s = value
                        .as_float()
                        .ok_or_else(|| SpecError("`timeout` must be a number".to_string()))?;
                }
                "grace" => {
                    spec.grace_s = value
                        .as_float()
                        .ok_or_else(|| SpecError("`grace` must be a number".to_string()))?;
                }
                other => {
                    return Err(SpecError(format!(
                        "unknown key `{other}` (want cmd, timeout, grace)"
                    )));
                }
            }
        }
        Ok(spec)
    }

    /// Canonical rendering: a tinycfg map in JSON form. Deterministic, so
    /// it is safe to bind into checkpoint headers and print in reports.
    pub fn render(&self) -> String {
        let mut map = tinycfg::Map::new();
        map.insert(
            "cmd",
            Value::List(self.cmd.iter().map(|s| Value::Str(s.clone())).collect()),
        );
        map.insert("timeout", Value::Float(self.timeout_s));
        map.insert("grace", Value::Float(self.grace_s));
        Value::Map(map).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_form_splits_on_whitespace() {
        let spec = EngineSpec::parse("  ./stub --crash 42 ", 5.0).unwrap();
        assert_eq!(spec.cmd, vec!["./stub", "--crash", "42"]);
        assert_eq!(spec.timeout_s, 5.0);
        assert_eq!(spec.grace_s, DEFAULT_GRACE_S);
    }

    #[test]
    fn map_form_parses_cmd_timeout_grace() {
        let spec = EngineSpec::parse(
            r#"{cmd: ["/bin/sh", "-c", "exec engine --x 'a b'"], timeout: 2.5, grace: 0.25}"#,
            60.0,
        )
        .unwrap();
        assert_eq!(spec.cmd[2], "exec engine --x 'a b'");
        assert_eq!(spec.timeout_s, 2.5);
        assert_eq!(spec.grace_s, 0.25);
    }

    #[test]
    fn map_form_inherits_default_timeout() {
        let spec = EngineSpec::parse(r#"{cmd: ["eng"]}"#, 7.0).unwrap();
        assert_eq!(spec.timeout_s, 7.0);
    }

    #[test]
    fn rejects_bad_timeouts() {
        for t in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(validate_timeout(t).is_err(), "timeout {t}");
            assert!(EngineSpec::parse("eng", t).is_err(), "default {t}");
        }
        assert!(EngineSpec::parse(r#"{cmd: ["eng"], timeout: 0}"#, 5.0).is_err());
        assert!(EngineSpec::parse(r#"{cmd: ["eng"], timeout: -3}"#, 5.0).is_err());
        assert!(EngineSpec::parse(r#"{cmd: ["eng"], grace: -1}"#, 5.0).is_err());
    }

    #[test]
    fn rejects_empty_and_malformed() {
        assert!(EngineSpec::parse("", 5.0).is_err());
        assert!(EngineSpec::parse("   ", 5.0).is_err());
        assert!(EngineSpec::parse("{cmd: []}", 5.0).is_err());
        assert!(EngineSpec::parse("{cmd: [1, 2]}", 5.0).is_err());
        assert!(EngineSpec::parse("{nope: 1}", 5.0).is_err());
        assert!(EngineSpec::parse("{cmd", 5.0).is_err());
    }

    #[test]
    fn render_is_canonical_and_stable() {
        let spec = EngineSpec::parse("./stub --ok", 5.0).unwrap();
        assert_eq!(
            spec.render(),
            r#"{"cmd":["./stub","--ok"],"timeout":5.0,"grace":1.0}"#
        );
        // Identical config from either syntax renders identically.
        let map =
            EngineSpec::parse(r#"{cmd: ["./stub", "--ok"], timeout: 5, grace: 1}"#, 60.0).unwrap();
        assert_eq!(map.render(), spec.render());
    }
}
