//! `engine` — the process-isolated benchmark engine protocol.
//!
//! A survey cell normally runs its benchmark in-process (`benchapps`).
//! This crate lets a cell drive **any external binary** instead: the
//! harness spawns the engine, writes a request as KLV frames on its
//! stdin ([`proto::EngineRequest`]), and reads a KLV report back from its
//! stdout ([`proto::EngineReport`]) under a wall-clock deadline with
//! SIGTERM → grace → SIGKILL escalation ([`process::run_attempt`]).
//!
//! The design goal is *containment*: a crashing, hanging, or
//! garbage-emitting engine must never take the survey down. Every failure
//! mode surfaces as a structured [`process::AttemptFailure`] carrying the
//! process facts (`exit_code`, `signal`, `timed_out`) that the harness
//! feeds into its retry/quarantine machinery and perflog extras.
//!
//! Layers:
//!
//! * [`klv`] — the total frame codec (any bytes → frames or
//!   [`klv::ProtocolError`], never a panic);
//! * [`proto`] — the request/report conversation on top of frames;
//! * [`spec`] — command-line engine specs ([`spec::EngineSpec`]);
//! * [`process`] — one contained subprocess attempt;
//! * [`stub`] — the deterministic reference engine behind
//!   `benchkit-engine-stub`.

pub mod klv;
pub mod process;
pub mod proto;
pub mod spec;
pub mod stub;

pub use klv::{Decoder, Frame, ProtocolError};
pub use process::{run_attempt, AttemptFailure};
pub use proto::{EngineReport, EngineRequest, ReportError, RequestError};
pub use spec::{validate_timeout, EngineSpec, SpecError, DEFAULT_GRACE_S, DEFAULT_TIMEOUT_S};
