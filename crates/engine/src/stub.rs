//! Synthetic benchmark output for `benchkit-engine-stub`.
//!
//! The stub plays the role of a real external benchmark: given a request it
//! fabricates output in the textual shape of the named benchmark family
//! (so the harness's stock sanity/FOM regexes match) with FOM values and a
//! wall time derived **deterministically** from `(seed, system, case)` —
//! the same request always produces byte-identical output, which is what
//! lets engine-mode surveys stay reproducible at any `--jobs` count.

use crate::proto::{EngineReport, EngineRequest};

/// FNV-1a over the request identity plus a per-metric tag.
fn mix(request: &EngineRequest, tag: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in [
        request.seed.to_string().as_str(),
        request.system.as_str(),
        request.case.as_str(),
        tag,
    ] {
        for b in part.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        h = (h ^ 0x1f).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Deterministic value in `[lo, hi)` for one metric of one request.
fn value_in(request: &EngineRequest, tag: &str, lo: f64, hi: f64) -> f64 {
    let unit = (mix(request, tag) >> 11) as f64 / (1u64 << 53) as f64;
    lo + unit * (hi - lo)
}

/// Fabricate a report for the requested case. Output shape follows the
/// benchmark family named by the case (prefix match), defaulting to a
/// minimal generic report.
pub fn synthesize(request: &EngineRequest) -> EngineReport {
    let mut out = String::new();
    let case = request.case.as_str();
    if case.starts_with("babelstream") {
        out.push_str("BabelStream (engine stub)\n");
        out.push_str("Function    MBytes/sec  Min (sec)   Max         Average\n");
        for name in ["Copy", "Mul", "Add", "Triad", "Dot"] {
            let v = value_in(request, name, 120_000.0, 200_000.0);
            out.push_str(&format!("{name:<12}{v:<12.1}\n"));
        }
    } else if case.starts_with("hpcg") {
        out.push_str("HPCG (engine stub)\n");
        out.push_str("result is VALID with a GFLOP/s rating of=");
        out.push_str(&format!("{:.4}\n", value_in(request, "gflops", 5.0, 40.0)));
    } else if case.starts_with("hpgmg") {
        out.push_str("HPGMG-FV (engine stub)\n");
        out.push_str(&format!(
            "residual reduction={:.6e}\n",
            value_in(request, "residual", 1e-11, 1e-9)
        ));
        // Coarser levels solve fewer DOF/s: keep l0 > l1 > l2 like the
        // real proxy app.
        let l0 = value_in(request, "l0", 4e8, 9e8);
        for (level, v) in [(0, l0), (1, l0 * 0.5), (2, l0 * 0.2)] {
            out.push_str(&format!("level {level} FMG solve averaged {v:.4e} DOF/s\n"));
        }
    } else if case.starts_with("stream") {
        out.push_str("STREAM (engine stub)\n");
        out.push_str("Solution Validates: avg error less than 1e-13\n");
        for name in ["Copy", "Scale", "Add", "Triad"] {
            let v = value_in(request, name, 90_000.0, 160_000.0);
            out.push_str(&format!("{name:<12}{v:<12.1}\n"));
        }
    } else {
        out.push_str(&format!("engine stub ran case {case}\nOK\n"));
    }
    EngineReport {
        wall_time_s: value_in(request, "wall", 0.05, 0.95),
        stdout: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(case: &str, seed: u64) -> EngineRequest {
        EngineRequest {
            case: case.to_string(),
            system: "csd3".to_string(),
            partition: "cascadelake".to_string(),
            spec: String::new(),
            seed,
            attempt: 1,
        }
    }

    #[test]
    fn output_is_deterministic_per_request() {
        let a = synthesize(&request("babelstream_omp", 7));
        let b = synthesize(&request("babelstream_omp", 7));
        assert_eq!(a, b);
        // ...and varies with the seed.
        assert_ne!(a, synthesize(&request("babelstream_omp", 8)));
    }

    #[test]
    fn families_match_their_harness_patterns() {
        let b = synthesize(&request("babelstream_omp", 1)).stdout;
        assert!(b.contains("Function    MBytes/sec"));
        assert!(b.contains("Copy"));
        let h = synthesize(&request("hpcg_csr", 1)).stdout;
        assert!(h.contains("result is VALID"));
        assert!(h.contains("rating of="));
        let g = synthesize(&request("hpgmg_fv", 1)).stdout;
        assert!(g.contains("residual reduction="));
        assert!(g.contains("level 0 FMG solve averaged "));
        assert!(g.contains("level 2 FMG solve averaged "));
        let s = synthesize(&request("stream", 1)).stdout;
        assert!(s.contains("Solution Validates"));
        let other = synthesize(&request("mystery", 1)).stdout;
        assert!(other.contains("mystery"));
    }

    #[test]
    fn wall_time_is_sane() {
        let r = synthesize(&request("stream", 3));
        assert!(r.wall_time_s > 0.0 && r.wall_time_s < 1.0);
    }
}
