//! The benchkit engine conversation, expressed as KLV frames.
//!
//! The harness writes a request to the engine's stdin and closes it:
//!
//! ```text
//! proto:1:1
//! case:15:babelstream_omp
//! system:4:csd3
//! partition:11:cascadelake
//! spec:21:babelstream%gcc +omp
//! seed:1:7
//! attempt:1:1
//! run:0:
//! ```
//!
//! The engine runs the named benchmark and replies on stdout with the
//! measured wall time, the benchmark's raw textual output (the harness
//! applies its own sanity/FOM regexes to it, exactly as on the in-process
//! path), and a terminator:
//!
//! ```text
//! wall:8:0.125000
//! stdout:N:<benchmark output bytes>
//! done:0:
//! ```
//!
//! Unknown keys are ignored in both directions so either side can extend
//! the protocol. A reply without the `done` terminator is treated as
//! partial output — the tell-tale of an engine that died mid-write.

use crate::klv::{decode_all, Frame, ProtocolError};

/// Protocol revision spoken by this crate.
pub const PROTOCOL_VERSION: &str = "1";

/// What the harness asks an engine to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineRequest {
    pub case: String,
    pub system: String,
    pub partition: String,
    pub spec: String,
    pub seed: u64,
    pub attempt: u32,
}

impl EngineRequest {
    /// Wire encoding written to the engine's stdin.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for (key, value) in [
            ("proto", PROTOCOL_VERSION),
            ("case", &self.case),
            ("system", &self.system),
            ("partition", &self.partition),
            ("spec", &self.spec),
            ("seed", &self.seed.to_string()),
            ("attempt", &self.attempt.to_string()),
        ] {
            Frame::new(key, value.as_bytes().to_vec())
                .expect("request keys are valid")
                .encode_into(&mut out);
        }
        Frame::new("run", Vec::new())
            .expect("static key")
            .encode_into(&mut out);
        out
    }

    /// Parse a request from stdin bytes (the engine side; the stub uses
    /// this). Requires the `run` terminator and a known protocol version.
    pub fn decode(bytes: &[u8]) -> Result<EngineRequest, RequestError> {
        let frames = decode_all(bytes).map_err(RequestError::Protocol)?;
        let mut request = EngineRequest {
            case: String::new(),
            system: String::new(),
            partition: String::new(),
            spec: String::new(),
            seed: 0,
            attempt: 1,
        };
        let mut saw_run = false;
        let mut saw_proto = false;
        for frame in &frames {
            if saw_run {
                return Err(RequestError::TrailingFrame(frame.key.clone()));
            }
            let text = frame.value_lossy();
            match frame.key.as_str() {
                "proto" => {
                    if text != PROTOCOL_VERSION {
                        return Err(RequestError::UnsupportedVersion(text));
                    }
                    saw_proto = true;
                }
                "case" => request.case = text,
                "system" => request.system = text,
                "partition" => request.partition = text,
                "spec" => request.spec = text,
                "seed" => {
                    request.seed = text
                        .parse()
                        .map_err(|_| RequestError::BadField("seed", text))?;
                }
                "attempt" => {
                    request.attempt = text
                        .parse()
                        .map_err(|_| RequestError::BadField("attempt", text))?;
                }
                "run" => saw_run = true,
                _ => {} // forward compatibility
            }
        }
        if !saw_proto {
            return Err(RequestError::MissingField("proto"));
        }
        if !saw_run {
            return Err(RequestError::MissingField("run"));
        }
        if request.case.is_empty() {
            return Err(RequestError::MissingField("case"));
        }
        Ok(request)
    }
}

/// Why an engine rejected the harness's request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    Protocol(ProtocolError),
    UnsupportedVersion(String),
    MissingField(&'static str),
    BadField(&'static str, String),
    TrailingFrame(String),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Protocol(e) => write!(f, "bad request framing: {e}"),
            RequestError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v:?} (want {PROTOCOL_VERSION})"
                )
            }
            RequestError::MissingField(k) => write!(f, "request missing `{k}` frame"),
            RequestError::BadField(k, v) => write!(f, "bad `{k}` value {v:?}"),
            RequestError::TrailingFrame(k) => write!(f, "frame `{k}` after `run` terminator"),
        }
    }
}

impl std::error::Error for RequestError {}

/// What a well-behaved engine reports back.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineReport {
    /// Engine-measured wall time, seconds. Finite and non-negative.
    pub wall_time_s: f64,
    /// The benchmark's raw output (lossy UTF-8); the harness extracts
    /// sanity matches and FOMs from it with the case's own regexes.
    pub stdout: String,
}

impl EngineReport {
    /// Wire encoding written to the harness (the engine side).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        Frame::text("wall", &format!("{:.6}", self.wall_time_s))
            .expect("static key")
            .encode_into(&mut out);
        Frame::new("stdout", self.stdout.as_bytes().to_vec())
            .expect("static key")
            .encode_into(&mut out);
        Frame::new("done", Vec::new())
            .expect("static key")
            .encode_into(&mut out);
        out
    }

    /// Interpret decoded frames as a report (the harness side).
    pub fn from_frames(frames: &[Frame]) -> Result<EngineReport, ReportError> {
        let mut wall: Option<f64> = None;
        let mut stdout: Option<String> = None;
        let mut saw_done = false;
        for frame in frames {
            if saw_done {
                return Err(ReportError::TrailingFrame(frame.key.clone()));
            }
            match frame.key.as_str() {
                "wall" => {
                    if wall.is_some() {
                        return Err(ReportError::DuplicateFrame("wall"));
                    }
                    let text = frame.value_lossy();
                    let value: f64 = text
                        .parse()
                        .map_err(|_| ReportError::BadWall(text.clone()))?;
                    if !value.is_finite() || value < 0.0 {
                        return Err(ReportError::BadWall(text));
                    }
                    wall = Some(value);
                }
                "stdout" => {
                    if stdout.is_some() {
                        return Err(ReportError::DuplicateFrame("stdout"));
                    }
                    stdout = Some(frame.value_lossy());
                }
                "done" => saw_done = true,
                _ => {} // forward compatibility
            }
        }
        if !saw_done {
            return Err(ReportError::MissingDone);
        }
        Ok(EngineReport {
            wall_time_s: wall.ok_or(ReportError::MissingFrame("wall"))?,
            stdout: stdout.ok_or(ReportError::MissingFrame("stdout"))?,
        })
    }
}

/// Why a syntactically valid frame stream is not a usable report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportError {
    /// No `done` terminator: the engine died (or stopped) mid-report.
    MissingDone,
    MissingFrame(&'static str),
    DuplicateFrame(&'static str),
    TrailingFrame(String),
    /// `wall` is not a finite non-negative number.
    BadWall(String),
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportError::MissingDone => {
                write!(f, "partial output: missing `done` terminator")
            }
            ReportError::MissingFrame(k) => write!(f, "report missing `{k}` frame"),
            ReportError::DuplicateFrame(k) => write!(f, "duplicate `{k}` frame"),
            ReportError::TrailingFrame(k) => write!(f, "frame `{k}` after `done` terminator"),
            ReportError::BadWall(v) => {
                write!(f, "bad `wall` value {v:?} (want finite seconds ≥ 0)")
            }
        }
    }
}

impl std::error::Error for ReportError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> EngineRequest {
        EngineRequest {
            case: "babelstream_omp".to_string(),
            system: "csd3".to_string(),
            partition: "cascadelake".to_string(),
            spec: "babelstream%gcc +omp".to_string(),
            seed: 7,
            attempt: 2,
        }
    }

    #[test]
    fn request_round_trips() {
        let req = request();
        assert_eq!(EngineRequest::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn request_requires_proto_case_and_run() {
        let frames = |skip: &str| {
            let req = request();
            let all = decode_all(&req.encode()).unwrap();
            crate::klv::encode_all(
                &all.into_iter()
                    .filter(|f| f.key != skip)
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(
            EngineRequest::decode(&frames("proto")).unwrap_err(),
            RequestError::MissingField("proto")
        );
        assert_eq!(
            EngineRequest::decode(&frames("run")).unwrap_err(),
            RequestError::MissingField("run")
        );
        assert_eq!(
            EngineRequest::decode(&frames("case")).unwrap_err(),
            RequestError::MissingField("case")
        );
    }

    #[test]
    fn request_rejects_unknown_version() {
        let mut wire = Frame::text("proto", "99").unwrap().encode();
        wire.extend(Frame::text("case", "x").unwrap().encode());
        wire.extend(Frame::new("run", Vec::new()).unwrap().encode());
        assert_eq!(
            EngineRequest::decode(&wire).unwrap_err(),
            RequestError::UnsupportedVersion("99".to_string())
        );
    }

    #[test]
    fn report_round_trips() {
        let report = EngineReport {
            wall_time_s: 0.125,
            stdout: "Function    MBytes/sec\nCopy  1000.0\n".to_string(),
        };
        let frames = decode_all(&report.encode()).unwrap();
        assert_eq!(EngineReport::from_frames(&frames).unwrap(), report);
    }

    #[test]
    fn report_without_done_is_partial_output() {
        let frames = vec![
            Frame::text("wall", "1.0").unwrap(),
            Frame::text("stdout", "x").unwrap(),
        ];
        assert_eq!(
            EngineReport::from_frames(&frames).unwrap_err(),
            ReportError::MissingDone
        );
    }

    #[test]
    fn report_rejects_bad_wall() {
        for bad in ["NaN", "inf", "-1", "abc", ""] {
            let frames = vec![
                Frame::text("wall", bad).unwrap(),
                Frame::text("stdout", "x").unwrap(),
                Frame::new("done", Vec::new()).unwrap(),
            ];
            assert!(
                matches!(
                    EngineReport::from_frames(&frames),
                    Err(ReportError::BadWall(_))
                ),
                "wall={bad:?}"
            );
        }
    }

    #[test]
    fn report_ignores_unknown_frames() {
        let mut wire = Frame::text("wall", "1.0").unwrap().encode();
        wire.extend(Frame::text("future-key", "whatever").unwrap().encode());
        wire.extend(Frame::text("stdout", "out").unwrap().encode());
        wire.extend(Frame::new("done", Vec::new()).unwrap().encode());
        let frames = decode_all(&wire).unwrap();
        assert_eq!(
            EngineReport::from_frames(&frames).unwrap().stdout,
            "out".to_string()
        );
    }
}
