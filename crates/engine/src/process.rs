//! Running one engine attempt as a contained subprocess.
//!
//! [`run_attempt`] owns the whole lifecycle: spawn, write the request to
//! stdin, drain stdout/stderr on reader threads into bounded buffers
//! (draining continues past the cap so a chatty engine cannot deadlock on
//! a full pipe), poll for exit against the wall-clock deadline, escalate
//! SIGTERM → grace → SIGKILL on overrun, and always reap the child so no
//! zombie outlives the attempt. Every way the engine can misbehave maps to
//! a structured [`AttemptFailure`]; the function itself never panics on
//! engine behavior and never blocks indefinitely.

use std::io::{Read, Write};
use std::process::{Child, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

use crate::proto::{EngineReport, EngineRequest};
use crate::spec::EngineSpec;

/// Most engine-report bytes kept from stdout (16 MiB, the KLV value cap
/// plus framing headroom).
const MAX_STDOUT_BYTES: usize = 17 * 1024 * 1024;
/// Most stderr bytes kept for diagnostics.
const MAX_STDERR_BYTES: usize = 64 * 1024;
/// Longest stderr excerpt quoted in failure messages, characters.
const STDERR_HEAD_CHARS: usize = 200;
/// Exit-poll interval while waiting on the child.
const POLL: Duration = Duration::from_millis(2);

/// One contained engine failure: what happened, plus the process status
/// facts the perflog records (`exit_code` / `signal` / `timed_out`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttemptFailure {
    /// Exit code, if the process exited normally. May be negative on
    /// platforms that report such codes — preserved as `i64`, never
    /// wrapped through an unsigned type.
    pub exit_code: Option<i64>,
    /// Terminating signal, if the process was killed by one.
    pub signal: Option<i64>,
    /// Whether the wall-clock deadline expired and the harness killed it.
    pub timed_out: bool,
    /// What went wrong, in one deterministic sentence.
    pub detail: String,
    /// First line of the engine's stderr (lossy UTF-8, bounded), or empty.
    pub stderr_head: String,
}

impl std::fmt::Display for AttemptFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.detail)?;
        if !self.stderr_head.is_empty() {
            write!(f, " [stderr: {}]", self.stderr_head)?;
        }
        Ok(())
    }
}

impl AttemptFailure {
    fn plain(detail: String) -> AttemptFailure {
        AttemptFailure {
            exit_code: None,
            signal: None,
            timed_out: false,
            detail,
            stderr_head: String::new(),
        }
    }
}

/// Status facts extracted from an [`ExitStatus`] without wraparound.
fn status_facts(status: ExitStatus) -> (Option<i64>, Option<i64>) {
    let exit_code = status.code().map(i64::from);
    #[cfg(unix)]
    let signal = {
        use std::os::unix::process::ExitStatusExt;
        status.signal().map(i64::from)
    };
    #[cfg(not(unix))]
    let signal = None;
    (exit_code, signal)
}

/// Send SIGTERM to `pid`. The workspace has no libc crate, so the one
/// syscall wrapper we need is declared directly.
#[cfg(unix)]
fn send_sigterm(pid: u32) {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    const SIGTERM: i32 = 15;
    // A stale pid is harmless here: we only signal a child we have not
    // yet reaped, so the pid cannot have been recycled.
    unsafe {
        kill(pid as i32, SIGTERM);
    }
}

#[cfg(not(unix))]
fn send_sigterm(_pid: u32) {}

/// Drain a pipe to EOF on a thread, keeping at most `cap` bytes. The
/// result comes back over a channel so the caller can bound its wait: a
/// grandchild the engine leaked may hold the pipe's write end open past
/// the engine's own death, and joining the thread directly would block on
/// it.
fn drain_capped<R: Read + Send + 'static>(
    mut pipe: R,
    cap: usize,
) -> std::sync::mpsc::Receiver<Vec<u8>> {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut chunk = [0u8; 8192];
        let mut kept = Vec::new();
        loop {
            match pipe.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    let room = cap.saturating_sub(kept.len());
                    kept.extend_from_slice(&chunk[..n.min(room)]);
                }
            }
        }
        let _ = tx.send(kept);
    });
    rx
}

/// How long to wait for a reader after the engine exited cleanly. EOF is
/// normally immediate; this only bites when the engine leaked a child
/// that inherited its stdout/stderr, and then the attempt degrades to a
/// contained protocol failure instead of hanging the survey.
const READER_WAIT_OK: Duration = Duration::from_secs(5);
/// How long to wait for a reader after the engine died or was killed —
/// its output is diagnostic only at that point.
const READER_WAIT_DEAD: Duration = Duration::from_millis(500);

fn collect_reader(reader: Option<std::sync::mpsc::Receiver<Vec<u8>>>, wait: Duration) -> Vec<u8> {
    reader
        .and_then(|rx| rx.recv_timeout(wait).ok())
        .unwrap_or_default()
}

/// First line of stderr, lossy and bounded, for failure messages.
fn stderr_head(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes)
        .lines()
        .next()
        .unwrap_or("")
        .chars()
        .take(STDERR_HEAD_CHARS)
        .collect()
}

/// Wait for the child until `deadline`, escalating if it overruns.
/// Returns the exit status and whether the deadline fired.
fn await_exit(child: &mut Child, spec: &EngineSpec) -> std::io::Result<(ExitStatus, bool)> {
    let deadline = Instant::now() + Duration::from_secs_f64(spec.timeout_s);
    loop {
        if let Some(status) = child.try_wait()? {
            return Ok((status, false));
        }
        if Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(POLL);
    }
    // Deadline overrun: SIGTERM, then a grace window, then SIGKILL.
    send_sigterm(child.id());
    let grace_deadline = Instant::now() + Duration::from_secs_f64(spec.grace_s);
    loop {
        if let Some(status) = child.try_wait()? {
            return Ok((status, true));
        }
        if Instant::now() >= grace_deadline {
            break;
        }
        std::thread::sleep(POLL);
    }
    child.kill()?; // SIGKILL; cannot be ignored
    let status = child.wait()?; // blocking reap — SIGKILL guarantees exit
    Ok((status, true))
}

/// Run one engine attempt to completion and parse its report.
pub fn run_attempt(
    spec: &EngineSpec,
    request: &EngineRequest,
) -> Result<EngineReport, AttemptFailure> {
    let mut child = match Command::new(&spec.cmd[0])
        .args(&spec.cmd[1..])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
    {
        Ok(child) => child,
        Err(err) => {
            return Err(AttemptFailure::plain(format!(
                "failed to spawn engine `{}`: {err}",
                spec.cmd[0]
            )));
        }
    };

    // Write the request and close stdin so the engine sees EOF. A broken
    // pipe just means the engine exited early — the exit status will say
    // why, so it is not an error here. The request is far smaller than a
    // pipe buffer, so this cannot block on an engine that never reads.
    if let Some(mut stdin) = child.stdin.take() {
        let _ = stdin.write_all(&request.encode());
    }
    let stdout_reader = child
        .stdout
        .take()
        .map(|pipe| drain_capped(pipe, MAX_STDOUT_BYTES));
    let stderr_reader = child
        .stderr
        .take()
        .map(|pipe| drain_capped(pipe, MAX_STDERR_BYTES));

    let waited = await_exit(&mut child, spec);
    // The child is reaped on every path out of await_exit except an I/O
    // error from try_wait/kill — make sure of it before reading pipes.
    if waited.is_err() {
        let _ = child.kill();
        let _ = child.wait();
    }
    let healthy_exit = matches!(&waited, Ok((status, false)) if status.success());
    let reader_wait = if healthy_exit {
        READER_WAIT_OK
    } else {
        READER_WAIT_DEAD
    };
    let stdout_bytes = collect_reader(stdout_reader, reader_wait);
    let stderr_bytes = collect_reader(stderr_reader, reader_wait);

    let (status, timed_out) = match waited {
        Ok(pair) => pair,
        Err(err) => {
            return Err(AttemptFailure {
                exit_code: None,
                signal: None,
                timed_out: false,
                detail: format!("failed waiting on engine: {err}"),
                stderr_head: stderr_head(&stderr_bytes),
            });
        }
    };
    let (exit_code, signal) = status_facts(status);

    if timed_out {
        return Err(AttemptFailure {
            exit_code,
            signal,
            timed_out: true,
            detail: format!(
                "engine exceeded its {}s deadline and was killed",
                spec.timeout_s
            ),
            stderr_head: stderr_head(&stderr_bytes),
        });
    }
    if let Some(sig) = signal {
        return Err(AttemptFailure {
            exit_code,
            signal,
            timed_out: false,
            detail: format!("engine killed by signal {sig}"),
            stderr_head: stderr_head(&stderr_bytes),
        });
    }
    if exit_code != Some(0) {
        return Err(AttemptFailure {
            exit_code,
            signal,
            timed_out: false,
            detail: match exit_code {
                Some(code) => format!("engine exited with code {code}"),
                None => "engine exited with unknown status".to_string(),
            },
            stderr_head: stderr_head(&stderr_bytes),
        });
    }

    let failure = |detail: String| AttemptFailure {
        exit_code,
        signal,
        timed_out: false,
        detail,
        stderr_head: stderr_head(&stderr_bytes),
    };
    let frames = crate::klv::decode_all(&stdout_bytes)
        .map_err(|err| failure(format!("engine emitted invalid frames: {err}")))?;
    EngineReport::from_frames(&frames)
        .map_err(|err| failure(format!("engine report rejected: {err}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sh(script: &str, timeout_s: f64) -> EngineSpec {
        EngineSpec {
            cmd: vec!["/bin/sh".to_string(), "-c".to_string(), script.to_string()],
            timeout_s,
            grace_s: 0.2,
        }
    }

    fn request() -> EngineRequest {
        EngineRequest {
            case: "stream".to_string(),
            system: "csd3".to_string(),
            partition: "cascadelake".to_string(),
            spec: "stream%gcc".to_string(),
            seed: 1,
            attempt: 1,
        }
    }

    #[test]
    fn well_behaved_engine_round_trips() {
        let script = r#"
body='Solution Validates'
printf 'wall:8:0.500000\n'
printf 'stdout:%d:%s\n' "${#body}" "$body"
printf 'done:0:\n'
"#;
        let report = run_attempt(&sh(script, 5.0), &request()).unwrap();
        assert_eq!(report.wall_time_s, 0.5);
        assert_eq!(report.stdout, "Solution Validates");
    }

    #[test]
    fn nonzero_exit_is_contained() {
        let err = run_attempt(&sh("echo oops >&2; exit 42", 5.0), &request()).unwrap_err();
        assert_eq!(err.exit_code, Some(42));
        assert_eq!(err.signal, None);
        assert!(!err.timed_out);
        assert_eq!(err.stderr_head, "oops");
        assert_eq!(err.detail, "engine exited with code 42");
    }

    #[cfg(unix)]
    #[test]
    fn signal_death_is_contained() {
        let err = run_attempt(&sh("kill -9 $$", 5.0), &request()).unwrap_err();
        assert_eq!(err.signal, Some(9));
        assert_eq!(err.exit_code, None);
        assert!(!err.timed_out);
    }

    #[test]
    fn hang_is_killed_at_the_deadline() {
        let started = Instant::now();
        let err = run_attempt(&sh("sleep 30", 0.2), &request()).unwrap_err();
        assert!(err.timed_out);
        assert!(started.elapsed() < Duration::from_secs(5));
        // sh dies on SIGTERM within the grace window.
        assert_eq!(err.signal, Some(15));
    }

    #[cfg(unix)]
    #[test]
    fn sigterm_immune_hang_gets_sigkilled() {
        let started = Instant::now();
        let err = run_attempt(
            &sh("trap '' TERM; while :; do sleep 0.05; done", 0.2),
            &request(),
        )
        .unwrap_err();
        assert!(err.timed_out);
        assert_eq!(err.signal, Some(9));
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn garbage_output_is_a_protocol_failure() {
        let err = run_attempt(&sh("printf 'NOT KLV \\377\\376'", 5.0), &request()).unwrap_err();
        assert_eq!(err.exit_code, Some(0));
        assert!(!err.timed_out);
        assert!(err.detail.contains("invalid frames"), "{}", err.detail);
    }

    #[test]
    fn partial_report_is_detected() {
        // Valid frames, but no `done` terminator.
        let script = r#"printf 'wall:8:0.500000\n'; printf 'stdout:2:ok\n'"#;
        let err = run_attempt(&sh(script, 5.0), &request()).unwrap_err();
        assert!(err.detail.contains("missing `done`"), "{}", err.detail);
    }

    #[test]
    fn truncated_frame_is_detected() {
        // Declares 100 bytes, writes 5, exits 0.
        let err = run_attempt(&sh("printf 'stdout:100:hello'", 5.0), &request()).unwrap_err();
        assert!(err.detail.contains("truncated"), "{}", err.detail);
    }

    #[test]
    fn non_utf8_stderr_is_captured_lossily() {
        let err = run_attempt(
            &sh("printf 'bad \\377\\376 bytes' >&2; exit 3", 5.0),
            &request(),
        )
        .unwrap_err();
        assert_eq!(err.exit_code, Some(3));
        assert!(err.stderr_head.starts_with("bad "));
        assert!(err.stderr_head.contains('\u{FFFD}'));
    }

    #[test]
    fn missing_binary_is_a_spawn_failure() {
        let spec = EngineSpec {
            cmd: vec!["/no/such/engine-binary".to_string()],
            timeout_s: 1.0,
            grace_s: 0.1,
        };
        let err = run_attempt(&spec, &request()).unwrap_err();
        assert!(err.detail.contains("failed to spawn"), "{}", err.detail);
        assert_eq!(err.exit_code, None);
    }
}
