//! Key-length-value frame codec (rebar KLV style).
//!
//! One frame on the wire is
//!
//! ```text
//! key ':' decimal-length ':' value '\n'
//! ```
//!
//! where `key` is 1–32 bytes of `[a-z0-9_-]`, `decimal-length` is 1–8 ASCII
//! digits giving the byte length of `value` (the trailing newline is *not*
//! counted), and `value` is arbitrary bytes. The newline keeps frames
//! eyeballable with `cat` while the explicit length keeps binary values
//! unambiguous.
//!
//! The decoder is **total**: any byte stream either yields frames or a
//! structured [`ProtocolError`] — it never panics, never over-reads past
//! what a frame declares, and never allocates more than the bytes actually
//! pushed into it (a declared length only causes buffering, capped by
//! [`MAX_VALUE_LEN`]).

/// Longest permitted key, bytes.
pub const MAX_KEY_LEN: usize = 32;
/// Most digits a length field may carry.
pub const MAX_LEN_DIGITS: usize = 8;
/// Largest permitted value, bytes (fits in [`MAX_LEN_DIGITS`] digits).
pub const MAX_VALUE_LEN: usize = 16 * 1024 * 1024;

/// One decoded key-length-value frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub key: String,
    pub value: Vec<u8>,
}

impl Frame {
    /// Build a frame, validating the key and value size.
    pub fn new(key: &str, value: impl Into<Vec<u8>>) -> Result<Frame, ProtocolError> {
        let value = value.into();
        if !valid_key(key.as_bytes()) {
            return Err(ProtocolError::BadKey {
                offset: 0,
                found: printable_head(key.as_bytes()),
            });
        }
        if value.len() > MAX_VALUE_LEN {
            return Err(ProtocolError::Oversized {
                offset: 0,
                key: key.to_string(),
                len: value.len() as u64,
            });
        }
        Ok(Frame {
            key: key.to_string(),
            value,
        })
    }

    /// Frame with a UTF-8 text value.
    pub fn text(key: &str, value: &str) -> Result<Frame, ProtocolError> {
        Frame::new(key, value.as_bytes().to_vec())
    }

    /// The value as text (lossy — engines may emit arbitrary bytes).
    pub fn value_lossy(&self) -> String {
        String::from_utf8_lossy(&self.value).into_owned()
    }

    /// Append the wire encoding of this frame to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.key.as_bytes());
        out.push(b':');
        out.extend_from_slice(self.value.len().to_string().as_bytes());
        out.push(b':');
        out.extend_from_slice(&self.value);
        out.push(b'\n');
    }

    /// The wire encoding of this frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.key.len() + self.value.len() + 12);
        self.encode_into(&mut out);
        out
    }
}

/// Why a byte stream is not a valid frame sequence. Every variant carries
/// the byte offset (into the whole stream) where decoding stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The key is empty, too long, or contains a byte outside `[a-z0-9_-]`.
    BadKey { offset: usize, found: String },
    /// The length field is empty, non-decimal, or longer than
    /// [`MAX_LEN_DIGITS`] digits.
    BadLength { offset: usize, found: String },
    /// The declared value length exceeds [`MAX_VALUE_LEN`].
    Oversized {
        offset: usize,
        key: String,
        len: u64,
    },
    /// The byte after the value is not the terminating newline.
    MissingNewline { offset: usize, key: String },
    /// The stream ended mid-frame.
    Truncated { offset: usize, inside: String },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::BadKey { offset, found } => {
                write!(f, "bad frame key at byte {offset}: {found:?}")
            }
            ProtocolError::BadLength { offset, found } => {
                write!(f, "bad frame length at byte {offset}: {found:?}")
            }
            ProtocolError::Oversized { offset, key, len } => {
                write!(
                    f,
                    "frame `{key}` at byte {offset} declares {len} bytes \
                     (limit {MAX_VALUE_LEN})"
                )
            }
            ProtocolError::MissingNewline { offset, key } => {
                write!(f, "frame `{key}` at byte {offset} not newline-terminated")
            }
            ProtocolError::Truncated { offset, inside } => {
                write!(f, "stream truncated at byte {offset} inside {inside}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

fn valid_key(key: &[u8]) -> bool {
    !key.is_empty()
        && key.len() <= MAX_KEY_LEN
        && key
            .iter()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || *b == b'_' || *b == b'-')
}

/// A short printable rendering of raw bytes for error messages.
fn printable_head(bytes: &[u8]) -> String {
    let head: String = String::from_utf8_lossy(bytes)
        .chars()
        .take(24)
        .map(|c| if c.is_control() { '.' } else { c })
        .collect();
    if bytes.len() > 24 {
        format!("{head}…")
    } else {
        head
    }
}

/// Incremental frame decoder. Feed it byte chunks of any size with
/// [`Decoder::push`]; call [`Decoder::finish`] at end of stream to detect a
/// truncated trailing frame. Once an error is returned the decoder is
/// poisoned and keeps returning the same error.
#[derive(Debug, Default)]
pub struct Decoder {
    buf: Vec<u8>,
    /// Bytes consumed from the stream before `buf[0]`.
    consumed: usize,
    poisoned: Option<ProtocolError>,
}

impl Decoder {
    pub fn new() -> Decoder {
        Decoder::default()
    }

    /// Feed more bytes; returns every frame completed by this chunk.
    pub fn push(&mut self, bytes: &[u8]) -> Result<Vec<Frame>, ProtocolError> {
        if let Some(err) = &self.poisoned {
            return Err(err.clone());
        }
        self.buf.extend_from_slice(bytes);
        let mut frames = Vec::new();
        loop {
            match self.try_frame() {
                Ok(Some(frame)) => frames.push(frame),
                Ok(None) => return Ok(frames),
                Err(err) => {
                    self.poisoned = Some(err.clone());
                    return Err(err);
                }
            }
        }
    }

    /// Declare end of stream: leftover bytes mean a truncated frame.
    pub fn finish(self) -> Result<(), ProtocolError> {
        if let Some(err) = self.poisoned {
            return Err(err);
        }
        if self.buf.is_empty() {
            return Ok(());
        }
        let inside = match self.buf.iter().position(|b| *b == b':') {
            Some(sep) if valid_key(&self.buf[..sep]) => {
                format!("frame `{}`", String::from_utf8_lossy(&self.buf[..sep]))
            }
            _ => format!("a frame key ({:?})", printable_head(&self.buf)),
        };
        Err(ProtocolError::Truncated {
            offset: self.consumed + self.buf.len(),
            inside,
        })
    }

    /// Try to decode one complete frame from the front of the buffer.
    /// `Ok(None)` means "need more bytes".
    fn try_frame(&mut self) -> Result<Option<Frame>, ProtocolError> {
        if self.buf.is_empty() {
            return Ok(None);
        }
        // Key: bytes up to the first ':'. Garbage is flagged eagerly — an
        // invalid byte in the key region is an error even before the
        // separator arrives, so a non-KLV stream fails fast instead of
        // looking "truncated".
        let scan = &self.buf[..self.buf.len().min(MAX_KEY_LEN + 1)];
        let colon = scan.iter().position(|b| *b == b':');
        let key_region = &scan[..colon.unwrap_or(scan.len())];
        if !key_region
            .iter()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || *b == b'_' || *b == b'-')
            || colon == Some(0)
        {
            return Err(ProtocolError::BadKey {
                offset: self.consumed,
                found: printable_head(key_region),
            });
        }
        let key_end = match colon {
            Some(p) => p,
            None if self.buf.len() > MAX_KEY_LEN => {
                return Err(ProtocolError::BadKey {
                    offset: self.consumed,
                    found: printable_head(&self.buf),
                });
            }
            None => return Ok(None),
        };
        // Length: decimal digits up to the second ':', also checked
        // eagerly.
        let len_start = key_end + 1;
        let len_scan = &self.buf[len_start..self.buf.len().min(len_start + MAX_LEN_DIGITS + 1)];
        let len_colon = len_scan.iter().position(|b| *b == b':');
        let digit_region = &len_scan[..len_colon.unwrap_or(len_scan.len())];
        if !digit_region.iter().all(u8::is_ascii_digit) || len_colon == Some(0) {
            return Err(ProtocolError::BadLength {
                offset: self.consumed + len_start,
                found: printable_head(digit_region),
            });
        }
        let len_end = match len_colon {
            Some(p) => len_start + p,
            None if self.buf.len() > len_start + MAX_LEN_DIGITS => {
                return Err(ProtocolError::BadLength {
                    offset: self.consumed + len_start,
                    found: printable_head(len_scan),
                });
            }
            None => return Ok(None),
        };
        let digits = &self.buf[len_start..len_end];
        // ≤ 8 digits ⇒ fits u64 without overflow.
        let len: u64 = std::str::from_utf8(digits)
            .expect("ascii digits")
            .parse()
            .expect("bounded decimal");
        let key = String::from_utf8_lossy(&self.buf[..key_end]).into_owned();
        if len > MAX_VALUE_LEN as u64 {
            return Err(ProtocolError::Oversized {
                offset: self.consumed,
                key,
                len,
            });
        }
        let value_start = len_end + 1;
        let frame_end = value_start + len as usize; // index of the newline
        if self.buf.len() <= frame_end {
            return Ok(None);
        }
        if self.buf[frame_end] != b'\n' {
            return Err(ProtocolError::MissingNewline {
                offset: self.consumed + frame_end,
                key,
            });
        }
        let value = self.buf[value_start..frame_end].to_vec();
        self.buf.drain(..=frame_end);
        self.consumed += frame_end + 1;
        Ok(Some(Frame { key, value }))
    }
}

/// Decode a complete byte stream into frames.
pub fn decode_all(bytes: &[u8]) -> Result<Vec<Frame>, ProtocolError> {
    let mut decoder = Decoder::new();
    let frames = decoder.push(bytes)?;
    decoder.finish()?;
    Ok(frames)
}

/// Encode a frame sequence to its wire form.
pub fn encode_all(frames: &[Frame]) -> Vec<u8> {
    let mut out = Vec::new();
    for frame in frames {
        frame.encode_into(&mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_simple_frames() {
        let frames = vec![
            Frame::text("wall", "1.25").unwrap(),
            Frame::new("stdout", b"line one\nline two\n".to_vec()).unwrap(),
            Frame::new("done", Vec::new()).unwrap(),
        ];
        let wire = encode_all(&frames);
        assert_eq!(decode_all(&wire).unwrap(), frames);
    }

    #[test]
    fn values_may_contain_colons_newlines_and_binary() {
        let frame = Frame::new("blob", b"a:b\nc:\x00\xff".to_vec()).unwrap();
        assert_eq!(decode_all(&frame.encode()).unwrap(), vec![frame]);
    }

    #[test]
    fn empty_stream_is_zero_frames() {
        assert_eq!(decode_all(b"").unwrap(), Vec::new());
    }

    #[test]
    fn rejects_bad_keys() {
        assert!(matches!(
            decode_all(b"BAD:0:\n"),
            Err(ProtocolError::BadKey { offset: 0, .. })
        ));
        assert!(matches!(
            decode_all(b":0:\n"),
            Err(ProtocolError::BadKey { .. })
        ));
        let long = format!("{}:0:\n", "k".repeat(MAX_KEY_LEN + 1));
        assert!(matches!(
            decode_all(long.as_bytes()),
            Err(ProtocolError::BadKey { .. })
        ));
        assert!(Frame::text("Bad Key", "v").is_err());
    }

    #[test]
    fn rejects_bad_lengths() {
        assert!(matches!(
            decode_all(b"k:x:\n"),
            Err(ProtocolError::BadLength { offset: 2, .. })
        ));
        assert!(matches!(
            decode_all(b"k::\n"),
            Err(ProtocolError::BadLength { .. })
        ));
        assert!(matches!(
            decode_all(b"k:123456789:\n"),
            Err(ProtocolError::BadLength { .. })
        ));
    }

    #[test]
    fn rejects_oversized_declarations_without_buffering_them() {
        let wire = format!("k:{}:", MAX_VALUE_LEN + 1);
        assert!(matches!(
            decode_all(wire.as_bytes()),
            Err(ProtocolError::Oversized { len, .. }) if len == (MAX_VALUE_LEN + 1) as u64
        ));
    }

    #[test]
    fn rejects_missing_newline() {
        assert!(matches!(
            decode_all(b"k:2:abX"),
            Err(ProtocolError::MissingNewline { offset: 6, .. })
        ));
    }

    #[test]
    fn finish_flags_truncation() {
        for cut in 1..b"key:5:hello\n".len() {
            let err = decode_all(&b"key:5:hello\n"[..cut]).unwrap_err();
            assert!(
                matches!(err, ProtocolError::Truncated { .. }),
                "cut={cut}: {err}"
            );
        }
    }

    #[test]
    fn decoder_is_incremental_at_any_split() {
        let frames = vec![
            Frame::text("a", "12345").unwrap(),
            Frame::text("b-2", "").unwrap(),
            Frame::new("c", b"\n\n::\n".to_vec()).unwrap(),
        ];
        let wire = encode_all(&frames);
        for split in 0..=wire.len() {
            let mut decoder = Decoder::new();
            let mut got = decoder.push(&wire[..split]).unwrap();
            got.extend(decoder.push(&wire[split..]).unwrap());
            decoder.finish().unwrap();
            assert_eq!(got, frames, "split at {split}");
        }
    }

    #[test]
    fn poisoned_decoder_stays_poisoned() {
        let mut decoder = Decoder::new();
        let err = decoder.push(b"BAD:").unwrap_err();
        assert_eq!(decoder.push(b"more").unwrap_err(), err);
    }

    #[test]
    fn error_offsets_count_consumed_frames() {
        let mut wire = Frame::text("ok", "fine").unwrap().encode();
        let prefix = wire.len();
        wire.extend_from_slice(b"!bad");
        match decode_all(&wire) {
            Err(ProtocolError::BadKey { offset, .. }) => assert_eq!(offset, prefix),
            other => panic!("expected BadKey, got {other:?}"),
        }
    }
}
