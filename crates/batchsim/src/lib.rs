//! `batchsim` — a SLURM/PBS-like batch scheduler, simulated.
//!
//! Running a benchmark on a real HPC system means going through a job
//! scheduler: accounts and QoS, node counts derived from
//! `num_tasks`/`num_tasks_per_node`/`num_cpus_per_task`, queue waits, time
//! limits, and a generated job script. The paper's Principle 5 requires all
//! of that to be captured and reproducible; the harness therefore submits
//! real job objects to this simulated scheduler rather than shelling out.
//!
//! The simulator is a discrete-event queue over a homogeneous node pool
//! with two policies — strict FIFO and EASY backfill — plus accounting and
//! job-script rendering in both SLURM and PBS dialects.
//!
//! # Example
//!
//! ```
//! use batchsim::{JobRequest, Policy, Scheduler};
//!
//! // The paper's HPGMG configuration: 8 tasks, 2 per node, 8 cpus/task.
//! let mut sched = Scheduler::new(Policy::Backfill, 16, 128);
//! let req = JobRequest::new("hpgmg", 8, 2, 8).with_time_limit(600.0);
//! let id = sched.submit(req, 42.0).unwrap();
//! sched.run_to_completion();
//! let job = sched.job(id).unwrap();
//! assert_eq!(job.state, batchsim::JobState::Completed);
//! assert_eq!(job.allocated_nodes.len(), 4);
//! ```

mod job;
mod sched;
mod script;

pub use job::{Job, JobId, JobRequest, JobState, LayoutError};
pub use sched::{Accounting, NodeEvent, Policy, Scheduler};
pub use script::render_script;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_mixed_workload() {
        let mut s = Scheduler::new(Policy::Backfill, 8, 128);
        let mut ids = Vec::new();
        for i in 0..20 {
            let tasks = 1 + (i % 4) as u32;
            let req = JobRequest::new(&format!("job{i}"), tasks, 1, 16).with_time_limit(120.0);
            ids.push(s.submit(req, 10.0 + i as f64).unwrap());
        }
        s.run_to_completion();
        for id in ids {
            assert_eq!(s.job(id).unwrap().state, JobState::Completed);
        }
        assert!(s.utilization() > 0.1);
    }

    #[test]
    fn scheduler_kind_scripts_from_catalog() {
        // Script rendering integrates with the simhpc system descriptions.
        let sys = simhpc::catalog::system("archer2").unwrap();
        let req = JobRequest::new("hpgmg", 8, 2, 8).with_qos("standard");
        let script = render_script(sys.scheduler(), &req, "hpgmg-fv 7 8");
        assert!(script.contains("#SBATCH"), "ARCHER2 is SLURM");

        let isambard = simhpc::catalog::system("isambard").unwrap();
        let script = render_script(isambard.scheduler(), &req, "hpgmg-fv 7 8");
        assert!(script.contains("#PBS"), "Isambard is PBS");
    }
}
