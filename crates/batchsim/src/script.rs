//! Job-script generation: Principle 5 in artifact form.
//!
//! The framework must capture "all steps to run the built benchmark so it
//! can be run by anyone on the same system using the default environment".
//! This module renders a job request + launch command into the batch script
//! the scheduler would execute, so the perflog can archive it verbatim.

use crate::job::JobRequest;
use simhpc::platform::SchedulerKind;

/// Render the batch script for `request` running `command` under the given
/// scheduler dialect.
pub fn render_script(kind: SchedulerKind, request: &JobRequest, command: &str) -> String {
    match kind {
        SchedulerKind::Slurm => {
            let mut s = String::from("#!/bin/bash\n");
            s.push_str(&format!("#SBATCH --job-name={}\n", request.name));
            s.push_str(&format!("#SBATCH --account={}\n", request.account));
            s.push_str(&format!("#SBATCH --qos={}\n", request.qos));
            s.push_str(&format!("#SBATCH --ntasks={}\n", request.num_tasks));
            s.push_str(&format!(
                "#SBATCH --ntasks-per-node={}\n",
                request.num_tasks_per_node
            ));
            s.push_str(&format!(
                "#SBATCH --cpus-per-task={}\n",
                request.num_cpus_per_task
            ));
            s.push_str(&format!(
                "#SBATCH --time={}\n",
                format_walltime(request.time_limit_s)
            ));
            s.push_str("\nexport OMP_NUM_THREADS=$SLURM_CPUS_PER_TASK\n");
            s.push_str(&format!("srun {command}\n"));
            s
        }
        SchedulerKind::Pbs => {
            let nodes = request.nodes_needed();
            let mut s = String::from("#!/bin/bash\n");
            s.push_str(&format!("#PBS -N {}\n", request.name));
            s.push_str(&format!("#PBS -A {}\n", request.account));
            s.push_str(&format!(
                "#PBS -l select={}:ncpus={}:mpiprocs={}\n",
                nodes,
                request.cores_per_node(),
                request.num_tasks_per_node
            ));
            s.push_str(&format!(
                "#PBS -l walltime={}\n",
                format_walltime(request.time_limit_s)
            ));
            s.push_str(&format!(
                "\nexport OMP_NUM_THREADS={}\n",
                request.num_cpus_per_task
            ));
            s.push_str(&format!("mpirun -n {} {command}\n", request.num_tasks));
            s
        }
        SchedulerKind::Local => {
            format!(
                "#!/bin/bash\nexport OMP_NUM_THREADS={}\n{command}\n",
                request.num_cpus_per_task
            )
        }
    }
}

fn format_walltime(seconds: f64) -> String {
    let total = seconds.max(0.0).round() as u64;
    format!(
        "{:02}:{:02}:{:02}",
        total / 3600,
        (total % 3600) / 60,
        total % 60
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> JobRequest {
        JobRequest::new("hpgmg", 8, 2, 8)
            .with_account("ec176")
            .with_qos("standard")
            .with_time_limit(1800.0)
    }

    #[test]
    fn slurm_script_has_paper_knobs() {
        let s = render_script(SchedulerKind::Slurm, &request(), "./hpgmg-fv 7 8");
        assert!(s.contains("#SBATCH --ntasks=8"));
        assert!(s.contains("#SBATCH --ntasks-per-node=2"));
        assert!(s.contains("#SBATCH --cpus-per-task=8"));
        assert!(s.contains("#SBATCH --qos=standard"));
        assert!(s.contains("--account=ec176"));
        assert!(s.contains("srun ./hpgmg-fv 7 8"));
        assert!(s.contains("--time=00:30:00"));
    }

    #[test]
    fn pbs_script_select_line() {
        let s = render_script(SchedulerKind::Pbs, &request(), "./hpgmg-fv 7 8");
        assert!(s.contains("#PBS -l select=4:ncpus=16:mpiprocs=2"));
        assert!(s.contains("mpirun -n 8 ./hpgmg-fv 7 8"));
    }

    #[test]
    fn local_script_is_direct() {
        let s = render_script(SchedulerKind::Local, &request(), "./bench");
        assert!(!s.contains("#SBATCH"));
        assert!(s.contains("OMP_NUM_THREADS=8"));
        assert!(s.contains("./bench"));
    }

    #[test]
    fn walltime_formatting() {
        assert_eq!(format_walltime(0.0), "00:00:00");
        assert_eq!(format_walltime(59.4), "00:00:59");
        assert_eq!(format_walltime(3661.0), "01:01:01");
        assert_eq!(format_walltime(86400.0), "24:00:00");
    }
}
